//! ARP for IPv4-over-Ethernet (RFC 826), including the cache the stack's
//! IP component keeps (entries expire after one minute, smoltcp-style).

use crate::ethernet::MacAddr;
use crate::wire::{get_u16, need, set_u16, NetError, NetResult};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    Request,
    Reply,
}

/// An ARP packet for IPv4 over Ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    pub op: ArpOp,
    pub sender_mac: MacAddr,
    pub sender_ip: Ipv4Addr,
    pub target_mac: MacAddr,
    pub target_ip: Ipv4Addr,
}

pub const ARP_LEN: usize = 28;

impl ArpPacket {
    pub fn parse(buf: &[u8]) -> NetResult<ArpPacket> {
        need(buf, ARP_LEN)?;
        if get_u16(buf, 0) != 1 || get_u16(buf, 2) != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(NetError::Unsupported);
        }
        let op = match get_u16(buf, 6) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return Err(NetError::Unsupported),
        };
        let mac = |o: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&buf[o..o + 6]);
            MacAddr(m)
        };
        let ip = |o: usize| Ipv4Addr::new(buf[o], buf[o + 1], buf[o + 2], buf[o + 3]);
        Ok(ArpPacket {
            op,
            sender_mac: mac(8),
            sender_ip: ip(14),
            target_mac: mac(18),
            target_ip: ip(24),
        })
    }

    pub fn emit(&self) -> Vec<u8> {
        let mut b = vec![0u8; ARP_LEN];
        set_u16(&mut b, 0, 1); // hardware: Ethernet
        set_u16(&mut b, 2, 0x0800); // protocol: IPv4
        b[4] = 6;
        b[5] = 4;
        set_u16(
            &mut b,
            6,
            match self.op {
                ArpOp::Request => 1,
                ArpOp::Reply => 2,
            },
        );
        b[8..14].copy_from_slice(&self.sender_mac.0);
        b[14..18].copy_from_slice(&self.sender_ip.octets());
        b[18..24].copy_from_slice(&self.target_mac.0);
        b[24..28].copy_from_slice(&self.target_ip.octets());
        b
    }

    /// A request for `target_ip` from `(mac, ip)`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// The reply answering `req` with our `(mac, ip)`.
    pub fn reply_to(req: &ArpPacket, our_mac: MacAddr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: our_mac,
            sender_ip: req.target_ip,
            target_mac: req.sender_mac,
            target_ip: req.sender_ip,
        }
    }
}

/// Neighbour cache with per-entry expiry (one minute, like smoltcp).
#[derive(Debug, Clone, Default)]
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, (MacAddr, u64)>,
    /// Entry lifetime in nanoseconds.
    ttl_ns: u64,
}

impl ArpCache {
    pub fn new() -> ArpCache {
        ArpCache {
            entries: HashMap::new(),
            ttl_ns: 60_000_000_000,
        }
    }

    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr, now_ns: u64) {
        self.entries.insert(ip, (mac, now_ns + self.ttl_ns));
    }

    pub fn lookup(&self, ip: Ipv4Addr, now_ns: u64) -> Option<MacAddr> {
        match self.entries.get(&ip) {
            Some((mac, exp)) if *exp > now_ns => Some(*mac),
            _ => None,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArpPacket {
        ArpPacket::request(
            MacAddr::local(1),
            Ipv4Addr::new(192, 168, 69, 1),
            Ipv4Addr::new(192, 168, 69, 100),
        )
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        assert_eq!(ArpPacket::parse(&p.emit()).unwrap(), p);
    }

    #[test]
    fn reply_swaps_roles() {
        let req = sample();
        let rep = ArpPacket::reply_to(&req, MacAddr::local(2));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, req.target_ip);
        assert_eq!(rep.target_ip, req.sender_ip);
        assert_eq!(rep.target_mac, req.sender_mac);
        assert_eq!(rep.sender_mac, MacAddr::local(2));
    }

    #[test]
    fn bad_hardware_type_rejected() {
        let mut b = sample().emit();
        b[0] = 9;
        assert_eq!(ArpPacket::parse(&b), Err(NetError::Unsupported));
    }

    #[test]
    fn cache_expiry() {
        let mut c = ArpCache::new();
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        c.insert(ip, MacAddr::local(7), 0);
        assert_eq!(c.lookup(ip, 1_000), Some(MacAddr::local(7)));
        assert_eq!(c.lookup(ip, 61_000_000_000), None);
        assert_eq!(c.lookup(Ipv4Addr::new(10, 0, 0, 2), 0), None);
    }
}
