//! Ethernet II framing (the testbed's 10GbE link layer).

use crate::wire::{get_u16, need, set_u16, NetError, NetResult};
use std::fmt;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Locally administered unicast address from a small id, in the style
    /// of smoltcp's examples (`02-00-00-00-00-xx`).
    pub fn local(id: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, id])
    }

    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0 && !self.is_broadcast()
    }

    pub fn is_unicast(&self) -> bool {
        self.0[0] & 0x01 == 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// EtherType values this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    Arp,
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Unknown(v) => v,
        }
    }
}

pub const ETHERNET_HEADER_LEN: usize = 14;

/// A parsed Ethernet II frame header (payload referenced by range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetFrame {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
}

impl EthernetFrame {
    /// Parse the header; returns the header and the payload offset.
    pub fn parse(buf: &[u8]) -> NetResult<(EthernetFrame, usize)> {
        need(buf, ETHERNET_HEADER_LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from(get_u16(buf, 12));
        if let EtherType::Unknown(v) = ethertype {
            // 802.3 length fields (<=1500) are not Ethernet II; reject.
            if v <= 1500 {
                return Err(NetError::Unsupported);
            }
        }
        Ok((
            EthernetFrame {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            ETHERNET_HEADER_LEN,
        ))
    }

    /// Emit the header followed by `payload` into a fresh buffer.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETHERNET_HEADER_LEN + payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        let mut ty = [0u8; 2];
        set_u16(&mut ty, 0, u16::from(self.ethertype));
        out.extend_from_slice(&ty);
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = EthernetFrame {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
        };
        let bytes = f.emit(b"hello");
        let (g, off) = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(f, g);
        assert_eq!(&bytes[off..], b"hello");
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(EthernetFrame::parse(&[0u8; 10]), Err(NetError::Truncated));
    }

    #[test]
    fn dot3_length_rejected() {
        let f = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(9),
            ethertype: EtherType::Unknown(0x0100), // 802.3 length, not a type
        };
        let bytes = f.emit(&[]);
        assert_eq!(EthernetFrame::parse(&bytes), Err(NetError::Unsupported));
    }

    #[test]
    fn mac_classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(MacAddr::local(3).is_unicast());
        assert_eq!(format!("{}", MacAddr::local(0x2a)), "02:00:00:00:00:2a");
    }

    #[test]
    fn ethertype_conversions() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(u16::from(EtherType::Unknown(0x86DD)), 0x86DD);
    }
}
