//! IPv4 (RFC 791): header parse/emit with checksum, plus fragmentation and
//! reassembly used by the stack's IP component.

use crate::checksum;
use crate::wire::{get_u16, need, set_u16, NetError, NetResult};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Transport protocols carried by this stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    Icmp,
    Tcp,
    Udp,
    Unknown(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Unknown(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Unknown(v) => v,
        }
    }
}

pub const IPV4_HEADER_LEN: usize = 20;

/// A parsed IPv4 header (options are accepted but ignored, like the paper's
/// stack and smoltcp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: IpProtocol,
    pub ttl: u8,
    pub ident: u16,
    pub dont_frag: bool,
    pub more_frags: bool,
    /// Fragment offset in bytes (stored as 8-byte units on the wire).
    pub frag_offset: u16,
    /// Total length (header + payload).
    pub total_len: u16,
    /// Header length in bytes (>= 20 when options present).
    pub header_len: u8,
}

impl Ipv4Header {
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        Ipv4Header {
            src,
            dst,
            protocol,
            ttl: 64,
            ident: 0,
            dont_frag: true,
            more_frags: false,
            frag_offset: 0,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
            header_len: IPV4_HEADER_LEN as u8,
        }
    }

    /// Parse and validate (version, header checksum, lengths). Returns the
    /// header and the payload byte range within `buf`.
    pub fn parse(buf: &[u8]) -> NetResult<(Ipv4Header, std::ops::Range<usize>)> {
        need(buf, IPV4_HEADER_LEN)?;
        if buf[0] >> 4 != 4 {
            return Err(NetError::Unsupported);
        }
        let ihl = ((buf[0] & 0x0F) as usize) * 4;
        if ihl < IPV4_HEADER_LEN {
            return Err(NetError::Malformed);
        }
        need(buf, ihl)?;
        if !checksum::verify(&buf[..ihl]) {
            return Err(NetError::BadChecksum);
        }
        let total_len = get_u16(buf, 2);
        if (total_len as usize) < ihl || (total_len as usize) > buf.len() {
            return Err(NetError::BadLength);
        }
        let flags_frag = get_u16(buf, 6);
        Ok((
            Ipv4Header {
                src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
                dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
                protocol: IpProtocol::from(buf[9]),
                ttl: buf[8],
                ident: get_u16(buf, 4),
                dont_frag: flags_frag & 0x4000 != 0,
                more_frags: flags_frag & 0x2000 != 0,
                frag_offset: (flags_frag & 0x1FFF) * 8,
                total_len,
                header_len: ihl as u8,
            },
            ihl..total_len as usize,
        ))
    }

    /// Emit the header (with checksum) followed by `payload`.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let total = IPV4_HEADER_LEN + payload.len();
        let mut b = vec![0u8; IPV4_HEADER_LEN];
        b[0] = 0x45; // version 4, IHL 5
        set_u16(&mut b, 2, total as u16);
        set_u16(&mut b, 4, self.ident);
        let mut ff = (self.frag_offset / 8) & 0x1FFF;
        if self.dont_frag {
            ff |= 0x4000;
        }
        if self.more_frags {
            ff |= 0x2000;
        }
        set_u16(&mut b, 6, ff);
        b[8] = self.ttl;
        b[9] = u8::from(self.protocol);
        b[12..16].copy_from_slice(&self.src.octets());
        b[16..20].copy_from_slice(&self.dst.octets());
        let c = checksum::checksum(&b);
        set_u16(&mut b, 10, c);
        b.extend_from_slice(payload);
        b
    }
}

/// Split an IPv4 payload into fragments fitting `mtu` (which includes the
/// 20-byte header). Offsets are kept 8-byte aligned as required.
pub fn fragment(header: &Ipv4Header, payload: &[u8], mtu: usize) -> NetResult<Vec<Vec<u8>>> {
    let max_data = (mtu.saturating_sub(IPV4_HEADER_LEN)) & !7;
    if max_data == 0 {
        return Err(NetError::BadLength);
    }
    if payload.len() + IPV4_HEADER_LEN <= mtu {
        return Ok(vec![header.emit(payload)]);
    }
    if header.dont_frag {
        return Err(NetError::Malformed);
    }
    let mut out = Vec::new();
    let mut off = 0;
    while off < payload.len() {
        let end = (off + max_data).min(payload.len());
        let mut h = *header;
        h.frag_offset = off as u16;
        h.more_frags = end < payload.len();
        h.dont_frag = false;
        out.push(h.emit(&payload[off..end]));
        off = end;
    }
    Ok(out)
}

/// Reassembles fragmented IPv4 datagrams, keyed by (src, dst, proto, ident).
#[derive(Debug, Default)]
pub struct Reassembler {
    pending: HashMap<(Ipv4Addr, Ipv4Addr, u8, u16), Partial>,
}

#[derive(Debug)]
struct Partial {
    /// (offset, data) pieces received so far.
    pieces: Vec<(u16, Vec<u8>)>,
    /// Total payload length, known once the last fragment arrives.
    total: Option<usize>,
    started_ns: u64,
}

impl Reassembler {
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Offer one fragment; returns the reassembled full payload when
    /// complete.
    pub fn push(&mut self, h: &Ipv4Header, payload: &[u8], now_ns: u64) -> Option<Vec<u8>> {
        if !h.more_frags && h.frag_offset == 0 {
            return Some(payload.to_vec()); // unfragmented fast path
        }
        let key = (h.src, h.dst, u8::from(h.protocol), h.ident);
        let p = self.pending.entry(key).or_insert(Partial {
            pieces: Vec::new(),
            total: None,
            started_ns: now_ns,
        });
        p.pieces.push((h.frag_offset, payload.to_vec()));
        if !h.more_frags {
            p.total = Some(h.frag_offset as usize + payload.len());
        }
        let total = p.total?;
        // Check contiguous coverage 0..total.
        let mut pieces = p.pieces.clone();
        pieces.sort_by_key(|(o, _)| *o);
        let mut covered = 0usize;
        for (o, d) in &pieces {
            let o = *o as usize;
            if o > covered {
                return None; // gap
            }
            covered = covered.max(o + d.len());
        }
        if covered < total {
            return None;
        }
        let mut out = vec![0u8; total];
        for (o, d) in &pieces {
            let o = *o as usize;
            let end = (o + d.len()).min(total);
            out[o..end].copy_from_slice(&d[..end - o]);
        }
        self.pending.remove(&key);
        Some(out)
    }

    /// Drop partial datagrams older than `ttl_ns`.
    pub fn expire(&mut self, now_ns: u64, ttl_ns: u64) {
        self.pending
            .retain(|_, p| now_ns.saturating_sub(p.started_ns) < ttl_ns);
    }

    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(payload_len: usize) -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            payload_len,
        )
    }

    #[test]
    fn header_roundtrip() {
        let h = hdr(11);
        let bytes = h.emit(b"hello world");
        let (g, range) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(g.src, h.src);
        assert_eq!(g.dst, h.dst);
        assert_eq!(g.protocol, IpProtocol::Udp);
        assert_eq!(&bytes[range], b"hello world");
    }

    #[test]
    fn corrupt_header_fails_checksum() {
        let mut bytes = hdr(0).emit(&[]);
        bytes[12] ^= 0x01;
        assert_eq!(Ipv4Header::parse(&bytes), Err(NetError::BadChecksum));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = hdr(0).emit(&[]);
        bytes[0] = 0x65;
        assert_eq!(Ipv4Header::parse(&bytes), Err(NetError::Unsupported));
    }

    #[test]
    fn length_field_vs_buffer() {
        let bytes = hdr(4).emit(b"abcd");
        // Claim more data than present.
        let mut longer = bytes.clone();
        set_u16(&mut longer, 2, 100);
        let c = checksum::checksum(&{
            let mut h = longer[..20].to_vec();
            h[10] = 0;
            h[11] = 0;
            h
        });
        set_u16(&mut longer, 10, 0);
        set_u16(&mut longer, 10, c);
        assert_eq!(Ipv4Header::parse(&longer), Err(NetError::BadLength));
    }

    #[test]
    fn fragment_then_reassemble() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4000).collect();
        let mut h = hdr(payload.len());
        h.dont_frag = false;
        h.ident = 42;
        let frags = fragment(&h, &payload, 1500).unwrap();
        assert!(frags.len() >= 3);
        let mut r = Reassembler::new();
        let mut got = None;
        for f in &frags {
            let (fh, range) = Ipv4Header::parse(f).unwrap();
            got = r.push(&fh, &f[range], 0);
        }
        assert_eq!(got.unwrap(), payload);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassemble_out_of_order() {
        let payload: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        let mut h = hdr(payload.len());
        h.dont_frag = false;
        h.ident = 7;
        let mut frags = fragment(&h, &payload, 1500).unwrap();
        frags.reverse();
        let mut r = Reassembler::new();
        let mut got = None;
        for f in &frags {
            let (fh, range) = Ipv4Header::parse(f).unwrap();
            got = r.push(&fh, &f[range], 0);
        }
        assert_eq!(got.unwrap(), payload);
    }

    #[test]
    fn dont_frag_refuses_to_fragment() {
        let payload = vec![0u8; 3000];
        let h = hdr(payload.len()); // dont_frag = true by default
        assert_eq!(fragment(&h, &payload, 1500), Err(NetError::Malformed));
    }

    #[test]
    fn reassembler_expires_partials() {
        let payload = vec![1u8; 3000];
        let mut h = hdr(payload.len());
        h.dont_frag = false;
        let frags = fragment(&h, &payload, 1500).unwrap();
        let (fh, range) = Ipv4Header::parse(&frags[0]).unwrap();
        let mut r = Reassembler::new();
        assert!(r.push(&fh, &frags[0][range], 0).is_none());
        assert_eq!(r.pending(), 1);
        r.expire(10_000_000_000, 5_000_000_000);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn protocol_conversion() {
        for p in [
            IpProtocol::Icmp,
            IpProtocol::Tcp,
            IpProtocol::Udp,
            IpProtocol::Unknown(99),
        ] {
            assert_eq!(IpProtocol::from(u8::from(p)), p);
        }
    }
}
