//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header.

use std::net::Ipv4Addr;

/// Accumulate bytes into a 32-bit one's-complement sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
    /// A pending odd byte from the previous `add` call.
    carry_byte: Option<u8>,
}

impl Checksum {
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Feed bytes into the sum. Handles odd-length chunks across calls.
    pub fn add(&mut self, data: &[u8]) {
        let mut data = data;
        if let Some(hi) = self.carry_byte.take() {
            if data.is_empty() {
                self.carry_byte = Some(hi);
                return;
            }
            self.sum += u32::from(u16::from_be_bytes([hi, data[0]]));
            data = &data[1..];
        }
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.carry_byte = Some(*last);
        }
    }

    pub fn add_u16(&mut self, v: u16) {
        self.add(&v.to_be_bytes());
    }

    /// Finish: fold carries and complement. A trailing odd byte is padded
    /// with zero per RFC 1071.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.carry_byte.take() {
            self.sum += u32::from(u16::from_be_bytes([hi, 0]));
        }
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xFFFF) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add(data);
    c.finish()
}

/// Verify a region whose checksum field is already in place: the sum over
/// the whole region must be zero (i.e. `checksum() == 0`).
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// The TCP/UDP pseudo-header contribution (RFC 793 §3.1).
pub fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, len: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add(&src.octets());
    c.add(&dst.octets());
    c.add(&[0, protocol]);
    c.add_u16(len);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1071 worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add(&data);
        // Sum = 0x0001+0xf203+0xf4f5+0xf6f7 = 0x2ddf0 -> fold -> 0xddf2
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn verify_detects_corruption() {
        let mut pkt = vec![
            0x45, 0x00, 0x00, 0x14, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06, 0, 0, 10, 0, 0, 1, 10, 0,
            0, 2,
        ];
        let c = checksum(&pkt);
        pkt[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&pkt));
        pkt[15] ^= 0x40;
        assert!(!verify(&pkt));
    }

    #[test]
    fn odd_length_across_chunks_matches_one_shot() {
        let data: Vec<u8> = (0u8..23).collect();
        let one = checksum(&data);
        let mut c = Checksum::new();
        c.add(&data[..5]);
        c.add(&data[5..6]);
        c.add(&data[6..17]);
        c.add(&data[17..]);
        assert_eq!(c.finish(), one);
    }

    #[test]
    fn trailing_odd_byte_padded() {
        // RFC 1071: trailing byte is the high half of a zero-padded word.
        assert_eq!(checksum(&[0xAB]), !0xAB00);
    }

    #[test]
    fn pseudo_header_contributes() {
        let a = pseudo_header(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            6,
            20,
        )
        .finish();
        let b = pseudo_header(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 3),
            6,
            20,
        )
        .finish();
        assert_ne!(a, b);
    }
}
