//! A minimal libpcap file writer so simulated traffic can be inspected in
//! Wireshark/tcpdump (like smoltcp's `--pcap` option).

use std::io::{self, Write};

/// Writes a classic pcap (v2.4) capture of Ethernet frames.
pub struct PcapWriter<W: Write> {
    out: W,
}

const MAGIC: u32 = 0xa1b2_c3d9; // nanosecond-resolution pcap
const LINKTYPE_ETHERNET: u32 = 1;

impl<W: Write> PcapWriter<W> {
    /// Create the writer and emit the global header.
    pub fn new(mut out: W) -> io::Result<PcapWriter<W>> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // major
        out.write_all(&4u16.to_le_bytes())?; // minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out })
    }

    /// Record one frame captured at `ts_ns` (simulated nanoseconds).
    pub fn write_frame(&mut self, ts_ns: u64, frame: &[u8]) -> io::Result<()> {
        let secs = (ts_ns / 1_000_000_000) as u32;
        let nanos = (ts_ns % 1_000_000_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&nanos.to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(frame)
    }

    pub fn into_inner(self) -> W {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_records_layout() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(1_500_000_042, &[0xAA; 60]).unwrap();
        let bytes = w.into_inner();
        assert_eq!(bytes.len(), 24 + 16 + 60);
        assert_eq!(&bytes[0..4], &MAGIC.to_le_bytes());
        // record header: ts_sec=1, ts_nsec=500000042, incl=orig=60
        assert_eq!(&bytes[24..28], &1u32.to_le_bytes());
        assert_eq!(&bytes[28..32], &500_000_042u32.to_le_bytes());
        assert_eq!(&bytes[32..36], &60u32.to_le_bytes());
        assert_eq!(&bytes[36..40], &60u32.to_le_bytes());
        assert_eq!(&bytes[40..], &[0xAA; 60]);
    }

    #[test]
    fn multiple_frames_append() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(0, &[1, 2, 3]).unwrap();
        w.write_frame(10, &[4, 5]).unwrap();
        let bytes = w.into_inner();
        assert_eq!(bytes.len(), 24 + 16 + 3 + 16 + 2);
    }
}
