//! ICMPv4 (RFC 792): echo request/reply and destination unreachable — the
//! messages the paper's packet-filter/UDP components generate and consume.

use crate::checksum;
use crate::wire::{get_u16, need, set_u16, NetError, NetResult};

/// ICMPv4 messages this stack understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    EchoRequest {
        ident: u16,
        seq: u16,
        data: Vec<u8>,
    },
    EchoReply {
        ident: u16,
        seq: u16,
        data: Vec<u8>,
    },
    /// Destination unreachable; `code` 3 = port unreachable. Carries the
    /// offending datagram's IP header + 8 bytes.
    DestUnreachable {
        code: u8,
        original: Vec<u8>,
    },
}

impl IcmpMessage {
    pub fn parse(buf: &[u8]) -> NetResult<IcmpMessage> {
        need(buf, 8)?;
        if !checksum::verify(buf) {
            return Err(NetError::BadChecksum);
        }
        match buf[0] {
            8 | 0 => {
                let ident = get_u16(buf, 4);
                let seq = get_u16(buf, 6);
                let data = buf[8..].to_vec();
                Ok(if buf[0] == 8 {
                    IcmpMessage::EchoRequest { ident, seq, data }
                } else {
                    IcmpMessage::EchoReply { ident, seq, data }
                })
            }
            3 => Ok(IcmpMessage::DestUnreachable {
                code: buf[1],
                original: buf[8..].to_vec(),
            }),
            _ => Err(NetError::Unsupported),
        }
    }

    pub fn emit(&self) -> Vec<u8> {
        let mut b = vec![0u8; 8];
        match self {
            IcmpMessage::EchoRequest { ident, seq, data }
            | IcmpMessage::EchoReply { ident, seq, data } => {
                b[0] = if matches!(self, IcmpMessage::EchoRequest { .. }) {
                    8
                } else {
                    0
                };
                set_u16(&mut b, 4, *ident);
                set_u16(&mut b, 6, *seq);
                b.extend_from_slice(data);
            }
            IcmpMessage::DestUnreachable { code, original } => {
                b[0] = 3;
                b[1] = *code;
                b.extend_from_slice(original);
            }
        }
        let c = checksum::checksum(&b);
        set_u16(&mut b, 2, c);
        b
    }

    /// The reply answering an echo request (same ident/seq/data).
    pub fn reply_to(req: &IcmpMessage) -> Option<IcmpMessage> {
        match req {
            IcmpMessage::EchoRequest { ident, seq, data } => Some(IcmpMessage::EchoReply {
                ident: *ident,
                seq: *seq,
                data: data.clone(),
            }),
            _ => None,
        }
    }
}

pub const PORT_UNREACHABLE: u8 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let m = IcmpMessage::EchoRequest {
            ident: 0x1234,
            seq: 7,
            data: b"abcdefgh".to_vec(),
        };
        let bytes = m.emit();
        assert_eq!(IcmpMessage::parse(&bytes).unwrap(), m);
    }

    #[test]
    fn reply_echoes_payload() {
        let req = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 2,
            data: vec![9, 9],
        };
        let rep = IcmpMessage::reply_to(&req).unwrap();
        let bytes = rep.emit();
        match IcmpMessage::parse(&bytes).unwrap() {
            IcmpMessage::EchoReply { ident, seq, data } => {
                assert_eq!((ident, seq), (1, 2));
                assert_eq!(data, vec![9, 9]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 1,
            data: vec![1, 2, 3, 4],
        }
        .emit();
        bytes[9] ^= 0xFF;
        assert_eq!(IcmpMessage::parse(&bytes), Err(NetError::BadChecksum));
    }

    #[test]
    fn unreachable_roundtrip() {
        let m = IcmpMessage::DestUnreachable {
            code: PORT_UNREACHABLE,
            original: vec![0x45; 28],
        };
        assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
    }

    #[test]
    fn no_reply_for_replies() {
        let rep = IcmpMessage::EchoReply {
            ident: 0,
            seq: 0,
            data: vec![],
        };
        assert!(IcmpMessage::reply_to(&rep).is_none());
    }
}
