//! Low-level byte-order helpers and the crate error type.

use std::fmt;

/// Errors raised while parsing or emitting wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The buffer is shorter than the fixed header requires.
    Truncated,
    /// A length field disagrees with the available bytes.
    BadLength,
    /// A checksum failed validation.
    BadChecksum,
    /// An unsupported version/type/operation value.
    Unsupported,
    /// A malformed field (reserved bits, illegal combination).
    Malformed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetError::Truncated => "truncated packet",
            NetError::BadLength => "inconsistent length field",
            NetError::BadChecksum => "checksum mismatch",
            NetError::Unsupported => "unsupported value",
            NetError::Malformed => "malformed field",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NetError {}

pub type NetResult<T> = Result<T, NetError>;

/// Read a big-endian u16 at `off`.
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// Read a big-endian u32 at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Write a big-endian u16 at `off`.
#[inline]
pub fn set_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

/// Write a big-endian u32 at `off`.
#[inline]
pub fn set_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_be_bytes());
}

/// Ensure at least `n` bytes are available.
#[inline]
pub fn need(buf: &[u8], n: usize) -> NetResult<()> {
    if buf.len() < n {
        Err(NetError::Truncated)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_roundtrip() {
        let mut b = [0u8; 8];
        set_u16(&mut b, 1, 0xBEEF);
        set_u32(&mut b, 3, 0xDEAD_C0DE);
        assert_eq!(get_u16(&b, 1), 0xBEEF);
        assert_eq!(get_u32(&b, 3), 0xDEAD_C0DE);
    }

    #[test]
    fn need_checks_length() {
        assert_eq!(need(&[0; 4], 5), Err(NetError::Truncated));
        assert!(need(&[0; 4], 4).is_ok());
    }
}
