//! Flow identification and receive-side scaling.
//!
//! NEaT's partitioning hinges on the NIC steering "every packet of each
//! connection [through] the same path through the network stack" (§3,
//! Figure 2). Contemporary NICs do this with a hash of the 5-tuple
//! (RSS) or exact-match filters; this module provides both primitives:
//! [`FlowKey`] and the Microsoft/Intel Toeplitz hash the 82599 implements.

use crate::ipv4::IpProtocol;
use std::net::Ipv4Addr;

/// The classic 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub protocol: u8,
}

impl FlowKey {
    pub fn tcp(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16) -> FlowKey {
        FlowKey {
            src,
            dst,
            src_port,
            dst_port,
            protocol: u8::from(IpProtocol::Tcp),
        }
    }

    /// The same flow seen from the opposite direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

/// The Toeplitz hash over (src ip, dst ip, src port, dst port), as used by
/// RSS in the Intel 82599 (and most NICs since).
#[derive(Debug, Clone)]
pub struct RssHasher {
    key: [u8; 40],
}

impl Default for RssHasher {
    fn default() -> Self {
        // Microsoft's reference RSS key.
        RssHasher {
            key: [
                0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3,
                0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3,
                0x80, 0x30, 0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
            ],
        }
    }
}

impl RssHasher {
    pub fn new(key: [u8; 40]) -> RssHasher {
        RssHasher { key }
    }

    /// 32-bit Toeplitz hash of the flow's 12-byte input vector
    /// (src ip | dst ip | src port | dst port).
    pub fn hash(&self, flow: &FlowKey) -> u32 {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&flow.src.octets());
        input[4..8].copy_from_slice(&flow.dst.octets());
        input[8..10].copy_from_slice(&flow.src_port.to_be_bytes());
        input[10..12].copy_from_slice(&flow.dst_port.to_be_bytes());

        let mut result: u32 = 0;
        // The sliding 32-bit window over the key, advanced bit by bit.
        let mut window = u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        let mut next_key_bit = 32; // index of the next key bit to shift in
        for byte in input {
            for bit in (0..8).rev() {
                if byte >> bit & 1 == 1 {
                    result ^= window;
                }
                let kb = (self.key[next_key_bit / 8] >> (7 - next_key_bit % 8)) & 1;
                window = (window << 1) | kb as u32;
                next_key_bit += 1;
            }
        }
        result
    }

    /// Map a flow to one of `n` queues like the 82599's indirection table.
    pub fn queue_for(&self, flow: &FlowKey, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.hash(flow) as usize) % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u8, p: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(66, 9, 149, a),
            p,
            Ipv4Addr::new(161, 142, 100, 80),
            1766,
        )
    }

    /// Verification vector from the Microsoft RSS specification:
    /// 66.9.149.187:2794 -> 161.142.100.80:1766 hashes to 0x51ccc178.
    #[test]
    fn toeplitz_reference_vector() {
        let h = RssHasher::default();
        let flow = key(187, 2794);
        assert_eq!(h.hash(&flow), 0x51cc_c178);
    }

    /// Second vector: 199.92.111.2:14230 -> 65.69.140.83:4739 = 0xc626b0ea.
    #[test]
    fn toeplitz_reference_vector_2() {
        let h = RssHasher::default();
        let flow = FlowKey::tcp(
            Ipv4Addr::new(199, 92, 111, 2),
            14230,
            Ipv4Addr::new(65, 69, 140, 83),
            4739,
        );
        assert_eq!(h.hash(&flow), 0xc626_b0ea);
    }

    #[test]
    fn same_flow_same_queue_always() {
        let h = RssHasher::default();
        let flow = key(10, 5555);
        let q = h.queue_for(&flow, 4);
        for _ in 0..10 {
            assert_eq!(h.queue_for(&flow, 4), q);
        }
    }

    #[test]
    fn flows_spread_across_queues() {
        let h = RssHasher::default();
        let mut counts = [0usize; 4];
        for p in 1024..2048u16 {
            counts[h.queue_for(&key(1, p), 4)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (150..=400).contains(c),
                "queue {i} got {c} of 1024 flows — load imbalance"
            );
        }
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let f = key(1, 1000);
        let r = f.reversed();
        assert_eq!(r.src, f.dst);
        assert_eq!(r.dst_port, f.src_port);
        assert_eq!(r.reversed(), f);
    }
}
