//! UDP (RFC 768) with mandatory checksum (computed over the pseudo-header).

use crate::checksum::{pseudo_header, Checksum};
use crate::wire::{get_u16, need, set_u16, NetError, NetResult};
use std::net::Ipv4Addr;

pub const UDP_HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub len: u16,
}

impl UdpHeader {
    /// Parse + validate the checksum against the IPv4 pseudo-header.
    /// Returns the header and the payload range.
    pub fn parse(
        buf: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> NetResult<(UdpHeader, std::ops::Range<usize>)> {
        need(buf, UDP_HEADER_LEN)?;
        let len = get_u16(buf, 4);
        if (len as usize) < UDP_HEADER_LEN || (len as usize) > buf.len() {
            return Err(NetError::BadLength);
        }
        let wire_csum = get_u16(buf, 6);
        // Checksum 0 means "not computed" in classic UDP; we always compute
        // on emit, and accept 0 on parse for interop with test vectors.
        if wire_csum != 0 {
            let mut c: Checksum = pseudo_header(src, dst, 17, len);
            c.add(&buf[..len as usize]);
            if c.finish() != 0 {
                return Err(NetError::BadChecksum);
            }
        }
        Ok((
            UdpHeader {
                src_port: get_u16(buf, 0),
                dst_port: get_u16(buf, 2),
                len,
            },
            UDP_HEADER_LEN..len as usize,
        ))
    }

    /// Emit a full datagram (header + payload) with checksum.
    pub fn emit(
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Vec<u8> {
        let len = (UDP_HEADER_LEN + payload.len()) as u16;
        let mut b = vec![0u8; UDP_HEADER_LEN];
        set_u16(&mut b, 0, src_port);
        set_u16(&mut b, 2, dst_port);
        set_u16(&mut b, 4, len);
        b.extend_from_slice(payload);
        let mut c = pseudo_header(src, dst, 17, len);
        c.add(&b);
        let mut csum = c.finish();
        if csum == 0 {
            csum = 0xFFFF; // RFC 768: transmitted as all-ones
        }
        set_u16(&mut b, 6, csum);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 1);
    const B: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 100);

    #[test]
    fn roundtrip() {
        let bytes = UdpHeader::emit(6969, 1234, b"abcdefg", A, B);
        let (h, range) = UdpHeader::parse(&bytes, A, B).unwrap();
        assert_eq!(h.src_port, 6969);
        assert_eq!(h.dst_port, 1234);
        assert_eq!(&bytes[range], b"abcdefg");
    }

    #[test]
    fn checksum_covers_addresses() {
        let bytes = UdpHeader::emit(1, 2, b"xy", A, B);
        // Same bytes with a different claimed source must fail.
        assert_eq!(
            UdpHeader::parse(&bytes, Ipv4Addr::new(1, 2, 3, 4), B),
            Err(NetError::BadChecksum)
        );
    }

    #[test]
    fn payload_corruption_detected() {
        let mut bytes = UdpHeader::emit(1, 2, b"hello", A, B);
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert_eq!(UdpHeader::parse(&bytes, A, B), Err(NetError::BadChecksum));
    }

    #[test]
    fn length_validation() {
        let mut bytes = UdpHeader::emit(1, 2, b"hello", A, B);
        set_u16(&mut bytes, 4, 200);
        assert_eq!(UdpHeader::parse(&bytes, A, B), Err(NetError::BadLength));
        assert_eq!(
            UdpHeader::parse(&bytes[..6], A, B),
            Err(NetError::Truncated)
        );
    }

    #[test]
    fn empty_payload_ok() {
        let bytes = UdpHeader::emit(53, 53, &[], A, B);
        let (h, range) = UdpHeader::parse(&bytes, A, B).unwrap();
        assert_eq!(h.len, 8);
        assert!(range.is_empty());
    }
}
