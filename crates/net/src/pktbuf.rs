//! `PktBuf` — reference-counted packet buffers from a per-thread pool.
//!
//! The NEaT fast path (§3.4) never copies payload between pipeline stages:
//! NIC → driver → IP → TCP → socket hand over *ownership* of a buffer, not
//! its bytes. This module gives the simulated pipeline the same shape: a
//! frame is granted once from the pool, every later hop clones a cheap
//! handle or takes a zero-copy `slice` view (header stripping), and when
//! the last handle drops the backing storage returns to the pool's free
//! list for reuse.
//!
//! The pool keeps grant/return accounting so teardown can assert that no
//! buffer leaked ([`assert_quiescent`]), and counts every clone/view that
//! would have been a deep copy on the old `Vec<u8>` path (`copies_avoided`
//! — one of the headline bench metrics). Pooled reuse can be disabled at
//! runtime ([`set_pooling`]) for the ablation axis; handles keep their
//! zero-copy semantics either way, only free-list recycling stops.

use std::cell::RefCell;
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// Aggregate pool counters (one pool per thread; the sim is
/// single-threaded, so in practice this is global to a run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers granted out of the pool over its lifetime.
    pub grants: u64,
    /// Grants satisfied by recycling a free-list buffer.
    pub reused: u64,
    /// Backing buffers currently held by live handles.
    pub outstanding: u64,
    /// Handle clones / zero-copy views that replaced a deep copy.
    pub copies_avoided: u64,
}

struct PoolState {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
    /// Free-list depth bound (buffers beyond this are dropped on return).
    free_cap: usize,
    /// Optional grant ceiling — `try_copy_from` fails beyond it.
    max_outstanding: Option<u64>,
    pooling: bool,
}

impl Default for PoolState {
    fn default() -> PoolState {
        PoolState {
            free: Vec::new(),
            stats: PoolStats::default(),
            free_cap: 4096,
            max_outstanding: None,
            pooling: true,
        }
    }
}

thread_local! {
    static POOL: RefCell<PoolState> = RefCell::new(PoolState::default());
}

fn with_pool<R>(f: impl FnOnce(&mut PoolState) -> R) -> R {
    POOL.with(|p| f(&mut p.borrow_mut()))
}

/// The backing storage. Its `Drop` is what returns storage to the pool —
/// it runs exactly once, when the last [`PktBuf`] handle goes away.
struct PktStorage {
    data: Vec<u8>,
}

impl Drop for PktStorage {
    fn drop(&mut self) {
        let data = std::mem::take(&mut self.data);
        with_pool(|p| {
            p.stats.outstanding = p.stats.outstanding.saturating_sub(1);
            if p.pooling && p.free.len() < p.free_cap {
                p.free.push(data);
            }
        });
    }
}

/// A cheap handle onto a pooled, immutable packet buffer, with an
/// `(offset, len)` window for zero-copy header stripping. `Clone` is a
/// refcount bump; `Deref` yields the windowed bytes.
#[derive(Clone)]
pub struct PktBuf {
    storage: Rc<PktStorage>,
    off: usize,
    len: usize,
}

impl PktBuf {
    /// Grant a buffer by taking ownership of existing bytes (no copy).
    pub fn from_vec(data: Vec<u8>) -> PktBuf {
        let len = data.len();
        with_pool(|p| {
            p.stats.grants += 1;
            p.stats.outstanding += 1;
        });
        PktBuf {
            storage: Rc::new(PktStorage { data }),
            off: 0,
            len,
        }
    }

    /// Grant a buffer and copy `bytes` into it, recycling free-list
    /// storage when the pool has any (the RX-ring refill path).
    pub fn copy_from(bytes: &[u8]) -> PktBuf {
        let mut data = with_pool(|p| {
            p.stats.grants += 1;
            p.stats.outstanding += 1;
            if let Some(mut v) = p.free.pop() {
                p.stats.reused += 1;
                v.clear();
                Some(v)
            } else {
                None
            }
        })
        .unwrap_or_default();
        data.extend_from_slice(bytes);
        let len = data.len();
        PktBuf {
            storage: Rc::new(PktStorage { data }),
            off: 0,
            len,
        }
    }

    /// Like [`PktBuf::copy_from`], but respects the grant ceiling set by
    /// [`set_max_outstanding`] — `None` when the pool is exhausted.
    pub fn try_copy_from(bytes: &[u8]) -> Option<PktBuf> {
        let exhausted = with_pool(|p| {
            p.max_outstanding
                .map(|cap| p.stats.outstanding >= cap)
                .unwrap_or(false)
        });
        if exhausted {
            None
        } else {
            Some(PktBuf::copy_from(bytes))
        }
    }

    /// A zero-copy sub-view (`off`/`len` relative to this view). This is
    /// the header-strip operation: IP hands TCP the L4 bytes without
    /// touching the frame.
    pub fn slice(&self, off: usize, len: usize) -> PktBuf {
        assert!(off + len <= self.len, "slice out of bounds");
        with_pool(|p| p.stats.copies_avoided += 1);
        PktBuf {
            storage: Rc::clone(&self.storage),
            off: self.off + off,
            len,
        }
    }

    /// A handle clone that *counts* as an avoided copy (use instead of
    /// `.clone()` on hops that used to deep-copy the `Vec<u8>`).
    pub fn share(&self) -> PktBuf {
        with_pool(|p| p.stats.copies_avoided += 1);
        self.clone()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live handles on this storage (diagnostics/tests).
    pub fn refcount(&self) -> usize {
        Rc::strong_count(&self.storage)
    }

    /// Explicit deep copy, for the rare consumer that needs owned bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for PktBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.storage.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for PktBuf {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for PktBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PktBuf(len={}, off={}, rc={})",
            self.len,
            self.off,
            Rc::strong_count(&self.storage)
        )
    }
}

impl PartialEq for PktBuf {
    fn eq(&self, other: &PktBuf) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for PktBuf {}

impl From<Vec<u8>> for PktBuf {
    fn from(v: Vec<u8>) -> PktBuf {
        PktBuf::from_vec(v)
    }
}

/// Current pool counters.
pub fn stats() -> PoolStats {
    with_pool(|p| p.stats)
}

/// Whether the zero-copy pool is enabled (see [`set_pooling`]). Simulation
/// components consult this to charge the per-hop deep-copy cost the pool
/// avoids when the ablation turns it off.
pub fn pooling() -> bool {
    with_pool(|p| p.pooling)
}

/// Enable/disable the zero-copy pool (the `pool` ablation axis): free-list
/// recycling stops, and cost-model call sites charge the deep copies the
/// pool would have avoided (handles themselves keep working either way).
pub fn set_pooling(on: bool) {
    with_pool(|p| {
        p.pooling = on;
        if !on {
            p.free.clear();
        }
    });
}

/// Cap live grants; `try_copy_from` fails beyond the cap. `None` lifts it.
pub fn set_max_outstanding(cap: Option<u64>) {
    with_pool(|p| p.max_outstanding = cap);
}

/// Forget counters and the free list (test/bench isolation). Does not
/// affect live handles — their storage simply won't be recycled.
pub fn reset() {
    with_pool(|p| {
        let pooling = p.pooling;
        *p = PoolState::default();
        p.pooling = pooling;
    });
}

/// Teardown invariant: every granted buffer has been returned. Call after
/// a run has quiesced; a failure means a frame handle leaked somewhere in
/// the pipeline.
pub fn assert_quiescent() {
    let s = stats();
    assert_eq!(
        s.outstanding, 0,
        "PktBuf pool not quiescent: {} buffer(s) still outstanding (granted {}, reused {})",
        s.outstanding, s.grants, s.reused
    );
}

/// Publish pool counters into the `neat-obs` registry (cold path; called
/// at measurement-window boundaries).
pub fn export_obs() {
    let s = stats();
    neat_obs::gauge_set("pktbuf.grants", s.grants as f64);
    neat_obs::gauge_set("pktbuf.reused", s.reused as f64);
    neat_obs::gauge_set("pktbuf.copies_avoided", s.copies_avoided as f64);
    neat_obs::gauge_set("pktbuf.outstanding", s.outstanding as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() {
        reset();
        set_max_outstanding(None);
        set_pooling(true);
    }

    #[test]
    fn grant_slice_and_return() {
        fresh();
        let frame = PktBuf::from_vec((0..100u8).collect());
        assert_eq!(stats().outstanding, 1);
        let l4 = frame.slice(34, 66);
        assert_eq!(&l4[..4], &[34, 35, 36, 37]);
        assert_eq!(frame.refcount(), 2);
        assert_eq!(stats().copies_avoided, 1);
        drop(frame);
        assert_eq!(stats().outstanding, 1, "view keeps storage alive");
        drop(l4);
        assert_quiescent();
    }

    #[test]
    fn free_list_reuse() {
        fresh();
        let a = PktBuf::copy_from(&[1, 2, 3]);
        drop(a);
        let b = PktBuf::copy_from(&[4, 5]);
        let s = stats();
        assert_eq!(s.grants, 2);
        assert_eq!(s.reused, 1, "second grant recycles the first buffer");
        assert_eq!(&b[..], &[4, 5]);
        drop(b);
        assert_quiescent();
    }

    #[test]
    fn exhaustion_respects_grant_cap() {
        fresh();
        set_max_outstanding(Some(2));
        let a = PktBuf::try_copy_from(&[1]).unwrap();
        let b = PktBuf::try_copy_from(&[2]).unwrap();
        assert!(PktBuf::try_copy_from(&[3]).is_none(), "pool exhausted");
        drop(a);
        let c = PktBuf::try_copy_from(&[3]).expect("freed grant is reusable");
        assert_eq!(&c[..], &[3]);
        drop(b);
        drop(c);
        assert_quiescent();
        set_max_outstanding(None);
    }

    #[test]
    fn share_counts_avoided_copies() {
        fresh();
        let a = PktBuf::from_vec(vec![9; 16]);
        let b = a.share();
        let c = b.share();
        assert_eq!(stats().copies_avoided, 2);
        assert_eq!(a, c);
        drop((a, b, c));
        assert_quiescent();
    }

    #[test]
    fn pooling_off_still_zero_copy_but_no_reuse() {
        fresh();
        set_pooling(false);
        let a = PktBuf::copy_from(&[1, 2, 3]);
        let v = a.slice(1, 2);
        assert_eq!(&v[..], &[2, 3]);
        drop(a);
        drop(v);
        let _b = PktBuf::copy_from(&[4]);
        assert_eq!(stats().reused, 0, "free list disabled");
        set_pooling(true);
    }
}
