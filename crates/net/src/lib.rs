//! # neat-net — from-scratch wire formats for the NEaT network stack
//!
//! Every byte that crosses the simulated 10 GbE link in this reproduction is
//! a real frame built and parsed by this crate: Ethernet II, ARP, IPv4
//! (with fragmentation), ICMPv4, UDP, and TCP (with options). Checksums are
//! computed and validated exactly as on the wire, which is what lets the
//! NIC-level fault injector corrupt packets and have the stack detect it.
//!
//! The crate also provides the flow abstractions the NEaT design leans on:
//! the 5-tuple [`flow::FlowKey`] and the Toeplitz RSS hash the simulated
//! 82599 NIC uses to steer each connection to one stack replica (§3.1, §4),
//! and a pcap writer for inspecting simulated traffic in Wireshark.

pub mod arp;
pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod icmp;
pub mod ipv4;
pub mod pcap;
pub mod pktbuf;
pub mod tcp;
pub mod udp;
pub mod wire;

pub use ethernet::{EtherType, EthernetFrame, MacAddr};
pub use flow::{FlowKey, RssHasher};
pub use ipv4::{IpProtocol, Ipv4Header};
pub use pktbuf::PktBuf;
pub use tcp::{SeqNum, TcpFlags, TcpHeader};
pub use wire::{NetError, NetResult};
