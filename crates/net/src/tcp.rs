//! TCP segment format (RFC 793) with the options the stack negotiates
//! (MSS, window scale), plus wrapping sequence-number arithmetic.

use crate::checksum::{pseudo_header, Checksum};
use crate::wire::{get_u16, get_u32, need, set_u16, set_u32, NetError, NetResult};
use std::fmt;
use std::net::Ipv4Addr;
use std::ops::{Add, AddAssign, Sub};

/// A TCP sequence number with RFC 1982-style wrapping comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// Signed distance `self - other` modulo 2^32.
    pub fn dist(self, other: SeqNum) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.dist(other) >= 0 {
            self
        } else {
            other
        }
    }

    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.dist(other) <= 0 {
            self
        } else {
            other
        }
    }
}

impl PartialOrd for SeqNum {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.dist(*other).cmp(&0))
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = i32;
    fn sub(self, rhs: SeqNum) -> i32 {
        self.dist(rhs)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    pub fin: bool,
    pub syn: bool,
    pub rst: bool,
    pub psh: bool,
    pub ack: bool,
    pub urg: bool,
}

impl TcpFlags {
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        fin: false,
        rst: false,
        psh: false,
        ack: false,
        urg: false,
    };

    pub fn syn_ack() -> TcpFlags {
        TcpFlags {
            syn: true,
            ack: true,
            ..Default::default()
        }
    }

    pub fn ack() -> TcpFlags {
        TcpFlags {
            ack: true,
            ..Default::default()
        }
    }

    pub fn fin_ack() -> TcpFlags {
        TcpFlags {
            fin: true,
            ack: true,
            ..Default::default()
        }
    }

    pub fn rst() -> TcpFlags {
        TcpFlags {
            rst: true,
            ..Default::default()
        }
    }

    pub fn psh_ack() -> TcpFlags {
        TcpFlags {
            psh: true,
            ack: true,
            ..Default::default()
        }
    }

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
            | (self.urg as u8) << 5
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
            urg: b & 0x20 != 0,
        }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        for (set, c) in [
            (self.syn, 'S'),
            (self.fin, 'F'),
            (self.rst, 'R'),
            (self.psh, 'P'),
            (self.ack, 'A'),
            (self.urg, 'U'),
        ] {
            if set {
                s.push(c);
            }
        }
        f.write_str(&s)
    }
}

pub const TCP_HEADER_LEN: usize = 20;

/// A parsed TCP header (with recognized options extracted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: SeqNum,
    pub ack: SeqNum,
    pub flags: TcpFlags,
    pub window: u16,
    /// MSS option (SYN segments only).
    pub mss: Option<u16>,
    /// Window-scale option shift (SYN segments only).
    pub window_scale: Option<u8>,
}

impl TcpHeader {
    pub fn new(src_port: u16, dst_port: u16, seq: SeqNum, ack: SeqNum, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 0xFFFF,
            mss: None,
            window_scale: None,
        }
    }

    /// Parse + validate checksum. Returns the header and payload range.
    pub fn parse(
        buf: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> NetResult<(TcpHeader, std::ops::Range<usize>)> {
        need(buf, TCP_HEADER_LEN)?;
        let data_off = ((buf[12] >> 4) as usize) * 4;
        if data_off < TCP_HEADER_LEN {
            return Err(NetError::Malformed);
        }
        need(buf, data_off)?;
        let mut c: Checksum = pseudo_header(src, dst, 6, buf.len() as u16);
        c.add(buf);
        if c.finish() != 0 {
            return Err(NetError::BadChecksum);
        }
        let mut h = TcpHeader {
            src_port: get_u16(buf, 0),
            dst_port: get_u16(buf, 2),
            seq: SeqNum(get_u32(buf, 4)),
            ack: SeqNum(get_u32(buf, 8)),
            flags: TcpFlags::from_byte(buf[13]),
            window: get_u16(buf, 14),
            mss: None,
            window_scale: None,
        };
        // Options.
        let mut i = TCP_HEADER_LEN;
        while i < data_off {
            match buf[i] {
                0 => break,  // end of options
                1 => i += 1, // NOP
                2 => {
                    if i + 4 > data_off || buf[i + 1] != 4 {
                        return Err(NetError::Malformed);
                    }
                    h.mss = Some(get_u16(buf, i + 2));
                    i += 4;
                }
                3 => {
                    if i + 3 > data_off || buf[i + 1] != 3 {
                        return Err(NetError::Malformed);
                    }
                    h.window_scale = Some(buf[i + 2].min(14));
                    i += 3;
                }
                _ => {
                    // Unknown option: skip by its length byte.
                    if i + 1 >= data_off || buf[i + 1] < 2 {
                        return Err(NetError::Malformed);
                    }
                    i += buf[i + 1] as usize;
                }
            }
        }
        Ok((h, data_off..buf.len()))
    }

    /// Emit a full segment (header + options + payload) with checksum.
    pub fn emit(&self, payload: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut opts: Vec<u8> = Vec::new();
        if let Some(mss) = self.mss {
            opts.extend_from_slice(&[2, 4]);
            opts.extend_from_slice(&mss.to_be_bytes());
        }
        if let Some(ws) = self.window_scale {
            opts.extend_from_slice(&[3, 3, ws, 1]); // +NOP pad to 4
        }
        while !opts.len().is_multiple_of(4) {
            opts.push(1);
        }
        let data_off = TCP_HEADER_LEN + opts.len();
        let mut b = vec![0u8; TCP_HEADER_LEN];
        set_u16(&mut b, 0, self.src_port);
        set_u16(&mut b, 2, self.dst_port);
        set_u32(&mut b, 4, self.seq.0);
        set_u32(&mut b, 8, self.ack.0);
        b[12] = ((data_off / 4) as u8) << 4;
        b[13] = self.flags.to_byte();
        set_u16(&mut b, 14, self.window);
        b.extend_from_slice(&opts);
        b.extend_from_slice(payload);
        let mut c = pseudo_header(src, dst, 6, b.len() as u16);
        c.add(&b);
        let csum = c.finish();
        set_u16(&mut b, 16, csum);
        b
    }

    /// Sequence space consumed by this segment (SYN/FIN count as one).
    pub fn seq_len(&self, payload_len: usize) -> u32 {
        payload_len as u32 + self.flags.syn as u32 + self.flags.fin as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

    #[test]
    fn roundtrip_plain() {
        let h = TcpHeader::new(4321, 80, SeqNum(1000), SeqNum(2000), TcpFlags::psh_ack());
        let bytes = h.emit(b"GET / HTTP/1.1\r\n", A, B);
        let (g, range) = TcpHeader::parse(&bytes, A, B).unwrap();
        assert_eq!(g.src_port, 4321);
        assert_eq!(g.dst_port, 80);
        assert_eq!(g.seq, SeqNum(1000));
        assert_eq!(g.ack, SeqNum(2000));
        assert!(g.flags.psh && g.flags.ack && !g.flags.syn);
        assert_eq!(&bytes[range], b"GET / HTTP/1.1\r\n");
    }

    #[test]
    fn roundtrip_options() {
        let mut h = TcpHeader::new(1, 2, SeqNum(0), SeqNum(0), TcpFlags::SYN);
        h.mss = Some(1460);
        h.window_scale = Some(7);
        let bytes = h.emit(&[], A, B);
        let (g, range) = TcpHeader::parse(&bytes, A, B).unwrap();
        assert_eq!(g.mss, Some(1460));
        assert_eq!(g.window_scale, Some(7));
        assert!(range.is_empty());
    }

    #[test]
    fn checksum_detects_flag_flip() {
        let h = TcpHeader::new(1, 2, SeqNum(5), SeqNum(6), TcpFlags::ack());
        let mut bytes = h.emit(b"data", A, B);
        bytes[13] |= 0x02; // sneak in a SYN
        assert_eq!(TcpHeader::parse(&bytes, A, B), Err(NetError::BadChecksum));
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let h = TcpHeader::new(1, 2, SeqNum(5), SeqNum(6), TcpFlags::ack());
        let bytes = h.emit(b"data", A, B);
        assert_eq!(
            TcpHeader::parse(&bytes, A, Ipv4Addr::new(9, 9, 9, 9)),
            Err(NetError::BadChecksum)
        );
    }

    #[test]
    fn seq_wrapping_comparison() {
        let near_max = SeqNum(u32::MAX - 10);
        let wrapped = near_max + 20;
        assert_eq!(wrapped.0, 9);
        assert!(wrapped > near_max, "comparison must wrap");
        assert_eq!(wrapped - near_max, 20);
        assert_eq!(near_max - wrapped, -20);
        assert_eq!(wrapped.max(near_max), wrapped);
        assert_eq!(wrapped.min(near_max), near_max);
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let syn = TcpHeader::new(1, 2, SeqNum(0), SeqNum(0), TcpFlags::SYN);
        assert_eq!(syn.seq_len(0), 1);
        let fin = TcpHeader::new(1, 2, SeqNum(0), SeqNum(0), TcpFlags::fin_ack());
        assert_eq!(fin.seq_len(3), 4);
        let ack = TcpHeader::new(1, 2, SeqNum(0), SeqNum(0), TcpFlags::ack());
        assert_eq!(ack.seq_len(0), 0);
    }

    #[test]
    fn malformed_option_rejected() {
        let mut h = TcpHeader::new(1, 2, SeqNum(0), SeqNum(0), TcpFlags::SYN);
        h.mss = Some(1460);
        let mut bytes = h.emit(&[], A, B);
        bytes[TCP_HEADER_LEN + 1] = 0; // option length 0 -> malformed
                                       // Fix checksum so the option parser (not the checksum) rejects it.
        set_u16(&mut bytes, 16, 0);
        let mut c = pseudo_header(A, B, 6, bytes.len() as u16);
        c.add(&bytes);
        let csum = c.finish();
        set_u16(&mut bytes, 16, csum);
        assert_eq!(TcpHeader::parse(&bytes, A, B), Err(NetError::Malformed));
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", TcpFlags::syn_ack()), "SA");
        assert_eq!(format!("{}", TcpFlags::rst()), "R");
    }
}
