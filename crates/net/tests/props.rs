//! Property tests for the wire-format crate, on the in-tree
//! `neat_util::check` harness.

use neat_net::arp::ArpPacket;
use neat_net::checksum::{checksum, Checksum};
use neat_net::ethernet::MacAddr;
use neat_net::ipv4::{fragment, IpProtocol, Ipv4Header, Reassembler};
use neat_net::udp::UdpHeader;
use neat_util::check::{bytes, check, vec_of, Config};
use neat_util::{prop_assert, prop_assert_eq};
use std::net::Ipv4Addr;

/// Chunked checksum == one-shot checksum for any split points.
#[test]
fn checksum_chunking_invariant() {
    check(
        "checksum_chunking_invariant",
        Config::default().cases(128),
        |rng| (bytes(rng, 0..512), vec_of(rng, 0..8, |r| r.gen::<usize>())),
        |(data, splits)| {
            let oneshot = checksum(&data);
            let mut cuts: Vec<usize> = splits.iter().map(|s| s % (data.len() + 1)).collect();
            cuts.sort_unstable();
            let mut c = Checksum::new();
            let mut prev = 0;
            for cut in cuts {
                c.add(&data[prev..cut]);
                prev = cut;
            }
            c.add(&data[prev..]);
            prop_assert_eq!(c.finish(), oneshot);
            Ok(())
        },
    );
}

/// A region with its own checksum embedded always verifies, and any
/// 16-bit word flip is detected.
#[test]
fn checksum_verifies_and_detects() {
    check(
        "checksum_verifies_and_detects",
        Config::default().cases(128),
        |rng| {
            (
                bytes(rng, 4..256),
                rng.gen::<usize>(),
                rng.gen_range(1u16..=u16::MAX),
            )
        },
        |(mut data, flip_pos, flip_val)| {
            if data.len() < 2 || flip_val == 0 {
                return Ok(());
            }
            if data.len() % 2 == 1 {
                data.push(0);
            }
            data[0] = 0;
            data[1] = 0;
            let c = checksum(&data);
            data[0] = (c >> 8) as u8;
            data[1] = (c & 0xFF) as u8;
            prop_assert!(neat_net::checksum::verify(&data));
            // Flip one aligned 16-bit word (never produces an equal sum
            // because one's-complement addition is injective per word flip,
            // except the 0x0000 <-> 0xFFFF ambiguity — skip that case).
            let p = (flip_pos % (data.len() / 2)) * 2;
            let orig = u16::from_be_bytes([data[p], data[p + 1]]);
            let new = orig ^ flip_val;
            if orig != 0xFFFF && new != 0xFFFF && orig != new {
                data[p] = (new >> 8) as u8;
                data[p + 1] = (new & 0xFF) as u8;
                prop_assert!(!neat_net::checksum::verify(&data), "flip at {p} undetected");
            }
            Ok(())
        },
    );
}

/// fragment → reassemble is the identity for any payload and MTU.
#[test]
fn fragmentation_roundtrip() {
    check(
        "fragmentation_roundtrip",
        Config::default().cases(64),
        |rng| {
            (
                bytes(rng, 1..6000),
                rng.gen_range(68usize..1500),
                rng.gen::<u16>(),
            )
        },
        |(payload, mtu, ident)| {
            if payload.is_empty() || mtu < 68 {
                return Ok(());
            }
            let mut h = Ipv4Header::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                IpProtocol::Udp,
                payload.len(),
            );
            h.dont_frag = false;
            h.ident = ident;
            let frags = fragment(&h, &payload, mtu).unwrap();
            let mut r = Reassembler::new();
            let mut got = None;
            for f in &frags {
                let (fh, range) = Ipv4Header::parse(f).unwrap();
                got = r.push(&fh, &f[range], 0);
            }
            prop_assert_eq!(got.expect("complete"), payload);
            Ok(())
        },
    );
}

/// Reassembly works in any delivery order.
#[test]
fn fragmentation_reorder_roundtrip() {
    check(
        "fragmentation_reorder_roundtrip",
        Config::default().cases(64),
        |rng| (bytes(rng, 1500..5000), rng.gen::<u64>()),
        |(payload, order_seed)| {
            if payload.is_empty() {
                return Ok(());
            }
            let mut h = Ipv4Header::new(
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(5, 6, 7, 8),
                IpProtocol::Tcp,
                payload.len(),
            );
            h.dont_frag = false;
            h.ident = 99;
            let mut frags = fragment(&h, &payload, 600).unwrap();
            // Deterministic shuffle from the generated seed.
            let mut s = neat_util::Rng::seed_from_u64(order_seed);
            s.shuffle(&mut frags);
            let mut r = Reassembler::new();
            let mut got = None;
            for f in &frags {
                let (fh, range) = Ipv4Header::parse(f).unwrap();
                if let Some(g) = r.push(&fh, &f[range], 0) {
                    got = Some(g);
                }
            }
            prop_assert_eq!(got.expect("complete"), payload);
            Ok(())
        },
    );
}

/// ARP packets round-trip for arbitrary addresses.
#[test]
fn arp_roundtrip() {
    check(
        "arp_roundtrip",
        Config::default().cases(128),
        |rng| (rng.gen::<[u8; 6]>(), rng.gen::<u32>(), rng.gen::<u32>()),
        |(sm, si, ti)| {
            let p = ArpPacket::request(MacAddr(sm), Ipv4Addr::from(si), Ipv4Addr::from(ti));
            prop_assert_eq!(ArpPacket::parse(&p.emit()).unwrap(), p);
            Ok(())
        },
    );
}

/// UDP datagrams round-trip and the checksum binds the addresses.
#[test]
fn udp_roundtrip_and_binding() {
    check(
        "udp_roundtrip_and_binding",
        Config::default().cases(128),
        |rng| {
            (
                rng.gen_range(1u16..=u16::MAX),
                rng.gen_range(1u16..=u16::MAX),
                bytes(rng, 0..512),
                rng.gen::<u32>(),
                rng.gen::<u32>(),
            )
        },
        |(sp, dp, payload, a, b)| {
            if sp == 0 || dp == 0 {
                return Ok(());
            }
            let src = Ipv4Addr::from(a);
            let dst = Ipv4Addr::from(b);
            let bytes = UdpHeader::emit(sp, dp, &payload, src, dst);
            let (h, range) = UdpHeader::parse(&bytes, src, dst).unwrap();
            prop_assert_eq!(h.src_port, sp);
            prop_assert_eq!(h.dst_port, dp);
            prop_assert_eq!(&bytes[range], &payload[..]);
            // A different claimed source address must fail. (Swapping src and
            // dst would pass — one's-complement addition commutes — so perturb
            // one address instead.)
            let other = Ipv4Addr::from(a ^ 1);
            prop_assert!(UdpHeader::parse(&bytes, other, dst).is_err());
            Ok(())
        },
    );
}

/// The Toeplitz hash is a pure function and flow-stable.
#[test]
fn rss_pure_and_stable() {
    check(
        "rss_pure_and_stable",
        Config::default().cases(128),
        |rng| {
            (
                rng.gen::<u32>(),
                rng.gen::<u32>(),
                rng.gen::<u16>(),
                rng.gen::<u16>(),
                rng.gen_range(1usize..64),
            )
        },
        |(a, b, sp, dp, n)| {
            if n == 0 {
                return Ok(());
            }
            let h = neat_net::RssHasher::default();
            let f = neat_net::FlowKey::tcp(Ipv4Addr::from(a), sp, Ipv4Addr::from(b), dp);
            let q = h.queue_for(&f, n);
            prop_assert!(q < n);
            prop_assert_eq!(h.queue_for(&f, n), q);
            prop_assert_eq!(h.hash(&f), h.hash(&f));
            Ok(())
        },
    );
}
