//! Property tests for the wire-format crate.

use neat_net::arp::ArpPacket;
use neat_net::checksum::{checksum, Checksum};
use neat_net::ethernet::MacAddr;
use neat_net::ipv4::{fragment, IpProtocol, Ipv4Header, Reassembler};
use neat_net::udp::UdpHeader;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// Chunked checksum == one-shot checksum for any split points.
    #[test]
    fn checksum_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let oneshot = checksum(&data);
        let mut cuts: Vec<usize> = splits.iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut c = Checksum::new();
        let mut prev = 0;
        for cut in cuts {
            c.add(&data[prev..cut]);
            prev = cut;
        }
        c.add(&data[prev..]);
        prop_assert_eq!(c.finish(), oneshot);
    }

    /// A region with its own checksum embedded always verifies, and any
    /// 16-bit word flip is detected.
    #[test]
    fn checksum_verifies_and_detects(
        mut data in proptest::collection::vec(any::<u8>(), 4..256),
        flip_pos in any::<usize>(),
        flip_val in 1u16..=u16::MAX,
    ) {
        if data.len() % 2 == 1 {
            data.push(0);
        }
        data[0] = 0;
        data[1] = 0;
        let c = checksum(&data);
        data[0] = (c >> 8) as u8;
        data[1] = (c & 0xFF) as u8;
        prop_assert!(neat_net::checksum::verify(&data));
        // Flip one aligned 16-bit word (never produces an equal sum
        // because one's-complement addition is injective per word flip,
        // except the 0x0000 <-> 0xFFFF ambiguity — skip that case).
        let p = (flip_pos % (data.len() / 2)) * 2;
        let orig = u16::from_be_bytes([data[p], data[p + 1]]);
        let new = orig ^ flip_val;
        if orig != 0xFFFF && new != 0xFFFF && orig != new {
            data[p] = (new >> 8) as u8;
            data[p + 1] = (new & 0xFF) as u8;
            prop_assert!(!neat_net::checksum::verify(&data), "flip at {p} undetected");
        }
    }

    /// fragment → reassemble is the identity for any payload and MTU.
    #[test]
    fn fragmentation_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1..6000),
        mtu in 68usize..1500,
        ident in any::<u16>(),
    ) {
        let mut h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            payload.len(),
        );
        h.dont_frag = false;
        h.ident = ident;
        let frags = fragment(&h, &payload, mtu).unwrap();
        let mut r = Reassembler::new();
        let mut got = None;
        for f in &frags {
            let (fh, range) = Ipv4Header::parse(f).unwrap();
            got = r.push(&fh, &f[range], 0);
        }
        prop_assert_eq!(got.expect("complete"), payload);
    }

    /// Reassembly works in any delivery order.
    #[test]
    fn fragmentation_reorder_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1500..5000),
        order_seed in any::<u64>(),
    ) {
        let mut h = Ipv4Header::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            IpProtocol::Tcp,
            payload.len(),
        );
        h.dont_frag = false;
        h.ident = 99;
        let mut frags = fragment(&h, &payload, 600).unwrap();
        // Deterministic shuffle.
        let mut s = order_seed;
        for k in (1..frags.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            frags.swap(k, (s >> 33) as usize % (k + 1));
        }
        let mut r = Reassembler::new();
        let mut got = None;
        for f in &frags {
            let (fh, range) = Ipv4Header::parse(f).unwrap();
            if let Some(g) = r.push(&fh, &f[range], 0) {
                got = Some(g);
            }
        }
        prop_assert_eq!(got.expect("complete"), payload);
    }

    /// ARP packets round-trip for arbitrary addresses.
    #[test]
    fn arp_roundtrip(sm in any::<[u8; 6]>(), si in any::<u32>(), ti in any::<u32>()) {
        let p = ArpPacket::request(MacAddr(sm), Ipv4Addr::from(si), Ipv4Addr::from(ti));
        prop_assert_eq!(ArpPacket::parse(&p.emit()).unwrap(), p);
    }

    /// UDP datagrams round-trip and the checksum binds the addresses.
    #[test]
    fn udp_roundtrip_and_binding(
        sp in 1u16..=u16::MAX, dp in 1u16..=u16::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        a in any::<u32>(), b in any::<u32>(),
    ) {
        let src = Ipv4Addr::from(a);
        let dst = Ipv4Addr::from(b);
        let bytes = UdpHeader::emit(sp, dp, &payload, src, dst);
        let (h, range) = UdpHeader::parse(&bytes, src, dst).unwrap();
        prop_assert_eq!(h.src_port, sp);
        prop_assert_eq!(h.dst_port, dp);
        prop_assert_eq!(&bytes[range], &payload[..]);
        // A different claimed source address must fail. (Swapping src and
        // dst would pass — one's-complement addition commutes — so perturb
        // one address instead.)
        let other = Ipv4Addr::from(a ^ 1);
        prop_assert!(UdpHeader::parse(&bytes, other, dst).is_err());
    }

    /// The Toeplitz hash is a pure function and flow-stable.
    #[test]
    fn rss_pure_and_stable(a in any::<u32>(), b in any::<u32>(), sp in any::<u16>(), dp in any::<u16>(), n in 1usize..64) {
        let h = neat_net::RssHasher::default();
        let f = neat_net::FlowKey::tcp(Ipv4Addr::from(a), sp, Ipv4Addr::from(b), dp);
        let q = h.queue_for(&f, n);
        prop_assert!(q < n);
        prop_assert_eq!(h.queue_for(&f, n), q);
        prop_assert_eq!(h.hash(&f), h.hash(&f));
    }
}
