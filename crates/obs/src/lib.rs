//! # neat-obs — the unified observability layer
//!
//! Everything the system measures flows through this crate:
//!
//! * **Metrics** ([`metrics`]) — a thread-local registry of named
//!   counters, gauges, and histograms. Components register by name once
//!   and hold copyable handles; per-packet updates are a TLS access plus
//!   a vector index. [`snapshot`] renders every metric as JSON, and every
//!   `neat-bench` binary embeds that snapshot in its
//!   `results/BENCH_<name>.json` report.
//! * **Tracing** ([`trace`]) — a ring-buffered structured event tracer
//!   (dispatch spans, packet hops, TCP transitions, supervisor actions)
//!   exportable as chrome://tracing JSON. Off by default; zero-cost when
//!   disabled; never perturbs deterministic replay.
//! * **Stats primitives** ([`stats`]) — the log-bucketed [`Histogram`]
//!   and [`RateMeter`] that used to live in `neat_sim::stats`; the
//!   simulator re-exports `Time`-typed wrappers.
//!
//! The crate depends only on `neat-util` (for JSON), so every layer of
//! the workspace — simulator, NIC, TCP, NEaT core, monolith baseline,
//! applications — can report through it without dependency cycles.

pub mod metrics;
pub mod stats;
pub mod trace;

pub use metrics::{
    clear, counter, counter_add, gauge, gauge_set, histogram, reset, set_thread_enabled, snapshot,
    thread_enabled, Counter, Gauge, HistogramHandle,
};
pub use stats::{Histogram, RateMeter};
pub use trace::tracing;
