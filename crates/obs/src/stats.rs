//! Value-space measurement primitives: log-bucketed histograms and rate
//! meters.
//!
//! These used to live in `neat_sim::stats`, keyed to simulated `Time`;
//! the bucket logic moved here (value space: plain `u64`, conventionally
//! nanoseconds) so that every layer of the system — including ones below
//! the simulator — can record into the same histogram type. `neat_sim`
//! re-exports thin `Time`-typed wrappers on top.

use neat_util::{Json, ToJson};

/// A log-bucketed histogram (HdrHistogram-style, power-of-two buckets
/// with linear sub-buckets), covering 1 .. ~2^43 (≈17 s in nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// 40 major buckets x 16 sub-buckets.
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

const SUB: usize = 16;
const BUCKETS: usize = 40 * SUB;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let major = 63 - v.leading_zeros() as usize; // floor(log2)
        let shift = major - 4; // keep 4 bits of sub-bucket precision
        let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
        let bucket = (major - 3) * SUB + sub;
        bucket.min(BUCKETS - 1)
    }

    /// Bucket lower bound for an index (inverse of `index`, approximate).
    fn value_of(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let major = idx / SUB + 3;
        let sub = (idx % SUB) as u64;
        let shift = major - 4;
        ((SUB as u64) << shift) | (sub << shift)
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            return 0;
        }
        (self.sum / self.total as u128) as u64
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Quantile in `[0, 1]`, e.g. `0.99` for p99. Returns the lower bound
    /// of the bucket containing the quantile; exact recorded values above
    /// the bucket range saturate into the last bucket, so `max()` bounds
    /// the answer.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Self::value_of(i);
            }
        }
        self.max
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if other.total > 0 {
            self.min = self.min.min(other.min);
        }
    }
}

impl ToJson for Histogram {
    /// Summary form for the machine-readable results files: counts plus
    /// the quantiles the paper's figures quote (field names assume the
    /// conventional nanosecond value space).
    fn to_json(&self) -> Json {
        Json::object()
            .field("count", self.total)
            .field("mean_ns", self.mean())
            .field("min_ns", self.min())
            .field("max_ns", self.max())
            .field("p50_ns", self.quantile(0.5))
            .field("p90_ns", self.quantile(0.9))
            .field("p99_ns", self.quantile(0.99))
    }
}

/// Counts discrete completions over a window and reports a rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateMeter {
    pub count: u64,
    pub bytes: u64,
}

impl RateMeter {
    pub fn add(&mut self, bytes: u64) {
        self.count += 1;
        self.bytes += bytes;
    }

    /// Completions per second over an elapsed window in seconds.
    pub fn per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.count as f64 / elapsed_secs
        }
    }

    /// Kilo-completions per second (the paper's krps unit).
    pub fn krps(&self, elapsed_secs: f64) -> f64 {
        self.per_sec(elapsed_secs) / 1e3
    }

    /// Payload megabytes per second.
    pub fn mbps(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / elapsed_secs
        }
    }
}

impl ToJson for RateMeter {
    fn to_json(&self) -> Json {
        Json::object()
            .field("count", self.count)
            .field("bytes", self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn single_sample_all_quantiles_agree() {
        let mut h = Histogram::new();
        h.record(12_345);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            // One sample: every quantile lands in its bucket.
            assert!((12_288..=12_345).contains(&v), "q={q} v={v}");
        }
        assert_eq!(h.mean(), 12_345);
        assert_eq!(h.min(), 12_345);
        assert_eq!(h.max(), 12_345);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(10);
        a.record(1_000_000);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before, "merging an empty histogram changes nothing");
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before, "merging into an empty histogram copies");
        assert_eq!(
            e.min(),
            10,
            "min survives the merge (not poisoned by empty)"
        );
    }

    #[test]
    fn bucket_saturation_clamps_huge_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        // Both land in the final bucket rather than indexing out of range.
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // The quantile reports the last bucket's lower bound, bounded by max.
        assert!(h.quantile(1.0) <= h.max());
        assert!(h.quantile(0.5) == h.quantile(1.0), "same saturated bucket");
    }

    #[test]
    fn rate_meter_zero_elapsed_is_zero_not_nan() {
        let mut r = RateMeter::default();
        r.add(1000);
        assert_eq!(r.per_sec(0.0), 0.0);
        assert_eq!(r.krps(0.0), 0.0);
        assert_eq!(r.mbps(0.0), 0.0);
        assert_eq!(r.per_sec(-1.0), 0.0, "negative elapsed treated as empty");
    }

    #[test]
    fn json_summary_shape() {
        let mut h = Histogram::new();
        h.record(100);
        let s = h.to_json().render();
        for key in ["count", "mean_ns", "p50_ns", "p99_ns"] {
            assert!(s.contains(key), "{s} missing {key}");
        }
    }
}
