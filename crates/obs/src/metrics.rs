//! The metrics registry: named counters, gauges, and histograms.
//!
//! The simulation is single-threaded, so the registry is a thread-local
//! singleton: any component anywhere in the stack can register a metric by
//! name and hold a copyable integer handle to it. Handle operations are a
//! TLS access plus a vector index — cheap enough for per-packet paths.
//!
//! Registrations persist for the life of the thread; [`reset`] zeroes the
//! *values* but keeps every registration, so handles held inside
//! long-lived components stay valid across measurement windows.

use crate::stats::Histogram;
use neat_util::{Json, ToJson};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

#[derive(Clone, Copy)]
enum Id {
    Counter(usize),
    Gauge(usize),
    Hist(usize),
}

#[derive(Default)]
struct Registry {
    names: HashMap<String, Id>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, Histogram)>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
    static ENABLED: Cell<bool> = const { Cell::new(true) };
}

fn with<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    REGISTRY.with(|r| f(&mut r.borrow_mut()))
}

/// Disable (or re-enable) the metrics registry on the **current thread**.
///
/// Handles are indices into the registering thread's registry, so a handle
/// created on the main thread must never be dereferenced on a worker whose
/// registry has different (or no) registrations. Parallel executors call
/// `set_thread_enabled(false)` at worker start: every handle operation and
/// by-name registration on that thread becomes a no-op, which both prevents
/// cross-registry indexing and keeps the main thread's snapshot independent
/// of how work was spread across threads (determinism across shard counts).
pub fn set_thread_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Whether the metrics registry is active on the current thread.
pub fn thread_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Handle to a registered counter (monotonic within a window).
#[derive(Debug, Clone, Copy)]
pub struct Counter(usize);

impl Counter {
    pub fn add(self, n: u64) {
        if thread_enabled() {
            with(|r| r.counters[self.0].1 += n);
        }
    }

    pub fn inc(self) {
        self.add(1);
    }

    pub fn get(self) -> u64 {
        if thread_enabled() {
            with(|r| r.counters[self.0].1)
        } else {
            0
        }
    }
}

/// Handle to a registered gauge (last-write-wins level).
#[derive(Debug, Clone, Copy)]
pub struct Gauge(usize);

impl Gauge {
    pub fn set(self, v: f64) {
        if thread_enabled() {
            with(|r| r.gauges[self.0].1 = v);
        }
    }

    pub fn get(self) -> f64 {
        if thread_enabled() {
            with(|r| r.gauges[self.0].1)
        } else {
            0.0
        }
    }
}

/// Handle to a registered histogram (value space: u64, by convention ns).
#[derive(Debug, Clone, Copy)]
pub struct HistogramHandle(usize);

impl HistogramHandle {
    pub fn observe(self, v: u64) {
        if thread_enabled() {
            with(|r| r.hists[self.0].1.record(v));
        }
    }

    /// A snapshot clone of the current histogram contents.
    pub fn get(self) -> Histogram {
        if thread_enabled() {
            with(|r| r.hists[self.0].1.clone())
        } else {
            Histogram::new()
        }
    }
}

/// Register (or look up) a counter by name.
///
/// Panics if `name` is already registered as a different metric kind —
/// that is always a naming bug worth failing loudly on.
pub fn counter(name: &str) -> Counter {
    if !thread_enabled() {
        // Dummy handle: every operation on it is a no-op on this thread
        // (and would be out-of-bounds anywhere else, which is the point —
        // it must never leak to an enabled thread).
        return Counter(usize::MAX);
    }
    with(|r| match r.names.get(name) {
        Some(Id::Counter(i)) => Counter(*i),
        Some(_) => panic!("metric {name:?} already registered with a different kind"),
        None => {
            let i = r.counters.len();
            r.counters.push((name.to_string(), 0));
            r.names.insert(name.to_string(), Id::Counter(i));
            Counter(i)
        }
    })
}

/// Register (or look up) a gauge by name.
pub fn gauge(name: &str) -> Gauge {
    if !thread_enabled() {
        return Gauge(usize::MAX);
    }
    with(|r| match r.names.get(name) {
        Some(Id::Gauge(i)) => Gauge(*i),
        Some(_) => panic!("metric {name:?} already registered with a different kind"),
        None => {
            let i = r.gauges.len();
            r.gauges.push((name.to_string(), 0.0));
            r.names.insert(name.to_string(), Id::Gauge(i));
            Gauge(i)
        }
    })
}

/// Register (or look up) a histogram by name.
pub fn histogram(name: &str) -> HistogramHandle {
    if !thread_enabled() {
        return HistogramHandle(usize::MAX);
    }
    with(|r| match r.names.get(name) {
        Some(Id::Hist(i)) => HistogramHandle(*i),
        Some(_) => panic!("metric {name:?} already registered with a different kind"),
        None => {
            let i = r.hists.len();
            r.hists.push((name.to_string(), Histogram::new()));
            r.names.insert(name.to_string(), Id::Hist(i));
            HistogramHandle(i)
        }
    })
}

/// One-shot convenience for cold paths (crash events, scale transitions):
/// registers on first use, then bumps.
pub fn counter_add(name: &str, n: u64) {
    counter(name).add(n);
}

/// One-shot gauge write for cold paths and end-of-window exports.
pub fn gauge_set(name: &str, v: f64) {
    gauge(name).set(v);
}

/// Zero every metric value, keeping all registrations (and therefore all
/// outstanding handles) intact. Called at the start of a measurement
/// window so snapshots cover exactly that window.
pub fn reset() {
    with(|r| {
        for c in &mut r.counters {
            c.1 = 0;
        }
        for g in &mut r.gauges {
            g.1 = 0.0;
        }
        for h in &mut r.hists {
            h.1 = Histogram::new();
        }
    });
}

/// Drop every registration. Only for test isolation — outstanding handles
/// become dangling (their indices may be reused by later registrations).
pub fn clear() {
    with(|r| *r = Registry::default());
}

/// Machine-readable snapshot of every registered metric, in registration
/// order: `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
pub fn snapshot() -> Json {
    with(|r| {
        let mut counters = Json::object();
        for (name, v) in &r.counters {
            counters = counters.field(name.clone(), *v);
        }
        let mut gauges = Json::object();
        for (name, v) in &r.gauges {
            gauges = gauges.field(name.clone(), *v);
        }
        let mut hists = Json::object();
        for (name, h) in &r.hists {
            hists = hists.field(name.clone(), h.to_json());
        }
        Json::object()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", hists)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_accumulate_and_reset() {
        clear();
        let c = counter("test.pkts");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        // Same name returns the same slot.
        let c2 = counter("test.pkts");
        c2.inc();
        assert_eq!(c.get(), 5);
        reset();
        assert_eq!(c.get(), 0, "reset zeroes values");
        c.inc();
        assert_eq!(c.get(), 1, "handles stay valid across reset");
        clear();
    }

    #[test]
    fn gauges_and_histograms() {
        clear();
        let g = gauge("test.load");
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        let h = histogram("test.lat");
        h.observe(100);
        h.observe(300);
        assert_eq!(h.get().count(), 2);
        assert_eq!(h.get().mean(), 200);
        clear();
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        clear();
        let _ = counter("test.kind");
        let _ = gauge("test.kind");
    }

    #[test]
    fn disabled_thread_is_inert_and_safe() {
        clear();
        let c = counter("test.cross");
        c.add(2);
        // A worker thread with metrics disabled can use a main-thread
        // handle freely: no panic, no effect on its own (empty) registry.
        std::thread::scope(|s| {
            s.spawn(|| {
                set_thread_enabled(false);
                c.add(100);
                assert_eq!(c.get(), 0);
                let d = counter("test.worker_only");
                d.inc();
                gauge_set("test.worker_gauge", 1.0);
                histogram("test.worker_hist").observe(5);
                assert!(!thread_enabled());
            })
            .join()
            .unwrap();
        });
        assert_eq!(c.get(), 2, "worker adds must not reach this registry");
        let s = snapshot().render();
        assert!(!s.contains("worker_only"), "{s}");
        clear();
    }

    #[test]
    fn snapshot_shape() {
        clear();
        counter("a.count").add(7);
        gauge_set("b.level", 1.5);
        histogram("c.lat").observe(9);
        let s = snapshot().render();
        assert!(s.contains(r#""a.count":7"#), "{s}");
        assert!(s.contains(r#""b.level":1.5"#), "{s}");
        assert!(s.contains(r#""c.lat":{"count":1"#), "{s}");
        clear();
    }
}
