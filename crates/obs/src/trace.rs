//! Structured event tracer with a bounded ring buffer, exportable as
//! chrome://tracing-compatible JSON.
//!
//! Tracing is **off by default** and zero-cost when disabled: hot paths
//! guard on [`tracing`], which reads a thread-local `Cell<bool>` —
//! no allocation, no registry borrow, no string formatting. Because the
//! tracer only ever *observes* (it never feeds back into simulation
//! decisions or the RNG), enabling it cannot perturb deterministic
//! replay; a test in `tests/observability.rs` asserts exactly that.
//!
//! Timestamps are supplied by the caller in simulated nanoseconds, so
//! exported traces line up with the simulator's clock, not the host's.

use neat_util::{Json, ToJson};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

/// Default ring capacity when [`enable`] is called without an explicit one.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Chrome trace-event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `"B"` — span begin (paired with a later `End` of the same name/tid).
    Begin,
    /// `"E"` — span end.
    End,
    /// `"i"` — instant event (crash, restart, scale transition).
    Instant,
    /// `"X"` — complete event with an explicit duration.
    Complete,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Complete => "X",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub ts_ns: u64,
    /// Only meaningful for `Phase::Complete`.
    pub dur_ns: u64,
    pub ph: Phase,
    pub name: String,
    /// Category, e.g. `"dispatch"`, `"net"`, `"tcp"`, `"supervisor"`.
    pub cat: &'static str,
    /// Track id — by convention the hardware-thread index.
    pub tid: u64,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        // chrome://tracing expects microsecond timestamps; fractional
        // microseconds keep full nanosecond precision.
        let mut o = Json::object()
            .field("name", self.name.as_str())
            .field("cat", self.cat)
            .field("ph", self.ph.code())
            .field("pid", 0u64)
            .field("tid", self.tid)
            .field("ts", self.ts_ns as f64 / 1e3);
        if self.ph == Phase::Complete {
            o = o.field("dur", self.dur_ns as f64 / 1e3);
        }
        if self.ph == Phase::Instant {
            o = o.field("s", "t"); // thread-scoped instant
        }
        o
    }
}

#[derive(Default)]
struct Tracer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static TRACER: RefCell<Tracer> = RefCell::new(Tracer::default());
}

/// Is tracing currently enabled? The only check hot paths need.
#[inline]
pub fn tracing() -> bool {
    ENABLED.with(|e| e.get())
}

/// Enable tracing into a ring of `capacity` events (oldest evicted first).
pub fn enable(capacity: usize) {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.capacity = capacity.max(1);
        t.events.clear();
        t.dropped = 0;
    });
    ENABLED.with(|e| e.set(true));
}

/// Disable tracing, keeping whatever the ring currently holds.
pub fn disable() {
    ENABLED.with(|e| e.set(false));
}

/// Drop all recorded events (and the drop counter), keeping enablement.
pub fn clear() {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.events.clear();
        t.dropped = 0;
    });
}

fn push(ev: TraceEvent) {
    if !tracing() {
        return;
    }
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        if t.capacity == 0 {
            t.capacity = DEFAULT_CAPACITY;
        }
        if t.events.len() == t.capacity {
            t.events.pop_front();
            t.dropped += 1;
        }
        t.events.push_back(ev);
    });
}

/// Record a complete span `[start_ns, end_ns)` on track `tid`.
pub fn complete(tid: u64, name: impl Into<String>, cat: &'static str, start_ns: u64, end_ns: u64) {
    push(TraceEvent {
        ts_ns: start_ns,
        dur_ns: end_ns.saturating_sub(start_ns),
        ph: Phase::Complete,
        name: name.into(),
        cat,
        tid,
    });
}

/// Record a span begin; pair with [`end`] of the same name and track.
pub fn begin(tid: u64, name: impl Into<String>, cat: &'static str, ts_ns: u64) {
    push(TraceEvent {
        ts_ns,
        dur_ns: 0,
        ph: Phase::Begin,
        name: name.into(),
        cat,
        tid,
    });
}

/// Record a span end.
pub fn end(tid: u64, name: impl Into<String>, cat: &'static str, ts_ns: u64) {
    push(TraceEvent {
        ts_ns,
        dur_ns: 0,
        ph: Phase::End,
        name: name.into(),
        cat,
        tid,
    });
}

/// Record an instant event (crash, restart, drop, scale transition).
pub fn instant(tid: u64, name: impl Into<String>, cat: &'static str, ts_ns: u64) {
    push(TraceEvent {
        ts_ns,
        dur_ns: 0,
        ph: Phase::Instant,
        name: name.into(),
        cat,
        tid,
    });
}

/// Number of events currently held in the ring.
pub fn len() -> usize {
    TRACER.with(|t| t.borrow().events.len())
}

/// Number of events evicted because the ring was full.
pub fn dropped() -> u64 {
    TRACER.with(|t| t.borrow().dropped)
}

/// Export the ring as a chrome://tracing JSON object
/// (`{"traceEvents": [...], ...}`) — load it via the Perfetto UI or
/// chrome://tracing "Load" button.
pub fn export() -> Json {
    TRACER.with(|t| {
        let t = t.borrow();
        let events: Vec<Json> = t.events.iter().map(ToJson::to_json).collect();
        Json::object()
            .field("traceEvents", Json::Array(events))
            .field("displayTimeUnit", "ns")
            .field("droppedEvents", t.dropped)
    })
}

/// Export and write to `path`; returns the number of events written.
pub fn export_to_file(path: &str) -> std::io::Result<usize> {
    let n = len();
    std::fs::write(path, export().render())?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        disable();
        clear();
        complete(0, "x", "test", 0, 10);
        instant(0, "y", "test", 5);
        assert_eq!(len(), 0);
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        enable(4);
        for i in 0..10u64 {
            instant(0, format!("e{i}"), "test", i);
        }
        assert_eq!(len(), 4);
        assert_eq!(dropped(), 6);
        // Oldest evicted: the survivors are e6..e9.
        let json = export().render();
        assert!(!json.contains("\"e5\""), "{json}");
        assert!(json.contains("\"e9\""), "{json}");
        disable();
        clear();
    }

    #[test]
    fn chrome_shape() {
        enable(16);
        begin(3, "span", "test", 1_000);
        end(3, "span", "test", 2_500);
        complete(3, "xspan", "test", 2_000, 4_000);
        let s = export().render();
        assert!(s.contains(r#""traceEvents":["#), "{s}");
        assert!(
            s.contains(r#""ph":"B""#) && s.contains(r#""ph":"E""#),
            "{s}"
        );
        assert!(
            s.contains(r#""ph":"X""#) && s.contains(r#""dur":2.0"#),
            "{s}"
        );
        assert!(s.contains(r#""ts":1.0"#), "begin at 1us: {s}");
        disable();
        clear();
    }
}
