//! Bounded, accounted per-connection memory.
//!
//! A million-connection stack lives or dies on bytes-per-connection: if
//! each idle socket eagerly owns its configured send/recv buffers, 10⁶
//! connections at the 64 KiB defaults is 128 GiB before a byte flows.
//! This module makes per-connection memory *visible* (so the
//! `conn_scale` bench can gate it in CI) and *boundable* (so an
//! overloaded replica sheds new connections instead of dying):
//!
//! * every socket reports its true footprint — struct size plus the
//!   *allocated capacity* (not configured limit) of its stream buffers,
//!   reassembly runs and event queue — and the stack keeps the running
//!   total in sync with delta accounting at each touch point;
//! * [`ConnBudget::admit`] rejects new connections once an optional
//!   stack-wide limit (`TcpConfig::conn_memory_limit`) would be
//!   exceeded: SYNs are dropped exactly like a backlog overflow (the
//!   peer retries; heap exhaustion becomes load shedding);
//! * [`ConnBudget::publish`] exports the numbers through `neat-obs` as
//!   `tcp.conn.count`, `tcp.conn.bytes_total` and
//!   `tcp.conn.bytes_per_conn` — publication is explicit (not
//!   per-segment) because gauges are process-global and several stack
//!   instances coexist in one simulation.

/// Running memory account for one stack's connections.
#[derive(Debug)]
pub struct ConnBudget {
    conns: usize,
    bytes: u64,
    /// 0 = unlimited.
    limit: u64,
    refused: u64,
}

impl ConnBudget {
    pub fn new(limit: u64) -> ConnBudget {
        ConnBudget {
            conns: 0,
            bytes: 0,
            limit,
            refused: 0,
        }
    }

    /// Live accounted connections.
    pub fn conns(&self) -> usize {
        self.conns
    }

    /// Total accounted bytes across all live connections.
    pub fn bytes_total(&self) -> u64 {
        self.bytes
    }

    /// Average bytes per live connection (0 when none).
    pub fn bytes_per_conn(&self) -> f64 {
        if self.conns == 0 {
            0.0
        } else {
            self.bytes as f64 / self.conns as f64
        }
    }

    /// Connections refused because the budget was exhausted.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Would admitting a connection of `estimate` more bytes stay within
    /// the limit? Records a refusal when not.
    pub fn admit(&mut self, estimate: u64) -> bool {
        if self.limit != 0 && self.bytes + estimate > self.limit {
            self.refused += 1;
            neat_obs::counter_add("tcp.conn.budget_refused", 1);
            false
        } else {
            true
        }
    }

    /// A connection opened with an initial footprint of `bytes`.
    pub fn on_open(&mut self, bytes: u64) {
        self.conns += 1;
        self.bytes += bytes;
    }

    /// A connection closed, releasing its accounted `bytes`.
    pub fn on_close(&mut self, bytes: u64) {
        self.conns = self.conns.saturating_sub(1);
        self.bytes = self.bytes.saturating_sub(bytes);
    }

    /// A live connection's footprint changed by `delta` bytes.
    pub fn adjust(&mut self, delta: i64) {
        self.bytes = if delta >= 0 {
            self.bytes.saturating_add(delta as u64)
        } else {
            self.bytes.saturating_sub((-delta) as u64)
        };
    }

    /// Export the account through the global `neat-obs` registry.
    pub fn publish(&self) {
        neat_obs::gauge_set("tcp.conn.count", self.conns as f64);
        neat_obs::gauge_set("tcp.conn.bytes_total", self.bytes as f64);
        neat_obs::gauge_set("tcp.conn.bytes_per_conn", self.bytes_per_conn());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_tracks_open_adjust_close() {
        let mut b = ConnBudget::new(0);
        b.on_open(100);
        b.on_open(100);
        assert_eq!(b.conns(), 2);
        assert_eq!(b.bytes_total(), 200);
        b.adjust(50);
        b.adjust(-30);
        assert_eq!(b.bytes_total(), 220);
        assert_eq!(b.bytes_per_conn(), 110.0);
        b.on_close(120);
        assert_eq!(b.conns(), 1);
        assert_eq!(b.bytes_total(), 100);
    }

    #[test]
    fn limit_refuses_and_counts() {
        let mut b = ConnBudget::new(250);
        assert!(b.admit(100));
        b.on_open(100);
        assert!(b.admit(100));
        b.on_open(100);
        assert!(!b.admit(100), "200 + 100 > 250");
        assert_eq!(b.refused(), 1);
        b.on_close(100);
        assert!(b.admit(100), "freed budget re-admits");
    }

    #[test]
    fn unlimited_never_refuses() {
        let mut b = ConnBudget::new(0);
        b.on_open(u64::MAX / 2);
        assert!(b.admit(u64::MAX / 2));
    }
}
