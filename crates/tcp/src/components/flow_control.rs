//! Flow-control component: the receive side — reassembly, the receive
//! buffer, the advertised window, ACK generation policy, and zero-window
//! probing against the peer's window.

use crate::assembler::Assembler;
use crate::buffer::RecvBuffer;
use crate::socket::TcpSocket;
use crate::types::{SockEvent, TcpConfig};
use neat_net::{SeqNum, TcpFlags, TcpHeader};

/// State owned by flow control: both window directions — what we can
/// accept (receive buffer + assembler) and what the peer will (snd_wnd).
#[derive(Debug)]
pub struct FlowControl {
    pub(crate) rcv_nxt: SeqNum,
    pub(crate) recv_buf: RecvBuffer,
    pub(crate) asm: Assembler,
    /// Peer's advertised window in bytes (already scaled).
    pub(crate) snd_wnd: usize,
    /// Segment seq/ack used for the last window update (RFC 793 wl1/wl2).
    pub(crate) snd_wl1: SeqNum,
    pub(crate) snd_wl2: SeqNum,
    /// Peer's window-scale shift (0 if not negotiated).
    pub(crate) snd_wscale: u8,
    /// Our advertised shift (0 until negotiated on SYN).
    pub(crate) rcv_wscale: u8,
    /// Segments received since the last ACK we sent.
    pub(crate) ack_pending: u32,
    pub(crate) ack_deadline: Option<u64>,
    pub(crate) ack_now: bool,
    pub(crate) probe_deadline: Option<u64>,
}

impl FlowControl {
    pub(crate) fn new(cfg: &TcpConfig) -> FlowControl {
        FlowControl {
            rcv_nxt: SeqNum(0),
            recv_buf: RecvBuffer::new(cfg.recv_buf),
            asm: Assembler::new(cfg.recv_buf),
            snd_wnd: 0,
            snd_wl1: SeqNum(0),
            snd_wl2: SeqNum(0),
            snd_wscale: 0,
            rcv_wscale: 0,
            ack_pending: 0,
            ack_deadline: None,
            ack_now: false,
            probe_deadline: None,
        }
    }
}

/// Flow-control logic: acceptability, window tracking, payload delivery,
/// ACK emission.
impl TcpSocket {
    /// RFC 793 step 1: is this segment within the receive window?
    pub(crate) fn seq_acceptable(&self, h: &TcpHeader, seg_len: u32) -> bool {
        let wnd = self.recv_window_bytes() as u32;
        let seq = h.seq;
        if seg_len == 0 {
            if wnd == 0 {
                seq == self.fc.rcv_nxt
            } else {
                seq - self.fc.rcv_nxt >= -(wnd as i32) && (seq - self.fc.rcv_nxt) < wnd as i32
            }
        } else {
            if wnd == 0 {
                return false;
            }
            (seq - self.fc.rcv_nxt) < wnd as i32 && (seq + seg_len - self.fc.rcv_nxt) > 0
        }
    }

    pub(crate) fn recv_window_bytes(&self) -> usize {
        self.fc.recv_buf.window()
    }

    /// The window field value (scaled) for outgoing segments.
    pub(crate) fn window_field(&self) -> u16 {
        let w = self.recv_window_bytes() >> self.fc.rcv_wscale;
        w.min(u16::MAX as usize) as u16
    }

    pub(crate) fn bare_ack(&mut self) -> TcpHeader {
        let mut h = TcpHeader::new(
            self.local_port,
            self.remote_port,
            self.rel.snd_nxt,
            self.fc.rcv_nxt,
            TcpFlags::ack(),
        );
        h.window = self.window_field();
        self.tx_segments += 1;
        h
    }

    /// Window update (RFC 793: wl1/wl2 guard against stale segments),
    /// plus zero-window probe arming when the peer closes its window.
    pub(crate) fn process_window_update(&mut self, h: &TcpHeader, now: u64) {
        if h.seq - self.fc.snd_wl1 > 0 || (h.seq == self.fc.snd_wl1 && h.ack - self.fc.snd_wl2 >= 0)
        {
            let new_wnd = (h.window as usize) << self.fc.snd_wscale;
            let was_zero = self.fc.snd_wnd == 0;
            self.fc.snd_wnd = new_wnd;
            self.fc.snd_wl1 = h.seq;
            self.fc.snd_wl2 = h.ack;
            if was_zero && new_wnd > 0 {
                self.fc.probe_deadline = None;
            } else if new_wnd == 0 && self.rel.send_buf.len_from(self.rel.snd_nxt) > 0 {
                self.fc.probe_deadline = Some(now + self.rel.rtt.rto());
            }
        }
    }

    /// RFC 793 step 7: payload delivery through the assembler into the
    /// receive buffer, plus the ACK policy (every second segment, else
    /// delayed; immediate on out-of-order).
    pub(crate) fn process_payload(&mut self, h: &TcpHeader, payload: &[u8], now: u64) {
        if payload.is_empty() || !self.cm.state.can_recv() {
            return;
        }
        let inserted = self.fc.asm.insert(h.seq, payload, self.fc.rcv_nxt);
        if inserted {
            let mut delivered = false;
            while let Some(run) = self.fc.asm.take_contiguous(self.fc.rcv_nxt) {
                let n = self.fc.recv_buf.write(&run);
                self.fc.rcv_nxt += n as u32;
                delivered = delivered || n > 0;
                if n < run.len() {
                    // Receive buffer full: drop the tail; the shrunken
                    // advertised window makes the peer resend later.
                    break;
                }
            }
            if delivered {
                self.events.push(SockEvent::Readable(self.id));
            }
        }
        // ACK policy: every second segment, else delayed.
        self.fc.ack_pending += 1;
        if h.seq != self.fc.rcv_nxt && !self.fc.asm.is_empty() {
            // Out-of-order: ACK immediately (fast-retransmit support).
            self.fc.ack_now = true;
        } else if self.fc.ack_pending >= 2 || self.cfg.delayed_ack_ns == 0 {
            self.fc.ack_now = true;
        } else if self.fc.ack_deadline.is_none() {
            self.fc.ack_deadline = Some(now + self.cfg.delayed_ack_ns);
        }
    }

    /// Transmit step 4: a pure ACK if one is owed (forced or delayed-ACK
    /// quota reached).
    pub(crate) fn transmit_pure_ack(&mut self) -> Option<(TcpHeader, Vec<u8>)> {
        if self.fc.ack_now || (self.fc.ack_pending > 0 && self.fc.ack_deadline.is_none()) {
            self.fc.ack_now = false;
            self.fc.ack_pending = 0;
            self.fc.ack_deadline = None;
            return Some((self.bare_ack(), Vec::new()));
        }
        None
    }
}
