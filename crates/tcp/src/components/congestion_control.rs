//! Congestion-control component: the event-driven API every controller
//! implements, plus the in-tree algorithms (Reno, CUBIC, BBR-style,
//! DCTCP-style, and the wide-open `NoCc`).
//!
//! The old trait was poll-shaped (`cwnd()` + three ad-hoc callbacks) and
//! starved model-based controllers of their inputs: BBR needs RTT samples
//! and delivery-rate observations, DCTCP needs a per-window congestion
//! fraction. The redesigned API delivers full [`AckEvent`]s and returns a
//! [`CcDecision`] so the send path consumes one coherent verdict (window,
//! ssthresh, pacing) instead of probing fields.

use crate::types::CongestionAlgo;

/// Everything a cumulative ACK tells the controller.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Bytes newly acknowledged by this ACK (the socket reports at least
    /// 1 so window-update-only ACKs still clock the controller, matching
    /// the historical call site).
    pub newly_acked: usize,
    /// RTT measurement taken on this ACK, if Karn's rule allowed one (ns).
    pub rtt_sample: Option<u64>,
    /// Simulation time of the ACK (ns).
    pub now_ns: u64,
    /// Bytes still outstanding *after* this ACK was applied.
    pub in_flight: usize,
}

/// The controller's verdict, consumed by the socket's transmit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcDecision {
    /// Congestion window in bytes.
    pub cwnd: usize,
    /// Slow-start threshold in bytes.
    pub ssthresh: usize,
    /// When set, the send path caps each burst at one MSS instead of the
    /// configured GSO super-segment — a pacing stand-in for rate-based
    /// controllers that must not dump a whole window back-to-back.
    pub pacing_gate: bool,
}

/// The event-driven interface the socket's ACK and send paths consult.
///
/// `Send` so a whole [`TcpStack`](crate::TcpStack) can migrate to a shard
/// worker thread (conn_scale's lane executor); every controller is plain
/// data.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Which algorithm this controller implements.
    fn algo(&self) -> CongestionAlgo;

    /// New data was cumulatively acknowledged.
    fn on_ack(&mut self, ev: &AckEvent) -> CcDecision;

    /// A loss was detected via duplicate ACKs (fast retransmit entry).
    fn on_loss(&mut self, now_ns: u64) -> CcDecision;

    /// The retransmission timer fired — collapse the window.
    fn on_rto(&mut self, now_ns: u64) -> CcDecision;

    /// The sender ran out of application data while the window still had
    /// room: rate samples taken now under-estimate the path.
    fn on_app_limited(&mut self, now_ns: u64) {
        let _ = now_ns;
    }

    /// The current verdict without feeding any event.
    fn decision(&self) -> CcDecision;

    /// Force the congestion window (SockOpt::InitialCwnd); implementations
    /// clamp to at least one MSS. `NoCc` ignores it.
    fn set_cwnd(&mut self, bytes: usize);

    /// Convenience: current congestion window in bytes.
    fn cwnd(&self) -> usize {
        self.decision().cwnd
    }
}

/// Build the controller selected by the stack config or a socket option.
pub fn make(algo: CongestionAlgo, mss: u16) -> Box<dyn CongestionControl> {
    match algo {
        CongestionAlgo::Reno => Box::new(Reno::new(mss)),
        CongestionAlgo::Cubic => Box::new(Cubic::new(mss)),
        CongestionAlgo::None => Box::new(NoCc),
        CongestionAlgo::Bbr => Box::new(Bbr::new(mss)),
        CongestionAlgo::Dctcp => Box::new(Dctcp::new(mss)),
    }
}

/// RFC 5681 IW: min(4*MSS, max(2*MSS, 4380)).
fn initial_window(mss: usize) -> usize {
    (4 * mss).min((2 * mss).max(4380))
}

/// TCP Reno: slow start, congestion avoidance, fast recovery.
#[derive(Debug)]
pub struct Reno {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Bytes accumulated toward the next +MSS in congestion avoidance.
    avoid_acc: usize,
}

impl Reno {
    pub fn new(mss: u16) -> Reno {
        let mss = mss as usize;
        Reno {
            mss,
            cwnd: initial_window(mss),
            ssthresh: usize::MAX / 2,
            avoid_acc: 0,
        }
    }

    pub fn ssthresh(&self) -> usize {
        self.ssthresh
    }
}

impl CongestionControl for Reno {
    fn algo(&self) -> CongestionAlgo {
        CongestionAlgo::Reno
    }

    fn on_ack(&mut self, ev: &AckEvent) -> CcDecision {
        if self.cwnd < self.ssthresh {
            // Slow start: cwnd += min(acked, MSS) per ACK.
            self.cwnd += ev.newly_acked.min(self.mss);
        } else {
            // Congestion avoidance: +1 MSS per cwnd of data acked.
            self.avoid_acc += ev.newly_acked;
            if self.avoid_acc >= self.cwnd {
                self.avoid_acc -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
        self.decision()
    }

    fn on_loss(&mut self, _now_ns: u64) -> CcDecision {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.avoid_acc = 0;
        self.decision()
    }

    fn on_rto(&mut self, _now_ns: u64) -> CcDecision {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.avoid_acc = 0;
        self.decision()
    }

    fn decision(&self) -> CcDecision {
        CcDecision {
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            pacing_gate: false,
        }
    }

    fn set_cwnd(&mut self, bytes: usize) {
        self.cwnd = bytes.max(self.mss);
    }
}

/// CUBIC (RFC 8312): window growth is a cubic function of time since the
/// last congestion event, independent of RTT.
#[derive(Debug)]
pub struct Cubic {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Window size before the last reduction (W_max), in bytes.
    pub(crate) w_max: f64,
    /// Time of the last congestion event (ns).
    epoch_start: Option<u64>,
    /// K: time to regain W_max, in seconds.
    k: f64,
}

/// RFC 8312 constants.
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    pub fn new(mss: u16) -> Cubic {
        let mss = mss as usize;
        Cubic {
            mss,
            cwnd: initial_window(mss),
            ssthresh: usize::MAX / 2,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
        }
    }

    fn enter_epoch(&mut self, now_ns: u64) {
        self.epoch_start = Some(now_ns);
        let w_max_mss = self.w_max / self.mss as f64;
        let cwnd_mss = self.cwnd as f64 / self.mss as f64;
        self.k = if w_max_mss > cwnd_mss {
            ((w_max_mss - cwnd_mss) / CUBIC_C).cbrt()
        } else {
            0.0
        };
    }

    fn target(&self, now_ns: u64) -> usize {
        let t = (now_ns - self.epoch_start.unwrap()) as f64 / 1e9;
        let w_mss = CUBIC_C * (t - self.k).powi(3) + self.w_max / self.mss as f64;
        (w_mss * self.mss as f64).max(self.mss as f64) as usize
    }
}

impl CongestionControl for Cubic {
    fn algo(&self) -> CongestionAlgo {
        CongestionAlgo::Cubic
    }

    fn on_ack(&mut self, ev: &AckEvent) -> CcDecision {
        if self.cwnd < self.ssthresh {
            self.cwnd += ev.newly_acked.min(self.mss);
            return self.decision();
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(ev.now_ns);
        }
        let target = self.target(ev.now_ns);
        if target > self.cwnd {
            // Approach the cubic target, at most one MSS per ACK.
            let step = ((target - self.cwnd) / 8).clamp(1, self.mss);
            self.cwnd += step;
        }
        self.decision()
    }

    fn on_loss(&mut self, _now_ns: u64) -> CcDecision {
        // RFC 8312 §4.6 fast convergence: a loss *below* the previous
        // peak means a new flow is taking its share — release the room
        // faster by remembering a scaled-down peak instead of the
        // unconditional `w_max = cwnd` the old trait implementation used.
        if (self.cwnd as f64) < self.w_max {
            self.w_max = self.cwnd as f64 * (2.0 - CUBIC_BETA) / 2.0;
        } else {
            self.w_max = self.cwnd as f64;
        }
        self.cwnd = ((self.cwnd as f64 * CUBIC_BETA) as usize).max(2 * self.mss);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.decision()
    }

    fn on_rto(&mut self, _now_ns: u64) -> CcDecision {
        self.w_max = self.cwnd as f64;
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as usize).max(2 * self.mss);
        self.cwnd = self.mss;
        self.epoch_start = None;
        self.decision()
    }

    fn decision(&self) -> CcDecision {
        CcDecision {
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            pacing_gate: false,
        }
    }

    fn set_cwnd(&mut self, bytes: usize) {
        self.cwnd = bytes.max(self.mss);
    }
}

/// BBR-style model-based controller (deterministic, simulation-grade).
///
/// Keeps the two filters the real BBR keeps — a windowed max of the
/// delivery rate and a running min of the RTT — and sizes the window to a
/// gain times the estimated bandwidth-delay product. Rounds are delimited
/// by the min-RTT (one delivery-rate sample per round). Startup grows the
/// window exponentially until the bandwidth filter plateaus for three
/// rounds, then the controller drops to ProbeBW and relies on the BDP
/// model; from there `pacing_gate` asks the send path to emit MSS-sized
/// bursts rather than GSO super-segments.
#[derive(Debug)]
pub struct Bbr {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Running minimum RTT (ns); u64::MAX until the first sample.
    min_rtt_ns: u64,
    /// Delivery-rate max filter: last `BBR_BW_FILTER_LEN` round samples
    /// (bytes/sec).
    bw_samples: [f64; BBR_BW_FILTER_LEN],
    bw_idx: usize,
    /// Time the current round started (ns).
    round_start_ns: u64,
    /// Bytes delivered in the current round.
    round_delivered: usize,
    /// Startup phase: exponential growth until the bandwidth plateaus.
    startup: bool,
    /// Best bandwidth seen when the plateau counter last reset.
    full_bw: f64,
    /// Consecutive rounds without `BBR_FULL_BW_GROWTH` improvement.
    full_bw_count: u32,
    /// The sender went app-limited this round: skip the rate sample.
    app_limited: bool,
}

const BBR_BW_FILTER_LEN: usize = 10;
/// A round must beat the previous best by 25% to still count as growth.
const BBR_FULL_BW_GROWTH: f64 = 1.25;
/// cwnd = gain × BDP in ProbeBW (2.0 leaves headroom for ACK clumping).
const BBR_CWND_GAIN: f64 = 2.0;

impl Bbr {
    pub fn new(mss: u16) -> Bbr {
        let mss = mss as usize;
        Bbr {
            mss,
            cwnd: initial_window(mss),
            ssthresh: usize::MAX / 2,
            min_rtt_ns: u64::MAX,
            bw_samples: [0.0; BBR_BW_FILTER_LEN],
            bw_idx: 0,
            round_start_ns: 0,
            round_delivered: 0,
            startup: true,
            full_bw: 0.0,
            full_bw_count: 0,
            app_limited: false,
        }
    }

    fn btl_bw(&self) -> f64 {
        self.bw_samples.iter().cloned().fold(0.0, f64::max)
    }

    /// Bandwidth-delay product in bytes, if both filters have samples.
    fn bdp(&self) -> Option<f64> {
        let bw = self.btl_bw();
        if bw <= 0.0 || self.min_rtt_ns == u64::MAX {
            return None;
        }
        Some(bw * self.min_rtt_ns as f64 / 1e9)
    }

    /// Close out a round: take one delivery-rate sample and advance the
    /// startup plateau detector.
    fn end_round(&mut self, now_ns: u64) {
        let elapsed = now_ns.saturating_sub(self.round_start_ns);
        if elapsed > 0 && self.round_delivered > 0 && !self.app_limited {
            let bw = self.round_delivered as f64 * 1e9 / elapsed as f64;
            self.bw_samples[self.bw_idx] = bw;
            self.bw_idx = (self.bw_idx + 1) % BBR_BW_FILTER_LEN;
            if self.startup {
                if bw >= self.full_bw * BBR_FULL_BW_GROWTH {
                    self.full_bw = bw;
                    self.full_bw_count = 0;
                } else {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= 3 {
                        self.startup = false;
                    }
                }
            }
        }
        self.round_start_ns = now_ns;
        self.round_delivered = 0;
        self.app_limited = false;
    }
}

impl CongestionControl for Bbr {
    fn algo(&self) -> CongestionAlgo {
        CongestionAlgo::Bbr
    }

    fn on_ack(&mut self, ev: &AckEvent) -> CcDecision {
        if let Some(rtt) = ev.rtt_sample {
            self.min_rtt_ns = self.min_rtt_ns.min(rtt.max(1));
        }
        self.round_delivered += ev.newly_acked;
        let round_len = if self.min_rtt_ns == u64::MAX {
            // No RTT yet: fall back to a coarse round so the filter
            // still advances on one-way traffic.
            1_000_000
        } else {
            self.min_rtt_ns
        };
        if ev.now_ns.saturating_sub(self.round_start_ns) >= round_len {
            self.end_round(ev.now_ns);
        }
        if self.startup {
            // Exponential growth, like slow start but model-gated.
            self.cwnd += ev.newly_acked.min(self.mss);
        } else if let Some(bdp) = self.bdp() {
            self.cwnd = ((BBR_CWND_GAIN * bdp) as usize).max(4 * self.mss);
        }
        self.decision()
    }

    fn on_loss(&mut self, _now_ns: u64) -> CcDecision {
        // BBR does not treat isolated loss as a congestion signal, but a
        // dup-ack episode still means the bottleneck queue overflowed:
        // trim modestly and let the model re-inflate.
        self.ssthresh = ((self.cwnd as f64 * 0.85) as usize).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.decision()
    }

    fn on_rto(&mut self, now_ns: u64) -> CcDecision {
        self.ssthresh = ((self.cwnd as f64 * 0.85) as usize).max(2 * self.mss);
        self.cwnd = self.mss;
        // The pipe drained; restart the round clock.
        self.round_start_ns = now_ns;
        self.round_delivered = 0;
        self.decision()
    }

    fn on_app_limited(&mut self, _now_ns: u64) {
        self.app_limited = true;
    }

    fn decision(&self) -> CcDecision {
        CcDecision {
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            // Pace once the model is trusted; startup keeps GSO bursts.
            pacing_gate: !self.startup,
        }
    }

    fn set_cwnd(&mut self, bytes: usize) {
        self.cwnd = bytes.max(self.mss);
    }
}

/// DCTCP-style controller (RFC 8257 shape): the window cut is scaled by
/// the observed congestion fraction α instead of a fixed ½.
///
/// The simulated wire format has no ECN bits, so loss events stand in
/// for CE marks: each `on_loss` contributes one MSS of "marked" bytes to
/// the per-window fraction F, and α is EWMA-updated once per window of
/// acked data (gain 1/16). Growth follows Reno (slow start below
/// ssthresh, +1 MSS per window in avoidance).
#[derive(Debug)]
pub struct Dctcp {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Congestion estimate α ∈ [0, 1]; starts at 1.0 (RFC 8257 §4.2
    /// conservative initialization).
    alpha: f64,
    /// Bytes acked in the current observation window.
    window_acked: usize,
    /// Proxy-marked bytes in the current observation window.
    window_marked: usize,
    /// Window length in bytes, snapshotted at window start (cwnd keeps
    /// moving mid-window, the observation interval must not).
    window_target: usize,
    avoid_acc: usize,
}

/// RFC 8257 estimation gain g = 1/16.
const DCTCP_G: f64 = 1.0 / 16.0;

impl Dctcp {
    pub fn new(mss: u16) -> Dctcp {
        let mss = mss as usize;
        let cwnd = initial_window(mss);
        Dctcp {
            mss,
            cwnd,
            ssthresh: usize::MAX / 2,
            alpha: 1.0,
            window_acked: 0,
            window_marked: 0,
            window_target: cwnd,
            avoid_acc: 0,
        }
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// One observation window (≈ cwnd of acked data) elapsed: fold the
    /// marked fraction into α.
    fn update_alpha(&mut self) {
        let f = (self.window_marked as f64 / self.window_acked.max(1) as f64).min(1.0);
        self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * f;
        self.window_acked = 0;
        self.window_marked = 0;
        self.window_target = self.cwnd;
    }
}

impl CongestionControl for Dctcp {
    fn algo(&self) -> CongestionAlgo {
        CongestionAlgo::Dctcp
    }

    fn on_ack(&mut self, ev: &AckEvent) -> CcDecision {
        self.window_acked += ev.newly_acked;
        if self.window_acked >= self.window_target {
            self.update_alpha();
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += ev.newly_acked.min(self.mss);
        } else {
            self.avoid_acc += ev.newly_acked;
            if self.avoid_acc >= self.cwnd {
                self.avoid_acc -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
        self.decision()
    }

    fn on_loss(&mut self, _now_ns: u64) -> CcDecision {
        self.window_marked += self.mss;
        // cwnd ← cwnd × (1 − α/2), floored at 2 MSS. With α starting at
        // 1 this is a Reno-style halving that relaxes as the measured
        // congestion fraction drops.
        self.cwnd = ((self.cwnd as f64 * (1.0 - self.alpha / 2.0)) as usize).max(2 * self.mss);
        self.ssthresh = self.cwnd;
        self.avoid_acc = 0;
        self.decision()
    }

    fn on_rto(&mut self, _now_ns: u64) -> CcDecision {
        self.window_marked += self.mss;
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.avoid_acc = 0;
        self.decision()
    }

    fn decision(&self) -> CcDecision {
        CcDecision {
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            pacing_gate: false,
        }
    }

    fn set_cwnd(&mut self, bytes: usize) {
        self.cwnd = bytes.max(self.mss);
    }
}

/// No congestion control: the window is effectively unbounded.
#[derive(Debug)]
pub struct NoCc;

impl CongestionControl for NoCc {
    fn algo(&self) -> CongestionAlgo {
        CongestionAlgo::None
    }
    fn on_ack(&mut self, _: &AckEvent) -> CcDecision {
        self.decision()
    }
    fn on_loss(&mut self, _: u64) -> CcDecision {
        self.decision()
    }
    fn on_rto(&mut self, _: u64) -> CcDecision {
        self.decision()
    }
    fn decision(&self) -> CcDecision {
        CcDecision {
            cwnd: usize::MAX / 2,
            ssthresh: usize::MAX / 2,
            pacing_gate: false,
        }
    }
    fn set_cwnd(&mut self, _: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u16 = 1460;

    /// Plain data ACK with no RTT sample.
    fn ack(bytes: usize, now_ns: u64) -> AckEvent {
        AckEvent {
            newly_acked: bytes,
            rtt_sample: None,
            now_ns,
            in_flight: 0,
        }
    }

    fn ack_rtt(bytes: usize, now_ns: u64, rtt: u64) -> AckEvent {
        AckEvent {
            newly_acked: bytes,
            rtt_sample: Some(rtt),
            now_ns,
            in_flight: 0,
        }
    }

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut r = Reno::new(MSS);
        let start = r.cwnd();
        // One RTT's worth of ACKs: every cwnd byte acked in MSS chunks.
        let acks = start / MSS as usize;
        for _ in 0..acks {
            r.on_ack(&ack(MSS as usize, 0));
        }
        assert!(
            r.cwnd() >= 2 * start - MSS as usize,
            "slow start should ~double: {} -> {}",
            start,
            r.cwnd()
        );
    }

    #[test]
    fn reno_congestion_avoidance_linear() {
        let mut r = Reno::new(MSS);
        r.on_rto(0); // cwnd = 1 MSS, ssthresh small
        let ssthresh = r.ssthresh();
        // Grow past ssthresh.
        while r.cwnd() < ssthresh {
            r.on_ack(&ack(MSS as usize, 0));
        }
        let w = r.cwnd();
        // One full window of ACKs in avoidance adds ~1 MSS.
        let mut acked = 0;
        while acked < w {
            r.on_ack(&ack(MSS as usize, 0));
            acked += MSS as usize;
        }
        assert!(
            r.cwnd() - w <= 2 * MSS as usize,
            "avoidance is linear: {} -> {}",
            w,
            r.cwnd()
        );
        assert!(r.cwnd() > w);
    }

    #[test]
    fn reno_loss_halves() {
        let mut r = Reno::new(MSS);
        for _ in 0..100 {
            r.on_ack(&ack(MSS as usize, 0));
        }
        let before = r.cwnd();
        r.on_loss(0);
        assert!(r.cwnd() <= before / 2 + MSS as usize);
        assert!(r.cwnd() >= 2 * MSS as usize);
    }

    #[test]
    fn reno_timeout_collapses_to_one_mss() {
        let mut r = Reno::new(MSS);
        for _ in 0..100 {
            r.on_ack(&ack(MSS as usize, 0));
        }
        r.on_rto(0);
        assert_eq!(r.cwnd(), MSS as usize);
    }

    #[test]
    fn cubic_recovers_toward_wmax() {
        let mut c = Cubic::new(MSS);
        // Grow, then suffer a loss.
        for _ in 0..200 {
            c.on_ack(&ack(MSS as usize, 0));
        }
        let before_loss = c.cwnd();
        c.on_loss(1_000_000_000);
        let floor = c.cwnd();
        assert!(floor < before_loss);
        // ACK clocks over the next simulated seconds: window climbs again.
        let mut now = 1_000_000_000u64;
        for _ in 0..2000 {
            now += 2_000_000;
            c.on_ack(&ack(MSS as usize, now));
        }
        assert!(
            c.cwnd() > floor,
            "cubic should grow after loss: {} -> {}",
            floor,
            c.cwnd()
        );
    }

    #[test]
    fn cubic_beta_reduction() {
        let mut c = Cubic::new(MSS);
        for _ in 0..500 {
            c.on_ack(&ack(MSS as usize, 0));
        }
        let before = c.cwnd();
        c.on_loss(0);
        let after = c.cwnd();
        let ratio = after as f64 / before as f64;
        assert!(
            (0.6..=0.8).contains(&ratio),
            "beta=0.7 reduction, got {ratio}"
        );
    }

    /// Pin the RFC 8312 §4.6 fast-convergence fix: a loss below the
    /// previous peak must record `w_max = cwnd * (2-β)/2`, not `cwnd`.
    #[test]
    fn cubic_fast_convergence_scales_wmax_below_peak() {
        let mut c = Cubic::new(MSS);
        for _ in 0..500 {
            c.on_ack(&ack(MSS as usize, 0));
        }
        // First loss at the peak: cwnd >= w_max, so w_max = cwnd.
        let peak = c.cwnd() as f64;
        c.on_loss(1_000_000_000);
        assert!((c.w_max - peak).abs() < 1.0, "first loss records the peak");

        // Second loss before regaining the peak: fast convergence kicks
        // in and the remembered peak shrinks by (2-β)/2 = 0.65.
        let cwnd_at_loss = c.cwnd() as f64;
        assert!(cwnd_at_loss < c.w_max);
        c.on_loss(2_000_000_000);
        let expected = cwnd_at_loss * (2.0 - 0.7) / 2.0;
        assert!(
            (c.w_max - expected).abs() < 1.0,
            "w_max {} != scaled {}",
            c.w_max,
            expected
        );
        assert!(c.w_max < cwnd_at_loss, "remembered peak released room");
    }

    #[test]
    fn bbr_startup_grows_exponentially_then_exits() {
        let mut b = Bbr::new(MSS);
        let start = b.cwnd();
        // Steady 100 µs RTT, one window per round.
        let mut now = 0u64;
        for _ in 0..40 {
            now += 100_000;
            b.on_ack(&ack_rtt(MSS as usize, now, 100_000));
        }
        assert!(b.cwnd() > start, "startup grows the window");
        // Keep the delivery rate flat for many rounds: the plateau
        // detector must eventually leave startup.
        for _ in 0..400 {
            now += 100_000;
            b.on_ack(&ack_rtt(MSS as usize, now, 100_000));
        }
        assert!(!b.startup, "flat bandwidth ends startup");
        assert!(b.decision().pacing_gate, "probe-bw paces");
        // cwnd is now model-driven: 2 × BDP, floored at 4 MSS.
        let bdp = b.bdp().expect("filters are primed");
        assert_eq!(b.cwnd(), ((2.0 * bdp) as usize).max(4 * MSS as usize));
    }

    #[test]
    fn bbr_rto_collapses_and_recovers() {
        let mut b = Bbr::new(MSS);
        let mut now = 0u64;
        for _ in 0..50 {
            now += 100_000;
            b.on_ack(&ack_rtt(MSS as usize, now, 100_000));
        }
        b.on_rto(now);
        assert_eq!(b.cwnd(), MSS as usize);
        for _ in 0..50 {
            now += 100_000;
            b.on_ack(&ack_rtt(MSS as usize, now, 100_000));
        }
        assert!(b.cwnd() > MSS as usize, "model re-inflates after RTO");
    }

    #[test]
    fn bbr_app_limited_round_takes_no_rate_sample() {
        let mut b = Bbr::new(MSS);
        let mut now = 0u64;
        // Prime the filters with honest rounds.
        for _ in 0..20 {
            now += 100_000;
            b.on_ack(&ack_rtt(MSS as usize, now, 100_000));
        }
        let bw_before = b.btl_bw();
        // A starved round must not drag the max filter down — and more
        // importantly must not *overwrite* a slot with a tiny sample.
        b.on_app_limited(now);
        now += 100_000;
        b.on_ack(&ack_rtt(1, now, 100_000));
        assert!(b.btl_bw() >= bw_before * 0.999);
    }

    #[test]
    fn dctcp_alpha_tracks_mark_fraction() {
        let mut d = Dctcp::new(MSS);
        assert!((d.alpha() - 1.0).abs() < f64::EPSILON, "conservative init");
        // Mark-free windows decay α by (1-g) each (windows lengthen as
        // the slow-start cwnd doubles, so decay is per-window, not
        // per-ack).
        for _ in 0..400 {
            d.on_ack(&ack(MSS as usize, 0));
        }
        assert!(d.alpha() < 0.7, "α decays without marks: {}", d.alpha());
    }

    #[test]
    fn dctcp_cut_scales_with_alpha() {
        let mut d = Dctcp::new(MSS);
        // Decay α well below 1, then grow a big window.
        for _ in 0..400 {
            d.on_ack(&ack(MSS as usize, 0));
        }
        let alpha = d.alpha();
        let before = d.cwnd();
        d.on_loss(0);
        let expected = ((before as f64 * (1.0 - alpha / 2.0)) as usize).max(2 * MSS as usize);
        assert_eq!(d.cwnd(), expected, "cut is α-scaled, not a blind halving");
        assert!(d.cwnd() > before / 2, "low α cuts less than Reno would");
    }

    #[test]
    fn every_cc_respects_loss_floor_and_ssthresh_monotonicity() {
        for algo in [
            CongestionAlgo::Reno,
            CongestionAlgo::Cubic,
            CongestionAlgo::Bbr,
            CongestionAlgo::Dctcp,
        ] {
            let mut cc = make(algo, MSS);
            for i in 0..50 {
                cc.on_ack(&ack(MSS as usize, i * 1_000_000));
            }
            let mut last_ssthresh = usize::MAX;
            for i in 0..8 {
                let d = cc.on_loss(i * 10_000_000);
                assert!(
                    d.cwnd >= 2 * MSS as usize,
                    "{algo:?}: post-loss cwnd {} < 2*MSS",
                    d.cwnd
                );
                assert!(
                    d.ssthresh <= last_ssthresh,
                    "{algo:?}: ssthresh rose during loss burst"
                );
                last_ssthresh = d.ssthresh;
            }
        }
    }

    #[test]
    fn set_cwnd_overrides_and_floors() {
        for algo in [
            CongestionAlgo::Reno,
            CongestionAlgo::Cubic,
            CongestionAlgo::Bbr,
            CongestionAlgo::Dctcp,
        ] {
            let mut cc = make(algo, MSS);
            cc.set_cwnd(10 * MSS as usize);
            assert_eq!(cc.cwnd(), 10 * MSS as usize, "{algo:?}");
            cc.set_cwnd(1);
            assert_eq!(cc.cwnd(), MSS as usize, "{algo:?} floors at one MSS");
        }
        let mut n = NoCc;
        n.set_cwnd(1);
        assert!(n.cwnd() > 1 << 40, "NoCc ignores set_cwnd");
    }

    #[test]
    fn nocc_never_limits() {
        let mut n = NoCc;
        n.on_rto(0);
        n.on_loss(0);
        assert!(n.cwnd() > 1 << 40);
    }

    #[test]
    fn factory_dispatches() {
        assert!(make(CongestionAlgo::Reno, MSS).cwnd() < 10_000);
        assert!(make(CongestionAlgo::Cubic, MSS).cwnd() < 10_000);
        assert!(make(CongestionAlgo::None, MSS).cwnd() > 1 << 40);
        assert_eq!(make(CongestionAlgo::Bbr, MSS).algo(), CongestionAlgo::Bbr);
        assert_eq!(
            make(CongestionAlgo::Dctcp, MSS).algo(),
            CongestionAlgo::Dctcp
        );
    }
}
