//! Connection-management component: the RFC 793 state machine —
//! handshake (SYN/SYN-ACK emission, SYN-SENT processing), teardown
//! (FIN exchange, TIME_WAIT), and the lifecycle timers.

use crate::socket::{TcpSocket, OUR_WSCALE};
use crate::types::{SockEvent, TcpError, TcpState};
use neat_net::{SeqNum, TcpFlags, TcpHeader};

/// State owned by connection management: where the connection is in its
/// lifecycle plus the handshake/teardown bookkeeping that moves it along.
#[derive(Debug)]
pub struct ConnMgmt {
    pub(crate) state: TcpState,
    /// Initial send sequence number.
    pub(crate) iss: SeqNum,
    /// Initial receive sequence number.
    pub(crate) irs: SeqNum,
    /// The SYN (or SYN-ACK) we owe has been transmitted at least once.
    pub(crate) syn_sent: bool,
    /// User called close(): send FIN once the buffer drains.
    pub(crate) close_requested: bool,
    /// Sequence number our FIN occupies, once sent.
    pub(crate) fin_seq: Option<SeqNum>,
    /// Peer FIN consumed (sequence-wise).
    pub(crate) peer_fin_rcvd: bool,
    pub(crate) time_wait_deadline: Option<u64>,
    pub(crate) keepalive_deadline: Option<u64>,
}

impl ConnMgmt {
    pub(crate) fn new(iss: SeqNum) -> ConnMgmt {
        ConnMgmt {
            state: TcpState::Closed,
            iss,
            irs: SeqNum(0),
            syn_sent: false,
            close_requested: false,
            fin_seq: None,
            peer_fin_rcvd: false,
            time_wait_deadline: None,
            keepalive_deadline: None,
        }
    }
}

/// Connection-management logic: everything that advances `cm.state`.
impl TcpSocket {
    /// Graceful close: FIN after pending data drains.
    pub fn close(&mut self, _now: u64) {
        match self.cm.state {
            TcpState::Established | TcpState::SynReceived => {
                self.cm.close_requested = true;
                self.cm.state = TcpState::FinWait1;
            }
            TcpState::CloseWait => {
                self.cm.close_requested = true;
                self.cm.state = TcpState::LastAck;
            }
            TcpState::SynSent | TcpState::Listen => {
                self.cm.state = TcpState::Closed;
                self.events.push(SockEvent::Closed(self.id));
            }
            _ => {}
        }
    }

    /// Abort: RST to the peer, everything dropped.
    pub fn abort(&mut self) {
        if !matches!(self.cm.state, TcpState::Closed | TcpState::TimeWait) {
            self.fc.ack_now = true; // force poll_transmit to run once for RST
        }
        self.enter_closed(TcpError::Reset, true);
    }

    pub(crate) fn enter_closed(&mut self, err: TcpError, rst: bool) {
        if self.cm.state == TcpState::Closed {
            return;
        }
        self.cm.state = TcpState::Closed;
        self.error = Some(err);
        self.rel.rtx_deadline = None;
        self.fc.ack_deadline = None;
        self.fc.probe_deadline = None;
        self.cm.keepalive_deadline = None;
        self.events.push(if rst {
            SockEvent::Aborted(self.id)
        } else {
            SockEvent::Closed(self.id)
        });
    }

    pub(crate) fn enter_time_wait(&mut self, now: u64) {
        self.cm.state = TcpState::TimeWait;
        self.rel.rtx_deadline = None;
        self.cm.time_wait_deadline = Some(now + self.cfg.time_wait_ns);
        self.events.push(SockEvent::Closed(self.id));
    }

    pub(crate) fn enter_closed_graceful(&mut self) {
        self.cm.state = TcpState::Closed;
        self.rel.rtx_deadline = None;
        self.events.push(SockEvent::Closed(self.id));
    }

    pub(crate) fn on_segment_syn_sent(&mut self, h: &TcpHeader, now: u64) {
        if h.flags.ack && h.ack != self.cm.iss + 1 {
            // Unacceptable ACK; the stack sends the RST for us if needed.
            if !h.flags.rst {
                self.fc.ack_now = true;
            }
            return;
        }
        if h.flags.rst {
            if h.flags.ack {
                self.enter_closed(TcpError::Reset, false);
            }
            return;
        }
        if !h.flags.syn {
            return;
        }
        self.cm.irs = h.seq;
        self.fc.rcv_nxt = h.seq + 1;
        if let Some(m) = h.mss {
            self.mss = self.mss.min(m);
        }
        if let Some(ws) = h.window_scale {
            self.fc.snd_wscale = ws;
            self.fc.rcv_wscale = OUR_WSCALE;
        }
        self.fc.snd_wnd = (h.window as usize) << self.fc.snd_wscale;
        self.fc.snd_wl1 = h.seq;
        self.fc.snd_wl2 = h.ack;
        if h.flags.ack {
            // SYN-ACK: connection established.
            self.rel.send_buf.ack_to(h.ack);
            self.rel.snd_nxt = h.ack;
            let _ = self.sample_rtt(h.ack, now);
            self.cm.state = TcpState::Established;
            self.rel.retries = 0;
            self.rel.rtx_deadline = None;
            self.fc.ack_now = true;
            if self.cfg.keepalive_ns > 0 {
                self.cm.keepalive_deadline = Some(now + self.cfg.keepalive_ns);
            }
            self.events.push(SockEvent::Connected(self.id));
        } else {
            // Simultaneous open.
            self.cm.state = TcpState::SynReceived;
            self.cm.syn_sent = false; // re-emit as SYN-ACK
            self.arm_rtx(now);
        }
    }

    /// The ACK that completes a passive open (RFC 793 step 5 in
    /// SYN-RECEIVED). Returns false when the ACK is unacceptable and the
    /// rest of segment processing must be skipped.
    pub(crate) fn establish_syn_received(&mut self, h: &TcpHeader, now: u64) -> bool {
        if h.ack != self.cm.iss + 1 {
            // Unacceptable ACK in SYN-RECEIVED: ignore (stack RSTs).
            return false;
        }
        self.cm.state = TcpState::Established;
        self.rel.retries = 0;
        self.rel.rtx_deadline = None;
        self.fc.snd_wnd = (h.window as usize) << self.fc.snd_wscale;
        self.fc.snd_wl1 = h.seq;
        self.fc.snd_wl2 = h.ack;
        if self.cfg.keepalive_ns > 0 {
            self.cm.keepalive_deadline = Some(now + self.cfg.keepalive_ns);
        }
        let _ = self.sample_rtt(h.ack, now);
        self.events.push(SockEvent::Connected(self.id));
        true
    }

    /// RFC 793 step 8: peer FIN processing (in-order only; a FIN beyond a
    /// gap is re-ACKed so the peer retransmits).
    pub(crate) fn process_fin(&mut self, h: &TcpHeader, payload: &[u8], now: u64) {
        if !h.flags.fin {
            return;
        }
        let fin_seq = h.seq + payload.len() as u32;
        if fin_seq == self.fc.rcv_nxt && !self.cm.peer_fin_rcvd && self.fc.asm.is_empty() {
            self.cm.peer_fin_rcvd = true;
            self.fc.rcv_nxt += 1;
            self.fc.ack_now = true;
            self.events.push(SockEvent::PeerClosed(self.id));
            match self.cm.state {
                TcpState::Established => self.cm.state = TcpState::CloseWait,
                TcpState::FinWait1 => {
                    if self.fin_acked() {
                        self.enter_time_wait(now);
                    } else {
                        self.cm.state = TcpState::Closing;
                    }
                }
                TcpState::FinWait2 => self.enter_time_wait(now),
                _ => {}
            }
        } else if fin_seq - self.fc.rcv_nxt > 0 {
            // FIN beyond a gap: ACK what we have, peer will retransmit.
            self.fc.ack_now = true;
        }
    }

    pub(crate) fn fin_acked(&self) -> bool {
        match self.cm.fin_seq {
            Some(f) => self.snd_una() > f,
            None => false,
        }
    }

    pub(crate) fn fin_acked_at(&self, ack: SeqNum) -> bool {
        match self.cm.fin_seq {
            Some(f) => ack - f > 0,
            None => false,
        }
    }

    /// Emit the RST a local abort owes (Closed state only).
    pub(crate) fn transmit_rst(&mut self) -> Option<(TcpHeader, Vec<u8>)> {
        if self.fc.ack_now && self.error == Some(TcpError::Reset) {
            self.fc.ack_now = false;
            let h = TcpHeader::new(
                self.local_port,
                self.remote_port,
                self.rel.snd_nxt,
                self.fc.rcv_nxt,
                TcpFlags {
                    rst: true,
                    ack: true,
                    ..Default::default()
                },
            );
            self.tx_segments += 1;
            return Some((h, Vec::new()));
        }
        None
    }

    /// Emit our SYN (active open), once per `syn_sent` arming.
    pub(crate) fn transmit_syn(&mut self, now: u64) -> Option<(TcpHeader, Vec<u8>)> {
        if self.cm.syn_sent {
            return None;
        }
        self.cm.syn_sent = true;
        let mut h = TcpHeader::new(
            self.local_port,
            self.remote_port,
            self.cm.iss,
            SeqNum(0),
            TcpFlags::SYN,
        );
        h.mss = Some(self.cfg.mss);
        h.window_scale = Some(OUR_WSCALE);
        h.window = self.recv_window_bytes().min(u16::MAX as usize) as u16;
        self.rel.snd_nxt = self.cm.iss + 1;
        if self.rel.rtt_sample.is_none() {
            self.rel.rtt_sample = Some((self.cm.iss + 1, now));
        }
        self.tx_segments += 1;
        Some((h, Vec::new()))
    }

    /// Emit our SYN-ACK (passive open), once per `syn_sent` arming; an
    /// RTO re-arms it via `rtx_now`.
    pub(crate) fn transmit_syn_ack(&mut self, now: u64) -> Option<(TcpHeader, Vec<u8>)> {
        if !self.cm.syn_sent {
            self.cm.syn_sent = true;
            let mut h = TcpHeader::new(
                self.local_port,
                self.remote_port,
                self.cm.iss,
                self.fc.rcv_nxt,
                TcpFlags::syn_ack(),
            );
            h.mss = Some(self.cfg.mss);
            if self.fc.rcv_wscale > 0 {
                h.window_scale = Some(OUR_WSCALE);
            }
            h.window = self.recv_window_bytes().min(u16::MAX as usize) as u16;
            self.rel.snd_nxt = self.cm.iss + 1;
            if self.rel.rtt_sample.is_none() {
                self.rel.rtt_sample = Some((self.cm.iss + 1, now));
            }
            self.tx_segments += 1;
            return Some((h, Vec::new()));
        }
        if self.rel.rtx_now {
            self.rel.rtx_now = false;
            self.cm.syn_sent = false;
            return self.transmit_syn_ack(now);
        }
        None
    }

    /// FIN emission once the stream is fully sent (transmit step 3).
    pub(crate) fn transmit_fin(&mut self, now: u64) -> Option<(TcpHeader, Vec<u8>)> {
        let all_sent = self.rel.send_buf.len_from(self.rel.snd_nxt) == 0;
        let want_fin = matches!(
            self.cm.state,
            TcpState::FinWait1 | TcpState::LastAck | TcpState::Closing
        );
        if want_fin && all_sent && self.cm.fin_seq.is_none() {
            self.cm.fin_seq = Some(self.rel.snd_nxt);
            let mut h = TcpHeader::new(
                self.local_port,
                self.remote_port,
                self.rel.snd_nxt,
                self.fc.rcv_nxt,
                TcpFlags::fin_ack(),
            );
            h.window = self.window_field();
            self.rel.snd_nxt += 1;
            if self.rel.rtx_deadline.is_none() {
                self.arm_rtx(now);
            }
            self.fc.ack_pending = 0;
            self.fc.ack_deadline = None;
            self.fc.ack_now = false;
            self.tx_segments += 1;
            return Some((h, Vec::new()));
        }
        None
    }
}
