//! Reliability component: the retransmit queue (send buffer + `snd_nxt`),
//! RTO interaction with [`crate::rto`], dup-ack tracking (SACK-less fast
//! retransmit), and Karn's-rule RTT sampling.

use crate::buffer::SendBuffer;
use crate::components::congestion_control::AckEvent;
use crate::rto::RttEstimator;
use crate::socket::TcpSocket;
use crate::types::{SockEvent, TcpConfig, TcpError, TcpState};
use neat_net::{SeqNum, TcpFlags, TcpHeader};

/// State owned by reliability: every byte that may need to be sent again
/// and the timers/estimators that decide when.
#[derive(Debug)]
pub struct Reliability {
    pub(crate) send_buf: SendBuffer,
    /// Next sequence number to send.
    pub(crate) snd_nxt: SeqNum,
    pub(crate) rtx_deadline: Option<u64>,
    /// Retransmit one segment from snd_una on next poll.
    pub(crate) rtx_now: bool,
    pub(crate) rtt: RttEstimator,
    /// Outstanding RTT sample: (seq that must be acked, send time).
    pub(crate) rtt_sample: Option<(SeqNum, u64)>,
    pub(crate) retries: u32,
    pub(crate) dup_acks: u32,
}

impl Reliability {
    pub(crate) fn new(iss: SeqNum, cfg: &TcpConfig) -> Reliability {
        Reliability {
            send_buf: SendBuffer::new(iss + 1, cfg.send_buf),
            snd_nxt: iss,
            rtx_deadline: None,
            rtx_now: false,
            rtt: RttEstimator::new(cfg.initial_rto_ns),
            rtt_sample: None,
            retries: 0,
            dup_acks: 0,
        }
    }
}

/// Reliability logic: ACK clocking, RTO handling, (re)transmission.
impl TcpSocket {
    pub(crate) fn arm_rtx(&mut self, now: u64) {
        self.rel.rtx_deadline = Some(now + self.rel.rtt.rto());
    }

    pub(crate) fn handle_rto(&mut self, now: u64) {
        // Anything outstanding? (data, SYN, or FIN)
        let outstanding = self.bytes_in_flight() > 0
            || matches!(self.cm.state, TcpState::SynSent | TcpState::SynReceived)
            || (self.cm.fin_seq.is_some() && !self.fin_acked());
        if !outstanding {
            self.rel.rtx_deadline = None;
            return;
        }
        self.rel.retries += 1;
        if self.rel.retries > self.cfg.max_retries {
            self.enter_closed(TcpError::TimedOut, true);
            return;
        }
        self.retransmits += 1;
        neat_obs::counter_add("tcp.rto_retransmits", 1);
        self.rel.rtt.backoff();
        self.rel.rtt_sample = None; // Karn: no sampling across retransmits
        self.cc.on_rto(now);
        self.rel.rtx_now = true;
        if self.cm.state == TcpState::SynSent {
            self.cm.syn_sent = false; // resend SYN
        }
        self.arm_rtx(now);
    }

    /// Take the outstanding RTT measurement if `ack` covers it (Karn's
    /// rule: the sample is armed only on clean transmissions). Feeds the
    /// estimator and returns the measured RTT for the controller's
    /// [`AckEvent`].
    pub(crate) fn sample_rtt(&mut self, ack: SeqNum, now: u64) -> Option<u64> {
        if let Some((seq, sent)) = self.rel.rtt_sample {
            if ack - seq >= 0 {
                let rtt = now.saturating_sub(sent);
                self.rel.rtt.sample(rtt);
                self.rel.rtt_sample = None;
                return Some(rtt);
            }
        }
        None
    }

    /// RFC 793 step 5 ACK processing in a synchronized state: cumulative
    /// ACK advance or dup-ack accounting. Returns false when the socket
    /// closed (LastAck) and the caller must stop processing the segment.
    pub(crate) fn process_ack(&mut self, h: &TcpHeader, payload: &[u8], now: u64) -> bool {
        let una_before = self.snd_una();
        let snd_end = self
            .cm
            .fin_seq
            .map(|f| f + 1)
            .unwrap_or(self.rel.send_buf.end());
        if h.ack - una_before > 0 && h.ack - snd_end <= 0 {
            // New data acknowledged (the FIN's sequence slot is covered by
            // `snd_end`; `ack_to` clamps to buffered bytes).
            let acked = self.rel.send_buf.ack_to(h.ack);
            if self.rel.snd_nxt - h.ack < 0 {
                self.rel.snd_nxt = h.ack;
            }
            self.rel.retries = 0;
            self.rel.dup_acks = 0;
            let rtt_sample = self.sample_rtt(h.ack, now);
            let ev = AckEvent {
                newly_acked: acked.max(1),
                rtt_sample,
                now_ns: now,
                in_flight: self.bytes_in_flight(),
            };
            self.cc.on_ack(&ev);
            if acked > 0 && self.rel.send_buf.room() > 0 {
                self.events.push(SockEvent::Writable(self.id));
            }
            // Restart or stop the retransmission timer.
            let outstanding = self.bytes_in_flight() > 0
                || (self.cm.fin_seq.is_some() && !self.fin_acked_at(h.ack));
            if outstanding {
                self.arm_rtx(now);
            } else {
                self.rel.rtx_deadline = None;
            }
            // Close-handshake progress.
            if self.fin_acked_at(h.ack) {
                match self.cm.state {
                    TcpState::FinWait1 => self.cm.state = TcpState::FinWait2,
                    TcpState::Closing => self.enter_time_wait(now),
                    TcpState::LastAck => {
                        self.enter_closed_graceful();
                        return false;
                    }
                    _ => {}
                }
            }
        } else if h.ack == una_before {
            // Potential duplicate ACK (RFC 5681: no data, no window change,
            // outstanding data exists).
            let window_changed = ((h.window as usize) << self.fc.snd_wscale) != self.fc.snd_wnd;
            if payload.is_empty() && !window_changed && self.bytes_in_flight() > 0 {
                self.rel.dup_acks += 1;
                if self.rel.dup_acks == 3 {
                    self.cc.on_loss(now);
                    self.rel.rtx_now = true;
                    self.retransmits += 1;
                    neat_obs::counter_add("tcp.fast_retransmits", 1);
                    self.rel.rtt_sample = None;
                }
            }
        }
        true
    }

    /// Transmit step 1: retransmission (RTO, fast retransmit, or
    /// zero-window probe) — one segment from `snd_una`, or the FIN.
    pub(crate) fn rtx_transmit(&mut self) -> Option<(TcpHeader, Vec<u8>)> {
        if !self.rel.rtx_now {
            return None;
        }
        self.rel.rtx_now = false;
        let una = self.snd_una();
        let avail = self.rel.send_buf.len_from(una);
        if avail > 0 {
            let len = avail.min(self.mss as usize).max(1);
            let data = self.rel.send_buf.peek(una, len);
            let mut h = TcpHeader::new(
                self.local_port,
                self.remote_port,
                una,
                self.fc.rcv_nxt,
                TcpFlags::psh_ack(),
            );
            h.window = self.window_field();
            self.fc.ack_pending = 0;
            self.fc.ack_deadline = None;
            self.fc.ack_now = false;
            self.tx_segments += 1;
            return Some((h, data));
        }
        if let Some(fin_seq) = self.cm.fin_seq {
            if !self.fin_acked() {
                // Retransmit the FIN.
                let mut h = TcpHeader::new(
                    self.local_port,
                    self.remote_port,
                    fin_seq,
                    self.fc.rcv_nxt,
                    TcpFlags::fin_ack(),
                );
                h.window = self.window_field();
                self.tx_segments += 1;
                return Some((h, Vec::new()));
            }
        }
        None
    }

    /// Transmit step 2: new data within the usable window, sized by the
    /// controller's [`CcDecision`](crate::components::CcDecision) — cwnd
    /// caps the window, `pacing_gate` caps the burst at one MSS.
    pub(crate) fn transmit_new_data(&mut self, now: u64) -> Option<(TcpHeader, Vec<u8>)> {
        let decision = self.cc.decision();
        let window = self.fc.snd_wnd.min(decision.cwnd);
        let in_flight = self.bytes_in_flight();
        let usable = window.saturating_sub(in_flight);
        let pending = self.rel.send_buf.len_from(self.rel.snd_nxt);
        if pending == 0 && usable > 0 && self.cm.fin_seq.is_none() && self.cm.state.can_send() {
            // Window open but nothing to send: rate samples taken this
            // round under-estimate the path (BBR's app-limited marker).
            self.cc.on_app_limited(now);
        }
        if pending > 0 && usable > 0 && self.cm.fin_seq.is_none() {
            // GSO: hand the NIC a super-segment; it splits to MSS frames.
            // A pacing-gated controller gets plain per-MSS segments.
            let burst = if decision.pacing_gate {
                self.mss as usize
            } else {
                self.cfg.gso_burst.max(self.mss as usize).min(61_440)
            };
            let len = pending.min(usable).min(burst);
            // Nagle: hold sub-MSS segments while data is in flight.
            let nagle_blocks = self.cfg.nagle && in_flight > 0 && len < self.mss as usize;
            if !nagle_blocks && len > 0 {
                let data = self.rel.send_buf.peek(self.rel.snd_nxt, len);
                let mut h = TcpHeader::new(
                    self.local_port,
                    self.remote_port,
                    self.rel.snd_nxt,
                    self.fc.rcv_nxt,
                    TcpFlags::psh_ack(),
                );
                h.window = self.window_field();
                if self.rel.rtt_sample.is_none() {
                    self.rel.rtt_sample = Some((self.rel.snd_nxt + len as u32, now));
                }
                self.rel.snd_nxt += len as u32;
                if self.rel.rtx_deadline.is_none() {
                    self.arm_rtx(now);
                }
                self.fc.ack_pending = 0;
                self.fc.ack_deadline = None;
                self.fc.ack_now = false;
                self.tx_segments += 1;
                return Some((h, data));
            }
        }
        None
    }
}
