//! The four owned-state components a [`crate::TcpSocket`] is built from
//! (the paper's component decomposition applied to the transport itself):
//!
//! * [`conn_mgmt`] — the RFC 793 state machine: handshake, teardown,
//!   TIME_WAIT and keepalive lifecycle state.
//! * [`reliability`] — the retransmit queue: send buffer, RTO/backoff
//!   interaction with [`crate::rto`], dup-ack tracking, Karn's rule.
//! * [`flow_control`] — the receive side: reassembly, receive buffer,
//!   advertised window, ACK generation, zero-window probing.
//! * [`congestion_control`] — the event-driven controller API plus the
//!   Reno/CUBIC/BBR-style/DCTCP-style implementations.
//!
//! Each component owns its state struct exclusively (see DESIGN.md's
//! "TCP component map" for the field-by-field ownership table); the
//! socket is a thin coordinator that routes `on_segment` / `on_timer` /
//! `poll_transmit` stimuli between them. The cross-component logic lives
//! in `impl TcpSocket` blocks inside each component's file, so every
//! rule reads next to the state it owns.

pub mod congestion_control;
pub mod conn_mgmt;
pub mod flow_control;
pub mod reliability;

pub use congestion_control::{make, AckEvent, CcDecision, CongestionControl};
pub use conn_mgmt::ConnMgmt;
pub use flow_control::FlowControl;
pub use reliability::Reliability;
