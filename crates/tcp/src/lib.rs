//! # neat-tcp — a from-scratch TCP engine
//!
//! This is the protocol engine at the heart of the NEaT reproduction. One
//! [`TcpStack`] instance is exactly the paper's unit of partitioning: each
//! NEaT replica owns one, the monolithic baseline shares one behind a lock,
//! and the load generator drives several. A stack instance is strictly
//! single-threaded and owns all of its state — the paper's isolation
//! principle — and is driven from outside by three kinds of stimuli:
//! inbound segments, timer ticks, and user socket calls.
//!
//! Implemented (cf. the smoltcp feature checklist the repro is scoped by):
//!
//! * the full RFC 793 state machine, active and passive open, simultaneous
//!   close, TIME_WAIT with configurable timeout;
//! * sliding-window flow control with window scaling and MSS negotiation;
//! * retransmission with RFC 6298 RTT estimation, exponential backoff and
//!   Karn's rule; fast retransmit on three duplicate ACKs;
//! * out-of-order reassembly; delayed ACKs; Nagle's algorithm;
//! * congestion control behind an event-driven API: Reno, CUBIC (with
//!   RFC 8312 fast convergence), a BBR-style model-based controller, and
//!   a DCTCP-style proportional controller — selectable per stack or per
//!   socket via [`SockOpt::CongestionAlgo`];
//! * per-socket options ([`SockOpt`]): congestion algorithm, initial
//!   cwnd, receive-buffer size;
//! * zero-window probing; SYN backlog + accept queues on listeners;
//! * ephemeral port allocation, RST generation and handling.
//!
//! The socket itself is a thin coordinator over four owned-state
//! components (see [`components`]): connection management, reliability,
//! flow control, and congestion control.

pub mod assembler;
pub mod budget;
pub mod buffer;
pub mod components;
pub mod demux;
pub mod rto;
pub mod socket;
pub mod stack;
pub mod tcb;
pub mod types;
pub mod wheel;

#[cfg(test)]
mod proptests;

pub use budget::ConnBudget;
pub use components::{AckEvent, CcDecision, CongestionControl};
pub use demux::DemuxTable;
pub use rto::RttSnapshot;
pub use socket::TcpSocket;
pub use stack::TcpStack;
pub use tcb::TcbImage;
pub use types::{
    CongestionAlgo, Readiness, SockEvent, SockOpt, SockOptKind, SocketId, TcpConfig, TcpError,
    TcpState,
};
pub use wheel::TimerWheel;
