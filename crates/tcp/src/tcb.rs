//! TCB checkpoint images for flow replication (§3.6 extension).
//!
//! [`TcbImage`] is the serializable per-connection state one replica
//! ships to its buddy so a restarted (or rebalanced) replica can resume
//! the flow. `snapshot → restore → snapshot` is exactly the identity on
//! this image space (property-tested), so a flow survives any number of
//! hops unchanged.

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::components;
use crate::rto::RttEstimator;
use crate::socket::TcpSocket;
use crate::types::{CongestionAlgo, SocketId, TcpConfig, TcpState};
use neat_net::SeqNum;
use std::net::Ipv4Addr;

/// A serializable TCB checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcbImage {
    pub state: TcpState,
    pub local_ip: Ipv4Addr,
    pub local_port: u16,
    pub remote_ip: Ipv4Addr,
    pub remote_port: u16,
    pub iss: SeqNum,
    pub irs: SeqNum,
    pub snd_nxt: SeqNum,
    pub snd_wnd: u64,
    pub snd_wl1: SeqNum,
    pub snd_wl2: SeqNum,
    pub mss: u16,
    pub snd_wscale: u8,
    pub rcv_wscale: u8,
    pub syn_sent: bool,
    pub send_base: SeqNum,
    pub send_data: Vec<u8>,
    pub send_cap: u64,
    pub rcv_nxt: SeqNum,
    pub recv_data: Vec<u8>,
    pub recv_cap: u64,
    pub peer_fin_rcvd: bool,
    pub close_requested: bool,
    pub fin_seq: Option<SeqNum>,
    pub rtx_deadline: Option<u64>,
    pub rtx_now: bool,
    pub retries: u32,
    pub dup_acks: u32,
    pub rtt: crate::rto::RttSnapshot,
    pub ack_pending: u32,
    pub ack_deadline: Option<u64>,
    pub ack_now: bool,
    pub time_wait_deadline: Option<u64>,
    pub probe_deadline: Option<u64>,
    pub keepalive_deadline: Option<u64>,
    pub tx_segments: u64,
    pub rx_segments: u64,
    pub retransmits: u64,
    /// Controller selected for this flow (set per-socket via
    /// `SockOpt::CongestionAlgo`); the restored side re-instantiates the
    /// same algorithm from slow-start parameters.
    pub cc_algo: CongestionAlgo,
}

/// Checkpoint / restore for flow replication.
impl TcpSocket {
    /// Capture the transferable TCB: everything a peer replica needs to
    /// resume this connection. The congestion controller's *dynamic*
    /// state, the out-of-order assembler, and the outstanding RTT sample
    /// are deliberately not part of the image — cc restarts from
    /// slow-start parameters (but keeps its selected algorithm), ooo
    /// segments are refilled by peer retransmission, and Karn's rule says
    /// a sample that spans a migration must be discarded anyway.
    pub fn snapshot(&self) -> TcbImage {
        TcbImage {
            state: self.cm.state,
            local_ip: self.local_ip,
            local_port: self.local_port,
            remote_ip: self.remote_ip,
            remote_port: self.remote_port,
            iss: self.cm.iss,
            irs: self.cm.irs,
            snd_nxt: self.rel.snd_nxt,
            snd_wnd: self.fc.snd_wnd as u64,
            snd_wl1: self.fc.snd_wl1,
            snd_wl2: self.fc.snd_wl2,
            mss: self.mss,
            snd_wscale: self.fc.snd_wscale,
            rcv_wscale: self.fc.rcv_wscale,
            syn_sent: self.cm.syn_sent,
            send_base: self.rel.send_buf.base(),
            send_data: self.rel.send_buf.contents(),
            send_cap: (self.rel.send_buf.room() + self.rel.send_buf.len()) as u64,
            rcv_nxt: self.fc.rcv_nxt,
            recv_data: self.fc.recv_buf.contents(),
            recv_cap: (self.fc.recv_buf.window() + self.fc.recv_buf.len()) as u64,
            peer_fin_rcvd: self.cm.peer_fin_rcvd,
            close_requested: self.cm.close_requested,
            fin_seq: self.cm.fin_seq,
            rtx_deadline: self.rel.rtx_deadline,
            rtx_now: self.rel.rtx_now,
            retries: self.rel.retries,
            dup_acks: self.rel.dup_acks,
            rtt: self.rel.rtt.snapshot(),
            ack_pending: self.fc.ack_pending,
            ack_deadline: self.fc.ack_deadline,
            ack_now: self.fc.ack_now,
            time_wait_deadline: self.cm.time_wait_deadline,
            probe_deadline: self.fc.probe_deadline,
            keepalive_deadline: self.cm.keepalive_deadline,
            tx_segments: self.tx_segments,
            rx_segments: self.rx_segments,
            retransmits: self.retransmits,
            cc_algo: self.cc.algo(),
        }
    }

    /// Rebuild a socket from a checkpoint under a (possibly new) id. The
    /// deadlines in the image are absolute simulation times, so a deadline
    /// that expired while the flow was in transit fires on the next timer
    /// tick — which is exactly the retransmission that re-synchronizes the
    /// peer after the migration gap.
    pub fn restore(id: SocketId, cfg: &TcpConfig, img: &TcbImage) -> TcpSocket {
        let mut s = TcpSocket::new(id, cfg, img.iss);
        s.cm.state = img.state;
        s.local_ip = img.local_ip;
        s.local_port = img.local_port;
        s.remote_ip = img.remote_ip;
        s.remote_port = img.remote_port;
        s.cm.irs = img.irs;
        s.rel.snd_nxt = img.snd_nxt;
        s.fc.snd_wnd = img.snd_wnd as usize;
        s.fc.snd_wl1 = img.snd_wl1;
        s.fc.snd_wl2 = img.snd_wl2;
        s.mss = img.mss;
        s.fc.snd_wscale = img.snd_wscale;
        s.fc.rcv_wscale = img.rcv_wscale;
        s.cm.syn_sent = img.syn_sent;
        s.rel.send_buf =
            SendBuffer::from_parts(img.send_base, img.send_data.clone(), img.send_cap as usize);
        s.fc.rcv_nxt = img.rcv_nxt;
        s.fc.recv_buf = RecvBuffer::from_parts(img.recv_data.clone(), img.recv_cap as usize);
        s.cm.peer_fin_rcvd = img.peer_fin_rcvd;
        s.cm.close_requested = img.close_requested;
        s.cm.fin_seq = img.fin_seq;
        s.rel.rtx_deadline = img.rtx_deadline;
        s.rel.rtx_now = img.rtx_now;
        s.rel.retries = img.retries;
        s.rel.dup_acks = img.dup_acks;
        s.rel.rtt = RttEstimator::restore(&img.rtt);
        s.cc = components::make(img.cc_algo, img.mss);
        s.fc.ack_pending = img.ack_pending;
        s.fc.ack_deadline = img.ack_deadline;
        s.fc.ack_now = img.ack_now;
        s.cm.time_wait_deadline = img.time_wait_deadline;
        s.fc.probe_deadline = img.probe_deadline;
        s.cm.keepalive_deadline = img.keepalive_deadline;
        s.tx_segments = img.tx_segments;
        s.rx_segments = img.rx_segments;
        s.retransmits = img.retransmits;
        s
    }
}

/// Wire format version tag — the first byte of every encoded image.
/// V2 appends the selected congestion algorithm; V1 images (no trailing
/// algorithm byte) no longer decode — replicas upgrade in lockstep.
const TCB_IMAGE_V2: u8 = 2;

impl TcbImage {
    /// Does this state carry resumable stream state worth replicating?
    /// Handshake-in-progress and torn-down flows are recreated (or
    /// forgotten) by the normal protocol machinery instead.
    pub fn replicable(state: TcpState) -> bool {
        matches!(
            state,
            TcpState::Established
                | TcpState::FinWait1
                | TcpState::FinWait2
                | TcpState::Closing
                | TcpState::CloseWait
                | TcpState::LastAck
        )
    }

    /// Serialize to the little-endian byte format that travels on the
    /// replication channel.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(160 + self.send_data.len() + self.recv_data.len());
        w.push(TCB_IMAGE_V2);
        w.push(state_code(self.state));
        w.extend(self.local_ip.octets());
        w.extend(self.local_port.to_le_bytes());
        w.extend(self.remote_ip.octets());
        w.extend(self.remote_port.to_le_bytes());
        for seq in [
            self.iss,
            self.irs,
            self.snd_nxt,
            self.snd_wl1,
            self.snd_wl2,
            self.send_base,
            self.rcv_nxt,
        ] {
            w.extend(seq.0.to_le_bytes());
        }
        w.extend(self.snd_wnd.to_le_bytes());
        w.extend(self.mss.to_le_bytes());
        w.push(self.snd_wscale);
        w.push(self.rcv_wscale);
        put_bool(&mut w, self.syn_sent);
        put_bytes(&mut w, &self.send_data);
        w.extend(self.send_cap.to_le_bytes());
        put_bytes(&mut w, &self.recv_data);
        w.extend(self.recv_cap.to_le_bytes());
        put_bool(&mut w, self.peer_fin_rcvd);
        put_bool(&mut w, self.close_requested);
        put_opt_u64(&mut w, self.fin_seq.map(|s| s.0 as u64));
        put_opt_u64(&mut w, self.rtx_deadline);
        put_bool(&mut w, self.rtx_now);
        w.extend(self.retries.to_le_bytes());
        w.extend(self.dup_acks.to_le_bytes());
        put_opt_u64(&mut w, self.rtt.srtt_bits);
        w.extend(self.rtt.rttvar_bits.to_le_bytes());
        w.extend(self.rtt.rto_ns.to_le_bytes());
        w.extend(self.rtt.base_rto_ns.to_le_bytes());
        w.extend(self.rtt.backoffs.to_le_bytes());
        w.extend(self.ack_pending.to_le_bytes());
        put_opt_u64(&mut w, self.ack_deadline);
        put_bool(&mut w, self.ack_now);
        put_opt_u64(&mut w, self.time_wait_deadline);
        put_opt_u64(&mut w, self.probe_deadline);
        put_opt_u64(&mut w, self.keepalive_deadline);
        w.extend(self.tx_segments.to_le_bytes());
        w.extend(self.rx_segments.to_le_bytes());
        w.extend(self.retransmits.to_le_bytes());
        w.push(algo_code(self.cc_algo));
        w
    }

    /// Parse an encoded image; `None` on truncation, bad version, or an
    /// unknown state code (a corrupt checkpoint must never install).
    pub fn decode(bytes: &[u8]) -> Option<TcbImage> {
        let mut r = Reader { b: bytes, at: 0 };
        if r.u8()? != TCB_IMAGE_V2 {
            return None;
        }
        let state = state_from_code(r.u8()?)?;
        let local_ip = Ipv4Addr::from(r.arr4()?);
        let local_port = r.u16()?;
        let remote_ip = Ipv4Addr::from(r.arr4()?);
        let remote_port = r.u16()?;
        let iss = SeqNum(r.u32()?);
        let irs = SeqNum(r.u32()?);
        let snd_nxt = SeqNum(r.u32()?);
        let snd_wl1 = SeqNum(r.u32()?);
        let snd_wl2 = SeqNum(r.u32()?);
        let send_base = SeqNum(r.u32()?);
        let rcv_nxt = SeqNum(r.u32()?);
        let snd_wnd = r.u64()?;
        let mss = r.u16()?;
        let snd_wscale = r.u8()?;
        let rcv_wscale = r.u8()?;
        let syn_sent = r.boolean()?;
        let send_data = r.bytes()?;
        let send_cap = r.u64()?;
        let recv_data = r.bytes()?;
        let recv_cap = r.u64()?;
        let peer_fin_rcvd = r.boolean()?;
        let close_requested = r.boolean()?;
        let fin_seq = r.opt_u64()?.map(|v| SeqNum(v as u32));
        let rtx_deadline = r.opt_u64()?;
        let rtx_now = r.boolean()?;
        let retries = r.u32()?;
        let dup_acks = r.u32()?;
        let rtt = crate::rto::RttSnapshot {
            srtt_bits: r.opt_u64()?,
            rttvar_bits: r.u64()?,
            rto_ns: r.u64()?,
            base_rto_ns: r.u64()?,
            backoffs: r.u32()?,
        };
        let ack_pending = r.u32()?;
        let ack_deadline = r.opt_u64()?;
        let ack_now = r.boolean()?;
        let time_wait_deadline = r.opt_u64()?;
        let probe_deadline = r.opt_u64()?;
        let keepalive_deadline = r.opt_u64()?;
        let tx_segments = r.u64()?;
        let rx_segments = r.u64()?;
        let retransmits = r.u64()?;
        let cc_algo = algo_from_code(r.u8()?)?;
        Some(TcbImage {
            state,
            local_ip,
            local_port,
            remote_ip,
            remote_port,
            iss,
            irs,
            snd_nxt,
            snd_wnd,
            snd_wl1,
            snd_wl2,
            mss,
            snd_wscale,
            rcv_wscale,
            syn_sent,
            send_base,
            send_data,
            send_cap,
            rcv_nxt,
            recv_data,
            recv_cap,
            peer_fin_rcvd,
            close_requested,
            fin_seq,
            rtx_deadline,
            rtx_now,
            retries,
            dup_acks,
            rtt,
            ack_pending,
            ack_deadline,
            ack_now,
            time_wait_deadline,
            probe_deadline,
            keepalive_deadline,
            tx_segments,
            rx_segments,
            retransmits,
            cc_algo,
        })
    }

    /// Heap footprint of the image (replication-store accounting).
    pub fn heap_bytes(&self) -> usize {
        self.send_data.capacity() + self.recv_data.capacity()
    }
}

fn state_code(s: TcpState) -> u8 {
    match s {
        TcpState::Closed => 0,
        TcpState::Listen => 1,
        TcpState::SynSent => 2,
        TcpState::SynReceived => 3,
        TcpState::Established => 4,
        TcpState::FinWait1 => 5,
        TcpState::FinWait2 => 6,
        TcpState::Closing => 7,
        TcpState::TimeWait => 8,
        TcpState::CloseWait => 9,
        TcpState::LastAck => 10,
    }
}

fn state_from_code(c: u8) -> Option<TcpState> {
    Some(match c {
        0 => TcpState::Closed,
        1 => TcpState::Listen,
        2 => TcpState::SynSent,
        3 => TcpState::SynReceived,
        4 => TcpState::Established,
        5 => TcpState::FinWait1,
        6 => TcpState::FinWait2,
        7 => TcpState::Closing,
        8 => TcpState::TimeWait,
        9 => TcpState::CloseWait,
        10 => TcpState::LastAck,
        _ => return None,
    })
}

fn algo_code(a: CongestionAlgo) -> u8 {
    match a {
        CongestionAlgo::Reno => 0,
        CongestionAlgo::Cubic => 1,
        CongestionAlgo::None => 2,
        CongestionAlgo::Bbr => 3,
        CongestionAlgo::Dctcp => 4,
    }
}

fn algo_from_code(c: u8) -> Option<CongestionAlgo> {
    Some(match c {
        0 => CongestionAlgo::Reno,
        1 => CongestionAlgo::Cubic,
        2 => CongestionAlgo::None,
        3 => CongestionAlgo::Bbr,
        4 => CongestionAlgo::Dctcp,
        _ => return None,
    })
}

fn put_bool(w: &mut Vec<u8>, v: bool) {
    w.push(v as u8);
}

fn put_bytes(w: &mut Vec<u8>, v: &[u8]) {
    w.extend((v.len() as u32).to_le_bytes());
    w.extend(v);
}

fn put_opt_u64(w: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            w.push(1);
            w.extend(x.to_le_bytes());
        }
        None => w.push(0),
    }
}

/// Bounds-checked little-endian reader over an encoded image.
struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let s = &self.b[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn boolean(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn arr4(&mut self) -> Option<[u8; 4]> {
        self.take(4)?.try_into().ok()
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        Some(self.take(n)?.to_vec())
    }

    fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u64()?)),
            _ => None,
        }
    }
}
