//! Hashed TCB demultiplexing table: 4-tuple -> socket in O(1).
//!
//! Every inbound segment resolves its connection here, so this is the
//! single hottest lookup in the stack. The table is a flat
//! open-addressing hash table (linear probing, backward-shift deletion,
//! power-of-two capacity) keyed on the flow 4-tuple:
//!
//! * **One cache line per hit.** Entries are stored inline
//!   (`(FlowKey, SocketId)` is 24 bytes); a lookup is one mix, one
//!   masked index and a short linear scan — no per-node allocation, no
//!   SipHash, no bucket pointer chase.
//! * **Tombstone-free deletion.** Removal back-shifts the displaced run,
//!   so long-lived stacks with heavy connection churn (the lazy
//!   termination GC of §3.4) never degrade into tombstone crawls.
//! * **Keyed mix.** The hash folds a per-table key (derived from the
//!   deterministic seed path) into an FxHash-style mix, so remote peers
//!   cannot aim collision floods at a known function — the same reason
//!   the security bench randomizes layout (§3.8).
//! * **Deterministic.** For a fixed insertion/removal history the table
//!   layout is identical on every run; nothing here reads OS entropy.
//!
//! Growth doubles the array at 7/8 occupancy; with the default initial
//! capacity a million-connection table settles at 2^21 slots (~48 MiB)
//! after a handful of rehashes.

use crate::types::SocketId;
use neat_net::FlowKey;

/// Flat open-addressing flow table.
#[derive(Debug)]
pub struct DemuxTable {
    slots: Vec<Option<(FlowKey, SocketId)>>,
    mask: usize,
    len: usize,
    key: u64,
}

const INITIAL_SLOTS: usize = 64;

impl DemuxTable {
    /// An empty table. `key` perturbs the hash (pass a fixed value for
    /// reproducible layouts, a secret for flood resistance).
    pub fn new(key: u64) -> DemuxTable {
        DemuxTable {
            slots: vec![None; INITIAL_SLOTS],
            mask: INITIAL_SLOTS - 1,
            len: 0,
            key,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slot count (capacity accounting).
    pub fn capacity_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<(FlowKey, SocketId)>>()
    }

    #[inline]
    fn hash(&self, k: &FlowKey) -> u64 {
        // Two rounds of the FxHash mix over the packed tuple, keyed.
        const M: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let a = (u32::from(k.src) as u64) << 32 | u32::from(k.dst) as u64;
        let b = (k.src_port as u64) << 32 | (k.dst_port as u64) << 16 | k.protocol as u64;
        let mut h = self.key;
        h = (h.rotate_left(5) ^ a).wrapping_mul(M);
        h = (h.rotate_left(5) ^ b).wrapping_mul(M);
        // Finalizer so low bits depend on every input bit (the index is
        // taken from the low bits).
        h ^= h >> 32;
        h.wrapping_mul(M)
    }

    #[inline]
    fn ideal(&self, k: &FlowKey) -> usize {
        (self.hash(k) as usize) & self.mask
    }

    /// Probe distance of the entry at `idx` whose ideal slot is `ideal`.
    #[inline]
    fn distance(&self, ideal: usize, idx: usize) -> usize {
        idx.wrapping_sub(ideal) & self.mask
    }

    /// O(1) expected lookup.
    #[inline]
    pub fn get(&self, k: &FlowKey) -> Option<SocketId> {
        let mut i = self.ideal(k);
        let mut dist = 0;
        loop {
            match self.slots[i] {
                None => return None,
                Some((fk, id)) => {
                    if fk == *k {
                        return Some(id);
                    }
                    // Robin-Hood invariant: once we've probed further
                    // than the resident's own distance, the key is absent.
                    if self.distance(self.ideal(&fk), i) < dist {
                        return None;
                    }
                }
            }
            i = (i + 1) & self.mask;
            dist += 1;
        }
    }

    pub fn contains_key(&self, k: &FlowKey) -> bool {
        self.get(k).is_some()
    }

    /// Insert or replace; returns the previous id for `k`, if any.
    pub fn insert(&mut self, k: FlowKey, id: SocketId) -> Option<SocketId> {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = self.ideal(&k);
        let mut entry = (k, id);
        let mut dist = 0;
        let mut displacing = false;
        loop {
            match self.slots[i] {
                None => {
                    self.slots[i] = Some(entry);
                    self.len += 1;
                    return None;
                }
                Some((fk, old)) => {
                    if !displacing && fk == entry.0 {
                        self.slots[i] = Some((fk, entry.1));
                        return Some(old);
                    }
                    // Robin Hood: displace richer residents so probe
                    // lengths stay short and bounded.
                    let res_dist = self.distance(self.ideal(&fk), i);
                    if res_dist < dist {
                        self.slots[i] = Some(entry);
                        entry = (fk, old);
                        dist = res_dist;
                        // From here on we carry a displaced resident;
                        // equality hits would be against itself.
                        displacing = true;
                    }
                }
            }
            i = (i + 1) & self.mask;
            dist += 1;
        }
    }

    /// Remove `k`, back-shifting the displaced run (no tombstones).
    pub fn remove(&mut self, k: &FlowKey) -> Option<SocketId> {
        let mut i = self.ideal(k);
        let mut dist = 0;
        let removed = loop {
            match self.slots[i] {
                None => return None,
                Some((fk, id)) => {
                    if fk == *k {
                        break id;
                    }
                    if self.distance(self.ideal(&fk), i) < dist {
                        return None;
                    }
                }
            }
            i = (i + 1) & self.mask;
            dist += 1;
        };
        // Back-shift: pull each follower one slot left until a hole or an
        // entry already at its ideal slot.
        let mut hole = i;
        loop {
            let next = (hole + 1) & self.mask;
            match self.slots[next] {
                None => break,
                Some((fk, _)) => {
                    if self.distance(self.ideal(&fk), next) == 0 {
                        break;
                    }
                }
            }
            self.slots[hole] = self.slots[next].take();
            hole = next;
        }
        self.slots[hole] = None;
        self.len -= 1;
        Some(removed)
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for e in old.into_iter().flatten() {
            self.insert(e.0, e.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(a: u8, p: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, a),
            p,
            Ipv4Addr::new(10, 0, 0, 200),
            80,
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut t = DemuxTable::new(42);
        assert!(t.insert(key(1, 1000), SocketId(7)).is_none());
        assert_eq!(t.get(&key(1, 1000)), Some(SocketId(7)));
        assert_eq!(t.get(&key(1, 1001)), None);
        assert_eq!(t.insert(key(1, 1000), SocketId(9)), Some(SocketId(7)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&key(1, 1000)), Some(SocketId(9)));
        assert_eq!(t.remove(&key(1, 1000)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn grows_past_load_factor() {
        let mut t = DemuxTable::new(1);
        for p in 0..10_000u16 {
            t.insert(key((p % 251) as u8, p), SocketId(p as u64));
        }
        assert_eq!(t.len(), 10_000);
        for p in 0..10_000u16 {
            assert_eq!(t.get(&key((p % 251) as u8, p)), Some(SocketId(p as u64)));
        }
    }

    #[test]
    fn churn_does_not_degrade() {
        // Insert/remove cycles leave no tombstones: the table keeps
        // resolving correctly through heavy churn.
        let mut t = DemuxTable::new(3);
        for round in 0..50u16 {
            for p in 0..500u16 {
                t.insert(key(1, p), SocketId((round as u64) << 16 | p as u64));
            }
            for p in (0..500u16).step_by(2) {
                assert!(t.remove(&key(1, p)).is_some());
            }
            for p in (1..500u16).step_by(2) {
                assert_eq!(
                    t.get(&key(1, p)),
                    Some(SocketId((round as u64) << 16 | p as u64))
                );
            }
            for p in (1..500u16).step_by(2) {
                t.remove(&key(1, p));
            }
            assert!(t.is_empty(), "round {round}");
        }
    }
}
