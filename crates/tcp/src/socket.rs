//! The per-connection TCP state machine (RFC 793 + RFC 5681 + RFC 6298).
//!
//! A [`TcpSocket`] is driven by three stimuli — inbound segments, timer
//! expiry, and user calls — and produces outbound segments via
//! [`TcpSocket::poll_transmit`] plus user-visible [`SockEvent`]s. It never
//! touches anything outside itself: the owning stack does demultiplexing,
//! port allocation, and wire I/O.

use crate::assembler::Assembler;
use crate::buffer::{RecvBuffer, SendBuffer};
use crate::congestion::{self, CongestionControl};
use crate::rto::RttEstimator;
use crate::types::{SockEvent, SocketId, TcpConfig, TcpError, TcpState};
use neat_net::{SeqNum, TcpFlags, TcpHeader};
use std::net::Ipv4Addr;

/// The window-scale shift we advertise on SYN segments.
const OUR_WSCALE: u8 = 7;

/// Flat estimate for the boxed congestion-controller state (Reno/CUBIC
/// are both a handful of words; the box allocation dominates).
const CC_BOX_BYTES: usize = 64;

/// One end of a TCP connection.
#[derive(Debug)]
pub struct TcpSocket {
    pub id: SocketId,
    state: TcpState,
    cfg: TcpConfig,

    pub local_ip: Ipv4Addr,
    pub local_port: u16,
    pub remote_ip: Ipv4Addr,
    pub remote_port: u16,

    // --- send sequence space (RFC 793 §3.2) ---
    /// Oldest unacknowledged sequence number (== send_buf.base()).
    snd_nxt: SeqNum,
    /// Peer's advertised window in bytes (already scaled).
    snd_wnd: usize,
    /// Segment seq/ack used for the last window update (RFC 793 wl1/wl2).
    snd_wl1: SeqNum,
    snd_wl2: SeqNum,
    iss: SeqNum,
    send_buf: SendBuffer,
    /// Effective MSS: min(ours, peer's option).
    mss: u16,
    /// Peer's window-scale shift (0 if not negotiated).
    snd_wscale: u8,
    /// Our advertised shift (0 until negotiated on SYN).
    rcv_wscale: u8,
    /// The SYN we sent has been transmitted at least once.
    syn_sent: bool,

    // --- receive sequence space ---
    rcv_nxt: SeqNum,
    irs: SeqNum,
    recv_buf: RecvBuffer,
    asm: Assembler,
    /// Peer FIN consumed (sequence-wise).
    peer_fin_rcvd: bool,

    // --- close handshake ---
    /// User called close(): send FIN once the buffer drains.
    close_requested: bool,
    /// Sequence number our FIN occupies, once sent.
    fin_seq: Option<SeqNum>,

    // --- retransmission ---
    rtx_deadline: Option<u64>,
    /// Retransmit one segment from snd_una on next poll.
    rtx_now: bool,
    rtt: RttEstimator,
    /// Outstanding RTT sample: (seq that must be acked, send time).
    rtt_sample: Option<(SeqNum, u64)>,
    retries: u32,
    dup_acks: u32,
    cc: Box<dyn CongestionControl>,

    // --- ACK generation ---
    /// Segments received since the last ACK we sent.
    ack_pending: u32,
    ack_deadline: Option<u64>,
    ack_now: bool,

    // --- other timers ---
    time_wait_deadline: Option<u64>,
    probe_deadline: Option<u64>,
    keepalive_deadline: Option<u64>,

    /// Queued user-visible events, drained by the stack.
    pub events: Vec<SockEvent>,
    /// Error recorded at abort time.
    pub error: Option<TcpError>,

    // --- statistics (exposed for experiments) ---
    pub tx_segments: u64,
    pub rx_segments: u64,
    pub retransmits: u64,

    /// Footprint last reported to the stack's `ConnBudget`; the stack
    /// keeps the budget in sync by delta against this.
    accounted: usize,
}

impl TcpSocket {
    fn new(id: SocketId, cfg: &TcpConfig, iss: SeqNum) -> TcpSocket {
        TcpSocket {
            id,
            state: TcpState::Closed,
            cfg: cfg.clone(),
            local_ip: Ipv4Addr::UNSPECIFIED,
            local_port: 0,
            remote_ip: Ipv4Addr::UNSPECIFIED,
            remote_port: 0,
            snd_nxt: iss,
            snd_wnd: 0,
            snd_wl1: SeqNum(0),
            snd_wl2: SeqNum(0),
            iss,
            send_buf: SendBuffer::new(iss + 1, cfg.send_buf),
            mss: cfg.mss,
            snd_wscale: 0,
            rcv_wscale: 0,
            syn_sent: false,
            rcv_nxt: SeqNum(0),
            irs: SeqNum(0),
            recv_buf: RecvBuffer::new(cfg.recv_buf),
            asm: Assembler::new(cfg.recv_buf),
            peer_fin_rcvd: false,
            close_requested: false,
            fin_seq: None,
            rtx_deadline: None,
            rtx_now: false,
            rtt: RttEstimator::new(cfg.initial_rto_ns),
            rtt_sample: None,
            retries: 0,
            dup_acks: 0,
            cc: congestion::make(cfg.congestion, cfg.mss),
            ack_pending: 0,
            ack_deadline: None,
            ack_now: false,
            time_wait_deadline: None,
            probe_deadline: None,
            keepalive_deadline: None,
            events: Vec::new(),
            error: None,
            tx_segments: 0,
            rx_segments: 0,
            retransmits: 0,
            accounted: 0,
        }
    }

    /// Approximate resident footprint of this connection: the socket
    /// struct plus every heap allocation it owns (buffer *capacities*,
    /// not configured limits — idle connections stay near
    /// `size_of::<TcpSocket>()`).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<TcpSocket>()
            + self.send_buf.heap_bytes()
            + self.recv_buf.heap_bytes()
            + self.asm.heap_bytes()
            + self.events.capacity() * std::mem::size_of::<SockEvent>()
            + CC_BOX_BYTES
    }

    /// Record `new` as the budget-accounted footprint, returning the
    /// previous value (stack-internal delta accounting).
    pub(crate) fn swap_accounted(&mut self, new: usize) -> usize {
        std::mem::replace(&mut self.accounted, new)
    }

    /// Create a socket performing an active open (client side).
    pub fn connect(
        id: SocketId,
        cfg: &TcpConfig,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: SeqNum,
        now: u64,
    ) -> TcpSocket {
        let mut s = TcpSocket::new(id, cfg, iss);
        s.local_ip = local.0;
        s.local_port = local.1;
        s.remote_ip = remote.0;
        s.remote_port = remote.1;
        s.state = TcpState::SynSent;
        s.arm_rtx(now);
        s
    }

    /// Create a socket from a received SYN (passive open — the stack's
    /// listener calls this for each backlog entry).
    pub fn accept_from_syn(
        id: SocketId,
        cfg: &TcpConfig,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        syn: &TcpHeader,
        iss: SeqNum,
        now: u64,
    ) -> TcpSocket {
        let mut s = TcpSocket::new(id, cfg, iss);
        s.local_ip = local.0;
        s.local_port = local.1;
        s.remote_ip = remote.0;
        s.remote_port = remote.1;
        s.state = TcpState::SynReceived;
        s.irs = syn.seq;
        s.rcv_nxt = syn.seq + 1;
        if let Some(peer_mss) = syn.mss {
            s.mss = s.mss.min(peer_mss);
        }
        if let Some(ws) = syn.window_scale {
            s.snd_wscale = ws;
            s.rcv_wscale = OUR_WSCALE;
        }
        s.snd_wnd = (syn.window as usize) << s.snd_wscale;
        s.snd_wl1 = syn.seq;
        s.snd_wl2 = SeqNum(0);
        s.arm_rtx(now);
        s
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore (flow replication, §3.6 extension)
    // ------------------------------------------------------------------

    /// Capture the transferable TCB: everything a peer replica needs to
    /// resume this connection. The congestion controller, the out-of-order
    /// assembler, and the outstanding RTT sample are deliberately *not*
    /// part of the image — cc restarts from slow-start parameters, ooo
    /// segments are refilled by peer retransmission, and Karn's rule says
    /// a sample that spans a migration must be discarded anyway.
    pub fn snapshot(&self) -> TcbImage {
        TcbImage {
            state: self.state,
            local_ip: self.local_ip,
            local_port: self.local_port,
            remote_ip: self.remote_ip,
            remote_port: self.remote_port,
            iss: self.iss,
            irs: self.irs,
            snd_nxt: self.snd_nxt,
            snd_wnd: self.snd_wnd as u64,
            snd_wl1: self.snd_wl1,
            snd_wl2: self.snd_wl2,
            mss: self.mss,
            snd_wscale: self.snd_wscale,
            rcv_wscale: self.rcv_wscale,
            syn_sent: self.syn_sent,
            send_base: self.send_buf.base(),
            send_data: self.send_buf.contents(),
            send_cap: (self.send_buf.room() + self.send_buf.len()) as u64,
            rcv_nxt: self.rcv_nxt,
            recv_data: self.recv_buf.contents(),
            recv_cap: (self.recv_buf.window() + self.recv_buf.len()) as u64,
            peer_fin_rcvd: self.peer_fin_rcvd,
            close_requested: self.close_requested,
            fin_seq: self.fin_seq,
            rtx_deadline: self.rtx_deadline,
            rtx_now: self.rtx_now,
            retries: self.retries,
            dup_acks: self.dup_acks,
            rtt: self.rtt.snapshot(),
            ack_pending: self.ack_pending,
            ack_deadline: self.ack_deadline,
            ack_now: self.ack_now,
            time_wait_deadline: self.time_wait_deadline,
            probe_deadline: self.probe_deadline,
            keepalive_deadline: self.keepalive_deadline,
            tx_segments: self.tx_segments,
            rx_segments: self.rx_segments,
            retransmits: self.retransmits,
        }
    }

    /// Rebuild a socket from a checkpoint under a (possibly new) id. The
    /// deadlines in the image are absolute simulation times, so a deadline
    /// that expired while the flow was in transit fires on the next timer
    /// tick — which is exactly the retransmission that re-synchronizes the
    /// peer after the migration gap.
    pub fn restore(id: SocketId, cfg: &TcpConfig, img: &TcbImage) -> TcpSocket {
        let mut s = TcpSocket::new(id, cfg, img.iss);
        s.state = img.state;
        s.local_ip = img.local_ip;
        s.local_port = img.local_port;
        s.remote_ip = img.remote_ip;
        s.remote_port = img.remote_port;
        s.irs = img.irs;
        s.snd_nxt = img.snd_nxt;
        s.snd_wnd = img.snd_wnd as usize;
        s.snd_wl1 = img.snd_wl1;
        s.snd_wl2 = img.snd_wl2;
        s.mss = img.mss;
        s.snd_wscale = img.snd_wscale;
        s.rcv_wscale = img.rcv_wscale;
        s.syn_sent = img.syn_sent;
        s.send_buf =
            SendBuffer::from_parts(img.send_base, img.send_data.clone(), img.send_cap as usize);
        s.rcv_nxt = img.rcv_nxt;
        s.recv_buf = RecvBuffer::from_parts(img.recv_data.clone(), img.recv_cap as usize);
        s.peer_fin_rcvd = img.peer_fin_rcvd;
        s.close_requested = img.close_requested;
        s.fin_seq = img.fin_seq;
        s.rtx_deadline = img.rtx_deadline;
        s.rtx_now = img.rtx_now;
        s.retries = img.retries;
        s.dup_acks = img.dup_acks;
        s.rtt = RttEstimator::restore(&img.rtt);
        s.cc = congestion::make(cfg.congestion, img.mss);
        s.ack_pending = img.ack_pending;
        s.ack_deadline = img.ack_deadline;
        s.ack_now = img.ack_now;
        s.time_wait_deadline = img.time_wait_deadline;
        s.probe_deadline = img.probe_deadline;
        s.keepalive_deadline = img.keepalive_deadline;
        s.tx_segments = img.tx_segments;
        s.rx_segments = img.rx_segments;
        s.retransmits = img.retransmits;
        s
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn state(&self) -> TcpState {
        self.state
    }

    pub fn snd_una(&self) -> SeqNum {
        self.send_buf.base()
    }

    pub fn bytes_in_flight(&self) -> usize {
        (self.snd_nxt - self.snd_una()).max(0) as usize
    }

    pub fn recv_available(&self) -> usize {
        self.recv_buf.len()
    }

    pub fn send_room(&self) -> usize {
        self.send_buf.room()
    }

    /// Peer closed and all data has been drained — EOF for the app.
    pub fn at_eof(&self) -> bool {
        self.peer_fin_rcvd && self.recv_buf.is_empty()
    }

    pub fn effective_mss(&self) -> u16 {
        self.mss
    }

    // ------------------------------------------------------------------
    // User operations
    // ------------------------------------------------------------------

    /// Enqueue user data; returns bytes accepted.
    pub fn send(&mut self, data: &[u8]) -> Result<usize, TcpError> {
        if !self.state.can_send() || self.close_requested {
            return Err(TcpError::BadState);
        }
        let n = self.send_buf.push(data);
        if n == 0 {
            return Err(TcpError::WouldBlock);
        }
        Ok(n)
    }

    /// Read received data; 0 bytes at EOF (peer closed and drained).
    pub fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TcpError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let n = self.recv_buf.read(buf);
        if n == 0 && !self.at_eof() {
            return Err(TcpError::WouldBlock);
        }
        // Window may have reopened substantially: let the peer know soon.
        if n > 0 && self.recv_buf.window() >= self.mss as usize * 2 {
            self.ack_pending = self.ack_pending.max(1);
        }
        Ok(n)
    }

    /// Graceful close: FIN after pending data drains.
    pub fn close(&mut self, _now: u64) {
        match self.state {
            TcpState::Established | TcpState::SynReceived => {
                self.close_requested = true;
                self.state = TcpState::FinWait1;
            }
            TcpState::CloseWait => {
                self.close_requested = true;
                self.state = TcpState::LastAck;
            }
            TcpState::SynSent | TcpState::Listen => {
                self.state = TcpState::Closed;
                self.events.push(SockEvent::Closed(self.id));
            }
            _ => {}
        }
    }

    /// Abort: RST to the peer, everything dropped.
    pub fn abort(&mut self) {
        if !matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            self.ack_now = true; // force poll_transmit to run once for RST
        }
        self.enter_closed(TcpError::Reset, true);
    }

    fn enter_closed(&mut self, err: TcpError, rst: bool) {
        if self.state == TcpState::Closed {
            return;
        }
        self.state = TcpState::Closed;
        self.error = Some(err);
        self.rtx_deadline = None;
        self.ack_deadline = None;
        self.probe_deadline = None;
        self.keepalive_deadline = None;
        self.events.push(if rst {
            SockEvent::Aborted(self.id)
        } else {
            SockEvent::Closed(self.id)
        });
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn arm_rtx(&mut self, now: u64) {
        self.rtx_deadline = Some(now + self.rtt.rto());
    }

    /// Earliest instant this socket needs a timer callback.
    pub fn next_timeout(&self) -> Option<u64> {
        [
            self.rtx_deadline,
            self.ack_deadline,
            self.time_wait_deadline,
            self.probe_deadline,
            self.keepalive_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Process timer expirations at `now`.
    pub fn on_timer(&mut self, now: u64) {
        if let Some(d) = self.time_wait_deadline {
            if now >= d {
                self.time_wait_deadline = None;
                self.state = TcpState::Closed;
                self.events.push(SockEvent::Closed(self.id));
                return;
            }
        }
        if let Some(d) = self.rtx_deadline {
            if now >= d {
                self.handle_rto(now);
            }
        }
        if let Some(d) = self.ack_deadline {
            if now >= d {
                self.ack_deadline = None;
                if self.ack_pending > 0 {
                    self.ack_now = true;
                }
            }
        }
        if let Some(d) = self.probe_deadline {
            if now >= d {
                // Zero-window probe: retransmit one byte at snd_una.
                self.probe_deadline = Some(now + self.rtt.rto().max(1_000_000));
                self.rtx_now = true;
            }
        }
        if let Some(d) = self.keepalive_deadline {
            if now >= d && self.state == TcpState::Established {
                self.keepalive_deadline = Some(now + self.cfg.keepalive_ns);
                self.ack_now = true; // keepalive = duplicate ACK probe
            }
        }
    }

    fn handle_rto(&mut self, now: u64) {
        // Anything outstanding? (data, SYN, or FIN)
        let outstanding = self.bytes_in_flight() > 0
            || matches!(self.state, TcpState::SynSent | TcpState::SynReceived)
            || (self.fin_seq.is_some() && !self.fin_acked());
        if !outstanding {
            self.rtx_deadline = None;
            return;
        }
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.enter_closed(TcpError::TimedOut, true);
            return;
        }
        self.retransmits += 1;
        neat_obs::counter_add("tcp.rto_retransmits", 1);
        self.rtt.backoff();
        self.rtt_sample = None; // Karn: no sampling across retransmits
        self.cc.on_timeout(now);
        self.rtx_now = true;
        match self.state {
            TcpState::SynSent => self.syn_sent = false, // resend SYN
            TcpState::SynReceived => {}                 // resend SYN-ACK below
            _ => {}
        }
        self.arm_rtx(now);
    }

    fn fin_acked(&self) -> bool {
        match self.fin_seq {
            Some(f) => self.snd_una() > f,
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Segment arrival
    // ------------------------------------------------------------------

    /// Handle one inbound segment addressed to this connection.
    pub fn on_segment(&mut self, h: &TcpHeader, payload: &[u8], now: u64) {
        self.rx_segments += 1;
        match self.state {
            TcpState::Closed => {}
            TcpState::SynSent => self.on_segment_syn_sent(h, now),
            _ => self.on_segment_synchronized(h, payload, now),
        }
    }

    fn on_segment_syn_sent(&mut self, h: &TcpHeader, now: u64) {
        if h.flags.ack && h.ack != self.iss + 1 {
            // Unacceptable ACK; the stack sends the RST for us if needed.
            if !h.flags.rst {
                self.ack_now = true;
            }
            return;
        }
        if h.flags.rst {
            if h.flags.ack {
                self.enter_closed(TcpError::Reset, false);
            }
            return;
        }
        if !h.flags.syn {
            return;
        }
        self.irs = h.seq;
        self.rcv_nxt = h.seq + 1;
        if let Some(m) = h.mss {
            self.mss = self.mss.min(m);
        }
        if let Some(ws) = h.window_scale {
            self.snd_wscale = ws;
            self.rcv_wscale = OUR_WSCALE;
        }
        self.snd_wnd = (h.window as usize) << self.snd_wscale;
        self.snd_wl1 = h.seq;
        self.snd_wl2 = h.ack;
        if h.flags.ack {
            // SYN-ACK: connection established.
            self.send_buf.ack_to(h.ack);
            self.snd_nxt = h.ack;
            self.sample_rtt(h.ack, now);
            self.state = TcpState::Established;
            self.retries = 0;
            self.rtx_deadline = None;
            self.ack_now = true;
            if self.cfg.keepalive_ns > 0 {
                self.keepalive_deadline = Some(now + self.cfg.keepalive_ns);
            }
            self.events.push(SockEvent::Connected(self.id));
        } else {
            // Simultaneous open.
            self.state = TcpState::SynReceived;
            self.syn_sent = false; // re-emit as SYN-ACK
            self.arm_rtx(now);
        }
    }

    fn seq_acceptable(&self, h: &TcpHeader, seg_len: u32) -> bool {
        let wnd = self.recv_window_bytes() as u32;
        let seq = h.seq;
        if seg_len == 0 {
            if wnd == 0 {
                seq == self.rcv_nxt
            } else {
                seq - self.rcv_nxt >= -(wnd as i32) && (seq - self.rcv_nxt) < wnd as i32
            }
        } else {
            if wnd == 0 {
                return false;
            }
            (seq - self.rcv_nxt) < wnd as i32 && (seq + seg_len - self.rcv_nxt) > 0
        }
    }

    fn on_segment_synchronized(&mut self, h: &TcpHeader, payload: &[u8], now: u64) {
        let seg_len = h.seq_len(payload.len());

        // RFC 793 step 1: sequence acceptability.
        if !self.seq_acceptable(h, seg_len) {
            if !h.flags.rst {
                self.ack_now = true; // re-ACK to resync the peer
            }
            return;
        }

        // Step 2: RST.
        if h.flags.rst {
            match self.state {
                TcpState::SynReceived => self.enter_closed(TcpError::Reset, true),
                TcpState::TimeWait | TcpState::LastAck | TcpState::Closing => {
                    self.enter_closed(TcpError::Reset, false)
                }
                _ => self.enter_closed(TcpError::Reset, true),
            }
            return;
        }

        // Step 4: SYN in window is an error.
        if h.flags.syn && h.seq != self.irs {
            self.enter_closed(TcpError::Reset, true);
            return;
        }

        // Step 5: ACK processing.
        if !h.flags.ack {
            return;
        }
        if self.state == TcpState::SynReceived {
            if h.ack == self.iss + 1 {
                self.state = TcpState::Established;
                self.retries = 0;
                self.rtx_deadline = None;
                self.snd_wnd = (h.window as usize) << self.snd_wscale;
                self.snd_wl1 = h.seq;
                self.snd_wl2 = h.ack;
                if self.cfg.keepalive_ns > 0 {
                    self.keepalive_deadline = Some(now + self.cfg.keepalive_ns);
                }
                self.sample_rtt(h.ack, now);
                self.events.push(SockEvent::Connected(self.id));
            } else {
                // Unacceptable ACK in SYN-RECEIVED: ignore (stack RSTs).
                return;
            }
        }

        let una_before = self.snd_una();
        let snd_end = self.fin_seq.map(|f| f + 1).unwrap_or(self.send_buf.end());
        if h.ack - una_before > 0 && h.ack - snd_end <= 0 {
            // New data acknowledged.
            let acked = self.send_buf.ack_to(h.ack);
            // FIN consumes one sequence number beyond the buffer.
            if let Some(f) = self.fin_seq {
                if h.ack - f > 0 {
                    // our FIN is acked (buffer ack_to already handled bytes)
                }
            }
            if self.snd_nxt - h.ack < 0 {
                self.snd_nxt = h.ack;
            }
            self.retries = 0;
            self.dup_acks = 0;
            self.sample_rtt(h.ack, now);
            self.cc.on_ack(acked.max(1), now);
            if acked > 0 && self.send_buf.room() > 0 {
                self.events.push(SockEvent::Writable(self.id));
            }
            // Restart or stop the retransmission timer.
            let outstanding =
                self.bytes_in_flight() > 0 || (self.fin_seq.is_some() && !self.fin_acked_at(h.ack));
            if outstanding {
                self.arm_rtx(now);
            } else {
                self.rtx_deadline = None;
            }
            // Close-handshake progress.
            if self.fin_acked_at(h.ack) {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing => self.enter_time_wait(now),
                    TcpState::LastAck => {
                        self.enter_closed_graceful();
                        return;
                    }
                    _ => {}
                }
            }
        } else if h.ack == una_before {
            // Potential duplicate ACK (RFC 5681: no data, no window change,
            // outstanding data exists).
            let window_changed = ((h.window as usize) << self.snd_wscale) != self.snd_wnd;
            if payload.is_empty() && !window_changed && self.bytes_in_flight() > 0 {
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    self.cc.on_fast_retransmit(now);
                    self.rtx_now = true;
                    self.retransmits += 1;
                    neat_obs::counter_add("tcp.fast_retransmits", 1);
                    self.rtt_sample = None;
                }
            }
        }

        // Window update (RFC 793: wl1/wl2 guard against stale segments).
        if h.seq - self.snd_wl1 > 0 || (h.seq == self.snd_wl1 && h.ack - self.snd_wl2 >= 0) {
            let new_wnd = (h.window as usize) << self.snd_wscale;
            let was_zero = self.snd_wnd == 0;
            self.snd_wnd = new_wnd;
            self.snd_wl1 = h.seq;
            self.snd_wl2 = h.ack;
            if was_zero && new_wnd > 0 {
                self.probe_deadline = None;
            } else if new_wnd == 0 && self.send_buf.len_from(self.snd_nxt) > 0 {
                self.probe_deadline = Some(now + self.rtt.rto());
            }
        }

        // Step 7: payload.
        if !payload.is_empty() && self.state.can_recv() {
            let inserted = self.asm.insert(h.seq, payload, self.rcv_nxt);
            if inserted {
                let mut delivered = false;
                while let Some(run) = self.asm.take_contiguous(self.rcv_nxt) {
                    let n = self.recv_buf.write(&run);
                    self.rcv_nxt += n as u32;
                    delivered = delivered || n > 0;
                    if n < run.len() {
                        // Receive buffer full: drop the tail; the shrunken
                        // advertised window makes the peer resend later.
                        break;
                    }
                }
                if delivered {
                    self.events.push(SockEvent::Readable(self.id));
                }
            }
            // ACK policy: every second segment, else delayed.
            self.ack_pending += 1;
            if h.seq != self.rcv_nxt && !self.asm.is_empty() {
                // Out-of-order: ACK immediately (fast-retransmit support).
                self.ack_now = true;
            } else if self.ack_pending >= 2 || self.cfg.delayed_ack_ns == 0 {
                self.ack_now = true;
            } else if self.ack_deadline.is_none() {
                self.ack_deadline = Some(now + self.cfg.delayed_ack_ns);
            }
        }

        // Step 8: FIN.
        if h.flags.fin {
            let fin_seq = h.seq + payload.len() as u32;
            if fin_seq == self.rcv_nxt && !self.peer_fin_rcvd && self.asm.is_empty() {
                self.peer_fin_rcvd = true;
                self.rcv_nxt += 1;
                self.ack_now = true;
                self.events.push(SockEvent::PeerClosed(self.id));
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait1 => {
                        if self.fin_acked() {
                            self.enter_time_wait(now);
                        } else {
                            self.state = TcpState::Closing;
                        }
                    }
                    TcpState::FinWait2 => self.enter_time_wait(now),
                    _ => {}
                }
            } else if fin_seq - self.rcv_nxt > 0 {
                // FIN beyond a gap: ACK what we have, peer will retransmit.
                self.ack_now = true;
            }
        }
    }

    fn fin_acked_at(&self, ack: SeqNum) -> bool {
        match self.fin_seq {
            Some(f) => ack - f > 0,
            None => false,
        }
    }

    fn enter_time_wait(&mut self, now: u64) {
        self.state = TcpState::TimeWait;
        self.rtx_deadline = None;
        self.time_wait_deadline = Some(now + self.cfg.time_wait_ns);
        self.events.push(SockEvent::Closed(self.id));
    }

    fn enter_closed_graceful(&mut self) {
        self.state = TcpState::Closed;
        self.rtx_deadline = None;
        self.events.push(SockEvent::Closed(self.id));
    }

    fn sample_rtt(&mut self, ack: SeqNum, now: u64) {
        if let Some((seq, sent)) = self.rtt_sample {
            if ack - seq >= 0 {
                self.rtt.sample(now.saturating_sub(sent));
                self.rtt_sample = None;
            }
        }
    }

    fn recv_window_bytes(&self) -> usize {
        self.recv_buf.window()
    }

    /// The window field value (scaled) for outgoing segments.
    fn window_field(&self) -> u16 {
        let w = self.recv_window_bytes() >> self.rcv_wscale;
        w.min(u16::MAX as usize) as u16
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Produce the next segment to transmit, if any. Call repeatedly until
    /// `None`. Payload is returned separately from the header.
    pub fn poll_transmit(&mut self, now: u64) -> Option<(TcpHeader, Vec<u8>)> {
        match self.state {
            TcpState::Closed => {
                // Emit one RST if an abort requested it.
                if self.ack_now && self.error == Some(TcpError::Reset) {
                    self.ack_now = false;
                    let h = TcpHeader::new(
                        self.local_port,
                        self.remote_port,
                        self.snd_nxt,
                        self.rcv_nxt,
                        TcpFlags {
                            rst: true,
                            ack: true,
                            ..Default::default()
                        },
                    );
                    self.tx_segments += 1;
                    return Some((h, Vec::new()));
                }
                None
            }
            TcpState::SynSent => {
                if !self.syn_sent {
                    self.syn_sent = true;
                    let mut h = TcpHeader::new(
                        self.local_port,
                        self.remote_port,
                        self.iss,
                        SeqNum(0),
                        TcpFlags::SYN,
                    );
                    h.mss = Some(self.cfg.mss);
                    h.window_scale = Some(OUR_WSCALE);
                    h.window = self.recv_window_bytes().min(u16::MAX as usize) as u16;
                    self.snd_nxt = self.iss + 1;
                    if self.rtt_sample.is_none() {
                        self.rtt_sample = Some((self.iss + 1, now));
                    }
                    self.tx_segments += 1;
                    return Some((h, Vec::new()));
                }
                None
            }
            TcpState::SynReceived => {
                if !self.syn_sent {
                    self.syn_sent = true;
                    let mut h = TcpHeader::new(
                        self.local_port,
                        self.remote_port,
                        self.iss,
                        self.rcv_nxt,
                        TcpFlags::syn_ack(),
                    );
                    h.mss = Some(self.cfg.mss);
                    if self.rcv_wscale > 0 {
                        h.window_scale = Some(OUR_WSCALE);
                    }
                    h.window = self.recv_window_bytes().min(u16::MAX as usize) as u16;
                    self.snd_nxt = self.iss + 1;
                    if self.rtt_sample.is_none() {
                        self.rtt_sample = Some((self.iss + 1, now));
                    }
                    self.tx_segments += 1;
                    return Some((h, Vec::new()));
                }
                if self.rtx_now {
                    self.rtx_now = false;
                    self.syn_sent = false;
                    return self.poll_transmit(now);
                }
                None
            }
            TcpState::TimeWait => {
                if self.ack_now {
                    self.ack_now = false;
                    self.ack_pending = 0;
                    return Some((self.bare_ack(), Vec::new()));
                }
                None
            }
            _ => self.poll_transmit_data(now),
        }
    }

    fn bare_ack(&mut self) -> TcpHeader {
        let mut h = TcpHeader::new(
            self.local_port,
            self.remote_port,
            self.snd_nxt,
            self.rcv_nxt,
            TcpFlags::ack(),
        );
        h.window = self.window_field();
        self.tx_segments += 1;
        h
    }

    fn poll_transmit_data(&mut self, now: u64) -> Option<(TcpHeader, Vec<u8>)> {
        // 1. Retransmission (RTO, fast retransmit, or zero-window probe).
        if self.rtx_now {
            self.rtx_now = false;
            let una = self.snd_una();
            let avail = self.send_buf.len_from(una);
            if avail > 0 {
                let len = avail.min(self.mss as usize).max(1);
                let data = self.send_buf.peek(una, len);
                let mut h = TcpHeader::new(
                    self.local_port,
                    self.remote_port,
                    una,
                    self.rcv_nxt,
                    TcpFlags::psh_ack(),
                );
                h.window = self.window_field();
                self.ack_pending = 0;
                self.ack_deadline = None;
                self.ack_now = false;
                self.tx_segments += 1;
                return Some((h, data));
            } else if self.fin_seq.is_some() && !self.fin_acked() {
                // Retransmit the FIN.
                let mut h = TcpHeader::new(
                    self.local_port,
                    self.remote_port,
                    self.fin_seq.unwrap(),
                    self.rcv_nxt,
                    TcpFlags::fin_ack(),
                );
                h.window = self.window_field();
                self.tx_segments += 1;
                return Some((h, Vec::new()));
            }
        }

        // 2. New data within the usable window.
        let window = self.snd_wnd.min(self.cc.cwnd());
        let in_flight = self.bytes_in_flight();
        let usable = window.saturating_sub(in_flight);
        let pending = self.send_buf.len_from(self.snd_nxt);
        if pending > 0 && usable > 0 && self.fin_seq.is_none() {
            // GSO: hand the NIC a super-segment; it splits to MSS frames.
            let burst = self.cfg.gso_burst.max(self.mss as usize).min(61_440);
            let len = pending.min(usable).min(burst);
            // Nagle: hold sub-MSS segments while data is in flight.
            let nagle_blocks = self.cfg.nagle && in_flight > 0 && len < self.mss as usize;
            if !nagle_blocks && len > 0 {
                let data = self.send_buf.peek(self.snd_nxt, len);
                let mut h = TcpHeader::new(
                    self.local_port,
                    self.remote_port,
                    self.snd_nxt,
                    self.rcv_nxt,
                    TcpFlags::psh_ack(),
                );
                h.window = self.window_field();
                if self.rtt_sample.is_none() {
                    self.rtt_sample = Some((self.snd_nxt + len as u32, now));
                }
                self.snd_nxt += len as u32;
                if self.rtx_deadline.is_none() {
                    self.arm_rtx(now);
                }
                self.ack_pending = 0;
                self.ack_deadline = None;
                self.ack_now = false;
                self.tx_segments += 1;
                return Some((h, data));
            }
        }

        // 3. FIN once the stream is fully sent.
        let all_sent = self.send_buf.len_from(self.snd_nxt) == 0;
        let want_fin = matches!(
            self.state,
            TcpState::FinWait1 | TcpState::LastAck | TcpState::Closing
        );
        if want_fin && all_sent && self.fin_seq.is_none() {
            self.fin_seq = Some(self.snd_nxt);
            let mut h = TcpHeader::new(
                self.local_port,
                self.remote_port,
                self.snd_nxt,
                self.rcv_nxt,
                TcpFlags::fin_ack(),
            );
            h.window = self.window_field();
            self.snd_nxt += 1;
            if self.rtx_deadline.is_none() {
                self.arm_rtx(now);
            }
            self.ack_pending = 0;
            self.ack_deadline = None;
            self.ack_now = false;
            self.tx_segments += 1;
            return Some((h, Vec::new()));
        }

        // 4. Pure ACK.
        if self.ack_now || (self.ack_pending > 0 && self.ack_deadline.is_none()) {
            self.ack_now = false;
            self.ack_pending = 0;
            self.ack_deadline = None;
            return Some((self.bare_ack(), Vec::new()));
        }
        None
    }
}

/// A serializable TCB checkpoint: the per-connection state one replica
/// ships to its buddy so a restarted (or rebalanced) replica can resume
/// the flow. `snapshot → restore → snapshot` is exactly the identity on
/// this image space (property-tested), so a flow survives any number of
/// hops unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcbImage {
    pub state: TcpState,
    pub local_ip: Ipv4Addr,
    pub local_port: u16,
    pub remote_ip: Ipv4Addr,
    pub remote_port: u16,
    pub iss: SeqNum,
    pub irs: SeqNum,
    pub snd_nxt: SeqNum,
    pub snd_wnd: u64,
    pub snd_wl1: SeqNum,
    pub snd_wl2: SeqNum,
    pub mss: u16,
    pub snd_wscale: u8,
    pub rcv_wscale: u8,
    pub syn_sent: bool,
    pub send_base: SeqNum,
    pub send_data: Vec<u8>,
    pub send_cap: u64,
    pub rcv_nxt: SeqNum,
    pub recv_data: Vec<u8>,
    pub recv_cap: u64,
    pub peer_fin_rcvd: bool,
    pub close_requested: bool,
    pub fin_seq: Option<SeqNum>,
    pub rtx_deadline: Option<u64>,
    pub rtx_now: bool,
    pub retries: u32,
    pub dup_acks: u32,
    pub rtt: crate::rto::RttSnapshot,
    pub ack_pending: u32,
    pub ack_deadline: Option<u64>,
    pub ack_now: bool,
    pub time_wait_deadline: Option<u64>,
    pub probe_deadline: Option<u64>,
    pub keepalive_deadline: Option<u64>,
    pub tx_segments: u64,
    pub rx_segments: u64,
    pub retransmits: u64,
}

/// Wire format version tag — the first byte of every encoded image.
const TCB_IMAGE_V1: u8 = 1;

impl TcbImage {
    /// Does this state carry resumable stream state worth replicating?
    /// Handshake-in-progress and torn-down flows are recreated (or
    /// forgotten) by the normal protocol machinery instead.
    pub fn replicable(state: TcpState) -> bool {
        matches!(
            state,
            TcpState::Established
                | TcpState::FinWait1
                | TcpState::FinWait2
                | TcpState::Closing
                | TcpState::CloseWait
                | TcpState::LastAck
        )
    }

    /// Serialize to the little-endian byte format that travels on the
    /// replication channel.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(160 + self.send_data.len() + self.recv_data.len());
        w.push(TCB_IMAGE_V1);
        w.push(state_code(self.state));
        w.extend(self.local_ip.octets());
        w.extend(self.local_port.to_le_bytes());
        w.extend(self.remote_ip.octets());
        w.extend(self.remote_port.to_le_bytes());
        for seq in [
            self.iss,
            self.irs,
            self.snd_nxt,
            self.snd_wl1,
            self.snd_wl2,
            self.send_base,
            self.rcv_nxt,
        ] {
            w.extend(seq.0.to_le_bytes());
        }
        w.extend(self.snd_wnd.to_le_bytes());
        w.extend(self.mss.to_le_bytes());
        w.push(self.snd_wscale);
        w.push(self.rcv_wscale);
        put_bool(&mut w, self.syn_sent);
        put_bytes(&mut w, &self.send_data);
        w.extend(self.send_cap.to_le_bytes());
        put_bytes(&mut w, &self.recv_data);
        w.extend(self.recv_cap.to_le_bytes());
        put_bool(&mut w, self.peer_fin_rcvd);
        put_bool(&mut w, self.close_requested);
        put_opt_u64(&mut w, self.fin_seq.map(|s| s.0 as u64));
        put_opt_u64(&mut w, self.rtx_deadline);
        put_bool(&mut w, self.rtx_now);
        w.extend(self.retries.to_le_bytes());
        w.extend(self.dup_acks.to_le_bytes());
        put_opt_u64(&mut w, self.rtt.srtt_bits);
        w.extend(self.rtt.rttvar_bits.to_le_bytes());
        w.extend(self.rtt.rto_ns.to_le_bytes());
        w.extend(self.rtt.base_rto_ns.to_le_bytes());
        w.extend(self.rtt.backoffs.to_le_bytes());
        w.extend(self.ack_pending.to_le_bytes());
        put_opt_u64(&mut w, self.ack_deadline);
        put_bool(&mut w, self.ack_now);
        put_opt_u64(&mut w, self.time_wait_deadline);
        put_opt_u64(&mut w, self.probe_deadline);
        put_opt_u64(&mut w, self.keepalive_deadline);
        w.extend(self.tx_segments.to_le_bytes());
        w.extend(self.rx_segments.to_le_bytes());
        w.extend(self.retransmits.to_le_bytes());
        w
    }

    /// Parse an encoded image; `None` on truncation, bad version, or an
    /// unknown state code (a corrupt checkpoint must never install).
    pub fn decode(bytes: &[u8]) -> Option<TcbImage> {
        let mut r = Reader { b: bytes, at: 0 };
        if r.u8()? != TCB_IMAGE_V1 {
            return None;
        }
        let state = state_from_code(r.u8()?)?;
        let local_ip = Ipv4Addr::from(r.arr4()?);
        let local_port = r.u16()?;
        let remote_ip = Ipv4Addr::from(r.arr4()?);
        let remote_port = r.u16()?;
        let iss = SeqNum(r.u32()?);
        let irs = SeqNum(r.u32()?);
        let snd_nxt = SeqNum(r.u32()?);
        let snd_wl1 = SeqNum(r.u32()?);
        let snd_wl2 = SeqNum(r.u32()?);
        let send_base = SeqNum(r.u32()?);
        let rcv_nxt = SeqNum(r.u32()?);
        let snd_wnd = r.u64()?;
        let mss = r.u16()?;
        let snd_wscale = r.u8()?;
        let rcv_wscale = r.u8()?;
        let syn_sent = r.boolean()?;
        let send_data = r.bytes()?;
        let send_cap = r.u64()?;
        let recv_data = r.bytes()?;
        let recv_cap = r.u64()?;
        let peer_fin_rcvd = r.boolean()?;
        let close_requested = r.boolean()?;
        let fin_seq = r.opt_u64()?.map(|v| SeqNum(v as u32));
        let rtx_deadline = r.opt_u64()?;
        let rtx_now = r.boolean()?;
        let retries = r.u32()?;
        let dup_acks = r.u32()?;
        let rtt = crate::rto::RttSnapshot {
            srtt_bits: r.opt_u64()?,
            rttvar_bits: r.u64()?,
            rto_ns: r.u64()?,
            base_rto_ns: r.u64()?,
            backoffs: r.u32()?,
        };
        let ack_pending = r.u32()?;
        let ack_deadline = r.opt_u64()?;
        let ack_now = r.boolean()?;
        let time_wait_deadline = r.opt_u64()?;
        let probe_deadline = r.opt_u64()?;
        let keepalive_deadline = r.opt_u64()?;
        let tx_segments = r.u64()?;
        let rx_segments = r.u64()?;
        let retransmits = r.u64()?;
        Some(TcbImage {
            state,
            local_ip,
            local_port,
            remote_ip,
            remote_port,
            iss,
            irs,
            snd_nxt,
            snd_wnd,
            snd_wl1,
            snd_wl2,
            mss,
            snd_wscale,
            rcv_wscale,
            syn_sent,
            send_base,
            send_data,
            send_cap,
            rcv_nxt,
            recv_data,
            recv_cap,
            peer_fin_rcvd,
            close_requested,
            fin_seq,
            rtx_deadline,
            rtx_now,
            retries,
            dup_acks,
            rtt,
            ack_pending,
            ack_deadline,
            ack_now,
            time_wait_deadline,
            probe_deadline,
            keepalive_deadline,
            tx_segments,
            rx_segments,
            retransmits,
        })
    }

    /// Heap footprint of the image (replication-store accounting).
    pub fn heap_bytes(&self) -> usize {
        self.send_data.capacity() + self.recv_data.capacity()
    }
}

fn state_code(s: TcpState) -> u8 {
    match s {
        TcpState::Closed => 0,
        TcpState::Listen => 1,
        TcpState::SynSent => 2,
        TcpState::SynReceived => 3,
        TcpState::Established => 4,
        TcpState::FinWait1 => 5,
        TcpState::FinWait2 => 6,
        TcpState::Closing => 7,
        TcpState::TimeWait => 8,
        TcpState::CloseWait => 9,
        TcpState::LastAck => 10,
    }
}

fn state_from_code(c: u8) -> Option<TcpState> {
    Some(match c {
        0 => TcpState::Closed,
        1 => TcpState::Listen,
        2 => TcpState::SynSent,
        3 => TcpState::SynReceived,
        4 => TcpState::Established,
        5 => TcpState::FinWait1,
        6 => TcpState::FinWait2,
        7 => TcpState::Closing,
        8 => TcpState::TimeWait,
        9 => TcpState::CloseWait,
        10 => TcpState::LastAck,
        _ => return None,
    })
}

fn put_bool(w: &mut Vec<u8>, v: bool) {
    w.push(v as u8);
}

fn put_bytes(w: &mut Vec<u8>, v: &[u8]) {
    w.extend((v.len() as u32).to_le_bytes());
    w.extend(v);
}

fn put_opt_u64(w: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            w.push(1);
            w.extend(x.to_le_bytes());
        }
        None => w.push(0),
    }
}

/// Bounds-checked little-endian reader over an encoded image.
struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let s = &self.b[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn boolean(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn arr4(&mut self) -> Option<[u8; 4]> {
        self.take(4)?.try_into().ok()
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        Some(self.take(n)?.to_vec())
    }

    fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u64()?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn cfg() -> TcpConfig {
        TcpConfig {
            initial_rto_ns: 50_000_000,
            ..TcpConfig::default()
        }
    }

    fn client(now: u64) -> TcpSocket {
        TcpSocket::connect(
            SocketId(1),
            &cfg(),
            (CLIENT_IP, 40000),
            (SERVER_IP, 80),
            SeqNum(1_000),
            now,
        )
    }

    /// Shuttle segments between two sockets until both are quiescent.
    /// Returns the number of segments exchanged.
    fn pump(a: &mut TcpSocket, b: &mut TcpSocket, now: u64) -> usize {
        let mut n = 0;
        loop {
            let mut progressed = false;
            while let Some((h, payload)) = a.poll_transmit(now) {
                // Real emit+parse so checksums and options are exercised.
                let bytes = h.emit(&payload, a.local_ip, b.local_ip);
                let (g, range) = TcpHeader::parse(&bytes, a.local_ip, b.local_ip).unwrap();
                b.on_segment(&g, &bytes[range], now);
                n += 1;
                progressed = true;
            }
            while let Some((h, payload)) = b.poll_transmit(now) {
                let bytes = h.emit(&payload, b.local_ip, a.local_ip);
                let (g, range) = TcpHeader::parse(&bytes, b.local_ip, a.local_ip).unwrap();
                a.on_segment(&g, &bytes[range], now);
                n += 1;
                progressed = true;
            }
            if !progressed {
                return n;
            }
        }
    }

    /// Build an established client/server pair via a real 3-way handshake.
    fn established() -> (TcpSocket, TcpSocket) {
        let now = 0;
        let mut c = client(now);
        let (syn, _) = c.poll_transmit(now).expect("SYN");
        assert!(syn.flags.syn && !syn.flags.ack);
        let mut s = TcpSocket::accept_from_syn(
            SocketId(2),
            &cfg(),
            (SERVER_IP, 80),
            (CLIENT_IP, 40000),
            &syn,
            SeqNum(5_000),
            now,
        );
        pump(&mut c, &mut s, now);
        assert_eq!(c.state(), TcpState::Established);
        assert_eq!(s.state(), TcpState::Established);
        assert!(c
            .events
            .iter()
            .any(|e| matches!(e, SockEvent::Connected(_))));
        assert!(s
            .events
            .iter()
            .any(|e| matches!(e, SockEvent::Connected(_))));
        c.events.clear();
        s.events.clear();
        (c, s)
    }

    #[test]
    fn three_way_handshake() {
        let (c, s) = established();
        assert_eq!(c.effective_mss(), 1460);
        assert_eq!(s.effective_mss(), 1460);
        assert_eq!(c.bytes_in_flight(), 0);
        assert_eq!(s.bytes_in_flight(), 0);
    }

    #[test]
    fn data_transfer_both_directions() {
        let (mut c, mut s) = established();
        c.send(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        pump(&mut c, &mut s, 1_000_000);
        let mut buf = [0u8; 64];
        let n = s.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"GET / HTTP/1.1\r\n\r\n");
        s.send(b"HTTP/1.1 200 OK\r\n\r\nhi").unwrap();
        pump(&mut c, &mut s, 2_000_000);
        let n = c.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"HTTP/1.1 200 OK\r\n\r\nhi");
    }

    #[test]
    fn large_transfer_respects_mss_and_window() {
        let (mut c, mut s) = established();
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let mut sent = 0;
        let mut received = Vec::new();
        let mut now = 0u64;
        while received.len() < data.len() {
            now += 1_000_000;
            if sent < data.len() {
                if let Ok(n) = c.send(&data[sent..]) {
                    sent += n;
                }
            }
            // Drive timers for delayed ACKs.
            c.on_timer(now);
            s.on_timer(now);
            pump(&mut c, &mut s, now);
            let mut buf = [0u8; 4096];
            while let Ok(n) = s.recv(&mut buf) {
                if n == 0 {
                    break;
                }
                received.extend_from_slice(&buf[..n]);
            }
            assert!(now < 10_000_000_000, "transfer did not complete");
        }
        assert_eq!(received, data);
    }

    #[test]
    fn graceful_close_four_way() {
        let (mut c, mut s) = established();
        let now = 5_000_000;
        c.close(now);
        assert_eq!(c.state(), TcpState::FinWait1);
        pump(&mut c, &mut s, now);
        assert_eq!(s.state(), TcpState::CloseWait);
        assert!(s
            .events
            .iter()
            .any(|e| matches!(e, SockEvent::PeerClosed(_))));
        s.close(now);
        pump(&mut c, &mut s, now);
        assert_eq!(c.state(), TcpState::TimeWait);
        assert_eq!(s.state(), TcpState::Closed);
        // TIME_WAIT expires.
        c.on_timer(now + 10_000_000_001);
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn simultaneous_close() {
        let (mut c, mut s) = established();
        let now = 5_000_000;
        c.close(now);
        s.close(now);
        // Both FINs cross. Exchange everything.
        pump(&mut c, &mut s, now);
        // Both should end in TIME_WAIT (simultaneous close -> CLOSING ->
        // TIME_WAIT on both sides).
        assert_eq!(c.state(), TcpState::TimeWait);
        assert_eq!(s.state(), TcpState::TimeWait);
    }

    #[test]
    fn retransmission_on_loss() {
        let (mut c, mut s) = established();
        c.send(b"important data").unwrap();
        // Drop the data segment (do not deliver).
        let (h, payload) = c.poll_transmit(0).expect("data segment");
        assert!(!payload.is_empty());
        let _ = h;
        assert!(c.poll_transmit(0).is_none());
        // RTO fires.
        let rto_at = c.next_timeout().expect("rtx armed");
        c.on_timer(rto_at);
        pump(&mut c, &mut s, rto_at);
        let mut buf = [0u8; 64];
        let n = s.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"important data");
        assert!(c.retransmits >= 1);
    }

    #[test]
    fn fast_retransmit_on_dup_acks() {
        let (mut c, mut s) = established();
        // Send 5 MSS of data; drop the first segment, deliver the rest.
        let data = vec![7u8; 5 * 1460];
        c.send(&data).unwrap();
        let now = 1_000_000;
        let mut segs = Vec::new();
        while let Some((h, p)) = c.poll_transmit(now) {
            segs.push((h, p));
        }
        assert!(
            segs.len() >= 3,
            "initial cwnd allows >=3 segments, got {}",
            segs.len()
        );
        // Deliver all but the first; each generates a dup ACK.
        for (h, p) in segs.iter().skip(1) {
            let bytes = h.emit(p, CLIENT_IP, SERVER_IP);
            let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
            s.on_segment(&g, &bytes[r], now);
        }
        // Collect the server's ACKs (all for the missing first segment).
        let mut acks = Vec::new();
        while let Some((h, p)) = s.poll_transmit(now) {
            acks.push((h, p));
        }
        for (h, p) in &acks {
            let bytes = h.emit(p, SERVER_IP, CLIENT_IP);
            let (g, r) = TcpHeader::parse(&bytes, SERVER_IP, CLIENT_IP).unwrap();
            c.on_segment(&g, &bytes[r], now);
        }
        if c.dup_acks >= 3 {
            // Fast retransmit kicks in without waiting for the RTO.
            let (h, p) = c.poll_transmit(now).expect("fast retransmit");
            assert_eq!(h.seq, c.snd_una());
            assert!(!p.is_empty());
        } else {
            // Fewer than 3 dupacks (small initial cwnd): RTO still recovers.
            let rto_at = c.next_timeout().unwrap();
            c.on_timer(rto_at);
            assert!(c.poll_transmit(rto_at).is_some());
        }
    }

    #[test]
    fn zero_window_blocks_sender() {
        let mut config = cfg();
        config.recv_buf = 2048; // tiny receive buffer
        let now = 0;
        let mut c = client(now);
        let (syn, _) = c.poll_transmit(now).unwrap();
        let mut s = TcpSocket::accept_from_syn(
            SocketId(2),
            &config,
            (SERVER_IP, 80),
            (CLIENT_IP, 40000),
            &syn,
            SeqNum(9_000),
            now,
        );
        pump(&mut c, &mut s, now);
        // Fill the server's receive buffer without the app reading.
        let data = vec![3u8; 8192];
        let mut pushed = 0;
        while pushed < data.len() {
            match c.send(&data[pushed..]) {
                Ok(n) => pushed += n,
                Err(_) => break,
            }
            pump(&mut c, &mut s, now);
        }
        assert!(s.recv_available() <= 2048);
        assert!(
            c.bytes_in_flight() == 0 || !c.send_buf.is_empty(),
            "sender must hold back data beyond the advertised window"
        );
        // Application reads, window reopens, transfer resumes.
        let mut total = 0;
        let mut buf = [0u8; 1024];
        let mut now = now;
        for _ in 0..200 {
            now += 2_000_000;
            while let Ok(n) = s.recv(&mut buf) {
                if n == 0 {
                    break;
                }
                total += n;
            }
            c.on_timer(now);
            s.on_timer(now);
            pump(&mut c, &mut s, now);
            if total >= pushed {
                break;
            }
        }
        assert_eq!(total, pushed, "all accepted bytes eventually delivered");
    }

    #[test]
    fn rst_aborts_connection() {
        let (mut c, mut s) = established();
        c.abort();
        assert_eq!(c.state(), TcpState::Closed);
        let (h, p) = c.poll_transmit(0).expect("RST emitted");
        assert!(h.flags.rst);
        let bytes = h.emit(&p, CLIENT_IP, SERVER_IP);
        let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
        s.on_segment(&g, &bytes[r], 0);
        assert_eq!(s.state(), TcpState::Closed);
        assert!(s.events.iter().any(|e| matches!(e, SockEvent::Aborted(_))));
        assert_eq!(s.error, Some(TcpError::Reset));
    }

    #[test]
    fn retry_limit_times_out() {
        let mut config = cfg();
        config.max_retries = 3;
        let now = 0;
        let mut c = TcpSocket::connect(
            SocketId(1),
            &config,
            (CLIENT_IP, 40000),
            (SERVER_IP, 80),
            SeqNum(100),
            now,
        );
        let _ = c.poll_transmit(now); // SYN into the void
        for _ in 0..10 {
            match c.next_timeout() {
                Some(d) => {
                    let t = d;
                    c.on_timer(t);
                    let _ = c.poll_transmit(t);
                }
                None => break,
            }
            if c.state() == TcpState::Closed {
                break;
            }
        }
        assert_eq!(c.state(), TcpState::Closed);
        assert_eq!(c.error, Some(TcpError::TimedOut));
    }

    #[test]
    fn eof_semantics_after_peer_close() {
        let (mut c, mut s) = established();
        c.send(b"last words").unwrap();
        c.close(0);
        pump(&mut c, &mut s, 0);
        let mut buf = [0u8; 64];
        let n = s.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"last words");
        // Next read returns 0 (EOF), not WouldBlock.
        assert_eq!(s.recv(&mut buf).unwrap(), 0);
        assert!(s.at_eof());
    }

    #[test]
    fn delayed_ack_single_segment() {
        let (mut c, mut s) = established();
        c.send(b"ping").unwrap();
        let now = 1_000_000;
        let (h, p) = c.poll_transmit(now).unwrap();
        let bytes = h.emit(&p, CLIENT_IP, SERVER_IP);
        let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
        s.on_segment(&g, &bytes[r], now);
        // One segment: ACK should be delayed, not immediate.
        assert!(
            s.poll_transmit(now).is_none(),
            "single segment should not trigger an immediate ACK"
        );
        let deadline = s.next_timeout().expect("delayed-ack timer armed");
        s.on_timer(deadline);
        let (ack, _) = s.poll_transmit(deadline).expect("delayed ACK fires");
        assert!(ack.flags.ack && !ack.flags.syn);
    }

    #[test]
    fn nagle_coalesces_small_writes() {
        let (mut c, mut s) = established();
        let now = 0;
        c.send(b"a").unwrap();
        let first = c.poll_transmit(now);
        assert!(first.is_some(), "first small write goes out immediately");
        // More small writes while the first byte is unacked: held back.
        c.send(b"b").unwrap();
        c.send(b"c").unwrap();
        assert!(
            c.poll_transmit(now).is_none(),
            "Nagle must hold small segments while data is in flight"
        );
        // Deliver + ACK the first segment; the rest coalesce into one.
        let (h, p) = first.unwrap();
        let bytes = h.emit(&p, CLIENT_IP, SERVER_IP);
        let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
        s.on_segment(&g, &bytes[r], now);
        // Fire the server's delayed-ACK timer so the ACK releases Nagle.
        let ack_at = s.next_timeout().expect("delayed ack armed");
        s.on_timer(ack_at);
        pump(&mut c, &mut s, ack_at);
        let mut buf = [0u8; 8];
        let mut got = Vec::new();
        while let Ok(n) = s.recv(&mut buf) {
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"abc");
    }

    #[test]
    fn out_of_order_delivery_reassembles() {
        let (mut c, mut s) = established();
        let now = 0;
        let data = vec![9u8; 3 * 1460];
        c.send(&data).unwrap();
        let mut segs = Vec::new();
        while let Some(seg) = c.poll_transmit(now) {
            segs.push(seg);
        }
        assert!(segs.len() >= 2);
        // Deliver in reverse order.
        for (h, p) in segs.iter().rev() {
            let bytes = h.emit(p, CLIENT_IP, SERVER_IP);
            let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
            s.on_segment(&g, &bytes[r], now);
        }
        let mut buf = vec![0u8; 8192];
        let mut got = Vec::new();
        while let Ok(n) = s.recv(&mut buf) {
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got.len(), segs.iter().map(|(_, p)| p.len()).sum::<usize>());
        assert!(got.iter().all(|&b| b == 9));
    }

    #[test]
    fn duplicate_segments_ignored() {
        let (mut c, mut s) = established();
        let now = 0;
        c.send(b"once only").unwrap();
        let (h, p) = c.poll_transmit(now).unwrap();
        let bytes = h.emit(&p, CLIENT_IP, SERVER_IP);
        let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
        s.on_segment(&g, &bytes[r.clone()], now);
        s.on_segment(&g, &bytes[r.clone()], now); // duplicate
        s.on_segment(&g, &bytes[r], now); // triplicate
        let mut buf = [0u8; 64];
        let n = s.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"once only");
        assert_eq!(s.recv(&mut buf), Err(TcpError::WouldBlock));
    }
}
