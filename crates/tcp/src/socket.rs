//! The per-connection TCP coordinator (RFC 793 + RFC 5681 + RFC 6298).
//!
//! A [`TcpSocket`] is driven by three stimuli — inbound segments, timer
//! expiry, and user calls — and produces outbound segments via
//! [`TcpSocket::poll_transmit`] plus user-visible [`SockEvent`]s. It never
//! touches anything outside itself: the owning stack does demultiplexing,
//! port allocation, and wire I/O.
//!
//! The protocol logic itself lives in four owned-state components under
//! [`crate::components`] — connection management, reliability, flow
//! control, and congestion control. This file holds only the coordinator:
//! the struct, its constructors, user-facing operations, and the routing
//! that sequences component steps for each stimulus (see DESIGN.md's
//! "TCP component map" for the ownership table).

use crate::components::{self, CongestionControl, ConnMgmt, FlowControl, Reliability};
use crate::types::{
    CongestionAlgo, SockEvent, SockOpt, SockOptKind, SocketId, TcpConfig, TcpError, TcpState,
};
use neat_net::{SeqNum, TcpHeader};
use std::net::Ipv4Addr;

/// The window-scale shift we advertise on SYN segments.
pub(crate) const OUR_WSCALE: u8 = 7;

/// Flat estimate for the boxed congestion-controller state (every
/// controller is a handful of words; the box allocation dominates).
const CC_BOX_BYTES: usize = 64;

/// One end of a TCP connection: a thin coordinator over the four
/// components, owning only identity, configuration, and statistics.
#[derive(Debug)]
pub struct TcpSocket {
    pub id: SocketId,
    pub(crate) cfg: TcpConfig,

    pub local_ip: Ipv4Addr,
    pub local_port: u16,
    pub remote_ip: Ipv4Addr,
    pub remote_port: u16,

    /// Effective MSS: min(ours, peer's option). Shared by every
    /// component, so the coordinator owns it.
    pub(crate) mss: u16,

    /// Connection management: the RFC 793 state machine.
    pub(crate) cm: ConnMgmt,
    /// Reliability: retransmit queue, RTO, dup-ack tracking.
    pub(crate) rel: Reliability,
    /// Flow control: receive path, windows, ACK generation.
    pub(crate) fc: FlowControl,
    /// Congestion control: the event-driven controller.
    pub(crate) cc: Box<dyn CongestionControl>,

    /// Queued user-visible events, drained by the stack.
    pub events: Vec<SockEvent>,
    /// Error recorded at abort time.
    pub error: Option<TcpError>,

    // --- statistics (exposed for experiments) ---
    pub tx_segments: u64,
    pub rx_segments: u64,
    pub retransmits: u64,

    /// Footprint last reported to the stack's `ConnBudget`; the stack
    /// keeps the budget in sync by delta against this.
    accounted: usize,
}

impl TcpSocket {
    pub(crate) fn new(id: SocketId, cfg: &TcpConfig, iss: SeqNum) -> TcpSocket {
        TcpSocket {
            id,
            cfg: cfg.clone(),
            local_ip: Ipv4Addr::UNSPECIFIED,
            local_port: 0,
            remote_ip: Ipv4Addr::UNSPECIFIED,
            remote_port: 0,
            mss: cfg.mss,
            cm: ConnMgmt::new(iss),
            rel: Reliability::new(iss, cfg),
            fc: FlowControl::new(cfg),
            cc: components::make(cfg.congestion, cfg.mss),
            events: Vec::new(),
            error: None,
            tx_segments: 0,
            rx_segments: 0,
            retransmits: 0,
            accounted: 0,
        }
    }

    /// Approximate resident footprint of this connection: the socket
    /// struct plus every heap allocation it owns (buffer *capacities*,
    /// not configured limits — idle connections stay near
    /// `size_of::<TcpSocket>()`).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<TcpSocket>()
            + self.rel.send_buf.heap_bytes()
            + self.fc.recv_buf.heap_bytes()
            + self.fc.asm.heap_bytes()
            + self.events.capacity() * std::mem::size_of::<SockEvent>()
            + CC_BOX_BYTES
    }

    /// Record `new` as the budget-accounted footprint, returning the
    /// previous value (stack-internal delta accounting).
    pub(crate) fn swap_accounted(&mut self, new: usize) -> usize {
        std::mem::replace(&mut self.accounted, new)
    }

    /// Create a socket performing an active open (client side).
    pub fn connect(
        id: SocketId,
        cfg: &TcpConfig,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: SeqNum,
        now: u64,
    ) -> TcpSocket {
        let mut s = TcpSocket::new(id, cfg, iss);
        s.local_ip = local.0;
        s.local_port = local.1;
        s.remote_ip = remote.0;
        s.remote_port = remote.1;
        s.cm.state = TcpState::SynSent;
        s.arm_rtx(now);
        s
    }

    /// Create a socket from a received SYN (passive open — the stack's
    /// listener calls this for each backlog entry).
    pub fn accept_from_syn(
        id: SocketId,
        cfg: &TcpConfig,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        syn: &TcpHeader,
        iss: SeqNum,
        now: u64,
    ) -> TcpSocket {
        let mut s = TcpSocket::new(id, cfg, iss);
        s.local_ip = local.0;
        s.local_port = local.1;
        s.remote_ip = remote.0;
        s.remote_port = remote.1;
        s.cm.state = TcpState::SynReceived;
        s.cm.irs = syn.seq;
        s.fc.rcv_nxt = syn.seq + 1;
        if let Some(peer_mss) = syn.mss {
            s.mss = s.mss.min(peer_mss);
        }
        if let Some(ws) = syn.window_scale {
            s.fc.snd_wscale = ws;
            s.fc.rcv_wscale = OUR_WSCALE;
        }
        s.fc.snd_wnd = (syn.window as usize) << s.fc.snd_wscale;
        s.fc.snd_wl1 = syn.seq;
        s.fc.snd_wl2 = SeqNum(0);
        s.arm_rtx(now);
        s
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn state(&self) -> TcpState {
        self.cm.state
    }

    pub fn snd_una(&self) -> SeqNum {
        self.rel.send_buf.base()
    }

    pub fn bytes_in_flight(&self) -> usize {
        (self.rel.snd_nxt - self.snd_una()).max(0) as usize
    }

    pub fn recv_available(&self) -> usize {
        self.fc.recv_buf.len()
    }

    pub fn send_room(&self) -> usize {
        self.rel.send_buf.room()
    }

    /// Peer closed and all data has been drained — EOF for the app.
    pub fn at_eof(&self) -> bool {
        self.cm.peer_fin_rcvd && self.fc.recv_buf.is_empty()
    }

    pub fn effective_mss(&self) -> u16 {
        self.mss
    }

    /// The congestion-control algorithm currently driving this flow.
    pub fn cc_algo(&self) -> CongestionAlgo {
        self.cc.algo()
    }

    // ------------------------------------------------------------------
    // User operations
    // ------------------------------------------------------------------

    /// Enqueue user data; returns bytes accepted.
    pub fn send(&mut self, data: &[u8]) -> Result<usize, TcpError> {
        if !self.cm.state.can_send() || self.cm.close_requested {
            return Err(TcpError::BadState);
        }
        let n = self.rel.send_buf.push(data);
        if n == 0 {
            return Err(TcpError::WouldBlock);
        }
        Ok(n)
    }

    /// Read received data; 0 bytes at EOF (peer closed and drained).
    pub fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TcpError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let n = self.fc.recv_buf.read(buf);
        if n == 0 && !self.at_eof() {
            return Err(TcpError::WouldBlock);
        }
        // Window may have reopened substantially: let the peer know soon.
        if n > 0 && self.fc.recv_buf.window() >= self.mss as usize * 2 {
            self.fc.ack_pending = self.fc.ack_pending.max(1);
        }
        Ok(n)
    }

    /// Apply a per-socket option (the stack's `set_opt` routes here).
    pub fn set_opt(&mut self, opt: SockOpt) {
        match opt {
            SockOpt::CongestionAlgo(algo) => {
                // Switching algorithms restarts from slow-start parameters;
                // re-selecting the current one is a no-op so tuning via
                // `InitialCwnd` survives redundant sets.
                if self.cc.algo() != algo {
                    self.cc = components::make(algo, self.mss);
                }
            }
            SockOpt::InitialCwnd(segs) => {
                self.cc.set_cwnd(segs as usize * self.mss as usize);
            }
            SockOpt::RecvBuf(cap) => {
                self.fc.recv_buf.set_cap(cap);
                self.fc.asm.set_cap(cap);
            }
        }
    }

    /// Read back the current value of an option kind.
    pub fn get_opt(&self, kind: SockOptKind) -> Option<SockOpt> {
        Some(match kind {
            SockOptKind::CongestionAlgo => SockOpt::CongestionAlgo(self.cc.algo()),
            SockOptKind::InitialCwnd => {
                SockOpt::InitialCwnd((self.cc.cwnd() / self.mss.max(1) as usize) as u32)
            }
            SockOptKind::RecvBuf => SockOpt::RecvBuf(self.fc.recv_buf.cap()),
        })
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Earliest instant this socket needs a timer callback.
    pub fn next_timeout(&self) -> Option<u64> {
        [
            self.rel.rtx_deadline,
            self.fc.ack_deadline,
            self.cm.time_wait_deadline,
            self.fc.probe_deadline,
            self.cm.keepalive_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Process timer expirations at `now`, routing each deadline to the
    /// component that owns it.
    pub fn on_timer(&mut self, now: u64) {
        if let Some(d) = self.cm.time_wait_deadline {
            if now >= d {
                self.cm.time_wait_deadline = None;
                self.cm.state = TcpState::Closed;
                self.events.push(SockEvent::Closed(self.id));
                return;
            }
        }
        if let Some(d) = self.rel.rtx_deadline {
            if now >= d {
                self.handle_rto(now);
            }
        }
        if let Some(d) = self.fc.ack_deadline {
            if now >= d {
                self.fc.ack_deadline = None;
                if self.fc.ack_pending > 0 {
                    self.fc.ack_now = true;
                }
            }
        }
        if let Some(d) = self.fc.probe_deadline {
            if now >= d {
                // Zero-window probe: retransmit one byte at snd_una.
                self.fc.probe_deadline = Some(now + self.rel.rtt.rto().max(1_000_000));
                self.rel.rtx_now = true;
            }
        }
        if let Some(d) = self.cm.keepalive_deadline {
            if now >= d && self.cm.state == TcpState::Established {
                self.cm.keepalive_deadline = Some(now + self.cfg.keepalive_ns);
                self.fc.ack_now = true; // keepalive = duplicate ACK probe
            }
        }
    }

    // ------------------------------------------------------------------
    // Segment arrival
    // ------------------------------------------------------------------

    /// Handle one inbound segment addressed to this connection.
    pub fn on_segment(&mut self, h: &TcpHeader, payload: &[u8], now: u64) {
        self.rx_segments += 1;
        match self.cm.state {
            TcpState::Closed => {}
            TcpState::SynSent => self.on_segment_syn_sent(h, now),
            _ => self.on_segment_synchronized(h, payload, now),
        }
    }

    /// RFC 793 segment-arrival steps in a synchronized state, each routed
    /// to its owning component: acceptability and windows to flow
    /// control, ACKs to reliability, RST/SYN/FIN to connection
    /// management.
    fn on_segment_synchronized(&mut self, h: &TcpHeader, payload: &[u8], now: u64) {
        let seg_len = h.seq_len(payload.len());

        // Step 1: sequence acceptability (flow control).
        if !self.seq_acceptable(h, seg_len) {
            if !h.flags.rst {
                self.fc.ack_now = true; // re-ACK to resync the peer
            }
            return;
        }

        // Step 2: RST (connection management).
        if h.flags.rst {
            match self.cm.state {
                TcpState::SynReceived => self.enter_closed(TcpError::Reset, true),
                TcpState::TimeWait | TcpState::LastAck | TcpState::Closing => {
                    self.enter_closed(TcpError::Reset, false)
                }
                _ => self.enter_closed(TcpError::Reset, true),
            }
            return;
        }

        // Step 4: SYN in window is an error.
        if h.flags.syn && h.seq != self.cm.irs {
            self.enter_closed(TcpError::Reset, true);
            return;
        }

        // Step 5: ACK processing — passive-open completion (connection
        // management), then cumulative/duplicate ACKs (reliability).
        if !h.flags.ack {
            return;
        }
        if self.cm.state == TcpState::SynReceived && !self.establish_syn_received(h, now) {
            return;
        }
        if !self.process_ack(h, payload, now) {
            return;
        }

        // Step 6: window update (flow control).
        self.process_window_update(h, now);

        // Step 7: payload (flow control).
        self.process_payload(h, payload, now);

        // Step 8: FIN (connection management).
        self.process_fin(h, payload, now);
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Produce the next segment to transmit, if any. Call repeatedly until
    /// `None`. Payload is returned separately from the header. Each state
    /// routes to the component that owns the segment type.
    pub fn poll_transmit(&mut self, now: u64) -> Option<(TcpHeader, Vec<u8>)> {
        match self.cm.state {
            TcpState::Closed => self.transmit_rst(),
            TcpState::SynSent => self.transmit_syn(now),
            TcpState::SynReceived => self.transmit_syn_ack(now),
            TcpState::TimeWait => {
                if self.fc.ack_now {
                    self.fc.ack_now = false;
                    self.fc.ack_pending = 0;
                    return Some((self.bare_ack(), Vec::new()));
                }
                None
            }
            _ => self.poll_transmit_data(now),
        }
    }

    /// Synchronized-state transmit priority: retransmission, then new
    /// data (reliability), then FIN (connection management), then a pure
    /// ACK (flow control).
    fn poll_transmit_data(&mut self, now: u64) -> Option<(TcpHeader, Vec<u8>)> {
        if let Some(seg) = self.rtx_transmit() {
            return Some(seg);
        }
        if let Some(seg) = self.transmit_new_data(now) {
            return Some(seg);
        }
        if let Some(seg) = self.transmit_fin(now) {
            return Some(seg);
        }
        self.transmit_pure_ack()
    }
}

#[cfg(test)]
#[path = "socket_tests.rs"]
mod tests;
