//! Out-of-order segment reassembly for the receive path.
//!
//! Holds data that arrived beyond `rcv.nxt` until the gap is filled, then
//! releases a contiguous run. Overlapping and duplicate segments are
//! tolerated (the network — and our NIC fault injector — produce both).

use neat_net::SeqNum;

/// Buffered out-of-order data, kept sorted and non-overlapping.
#[derive(Debug, Default)]
pub struct Assembler {
    /// Sorted, disjoint (start, data) runs strictly above the ack point.
    runs: Vec<(SeqNum, Vec<u8>)>,
    /// Bytes currently buffered (capacity accounting).
    buffered: usize,
    /// Maximum bytes this assembler may hold.
    cap: usize,
}

impl Assembler {
    pub fn new(cap: usize) -> Assembler {
        Assembler {
            runs: Vec::new(),
            buffered: 0,
            cap,
        }
    }

    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Resize the capacity (`SockOpt::RecvBuf` tracks the receive buffer).
    /// Clamped to what is already buffered; held runs are never dropped.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap.max(self.buffered);
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Allocated heap bytes across all out-of-order runs (capacity
    /// accounting for the `ConnBudget`).
    pub fn heap_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<(SeqNum, Vec<u8>)>()
            + self.runs.iter().map(|(_, d)| d.capacity()).sum::<usize>()
    }

    /// Insert a segment `[seq, seq+data.len())`. Data at or below `ack`
    /// (already delivered) is trimmed. Returns false if capacity was
    /// exceeded and the segment dropped.
    pub fn insert(&mut self, mut seq: SeqNum, mut data: &[u8], ack: SeqNum) -> bool {
        // Trim the already-received prefix.
        let below = ack - seq;
        if below > 0 {
            if below as usize >= data.len() {
                return true; // entirely old — nothing to keep
            }
            data = &data[below as usize..];
            seq = ack;
        }
        if data.is_empty() {
            return true;
        }
        if self.buffered + data.len() > self.cap {
            return false;
        }
        // Sort all runs (old + new) by start, then coalesce overlapping or
        // adjacent neighbours. On overlap the first-arrived bytes win —
        // honest TCP sends identical bytes, so the choice only matters for
        // corrupted duplicates.
        self.runs.push((seq, data.to_vec()));
        self.runs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut merged: Vec<(SeqNum, Vec<u8>)> = Vec::with_capacity(self.runs.len());
        for (s, d) in self.runs.drain(..) {
            if let Some((ls, ld)) = merged.last_mut() {
                let le = *ls + ld.len() as u32;
                if s <= le {
                    let se = s + d.len() as u32;
                    if se > le {
                        let skip = (le - s) as usize;
                        ld.extend_from_slice(&d[skip..]);
                    }
                    continue;
                }
            }
            merged.push((s, d));
        }
        self.runs = merged;
        self.buffered = self.runs.iter().map(|(_, d)| d.len()).sum();
        true
    }

    /// If a run begins exactly at `ack`, remove and return it (the data
    /// that just became in-order).
    pub fn take_contiguous(&mut self, ack: SeqNum) -> Option<Vec<u8>> {
        if let Some(pos) = self.runs.iter().position(|(s, _)| *s == ack) {
            let (_, data) = self.runs.remove(pos);
            self.buffered -= data.len();
            Some(data)
        } else {
            None
        }
    }

    /// Number of disjoint runs held (diagnostics; smoltcp caps this).
    pub fn gaps(&self) -> usize {
        self.runs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: u32) -> SeqNum {
        SeqNum(n)
    }

    #[test]
    fn in_order_take() {
        let mut a = Assembler::new(1024);
        assert!(a.insert(seq(100), b"hello", seq(100)));
        assert_eq!(a.take_contiguous(seq(100)).unwrap(), b"hello");
        assert!(a.is_empty());
    }

    #[test]
    fn gap_then_fill() {
        let mut a = Assembler::new(1024);
        assert!(a.insert(seq(105), b"world", seq(100)));
        assert!(a.take_contiguous(seq(100)).is_none());
        assert_eq!(a.gaps(), 1);
        assert!(a.insert(seq(100), b"hello", seq(100)));
        assert_eq!(a.take_contiguous(seq(100)).unwrap(), b"helloworld");
    }

    #[test]
    fn old_data_trimmed() {
        let mut a = Assembler::new(1024);
        // Bytes 90..110, but 90..100 already delivered.
        let data: Vec<u8> = (0..20).collect();
        assert!(a.insert(seq(90), &data, seq(100)));
        let got = a.take_contiguous(seq(100)).unwrap();
        assert_eq!(got, (10..20).collect::<Vec<u8>>());
    }

    #[test]
    fn entirely_old_is_noop() {
        let mut a = Assembler::new(16);
        assert!(a.insert(seq(0), b"abcdef", seq(100)));
        assert!(a.is_empty());
        assert_eq!(a.buffered(), 0);
    }

    #[test]
    fn duplicates_dont_grow() {
        let mut a = Assembler::new(1024);
        for _ in 0..5 {
            assert!(a.insert(seq(200), b"dup!", seq(100)));
        }
        assert_eq!(a.buffered(), 4);
        assert_eq!(a.gaps(), 1);
    }

    #[test]
    fn overlapping_merge() {
        let mut a = Assembler::new(1024);
        assert!(a.insert(seq(100), b"abcd", seq(100)));
        assert!(a.insert(seq(102), b"cdef", seq(100)));
        let got = a.take_contiguous(seq(100)).unwrap();
        assert_eq!(got, b"abcdef");
    }

    #[test]
    fn capacity_limit_drops() {
        let mut a = Assembler::new(8);
        assert!(a.insert(seq(200), b"12345678", seq(100)));
        assert!(!a.insert(seq(300), b"x", seq(100)), "over capacity");
        assert_eq!(a.buffered(), 8);
    }

    #[test]
    fn multiple_gaps_fill_in_any_order() {
        let mut a = Assembler::new(1024);
        assert!(a.insert(seq(110), b"cc", seq(100)));
        assert!(a.insert(seq(104), b"bb", seq(100)));
        assert_eq!(a.gaps(), 2);
        assert!(a.insert(seq(100), b"aaaa", seq(100)));
        assert_eq!(a.take_contiguous(seq(100)).unwrap(), b"aaaabb");
        assert!(a.take_contiguous(seq(106)).is_none());
        assert!(a.insert(seq(106), b"xxxx", seq(106)));
        assert_eq!(a.take_contiguous(seq(106)).unwrap(), b"xxxxcc");
        assert!(a.is_empty());
    }

    #[test]
    fn wrapping_sequence_space() {
        let near = SeqNum(u32::MAX - 2);
        let mut a = Assembler::new(64);
        assert!(a.insert(near, b"abcdef", near)); // crosses the wrap
        assert_eq!(a.take_contiguous(near).unwrap(), b"abcdef");
    }
}
