//! One TCP stack instance: socket table, demultiplexing, listeners with
//! SYN backlog and accept queues, ephemeral ports, and timer scheduling.
//!
//! In NEaT terms, a [`TcpStack`] is the state a single replica owns. The
//! paper's key partitioning invariant — "each network socket [lives] only in
//! a single instance of the network stack" (§3.1) — holds trivially because
//! a stack instance is a plain owned value; there is nothing to share.
//!
//! Scale-out structure (the million-connection refactor):
//!
//! * flow demux goes through the flat hashed [`DemuxTable`] — O(1) per
//!   segment, no per-node allocation (see `demux.rs`);
//! * all per-socket deadlines live in one hierarchical [`TimerWheel`] —
//!   O(1) arm/cancel, cascade on demand (see `wheel.rs`);
//! * listener lookup by id is a hash probe, not a scan;
//! * closed sockets are reaped inline at their quiescence point instead
//!   of by an O(all sockets) sweep on every timer tick;
//! * per-connection memory is delta-accounted into a [`ConnBudget`] and
//!   optionally bounded (`TcpConfig::conn_memory_limit`).

use crate::budget::ConnBudget;
use crate::demux::DemuxTable;
use crate::socket::TcpSocket;
use crate::tcb::TcbImage;
use crate::types::{
    Readiness, SockEvent, SockOpt, SockOptKind, SocketId, TcpConfig, TcpError, TcpState,
};
use crate::wheel::TimerWheel;
use neat_net::{FlowKey, SeqNum, TcpFlags, TcpHeader};
use neat_util::{FxHashMap, FxHashSet};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// A listening socket: subsockets of the paper's replicated listeners map
/// to one `Listener` in each replica's stack.
#[derive(Debug)]
struct Listener {
    id: SocketId,
    port: u16,
    /// Connections past the handshake, ready for `accept`.
    accept_q: VecDeque<SocketId>,
    /// Connections still in SYN-RECEIVED.
    syn_backlog: usize,
}

/// Aggregate statistics for the experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackStats {
    pub rx_segments: u64,
    pub tx_segments: u64,
    pub rst_sent: u64,
    pub conns_opened: u64,
    pub conns_accepted: u64,
    pub demux_misses: u64,
}

/// Handles into the global `neat_obs` registry, mirroring the per-stack
/// [`StackStats`] as process-wide aggregates (all stack instances of the
/// simulation sum into the same named counters).
#[derive(Debug, Clone, Copy)]
struct StackObs {
    rx_segments: neat_obs::Counter,
    tx_segments: neat_obs::Counter,
    conns_accepted: neat_obs::Counter,
}

impl StackObs {
    fn new() -> StackObs {
        StackObs {
            rx_segments: neat_obs::counter("tcp.rx_segments"),
            tx_segments: neat_obs::counter("tcp.tx_segments"),
            conns_accepted: neat_obs::counter("tcp.conns_accepted"),
        }
    }
}

/// Rough first-touch footprint of a connection, used for budget
/// admission before the socket exists.
fn base_conn_cost() -> u64 {
    (std::mem::size_of::<TcpSocket>() + 64) as u64
}

/// One isolated TCP stack instance.
#[derive(Debug)]
pub struct TcpStack {
    pub local_ip: Ipv4Addr,
    cfg: TcpConfig,
    sockets: FxHashMap<SocketId, TcpSocket>,
    /// Established/opening connections by flow (remote side as src):
    /// the O(1) hashed TCB table every inbound segment resolves through.
    conns: DemuxTable,
    listeners: FxHashMap<u16, Listener>,
    /// Listener id -> port (O(1) accept/acceptable/poll by id).
    listener_of: FxHashMap<SocketId, u16>,
    /// Which listener a pending (not yet accepted) socket belongs to.
    pending_of: FxHashMap<SocketId, u16>,
    next_id: u64,
    next_port: u16,
    port_lo: u16,
    port_hi: u16,
    iss_counter: u32,
    /// Sockets that may have segments to transmit.
    dirty: VecDeque<SocketId>,
    dirty_set: FxHashSet<SocketId>,
    /// Raw segments owed to peers with no socket (RSTs).
    raw_out: VecDeque<(Ipv4Addr, TcpHeader, Vec<u8>)>,
    /// User-visible events.
    events: VecDeque<SockEvent>,
    /// One armed deadline per socket, hierarchically hashed.
    timers: TimerWheel,
    /// Accounted connection memory (and the optional bound on it).
    budget: ConnBudget,
    /// Checkpoint-delta tracking for buddy replication: every socket that
    /// was touched since the last [`TcpStack::take_repl_dirty`] drain.
    repl_track: bool,
    repl_dirty: FxHashSet<SocketId>,
    /// Flows that closed since the last drain (buddy forgets them).
    repl_closed: Vec<FlowKey>,
    /// Flows handed to another replica: late segments for them are dropped
    /// silently instead of answered with a RST that would kill the
    /// migrated connection. A fresh SYN lifts the quarantine.
    migrated_out: FxHashSet<FlowKey>,
    pub stats: StackStats,
    obs: StackObs,
}

impl TcpStack {
    pub fn new(local_ip: Ipv4Addr, cfg: TcpConfig) -> TcpStack {
        // Key the demux hash off the local address: deterministic for a
        // fixed topology, distinct between stack instances.
        let demux_key = 0x9e37_79b9_7f4a_7c15u64 ^ ((u32::from(local_ip) as u64) << 17);
        let budget = ConnBudget::new(cfg.conn_memory_limit);
        TcpStack {
            local_ip,
            cfg,
            sockets: FxHashMap::default(),
            conns: DemuxTable::new(demux_key),
            listeners: FxHashMap::default(),
            listener_of: FxHashMap::default(),
            pending_of: FxHashMap::default(),
            next_id: 1,
            next_port: 49_152,
            port_lo: 49_152,
            port_hi: 65_535,
            iss_counter: 0x1234_5678,
            dirty: VecDeque::new(),
            dirty_set: FxHashSet::default(),
            raw_out: VecDeque::new(),
            events: VecDeque::new(),
            timers: TimerWheel::new(0),
            budget,
            repl_track: false,
            repl_dirty: FxHashSet::default(),
            repl_closed: Vec::new(),
            migrated_out: FxHashSet::default(),
            stats: StackStats::default(),
            obs: StackObs::new(),
        }
    }

    /// Restrict ephemeral ports to `[lo, hi]` — lets several stack
    /// instances share one IP address without colliding (the load
    /// generator's per-process stacks partition the port space).
    pub fn set_port_range(&mut self, lo: u16, hi: u16) {
        assert!(lo <= hi && lo >= 1024);
        self.port_lo = lo;
        self.port_hi = hi;
        self.next_port = lo;
    }

    fn alloc_id(&mut self) -> SocketId {
        let id = SocketId(self.next_id);
        self.next_id += 1;
        id
    }

    fn next_iss(&mut self) -> SeqNum {
        // Deterministic ISS spacing (RFC 793's clock-driven ISS is
        // irrelevant inside the simulation).
        self.iss_counter = self.iss_counter.wrapping_add(64_021);
        SeqNum(self.iss_counter)
    }

    fn mark_dirty(&mut self, id: SocketId) {
        if self.dirty_set.insert(id) {
            self.dirty.push_back(id);
        }
        if self.repl_track {
            self.repl_dirty.insert(id);
        }
    }

    /// (Re-)arm the wheel with the socket's earliest deadline, or disarm
    /// when it no longer needs one. O(1) either way.
    fn arm_timer(&mut self, id: SocketId) {
        match self.sockets.get(&id).and_then(|s| s.next_timeout()) {
            Some(d) => self.timers.schedule(id.0, d),
            None => {
                self.timers.cancel(id.0);
            }
        }
    }

    /// Bring the budget in sync with the socket's current footprint.
    fn account(&mut self, id: SocketId) {
        if let Some(s) = self.sockets.get_mut(&id) {
            let new = s.mem_bytes();
            let old = s.swap_accounted(new);
            self.budget.adjust(new as i64 - old as i64);
        }
    }

    /// Register a freshly created connection socket.
    fn install_socket(&mut self, flow: FlowKey, mut sock: TcpSocket) {
        let id = sock.id;
        let bytes = sock.mem_bytes();
        sock.swap_accounted(bytes);
        self.budget.on_open(bytes as u64);
        self.conns.insert(flow, id);
        self.sockets.insert(id, sock);
        self.mark_dirty(id);
        self.arm_timer(id);
    }

    // ------------------------------------------------------------------
    // User API (BSD-socket shaped)
    // ------------------------------------------------------------------

    /// Open a listening socket on `port`.
    pub fn listen(&mut self, port: u16) -> Result<SocketId, TcpError> {
        if self.listeners.contains_key(&port) {
            return Err(TcpError::AddrInUse);
        }
        let id = self.alloc_id();
        self.listeners.insert(
            port,
            Listener {
                id,
                port,
                accept_q: VecDeque::new(),
                syn_backlog: 0,
            },
        );
        self.listener_of.insert(id, port);
        Ok(id)
    }

    /// Stop listening on a port (existing connections are unaffected).
    pub fn unlisten(&mut self, port: u16) {
        if let Some(l) = self.listeners.remove(&port) {
            self.listener_of.remove(&l.id);
        }
    }

    /// Active open to `remote`. Returns the new socket id; the
    /// [`SockEvent::Connected`] event fires when the handshake completes.
    pub fn connect(
        &mut self,
        remote_ip: Ipv4Addr,
        remote_port: u16,
        now: u64,
    ) -> Result<SocketId, TcpError> {
        if !self.budget.admit(base_conn_cost()) {
            return Err(TcpError::NoMemory);
        }
        let port = self.alloc_ephemeral(remote_ip, remote_port)?;
        let id = self.alloc_id();
        let iss = self.next_iss();
        let sock = TcpSocket::connect(
            id,
            &self.cfg,
            (self.local_ip, port),
            (remote_ip, remote_port),
            iss,
            now,
        );
        let flow = FlowKey::tcp(remote_ip, remote_port, self.local_ip, port);
        self.install_socket(flow, sock);
        self.stats.conns_opened += 1;
        Ok(id)
    }

    fn alloc_ephemeral(&mut self, rip: Ipv4Addr, rport: u16) -> Result<u16, TcpError> {
        let span = (self.port_hi - self.port_lo) as usize + 1;
        for _ in 0..span {
            let p = self.next_port;
            self.next_port = if self.next_port >= self.port_hi {
                self.port_lo
            } else {
                self.next_port + 1
            };
            let flow = FlowKey::tcp(rip, rport, self.local_ip, p);
            if !self.conns.contains_key(&flow) && !self.listeners.contains_key(&p) {
                return Ok(p);
            }
        }
        Err(TcpError::NoPorts)
    }

    /// Accept one ready connection from a listener.
    pub fn accept(&mut self, listener: SocketId) -> Result<SocketId, TcpError> {
        let port = *self.listener_of.get(&listener).ok_or(TcpError::NoSocket)?;
        let l = self.listeners.get_mut(&port).ok_or(TcpError::NoSocket)?;
        let id = l.accept_q.pop_front().ok_or(TcpError::WouldBlock)?;
        self.pending_of.remove(&id);
        self.stats.conns_accepted += 1;
        self.obs.conns_accepted.inc();
        Ok(id)
    }

    /// Number of connections ready to accept on a listener.
    pub fn acceptable(&self, listener: SocketId) -> usize {
        self.listener_of
            .get(&listener)
            .and_then(|port| self.listeners.get(port))
            .map(|l| l.accept_q.len())
            .unwrap_or(0)
    }

    pub fn send(&mut self, id: SocketId, data: &[u8]) -> Result<usize, TcpError> {
        let s = self.sockets.get_mut(&id).ok_or(TcpError::NoSocket)?;
        let r = s.send(data);
        if r.is_ok() {
            self.mark_dirty(id);
            self.account(id);
        }
        r
    }

    pub fn recv(&mut self, id: SocketId, buf: &mut [u8]) -> Result<usize, TcpError> {
        let s = self.sockets.get_mut(&id).ok_or(TcpError::NoSocket)?;
        let r = s.recv(buf);
        if r.is_ok() {
            self.mark_dirty(id); // window update may be owed
            self.account(id);
        }
        r
    }

    /// Vectored receive: fill `bufs` in order from the receive buffer in a
    /// single call (the iovec-shaped variant the batched delivery path
    /// uses — one call drains what N per-segment wakeups used to).
    /// Returns total bytes read; `Ok(0)` means EOF.
    pub fn recv_vectored(
        &mut self,
        id: SocketId,
        bufs: &mut [&mut [u8]],
    ) -> Result<usize, TcpError> {
        let s = self.sockets.get_mut(&id).ok_or(TcpError::NoSocket)?;
        let mut total = 0usize;
        for buf in bufs.iter_mut() {
            match s.recv(buf) {
                Ok(0) => break, // EOF — nothing more will come
                Ok(n) => {
                    total += n;
                    if n < buf.len() {
                        break; // receive buffer drained
                    }
                }
                Err(TcpError::WouldBlock) => {
                    if total == 0 {
                        return Err(TcpError::WouldBlock);
                    }
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if total > 0 {
            self.mark_dirty(id); // window update may be owed
            self.account(id);
        }
        Ok(total)
    }

    /// Unified non-blocking readiness query (the one API `poll(fd)`
    /// surfaces sit on). Works for listeners (readable == accept ready)
    /// and connections alike; unknown ids read as pure hang-up.
    pub fn poll(&self, id: SocketId) -> Readiness {
        if let Some(l) = self
            .listener_of
            .get(&id)
            .and_then(|port| self.listeners.get(port))
        {
            return Readiness {
                readable: !l.accept_q.is_empty(),
                writable: false,
                hup: false,
            };
        }
        match self.sockets.get(&id) {
            Some(s) => {
                let st = s.state();
                Readiness {
                    readable: s.recv_available() > 0 || s.at_eof(),
                    writable: st.can_send() && s.send_room() > 0,
                    hup: s.at_eof() || st.is_closed(),
                }
            }
            None => Readiness {
                readable: false,
                writable: false,
                hup: true,
            },
        }
    }

    /// Apply a per-socket option ([`SockOpt`]): switch the congestion
    /// controller, override the initial cwnd, or resize the receive
    /// buffer. Takes effect immediately on the live connection.
    pub fn set_opt(&mut self, id: SocketId, opt: SockOpt) -> Result<(), TcpError> {
        let s = self.sockets.get_mut(&id).ok_or(TcpError::NoSocket)?;
        s.set_opt(opt);
        self.mark_dirty(id); // cc algo / buffers are replicated state
        self.account(id);
        Ok(())
    }

    /// Read back the current value of a per-socket option.
    pub fn get_opt(&self, id: SocketId, kind: SockOptKind) -> Result<SockOpt, TcpError> {
        let s = self.sockets.get(&id).ok_or(TcpError::NoSocket)?;
        s.get_opt(kind).ok_or(TcpError::NoSocket)
    }

    pub fn close(&mut self, id: SocketId, now: u64) -> Result<(), TcpError> {
        let s = self.sockets.get_mut(&id).ok_or(TcpError::NoSocket)?;
        s.close(now);
        self.mark_dirty(id);
        self.arm_timer(id);
        Ok(())
    }

    pub fn abort(&mut self, id: SocketId) -> Result<(), TcpError> {
        let s = self.sockets.get_mut(&id).ok_or(TcpError::NoSocket)?;
        s.abort();
        self.mark_dirty(id);
        Ok(())
    }

    pub fn state(&self, id: SocketId) -> Option<TcpState> {
        self.sockets.get(&id).map(|s| s.state())
    }

    pub fn recv_available(&self, id: SocketId) -> usize {
        self.sockets
            .get(&id)
            .map(|s| s.recv_available())
            .unwrap_or(0)
    }

    pub fn send_room(&self, id: SocketId) -> usize {
        self.sockets.get(&id).map(|s| s.send_room()).unwrap_or(0)
    }

    pub fn at_eof(&self, id: SocketId) -> bool {
        self.sockets.get(&id).map(|s| s.at_eof()).unwrap_or(true)
    }

    /// Live (non-listener) connection count — drives the lazy-termination
    /// GC of §3.4.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// The connection-memory account (bytes, per-conn average, refusals).
    pub fn budget(&self) -> &ConnBudget {
        &self.budget
    }

    /// Export `tcp.conn.*` gauges for this stack instance through the
    /// global `neat-obs` registry (explicit because gauges are
    /// process-global — call it on the instance you want visible).
    pub fn publish_mem_gauges(&self) {
        self.budget.publish();
    }

    // ------------------------------------------------------------------
    // Wire input
    // ------------------------------------------------------------------

    /// Handle one TCP segment (post-IP). `src`/`dst` are the IPv4 addresses
    /// from the IP header; the caller has already validated those.
    pub fn handle_segment(&mut self, src: Ipv4Addr, h: &TcpHeader, payload: &[u8], now: u64) {
        self.stats.rx_segments += 1;
        self.obs.rx_segments.inc();
        let flow = FlowKey::tcp(src, h.src_port, self.local_ip, h.dst_port);
        if let Some(id) = self.conns.get(&flow) {
            self.deliver(id, h, payload, now);
            return;
        }
        // A flow we migrated away: the steering filter update races the
        // last in-flight segments. Drop them silently — a RST here would
        // tear down the connection its new owner just resumed. A fresh
        // SYN means 4-tuple reuse, so lift the quarantine and fall through
        // to normal listener handling.
        if !self.migrated_out.is_empty() && self.migrated_out.contains(&flow) {
            if h.flags.syn && !h.flags.ack {
                self.migrated_out.remove(&flow);
            } else {
                self.stats.demux_misses += 1;
                return;
            }
        }
        // No connection: maybe a listener (SYN only).
        if h.flags.syn && !h.flags.ack {
            if let Some(l) = self.listeners.get_mut(&h.dst_port) {
                if l.syn_backlog + l.accept_q.len() >= self.cfg.backlog {
                    // Backlog overflow: drop the SYN (retry will come).
                    self.stats.demux_misses += 1;
                    neat_obs::counter_add("tcp.syn_dropped", 1);
                    return;
                }
                let lport = l.port;
                if !self.budget.admit(base_conn_cost()) {
                    // Out of connection memory: shed exactly like a
                    // backlog overflow.
                    self.stats.demux_misses += 1;
                    neat_obs::counter_add("tcp.syn_dropped", 1);
                    return;
                }
                let l = self.listeners.get_mut(&h.dst_port).unwrap();
                l.syn_backlog += 1;
                let id = self.alloc_id();
                let iss = self.next_iss();
                let sock = TcpSocket::accept_from_syn(
                    id,
                    &self.cfg,
                    (self.local_ip, lport),
                    (src, h.src_port),
                    h,
                    iss,
                    now,
                );
                self.install_socket(flow, sock);
                self.pending_of.insert(id, lport);
                return;
            }
        }
        // Nothing matches: RST (unless the segment itself is a RST).
        self.stats.demux_misses += 1;
        if !h.flags.rst {
            let (seq, ack, flags) = if h.flags.ack {
                (h.ack, SeqNum(0), TcpFlags::rst())
            } else {
                (
                    SeqNum(0),
                    h.seq + h.seq_len(payload.len()),
                    TcpFlags {
                        rst: true,
                        ack: true,
                        ..Default::default()
                    },
                )
            };
            let rst = TcpHeader::new(h.dst_port, h.src_port, seq, ack, flags);
            self.raw_out.push_back((src, rst, Vec::new()));
            self.stats.rst_sent += 1;
        }
    }

    fn deliver(&mut self, id: SocketId, h: &TcpHeader, payload: &[u8], now: u64) {
        let was_pending = self.pending_of.contains_key(&id);
        if let Some(s) = self.sockets.get_mut(&id) {
            let before = s.state();
            s.on_segment(h, payload, now);
            let after = s.state();
            // Handshake completed on a backlog socket → accept queue.
            if was_pending && before == TcpState::SynReceived && after == TcpState::Established {
                if let Some(port) = self.pending_of.get(&id).copied() {
                    if let Some(l) = self.listeners.get_mut(&port) {
                        l.syn_backlog = l.syn_backlog.saturating_sub(1);
                        l.accept_q.push_back(id);
                        self.events.push_back(SockEvent::Acceptable(l.id));
                    }
                }
            }
        }
        self.drain_socket_events(id);
        self.mark_dirty(id);
        self.arm_timer(id);
        self.account(id);
    }

    fn drain_socket_events(&mut self, id: SocketId) {
        let evs = match self.sockets.get_mut(&id) {
            Some(s) => std::mem::take(&mut s.events),
            None => return,
        };
        for e in evs {
            // Connected events for backlog sockets become Acceptable at the
            // listener; all others pass through.
            if matches!(e, SockEvent::Connected(_)) && self.pending_of.contains_key(&id) {
                continue; // already surfaced via Acceptable above
            }
            self.events.push_back(e);
        }
    }

    // ------------------------------------------------------------------
    // Wire output + events + timers
    // ------------------------------------------------------------------

    /// Next segment to put on the wire: `(dst_ip, header, payload)`.
    pub fn poll_transmit(&mut self, now: u64) -> Option<(Ipv4Addr, TcpHeader, Vec<u8>)> {
        if let Some(raw) = self.raw_out.pop_front() {
            self.stats.tx_segments += 1;
            self.obs.tx_segments.inc();
            return Some(raw);
        }
        while let Some(id) = self.dirty.front().copied() {
            if let Some(s) = self.sockets.get_mut(&id) {
                if let Some((h, payload)) = s.poll_transmit(now) {
                    let dst = s.remote_ip;
                    self.stats.tx_segments += 1;
                    self.obs.tx_segments.inc();
                    self.arm_timer(id);
                    return Some((dst, h, payload));
                }
            }
            self.dirty.pop_front();
            self.dirty_set.remove(&id);
            self.drain_socket_events(id);
            self.account(id);
            // A socket that drained its last segment and reached Closed
            // is quiescent here — reap it now (no global GC sweeps).
            self.maybe_reap(id);
        }
        None
    }

    /// Drain the next user-visible event.
    pub fn poll_event(&mut self) -> Option<SockEvent> {
        self.events.pop_front()
    }

    /// Next instant this stack needs a timer callback. For coarse
    /// deadlines this is the wheel's cascade boundary — a lower bound on
    /// the earliest real deadline — so drivers must re-arm from the new
    /// `next_timeout` after each `on_timer` (every driver in this
    /// workspace already does).
    pub fn next_timeout(&self) -> Option<u64> {
        self.timers.next_event()
    }

    /// Fire all timers due at `now`, cascading the wheel as needed.
    pub fn on_timer(&mut self, now: u64) {
        for key in self.timers.advance(now) {
            let id = SocketId(key);
            if let Some(s) = self.sockets.get_mut(&id) {
                s.on_timer(now);
                self.drain_socket_events(id);
                self.mark_dirty(id);
                self.arm_timer(id);
                self.account(id);
            }
        }
    }

    /// Remove a socket if it is fully closed and quiescent: its final
    /// segments drained (not dirty) and its events surfaced. Replaces the
    /// old every-tick scan over all sockets, which was O(n) per timer at
    /// 100k+ connections.
    fn maybe_reap(&mut self, id: SocketId) {
        let dead = match self.sockets.get(&id) {
            Some(s) => {
                s.state() == TcpState::Closed
                    && !self.dirty_set.contains(&id)
                    && s.events.is_empty()
            }
            None => false,
        };
        if !dead {
            return;
        }
        if let Some(mut s) = self.sockets.remove(&id) {
            let flow = FlowKey::tcp(s.remote_ip, s.remote_port, s.local_ip, s.local_port);
            self.conns.remove(&flow);
            self.timers.cancel(id.0);
            let bytes = s.swap_accounted(0);
            self.budget.on_close(bytes as u64);
            if let Some(port) = self.pending_of.remove(&id) {
                if let Some(l) = self.listeners.get_mut(&port) {
                    l.accept_q.retain(|x| *x != id);
                }
            }
            if self.repl_track {
                self.repl_dirty.remove(&id);
                self.repl_closed.push(flow);
            }
        }
    }

    /// All live socket ids (diagnostics).
    pub fn socket_ids(&self) -> Vec<SocketId> {
        self.sockets.keys().copied().collect()
    }

    // ------------------------------------------------------------------
    // Flow replication & migration (checkpoint export / restore)
    // ------------------------------------------------------------------

    /// Turn checkpoint-delta tracking on (or off). While on, every socket
    /// touched between [`TcpStack::take_repl_dirty`] drains is remembered
    /// so the owning replica can ship incremental TCB checkpoints to its
    /// buddy.
    pub fn set_repl_tracking(&mut self, on: bool) {
        self.repl_track = on;
        if !on {
            self.repl_dirty.clear();
            self.repl_closed.clear();
        }
    }

    /// Drain the set of sockets touched since the last call, as
    /// `(id, flow, image)` checkpoints. Only states that carry resumable
    /// stream state are exported; handshake-phase sockets re-handshake on
    /// their own. Sorted by socket id for deterministic replication
    /// traffic.
    pub fn take_repl_dirty(&mut self) -> Vec<(SocketId, FlowKey, TcbImage)> {
        if self.repl_dirty.is_empty() {
            return Vec::new();
        }
        let mut ids: Vec<SocketId> = self.repl_dirty.drain().collect();
        ids.sort_unstable();
        let mut out = Vec::new();
        for id in ids {
            if let Some(s) = self.sockets.get(&id) {
                if TcbImage::replicable(s.state()) {
                    let flow = FlowKey::tcp(s.remote_ip, s.remote_port, s.local_ip, s.local_port);
                    out.push((id, flow, s.snapshot()));
                }
            }
        }
        out
    }

    /// Drain the flows that fully closed since the last call (the buddy
    /// drops its copy so the replica store stays bounded).
    pub fn take_repl_closed(&mut self) -> Vec<FlowKey> {
        std::mem::take(&mut self.repl_closed)
    }

    /// Checkpoint every replicable connection (full checkpoint on buddy
    /// assignment, and the export half of live migration). Sorted by
    /// socket id for determinism.
    pub fn export_all_conns(&self) -> Vec<(SocketId, FlowKey, TcbImage)> {
        let mut ids: Vec<SocketId> = self
            .sockets
            .keys()
            .copied()
            .filter(|id| !self.listener_of.contains_key(id))
            .collect();
        ids.sort_unstable();
        let mut out = Vec::new();
        for id in ids {
            let s = &self.sockets[&id];
            if TcbImage::replicable(s.state()) {
                let flow = FlowKey::tcp(s.remote_ip, s.remote_port, s.local_ip, s.local_port);
                out.push((id, flow, s.snapshot()));
            }
        }
        out
    }

    /// Install a connection from a checkpoint (failover restore or live
    /// migration import). The socket gets a fresh local id; deadlines in
    /// the image are absolute sim times, so an expired deadline simply
    /// fires on the next timer tick — the retransmission that resyncs the
    /// peer.
    pub fn restore_conn(&mut self, img: &TcbImage) -> Result<SocketId, TcpError> {
        let flow = FlowKey::tcp(img.remote_ip, img.remote_port, img.local_ip, img.local_port);
        if self.conns.contains_key(&flow) {
            return Err(TcpError::AddrInUse);
        }
        if !self.budget.admit(base_conn_cost()) {
            return Err(TcpError::NoMemory);
        }
        self.migrated_out.remove(&flow);
        let id = self.alloc_id();
        let sock = TcpSocket::restore(id, &self.cfg, img);
        self.install_socket(flow, sock);
        self.stats.conns_opened += 1;
        Ok(id)
    }

    /// Allocation counters `(next_id, iss_counter, next_port)` — the
    /// deterministic state an input-log mirror must share with its
    /// primary so replayed allocations produce identical ids and ISSs.
    pub fn alloc_state(&self) -> (u64, u32, u16) {
        (self.next_id, self.iss_counter, self.next_port)
    }

    /// Adopt a primary's allocation counters (input-log mirror bootstrap).
    pub fn sync_alloc(&mut self, next_id: u64, iss: u32, next_port: u16) {
        self.next_id = self.next_id.max(next_id);
        self.iss_counter = iss;
        if (self.port_lo..=self.port_hi).contains(&next_port) {
            self.next_port = next_port;
        }
    }

    /// Silently remove a connection that was migrated to another replica:
    /// no FIN, no RST, no user event — the flow lives on elsewhere. The
    /// flow key is quarantined so late in-flight segments are dropped
    /// rather than RST'd.
    pub fn remove_conn(&mut self, id: SocketId) -> bool {
        let Some(mut s) = self.sockets.remove(&id) else {
            return false;
        };
        let flow = FlowKey::tcp(s.remote_ip, s.remote_port, s.local_ip, s.local_port);
        self.conns.remove(&flow);
        self.timers.cancel(id.0);
        let bytes = s.swap_accounted(0);
        self.budget.on_close(bytes as u64);
        self.pending_of.remove(&id);
        self.repl_dirty.remove(&id);
        self.migrated_out.insert(flow);
        true
    }
}

#[cfg(test)]
#[path = "stack_tests.rs"]
mod tests;
