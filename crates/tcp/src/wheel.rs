//! Hierarchical timer wheel — amortized O(1) timer management for
//! million-connection stacks.
//!
//! The previous design kept one `BinaryHeap` entry per (deadline, socket)
//! arm with lazy validation: every re-arm pushed a new heap node, so a
//! busy socket accumulated stale entries and every pop paid O(log n) on a
//! heap whose size tracked *timer churn*, not live timers. At 10⁵–10⁶
//! connections (each with RTO + delayed-ACK + keepalive + TIME_WAIT
//! deadlines) that heap becomes the stack's dominant cost.
//!
//! This is the classic hashed hierarchical wheel (Varghese & Lauck, and
//! the shape Linux/tokio use), tuned for the simulator's nanosecond
//! clock:
//!
//! * **11 levels x 64 slots.** Level `L` slots span `64^L` ns, so level 0
//!   is exactly nanosecond-resolution and 11 levels (66 bits) cover the
//!   entire `u64` simulated-time range — no overflow list.
//! * **O(1) schedule and cancel.** Each key holds at most one timer; a
//!   slot is a `Vec` of keys with back-pointer fixup on `swap_remove`, so
//!   cancellation (the *common* case: an RTO that is re-armed on every
//!   ACK) never leaves stale entries behind.
//! * **Cascade on demand.** [`TimerWheel::advance`] jumps straight to the
//!   next occupied slot (no per-tick iteration), firing entries that are
//!   due and re-hashing the rest one level down. A timer parked at level
//!   `L` costs at most `L` re-hashes over its whole life.
//! * **Deterministic firing order.** Expired entries are released sorted
//!   by `(deadline, arm sequence)` — exactly the order a naive sorted
//!   list would produce — so fixed-seed runs are bit-identical (the
//!   property tests in `proptests.rs` check equivalence against that
//!   model, including cancellation and cascades).
//!
//! [`TimerWheel::next_event`] returns the next instant the wheel needs
//! driving. For a level-0 timer that is its exact deadline; for a coarser
//! level it is the *slot boundary* where the entry will cascade, i.e. a
//! lower bound. Callers that sleep until `next_event` and then call
//! `advance` converge on the exact deadline in at most 10 hops (every
//! driver in this workspace already re-arms after firing).

use neat_util::FxHashMap;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64
const LEVELS: usize = 11; // 11 * 6 = 66 bits >= u64

/// One wheel slot: the keys parked in it plus the smallest slot-window id
/// (`deadline >> shift`) seen among them. The minimum may go stale-low
/// after a cancel; `advance` recomputes it when the window turns out to
/// be empty, so it is always a valid *lower bound*.
#[derive(Debug, Default, Clone)]
struct Slot {
    keys: Vec<u64>,
    min_win: u64,
}

#[derive(Debug, Clone, Copy)]
struct Meta {
    deadline: u64,
    /// Monotonic arm sequence — tiebreak for deterministic firing order.
    seq: u64,
    level: u8,
    slot: u8,
    /// Index into the slot's key vec.
    pos: u32,
}

/// The wheel. Keys are caller-chosen `u64`s (socket ids); each key holds
/// at most one armed deadline.
#[derive(Debug)]
pub struct TimerWheel {
    /// The wheel's notion of "now": advanced monotonically by `advance`.
    now: u64,
    levels: Vec<Vec<Slot>>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    meta: FxHashMap<u64, Meta>,
    seq: u64,
}

impl TimerWheel {
    /// A wheel whose time starts at `start` (timers may still be armed in
    /// the past; they fire on the next `advance`).
    pub fn new(start: u64) -> TimerWheel {
        TimerWheel {
            now: start,
            levels: vec![vec![Slot::default(); SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            meta: FxHashMap::default(),
            seq: 0,
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// The armed deadline for `key`, if any.
    pub fn deadline_of(&self, key: u64) -> Option<u64> {
        self.meta.get(&key).map(|m| m.deadline)
    }

    /// The level a delta-to-deadline hashes to: the highest set 6-bit
    /// group, so level `L` holds deltas in `[64^L, 64^(L+1))`.
    #[inline]
    fn level_for(delta: u64) -> usize {
        if delta < SLOTS as u64 {
            0
        } else {
            ((63 - delta.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    /// Place `key` (whose meta exists with deadline/seq set) into the
    /// wheel relative to `self.now`, updating level/slot/pos.
    fn place(&mut self, key: u64) {
        let m = self.meta[&key];
        let delta = m.deadline.saturating_sub(self.now);
        let level = Self::level_for(delta);
        let shift = SLOT_BITS * level as u32;
        let win = m.deadline >> shift;
        let slot = (win & (SLOTS as u64 - 1)) as usize;
        let s = &mut self.levels[level][slot];
        if s.keys.is_empty() || win < s.min_win {
            s.min_win = win;
        }
        let pos = s.keys.len() as u32;
        s.keys.push(key);
        self.occupied[level] |= 1 << slot;
        let m = self.meta.get_mut(&key).unwrap();
        m.level = level as u8;
        m.slot = slot as u8;
        m.pos = pos;
    }

    /// Arm (or re-arm, replacing any previous deadline) a timer for
    /// `key` at absolute time `deadline`.
    pub fn schedule(&mut self, key: u64, deadline: u64) {
        self.cancel(key);
        let seq = self.seq;
        self.seq += 1;
        self.meta.insert(
            key,
            Meta {
                deadline,
                seq,
                level: 0,
                slot: 0,
                pos: 0,
            },
        );
        self.place(key);
    }

    /// Disarm `key`'s timer. Returns the deadline it held, if any. O(1).
    pub fn cancel(&mut self, key: u64) -> Option<u64> {
        let m = self.meta.remove(&key)?;
        let s = &mut self.levels[m.level as usize][m.slot as usize];
        s.keys.swap_remove(m.pos as usize);
        if let Some(&moved) = s.keys.get(m.pos as usize) {
            self.meta.get_mut(&moved).unwrap().pos = m.pos;
        }
        if s.keys.is_empty() {
            self.occupied[m.level as usize] &= !(1 << m.slot);
        }
        Some(m.deadline)
    }

    /// The earliest occupied slot boundary: `(window_start, level, slot)`.
    fn earliest_slot(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for (level, &bits) in self.occupied.iter().enumerate() {
            let shift = SLOT_BITS * level as u32;
            let mut b = bits;
            while b != 0 {
                let slot = b.trailing_zeros() as usize;
                b &= b - 1;
                let start = self.levels[level][slot].min_win << shift;
                if best.map(|(t, _, _)| start < t).unwrap_or(true) {
                    best = Some((start, level, slot));
                }
            }
        }
        best
    }

    /// Next instant the wheel needs driving: the earliest deadline for
    /// level-0 entries, or the cascade boundary for coarser ones (a lower
    /// bound on the earliest deadline). `None` when nothing is armed.
    pub fn next_event(&self) -> Option<u64> {
        self.earliest_slot().map(|(t, _, _)| t)
    }

    /// Advance wheel time to `now`, cascading coarse slots and returning
    /// every key whose deadline is `<= now`, ordered by
    /// `(deadline, arm sequence)`. Fired keys are disarmed.
    pub fn advance(&mut self, now: u64) -> Vec<u64> {
        let mut fired: Vec<(u64, u64, u64)> = Vec::new();
        while let Some((start, level, slot)) = self.earliest_slot() {
            if start > now {
                break;
            }
            self.now = self.now.max(start);
            let shift = SLOT_BITS * level as u32;
            let win = start >> shift;
            let keys = std::mem::take(&mut self.levels[level][slot].keys);
            self.occupied[level] &= !(1 << slot);
            let mut kept: Vec<u64> = Vec::new();
            let mut kept_min = u64::MAX;
            for key in keys {
                let m = self.meta[&key];
                if m.deadline >> shift == win {
                    if m.deadline <= now {
                        // Due: release it (cascading through intermediate
                        // levels would be wasted work).
                        self.meta.remove(&key);
                        fired.push((m.deadline, m.seq, key));
                    } else {
                        // In this window but later than `now` — re-hash
                        // one or more levels down relative to the window
                        // start we just reached.
                        self.place(key);
                    }
                } else {
                    // A later rotation of this slot (or a stale min after
                    // cancels): keep it parked and recompute the minimum.
                    kept_min = kept_min.min(m.deadline >> shift);
                    kept.push(key);
                }
            }
            if !kept.is_empty() {
                let s = &mut self.levels[level][slot];
                s.min_win = kept_min;
                for (pos, &key) in kept.iter().enumerate() {
                    self.meta.get_mut(&key).unwrap().pos = pos as u32;
                }
                s.keys = kept;
                self.occupied[level] |= 1 << slot;
            }
        }
        self.now = self.now.max(now);
        fired.sort_unstable_by_key(|&(deadline, seq, _)| (deadline, seq));
        fired.into_iter().map(|(_, _, k)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new(0);
        w.schedule(1, 500);
        w.schedule(2, 100);
        w.schedule(3, 300);
        assert_eq!(w.len(), 3);
        assert_eq!(w.advance(1000), vec![2, 3, 1]);
        assert!(w.is_empty());
    }

    #[test]
    fn reschedule_replaces() {
        let mut w = TimerWheel::new(0);
        w.schedule(7, 1_000_000);
        w.schedule(7, 50); // re-arm earlier
        assert_eq!(w.len(), 1);
        assert_eq!(w.deadline_of(7), Some(50));
        assert_eq!(w.advance(100), vec![7]);
        assert_eq!(w.advance(2_000_000), Vec::<u64>::new());
    }

    #[test]
    fn cancel_disarms() {
        let mut w = TimerWheel::new(0);
        w.schedule(1, 10);
        w.schedule(2, 20);
        assert_eq!(w.cancel(1), Some(10));
        assert_eq!(w.cancel(1), None);
        assert_eq!(w.advance(100), vec![2]);
    }

    #[test]
    fn coarse_deadline_cascades_to_exact_fire() {
        let mut w = TimerWheel::new(0);
        // 10 s: parks at a high level; driving the wheel only at
        // next_event boundaries must still fire exactly once, not early.
        let deadline = 10_000_000_000u64;
        w.schedule(1, deadline);
        let mut fired_at = None;
        let mut hops = 0;
        while let Some(t) = w.next_event() {
            assert!(t <= deadline, "boundary {t} past deadline");
            let f = w.advance(t);
            hops += 1;
            assert!(hops < 32, "cascade must converge");
            if !f.is_empty() {
                assert_eq!(f, vec![1]);
                fired_at = Some(t);
                break;
            }
        }
        assert_eq!(fired_at, Some(deadline), "fires at the exact ns");
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut w = TimerWheel::new(5000);
        w.schedule(9, 100); // already due
        assert_eq!(w.next_event(), Some(100));
        assert_eq!(w.advance(5000), vec![9]);
    }

    #[test]
    fn same_deadline_fires_in_arm_order() {
        let mut w = TimerWheel::new(0);
        w.schedule(5, 777);
        w.schedule(3, 777);
        w.schedule(4, 777);
        assert_eq!(w.advance(777), vec![5, 3, 4]);
    }

    #[test]
    fn huge_horizon_covered() {
        let mut w = TimerWheel::new(0);
        w.schedule(1, u64::MAX - 1);
        assert_eq!(w.advance(u64::MAX - 2), Vec::<u64>::new());
        assert_eq!(w.advance(u64::MAX), vec![1]);
    }

    #[test]
    fn dense_load_smoke() {
        // 100k timers with mixed horizons schedule, cancel and fire
        // without losing or duplicating anything.
        let mut w = TimerWheel::new(0);
        for k in 0..100_000u64 {
            w.schedule(k, (k % 977) * 1_000_003 + 1);
        }
        for k in (0..100_000u64).step_by(3) {
            w.cancel(k);
        }
        let mut fired = w.advance(u64::MAX);
        assert_eq!(fired.len(), 100_000 - 33_334);
        fired.sort_unstable();
        fired.dedup();
        assert_eq!(fired.len(), 100_000 - 33_334, "no duplicates");
        assert!(w.is_empty());
    }
}
