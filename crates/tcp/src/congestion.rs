//! Congestion control: Reno (RFC 5681) and CUBIC (RFC 8312), behind one
//! trait so a stack can switch algorithms (like smoltcp's optional
//! controllers).

use crate::types::CongestionAlgo;

/// The interface the socket's send path consults.
///
/// `Send` so a whole [`TcpStack`](crate::TcpStack) can migrate to a shard
/// worker thread (conn_scale's lane executor); every controller is plain
/// data.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Current congestion window in bytes.
    fn cwnd(&self) -> usize;

    /// New data was cumulatively acknowledged.
    fn on_ack(&mut self, acked: usize, now_ns: u64);

    /// Three duplicate ACKs — fast retransmit / fast recovery entry.
    fn on_fast_retransmit(&mut self, now_ns: u64);

    /// Retransmission timeout fired — collapse the window.
    fn on_timeout(&mut self, now_ns: u64);
}

/// Build the controller selected by the stack config.
pub fn make(algo: CongestionAlgo, mss: u16) -> Box<dyn CongestionControl> {
    match algo {
        CongestionAlgo::Reno => Box::new(Reno::new(mss)),
        CongestionAlgo::Cubic => Box::new(Cubic::new(mss)),
        CongestionAlgo::None => Box::new(NoCc),
    }
}

/// TCP Reno: slow start, congestion avoidance, fast recovery.
#[derive(Debug)]
pub struct Reno {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Bytes accumulated toward the next +MSS in congestion avoidance.
    avoid_acc: usize,
}

impl Reno {
    pub fn new(mss: u16) -> Reno {
        let mss = mss as usize;
        Reno {
            mss,
            // RFC 5681 IW: min(4*MSS, max(2*MSS, 4380)).
            cwnd: (4 * mss).min((2 * mss).max(4380)),
            ssthresh: usize::MAX / 2,
            avoid_acc: 0,
        }
    }

    pub fn ssthresh(&self) -> usize {
        self.ssthresh
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn on_ack(&mut self, acked: usize, _now_ns: u64) {
        if self.cwnd < self.ssthresh {
            // Slow start: cwnd += min(acked, MSS) per ACK.
            self.cwnd += acked.min(self.mss);
        } else {
            // Congestion avoidance: +1 MSS per cwnd of data acked.
            self.avoid_acc += acked;
            if self.avoid_acc >= self.cwnd {
                self.avoid_acc -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_fast_retransmit(&mut self, _now_ns: u64) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.avoid_acc = 0;
    }

    fn on_timeout(&mut self, _now_ns: u64) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.avoid_acc = 0;
    }
}

/// CUBIC (RFC 8312): window growth is a cubic function of time since the
/// last congestion event, independent of RTT.
#[derive(Debug)]
pub struct Cubic {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Window size before the last reduction (W_max), in bytes.
    w_max: f64,
    /// Time of the last congestion event (ns).
    epoch_start: Option<u64>,
    /// K: time to regain W_max, in seconds.
    k: f64,
}

/// RFC 8312 constants.
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    pub fn new(mss: u16) -> Cubic {
        let mss = mss as usize;
        Cubic {
            mss,
            cwnd: (4 * mss).min((2 * mss).max(4380)),
            ssthresh: usize::MAX / 2,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
        }
    }

    fn enter_epoch(&mut self, now_ns: u64) {
        self.epoch_start = Some(now_ns);
        let w_max_mss = self.w_max / self.mss as f64;
        let cwnd_mss = self.cwnd as f64 / self.mss as f64;
        self.k = if w_max_mss > cwnd_mss {
            ((w_max_mss - cwnd_mss) / CUBIC_C).cbrt()
        } else {
            0.0
        };
    }

    fn target(&self, now_ns: u64) -> usize {
        let t = (now_ns - self.epoch_start.unwrap()) as f64 / 1e9;
        let w_mss = CUBIC_C * (t - self.k).powi(3) + self.w_max / self.mss as f64;
        (w_mss * self.mss as f64).max(self.mss as f64) as usize
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn on_ack(&mut self, acked: usize, now_ns: u64) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked.min(self.mss);
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(now_ns);
        }
        let target = self.target(now_ns);
        if target > self.cwnd {
            // Approach the cubic target, at most one MSS per ACK.
            let step = ((target - self.cwnd) / 8).clamp(1, self.mss);
            self.cwnd += step;
        }
    }

    fn on_fast_retransmit(&mut self, now_ns: u64) {
        self.w_max = self.cwnd as f64;
        self.cwnd = ((self.cwnd as f64 * CUBIC_BETA) as usize).max(2 * self.mss);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        let _ = now_ns;
    }

    fn on_timeout(&mut self, _now_ns: u64) {
        self.w_max = self.cwnd as f64;
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as usize).max(2 * self.mss);
        self.cwnd = self.mss;
        self.epoch_start = None;
    }
}

/// No congestion control: the window is effectively unbounded.
#[derive(Debug)]
pub struct NoCc;

impl CongestionControl for NoCc {
    fn cwnd(&self) -> usize {
        usize::MAX / 2
    }
    fn on_ack(&mut self, _: usize, _: u64) {}
    fn on_fast_retransmit(&mut self, _: u64) {}
    fn on_timeout(&mut self, _: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u16 = 1460;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut r = Reno::new(MSS);
        let start = r.cwnd();
        // One RTT's worth of ACKs: every cwnd byte acked in MSS chunks.
        let acks = start / MSS as usize;
        for _ in 0..acks {
            r.on_ack(MSS as usize, 0);
        }
        assert!(
            r.cwnd() >= 2 * start - MSS as usize,
            "slow start should ~double: {} -> {}",
            start,
            r.cwnd()
        );
    }

    #[test]
    fn reno_congestion_avoidance_linear() {
        let mut r = Reno::new(MSS);
        r.on_timeout(0); // cwnd = 1 MSS, ssthresh small
        let ssthresh = r.ssthresh();
        // Grow past ssthresh.
        while r.cwnd() < ssthresh {
            r.on_ack(MSS as usize, 0);
        }
        let w = r.cwnd();
        // One full window of ACKs in avoidance adds ~1 MSS.
        let mut acked = 0;
        while acked < w {
            r.on_ack(MSS as usize, 0);
            acked += MSS as usize;
        }
        assert!(
            r.cwnd() - w <= 2 * MSS as usize,
            "avoidance is linear: {} -> {}",
            w,
            r.cwnd()
        );
        assert!(r.cwnd() > w);
    }

    #[test]
    fn reno_fast_retransmit_halves() {
        let mut r = Reno::new(MSS);
        for _ in 0..100 {
            r.on_ack(MSS as usize, 0);
        }
        let before = r.cwnd();
        r.on_fast_retransmit(0);
        assert!(r.cwnd() <= before / 2 + MSS as usize);
        assert!(r.cwnd() >= 2 * MSS as usize);
    }

    #[test]
    fn reno_timeout_collapses_to_one_mss() {
        let mut r = Reno::new(MSS);
        for _ in 0..100 {
            r.on_ack(MSS as usize, 0);
        }
        r.on_timeout(0);
        assert_eq!(r.cwnd(), MSS as usize);
    }

    #[test]
    fn cubic_recovers_toward_wmax() {
        let mut c = Cubic::new(MSS);
        // Grow, then suffer a loss.
        for _ in 0..200 {
            c.on_ack(MSS as usize, 0);
        }
        let before_loss = c.cwnd();
        c.on_fast_retransmit(1_000_000_000);
        let floor = c.cwnd();
        assert!(floor < before_loss);
        // ACK clocks over the next simulated seconds: window climbs again.
        let mut now = 1_000_000_000u64;
        for _ in 0..2000 {
            now += 2_000_000;
            c.on_ack(MSS as usize, now);
        }
        assert!(
            c.cwnd() > floor,
            "cubic should grow after loss: {} -> {}",
            floor,
            c.cwnd()
        );
    }

    #[test]
    fn cubic_beta_reduction() {
        let mut c = Cubic::new(MSS);
        for _ in 0..500 {
            c.on_ack(MSS as usize, 0);
        }
        let before = c.cwnd();
        c.on_fast_retransmit(0);
        let after = c.cwnd();
        let ratio = after as f64 / before as f64;
        assert!(
            (0.6..=0.8).contains(&ratio),
            "beta=0.7 reduction, got {ratio}"
        );
    }

    #[test]
    fn nocc_never_limits() {
        let mut n = NoCc;
        n.on_timeout(0);
        n.on_fast_retransmit(0);
        assert!(n.cwnd() > 1 << 40);
    }

    #[test]
    fn factory_dispatches() {
        assert!(make(CongestionAlgo::Reno, MSS).cwnd() < 10_000);
        assert!(make(CongestionAlgo::Cubic, MSS).cwnd() < 10_000);
        assert!(make(CongestionAlgo::None, MSS).cwnd() > 1 << 40);
    }
}
