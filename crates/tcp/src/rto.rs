//! RFC 6298 retransmission-timeout estimation with Karn's rule and
//! exponential backoff.

/// Smoothed RTT estimator producing the retransmission timeout.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// Smoothed RTT (ns); `None` until the first sample.
    srtt: Option<f64>,
    /// RTT variance (ns).
    rttvar: f64,
    /// Current RTO (ns), including any backoff.
    rto_ns: u64,
    /// Base RTO before backoff was applied.
    base_rto_ns: u64,
    /// Consecutive backoffs applied since the last valid sample.
    backoffs: u32,
    min_rto_ns: u64,
    max_rto_ns: u64,
}

const ALPHA: f64 = 1.0 / 8.0;
const BETA: f64 = 1.0 / 4.0;
/// Clock granularity G of RFC 6298 (we use 1 ms).
const GRANULARITY_NS: f64 = 1_000_000.0;

impl RttEstimator {
    pub fn new(initial_rto_ns: u64) -> RttEstimator {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            rto_ns: initial_rto_ns,
            base_rto_ns: initial_rto_ns,
            backoffs: 0,
            min_rto_ns: 1_000_000,      // 1 ms floor (LAN-scale; RFC says 1 s)
            max_rto_ns: 60_000_000_000, // 60 s ceiling
        }
    }

    /// Feed one RTT measurement from a segment that was *not* retransmitted
    /// (Karn's rule is enforced by the caller tracking retransmission).
    pub fn sample(&mut self, rtt_ns: u64) {
        let r = rtt_ns as f64;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - r).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * r);
            }
        }
        let srtt = self.srtt.unwrap();
        let rto = srtt + (4.0 * self.rttvar).max(GRANULARITY_NS);
        self.base_rto_ns = (rto as u64).clamp(self.min_rto_ns, self.max_rto_ns);
        self.rto_ns = self.base_rto_ns;
        self.backoffs = 0;
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> u64 {
        self.rto_ns
    }

    /// Exponential backoff after a retransmission timeout fires.
    pub fn backoff(&mut self) {
        self.backoffs += 1;
        self.rto_ns = (self.rto_ns.saturating_mul(2)).min(self.max_rto_ns);
    }

    pub fn srtt(&self) -> Option<u64> {
        self.srtt.map(|s| s as u64)
    }

    pub fn backoffs(&self) -> u32 {
        self.backoffs
    }

    /// Checkpoint the estimator (f64s captured as raw bits so a
    /// snapshot→restore round trip is exactly the identity).
    pub fn snapshot(&self) -> RttSnapshot {
        RttSnapshot {
            srtt_bits: self.srtt.map(f64::to_bits),
            rttvar_bits: self.rttvar.to_bits(),
            rto_ns: self.rto_ns,
            base_rto_ns: self.base_rto_ns,
            backoffs: self.backoffs,
        }
    }

    /// Rebuild an estimator from a checkpoint. The min/max clamps are
    /// constants of `new`, so only the learned state travels.
    pub fn restore(s: &RttSnapshot) -> RttEstimator {
        let mut e = RttEstimator::new(s.rto_ns);
        e.srtt = s.srtt_bits.map(f64::from_bits);
        e.rttvar = f64::from_bits(s.rttvar_bits);
        e.rto_ns = s.rto_ns;
        e.base_rto_ns = s.base_rto_ns;
        e.backoffs = s.backoffs;
        e
    }
}

/// Serializable image of an [`RttEstimator`] (part of a TCB checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttSnapshot {
    pub srtt_bits: Option<u64>,
    pub rttvar_bits: u64,
    pub rto_ns: u64,
    pub base_rto_ns: u64,
    pub backoffs: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new(200 * MS);
        assert_eq!(e.rto(), 200 * MS);
        e.sample(10 * MS);
        // RTO = srtt + max(G, 4*rttvar) = 10ms + 4*5ms = 30ms
        assert_eq!(e.srtt(), Some(10 * MS));
        assert_eq!(e.rto(), 30 * MS);
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RttEstimator::new(200 * MS);
        for _ in 0..100 {
            e.sample(5 * MS);
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt as i64 - (5 * MS) as i64).abs() < MS as i64 / 10);
        // Stable RTT -> variance collapses -> RTO approaches srtt + G.
        assert!(e.rto() < 8 * MS, "rto={}", e.rto());
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::new(100 * MS);
        e.backoff();
        assert_eq!(e.rto(), 200 * MS);
        e.backoff();
        assert_eq!(e.rto(), 400 * MS);
        assert_eq!(e.backoffs(), 2);
        e.sample(10 * MS);
        assert_eq!(e.backoffs(), 0);
        assert!(e.rto() < 100 * MS);
    }

    #[test]
    fn rto_clamped() {
        let mut e = RttEstimator::new(30_000 * MS);
        for _ in 0..10 {
            e.backoff();
        }
        assert_eq!(e.rto(), 60_000 * MS);
        let mut f = RttEstimator::new(MS);
        f.sample(100); // 100ns RTT
        assert!(f.rto() >= 1_000_000, "floor holds: {}", f.rto());
    }

    #[test]
    fn spiky_rtt_raises_variance() {
        let mut stable = RttEstimator::new(200 * MS);
        let mut spiky = RttEstimator::new(200 * MS);
        for i in 0..50 {
            stable.sample(10 * MS);
            spiky.sample(if i % 2 == 0 { 2 * MS } else { 18 * MS });
        }
        assert!(spiky.rto() > stable.rto());
    }
}
