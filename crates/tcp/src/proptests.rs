//! Property tests for TCP engine internals (buffers, congestion control,
//! RTO estimation), on the in-tree `neat_util::check` harness.
//! Cross-socket stream properties live in the repository-level
//! `tests/protocol_properties.rs`.

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::congestion::{CongestionControl, Cubic, Reno};
use crate::rto::RttEstimator;
use neat_net::SeqNum;
use neat_util::check::{check, vec_of, Config};
use neat_util::{prop_assert, prop_assert_eq};

/// SendBuffer: pushes + acks never lose or duplicate bytes; peek at
/// any in-range position returns exactly the pushed bytes.
#[test]
fn send_buffer_conserves_bytes() {
    check(
        "send_buffer_conserves_bytes",
        Config::default().cases(128),
        |rng| {
            (
                vec_of(rng, 1..50, |r| (r.gen::<bool>(), r.gen_range(1usize..300))),
                rng.gen::<u32>(),
            )
        },
        |(ops, base)| {
            let mut buf = SendBuffer::new(SeqNum(base), 4096);
            let mut model: Vec<u8> = Vec::new(); // unacked bytes
            let mut next_byte = 0u8;
            let mut acked = 0usize;
            for (is_push, n) in ops {
                if is_push {
                    let data: Vec<u8> = (0..n)
                        .map(|_| {
                            next_byte = next_byte.wrapping_add(1);
                            next_byte
                        })
                        .collect();
                    let pushed = buf.push(&data);
                    prop_assert!(pushed <= data.len());
                    model.extend_from_slice(&data[..pushed]);
                } else {
                    let k = n.min(model.len());
                    let freed = buf.ack_to(SeqNum(base) + (acked + k) as u32);
                    prop_assert_eq!(freed, k);
                    model.drain(..k);
                    acked += k;
                }
                prop_assert_eq!(buf.len(), model.len());
                // Peek the entire live region and compare with the model.
                let got = buf.peek(buf.base(), model.len());
                prop_assert_eq!(&got, &model);
            }
            Ok(())
        },
    );
}

/// RecvBuffer: FIFO with capacity; what goes in comes out in order.
#[test]
fn recv_buffer_fifo() {
    check(
        "recv_buffer_fifo",
        Config::default().cases(128),
        |rng| vec_of(rng, 1..20, |r| neat_util::check::bytes(r, 1..100)),
        |chunks| {
            let mut rb = RecvBuffer::new(512);
            let mut model: Vec<u8> = Vec::new();
            for c in &chunks {
                let n = rb.write(c);
                model.extend_from_slice(&c[..n]);
                prop_assert!(rb.len() <= 512);
                // Read a random-ish prefix back.
                let mut out = vec![0u8; model.len() / 2 + 1];
                let r = rb.read(&mut out);
                prop_assert_eq!(&out[..r], &model[..r]);
                model.drain(..r);
            }
            Ok(())
        },
    );
}

/// Reno invariants: cwnd stays >= 1 MSS, never exceeds doubling per
/// ACK volley, and loss events reduce it.
#[test]
fn reno_invariants() {
    check(
        "reno_invariants",
        Config::default().cases(128),
        |rng| vec_of(rng, 1..300, |r| r.gen::<bool>()),
        |acks| {
            let mss = 1460u16;
            let mut r = Reno::new(mss);
            for is_loss in acks {
                let before = r.cwnd();
                if is_loss {
                    r.on_fast_retransmit(0);
                    prop_assert!(r.cwnd() <= before.max(2 * mss as usize));
                } else {
                    r.on_ack(mss as usize, 0);
                    prop_assert!(r.cwnd() >= before);
                    prop_assert!(r.cwnd() <= before + mss as usize);
                }
                prop_assert!(r.cwnd() >= mss as usize);
            }
            Ok(())
        },
    );
}

/// CUBIC never collapses below 2*MSS on fast retransmit and grows
/// under ACK clocking.
#[test]
fn cubic_invariants() {
    check(
        "cubic_invariants",
        Config::default().cases(128),
        |rng| vec_of(rng, 1..200, |r| r.gen::<u8>()),
        |events| {
            let mss = 1460u16;
            let mut c = Cubic::new(mss);
            let mut now = 0u64;
            for e in events {
                now += 1_000_000;
                match e % 8 {
                    0 => {
                        c.on_fast_retransmit(now);
                        prop_assert!(c.cwnd() >= 2 * mss as usize);
                    }
                    1 => {
                        c.on_timeout(now);
                        prop_assert_eq!(c.cwnd(), mss as usize);
                    }
                    _ => {
                        let before = c.cwnd();
                        c.on_ack(mss as usize, now);
                        prop_assert!(c.cwnd() >= before);
                    }
                }
            }
            Ok(())
        },
    );
}

/// The RTO estimator stays within clamps and backoff monotonically
/// increases until the next sample.
#[test]
fn rto_bounds() {
    check(
        "rto_bounds",
        Config::default().cases(128),
        |rng| {
            (
                vec_of(rng, 1..100, |r| r.gen_range(1_000u64..1_000_000_000)),
                rng.gen_range(0u32..10),
            )
        },
        |(samples, backoffs)| {
            let mut e = RttEstimator::new(200_000_000);
            for s in &samples {
                if *s == 0 {
                    continue;
                }
                e.sample(*s);
                prop_assert!(e.rto() >= 1_000_000, "floor: {}", e.rto());
                prop_assert!(e.rto() <= 60_000_000_000, "ceiling");
                prop_assert!(
                    e.rto() as f64 >= e.srtt().unwrap() as f64 * 0.99,
                    "rto >= srtt: {} vs {:?}",
                    e.rto(),
                    e.srtt()
                );
            }
            let mut prev = e.rto();
            for _ in 0..backoffs {
                e.backoff();
                prop_assert!(e.rto() >= prev);
                prev = e.rto();
            }
            Ok(())
        },
    );
}
