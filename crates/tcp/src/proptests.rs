//! Property tests for TCP engine internals (buffers, congestion control,
//! RTO estimation), on the in-tree `neat_util::check` harness.
//! Cross-socket stream properties live in the repository-level
//! `tests/protocol_properties.rs`.

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::components::congestion_control::{make, AckEvent, Cubic, Reno};
use crate::components::CongestionControl;
use crate::demux::DemuxTable;
use crate::rto::RttEstimator;
use crate::types::CongestionAlgo;
use crate::types::SocketId;
use crate::wheel::TimerWheel;
use neat_net::{FlowKey, SeqNum};
use neat_util::check::{check, vec_of, Config};
use neat_util::{prop_assert, prop_assert_eq};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Plain data-ACK event for driving controllers in properties.
fn cc_ack(bytes: usize, now_ns: u64) -> AckEvent {
    AckEvent {
        newly_acked: bytes,
        rtt_sample: None,
        now_ns,
        in_flight: 0,
    }
}

/// SendBuffer: pushes + acks never lose or duplicate bytes; peek at
/// any in-range position returns exactly the pushed bytes.
#[test]
fn send_buffer_conserves_bytes() {
    check(
        "send_buffer_conserves_bytes",
        Config::default().cases(128),
        |rng| {
            (
                vec_of(rng, 1..50, |r| (r.gen::<bool>(), r.gen_range(1usize..300))),
                rng.gen::<u32>(),
            )
        },
        |(ops, base)| {
            let mut buf = SendBuffer::new(SeqNum(base), 4096);
            let mut model: Vec<u8> = Vec::new(); // unacked bytes
            let mut next_byte = 0u8;
            let mut acked = 0usize;
            for (is_push, n) in ops {
                if is_push {
                    let data: Vec<u8> = (0..n)
                        .map(|_| {
                            next_byte = next_byte.wrapping_add(1);
                            next_byte
                        })
                        .collect();
                    let pushed = buf.push(&data);
                    prop_assert!(pushed <= data.len());
                    model.extend_from_slice(&data[..pushed]);
                } else {
                    let k = n.min(model.len());
                    let freed = buf.ack_to(SeqNum(base) + (acked + k) as u32);
                    prop_assert_eq!(freed, k);
                    model.drain(..k);
                    acked += k;
                }
                prop_assert_eq!(buf.len(), model.len());
                // Peek the entire live region and compare with the model.
                let got = buf.peek(buf.base(), model.len());
                prop_assert_eq!(&got, &model);
            }
            Ok(())
        },
    );
}

/// RecvBuffer: FIFO with capacity; what goes in comes out in order.
#[test]
fn recv_buffer_fifo() {
    check(
        "recv_buffer_fifo",
        Config::default().cases(128),
        |rng| vec_of(rng, 1..20, |r| neat_util::check::bytes(r, 1..100)),
        |chunks| {
            let mut rb = RecvBuffer::new(512);
            let mut model: Vec<u8> = Vec::new();
            for c in &chunks {
                let n = rb.write(c);
                model.extend_from_slice(&c[..n]);
                prop_assert!(rb.len() <= 512);
                // Read a random-ish prefix back.
                let mut out = vec![0u8; model.len() / 2 + 1];
                let r = rb.read(&mut out);
                prop_assert_eq!(&out[..r], &model[..r]);
                model.drain(..r);
            }
            Ok(())
        },
    );
}

/// Reno invariants: cwnd stays >= 1 MSS, never exceeds doubling per
/// ACK volley, and loss events reduce it.
#[test]
fn reno_invariants() {
    check(
        "reno_invariants",
        Config::default().cases(128),
        |rng| vec_of(rng, 1..300, |r| r.gen::<bool>()),
        |acks| {
            let mss = 1460u16;
            let mut r = Reno::new(mss);
            for is_loss in acks {
                let before = r.cwnd();
                if is_loss {
                    r.on_loss(0);
                    prop_assert!(r.cwnd() <= before.max(2 * mss as usize));
                } else {
                    r.on_ack(&cc_ack(mss as usize, 0));
                    prop_assert!(r.cwnd() >= before);
                    prop_assert!(r.cwnd() <= before + mss as usize);
                }
                prop_assert!(r.cwnd() >= mss as usize);
            }
            Ok(())
        },
    );
}

/// CUBIC never collapses below 2*MSS on fast retransmit and grows
/// under ACK clocking.
#[test]
fn cubic_invariants() {
    check(
        "cubic_invariants",
        Config::default().cases(128),
        |rng| vec_of(rng, 1..200, |r| r.gen::<u8>()),
        |events| {
            let mss = 1460u16;
            let mut c = Cubic::new(mss);
            let mut now = 0u64;
            for e in events {
                now += 1_000_000;
                match e % 8 {
                    0 => {
                        c.on_loss(now);
                        prop_assert!(c.cwnd() >= 2 * mss as usize);
                    }
                    1 => {
                        c.on_rto(now);
                        prop_assert_eq!(c.cwnd(), mss as usize);
                    }
                    _ => {
                        let before = c.cwnd();
                        c.on_ack(&cc_ack(mss as usize, now));
                        prop_assert!(c.cwnd() >= before);
                    }
                }
            }
            Ok(())
        },
    );
}

/// The RTO estimator stays within clamps and backoff monotonically
/// increases until the next sample.
#[test]
fn rto_bounds() {
    check(
        "rto_bounds",
        Config::default().cases(128),
        |rng| {
            (
                vec_of(rng, 1..100, |r| r.gen_range(1_000u64..1_000_000_000)),
                rng.gen_range(0u32..10),
            )
        },
        |(samples, backoffs)| {
            let mut e = RttEstimator::new(200_000_000);
            for s in &samples {
                if *s == 0 {
                    continue;
                }
                e.sample(*s);
                prop_assert!(e.rto() >= 1_000_000, "floor: {}", e.rto());
                prop_assert!(e.rto() <= 60_000_000_000, "ceiling");
                prop_assert!(
                    e.rto() as f64 >= e.srtt().unwrap() as f64 * 0.99,
                    "rto >= srtt: {} vs {:?}",
                    e.rto(),
                    e.srtt()
                );
            }
            let mut prev = e.rto();
            for _ in 0..backoffs {
                e.backoff();
                prop_assert!(e.rto() >= prev);
                prev = e.rto();
            }
            Ok(())
        },
    );
}

/// Timer wheel vs a naive sorted-list model: any random mix of
/// schedule / reschedule / cancel / advance fires exactly the same keys
/// in exactly the same order (deadline, then arm sequence) as the model.
/// This covers the cascade machinery: advances jump across level
/// boundaries, so entries migrate through coarse slots before firing.
#[test]
fn wheel_matches_sorted_list_model() {
    #[derive(Debug, Clone)]
    enum Op {
        /// Schedule key at now + delta (re-schedules if armed).
        Schedule {
            key: u64,
            delta: u64,
        },
        Cancel {
            key: u64,
        },
        Advance {
            delta: u64,
        },
    }

    impl neat_util::check::Shrink for Op {
        fn shrink(&self) -> Vec<Op> {
            match *self {
                Op::Schedule { key, delta } => {
                    let mut out: Vec<Op> = delta
                        .shrink()
                        .into_iter()
                        .map(|d| Op::Schedule { key, delta: d })
                        .collect();
                    out.extend(
                        key.shrink()
                            .into_iter()
                            .map(|k| Op::Schedule { key: k, delta }),
                    );
                    out
                }
                Op::Cancel { key } => key
                    .shrink()
                    .into_iter()
                    .map(|k| Op::Cancel { key: k })
                    .collect(),
                Op::Advance { delta } => delta
                    .shrink()
                    .into_iter()
                    .filter(|d| *d > 0)
                    .map(|d| Op::Advance { delta: d })
                    .collect(),
            }
        }
    }

    check(
        "wheel_matches_sorted_list_model",
        Config::default().cases(256),
        |rng| {
            vec_of(rng, 1..60, |r| match r.gen_range(0u8..5) {
                0 => Op::Cancel {
                    key: r.gen_range(0u64..16),
                },
                1 | 2 => Op::Schedule {
                    key: r.gen_range(0u64..16),
                    // Mix of fine (inner-wheel) and very coarse (multi-
                    // level cascade) horizons.
                    delta: match r.gen_range(0u8..3) {
                        0 => r.gen_range(0u64..64),
                        1 => r.gen_range(64u64..100_000),
                        _ => r.gen_range(100_000u64..20_000_000_000),
                    },
                },
                _ => Op::Advance {
                    delta: match r.gen_range(0u8..3) {
                        0 => r.gen_range(1u64..128),
                        1 => r.gen_range(128u64..1_000_000),
                        _ => r.gen_range(1_000_000u64..40_000_000_000),
                    },
                },
            })
        },
        |ops| {
            let mut wheel = TimerWheel::new(0);
            // Model: key -> (deadline, seq). Firing order: (deadline, seq).
            let mut model: HashMap<u64, (u64, u64)> = HashMap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for op in ops {
                match op {
                    Op::Schedule { key, delta } => {
                        let deadline = now + delta;
                        wheel.schedule(key, deadline);
                        seq += 1;
                        model.insert(key, (deadline, seq));
                        prop_assert_eq!(wheel.deadline_of(key), Some(deadline));
                    }
                    Op::Cancel { key } => {
                        let got = wheel.cancel(key);
                        let want = model.remove(&key).map(|(d, _)| d);
                        prop_assert_eq!(got, want);
                    }
                    Op::Advance { delta } => {
                        now += delta;
                        let fired = wheel.advance(now);
                        let mut want: Vec<(u64, u64, u64)> = model
                            .iter()
                            .filter(|(_, (d, _))| *d <= now)
                            .map(|(k, (d, s))| (*d, *s, *k))
                            .collect();
                        want.sort_unstable();
                        for (_, _, k) in &want {
                            model.remove(k);
                        }
                        let want: Vec<u64> = want.into_iter().map(|(_, _, k)| k).collect();
                        prop_assert_eq!(&fired, &want, "at now={}", now);
                    }
                }
                prop_assert_eq!(wheel.len(), model.len());
            }
            // Drain everything left: all remaining keys must eventually
            // fire, in model order.
            let fired = wheel.advance(u64::MAX - 1);
            let mut want: Vec<(u64, u64, u64)> =
                model.iter().map(|(k, (d, s))| (*d, *s, *k)).collect();
            want.sort_unstable();
            let want: Vec<u64> = want.into_iter().map(|(_, _, k)| k).collect();
            prop_assert_eq!(&fired, &want, "final drain");
            prop_assert!(wheel.is_empty());
            Ok(())
        },
    );
}

/// `next_event()` is a sound lower bound: it is never later than the
/// earliest real deadline, and repeatedly advancing to it reaches every
/// deadline exactly (never skips past one).
#[test]
fn wheel_next_event_is_sound_lower_bound() {
    check(
        "wheel_next_event_is_sound_lower_bound",
        Config::default().cases(256),
        |rng| {
            vec_of(rng, 1..40, |r| {
                (r.gen_range(0u64..32), r.gen_range(0u64..30_000_000_000))
            })
        },
        |arms| {
            let mut wheel = TimerWheel::new(0);
            let mut deadlines: HashMap<u64, u64> = HashMap::new();
            for (key, deadline) in arms {
                wheel.schedule(key, deadline);
                deadlines.insert(key, deadline);
            }
            let mut hops = 0u32;
            while let Some(t) = wheel.next_event() {
                if let Some(earliest) = deadlines.values().copied().min() {
                    prop_assert!(
                        t <= earliest,
                        "lower bound violated: next_event {} vs earliest {}",
                        t,
                        earliest
                    );
                }
                for k in wheel.advance(t) {
                    let d = deadlines.remove(&k).expect("fired unknown key");
                    // Advancing exactly to the lower bound can only release
                    // timers whose true deadline IS that instant: never
                    // early, and (when driven this way) never late either.
                    prop_assert_eq!(d, t, "fired exactly at its deadline");
                }
                hops += 1;
                prop_assert!(hops < 4096, "cascade converges");
            }
            prop_assert!(deadlines.is_empty(), "no deadline skipped");
            Ok(())
        },
    );
}

/// Hashed demux table vs `HashMap`: random 4-tuple insert / lookup /
/// remove streams agree exactly, across growth and Robin Hood
/// backward-shift deletions.
#[test]
fn demux_matches_hashmap_model() {
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u8, u16, u16, u64),
        Get(u8, u16, u16),
        Remove(u8, u16, u16),
    }

    impl neat_util::check::Shrink for Op {
        fn shrink(&self) -> Vec<Op> {
            // Shrink the tuple fields jointly via the built-in tuple
            // shrinker, preserving the op kind.
            match self.clone() {
                Op::Insert(a, sp, dp, id) => (a, sp, dp, id)
                    .shrink()
                    .into_iter()
                    .map(|(a, sp, dp, id)| Op::Insert(a, sp, dp, id))
                    .collect(),
                Op::Get(a, sp, dp) => (a, sp, dp)
                    .shrink()
                    .into_iter()
                    .map(|(a, sp, dp)| Op::Get(a, sp, dp))
                    .collect(),
                Op::Remove(a, sp, dp) => (a, sp, dp)
                    .shrink()
                    .into_iter()
                    .map(|(a, sp, dp)| Op::Remove(a, sp, dp))
                    .collect(),
            }
        }
    }
    // Deliberately tiny key space so collisions, displacement chains and
    // re-insertions of just-removed keys all happen.
    fn flow(a: u8, sp: u16, dp: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, a % 4, a),
            sp % 8,
            Ipv4Addr::new(10, 0, 0, 1),
            dp % 4,
        )
    }

    check(
        "demux_matches_hashmap_model",
        Config::default().cases(256),
        |rng| {
            vec_of(rng, 1..120, |r| match r.gen_range(0u8..4) {
                0 | 1 => Op::Insert(
                    r.gen::<u8>(),
                    r.gen::<u16>(),
                    r.gen::<u16>(),
                    r.gen::<u64>(),
                ),
                2 => Op::Get(r.gen::<u8>(), r.gen::<u16>(), r.gen::<u16>()),
                _ => Op::Remove(r.gen::<u8>(), r.gen::<u16>(), r.gen::<u16>()),
            })
        },
        |ops| {
            let mut table = DemuxTable::new(0xDECAF);
            let mut model: HashMap<FlowKey, SocketId> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(a, sp, dp, id) => {
                        let k = flow(a, sp, dp);
                        let id = SocketId(id);
                        prop_assert_eq!(table.insert(k, id), model.insert(k, id));
                    }
                    Op::Get(a, sp, dp) => {
                        let k = flow(a, sp, dp);
                        prop_assert_eq!(table.get(&k), model.get(&k).copied());
                        prop_assert_eq!(table.contains_key(&k), model.contains_key(&k));
                    }
                    Op::Remove(a, sp, dp) => {
                        let k = flow(a, sp, dp);
                        prop_assert_eq!(table.remove(&k), model.remove(&k));
                    }
                }
                prop_assert_eq!(table.len(), model.len());
                prop_assert_eq!(table.is_empty(), model.is_empty());
            }
            // Full sweep: every key the model holds must still resolve.
            for (k, v) in &model {
                prop_assert_eq!(table.get(k), Some(*v));
            }
            Ok(())
        },
    );
}

/// TcbImage: the encode/decode pair used on the replication channel is
/// exactly the identity on the image space — a flow survives any number
/// of checkpoint → restore hops unchanged — and no truncated prefix of a
/// valid image decodes into a phantom flow.
#[test]
fn tcb_image_encode_decode_round_trips() {
    use crate::rto::RttSnapshot;
    use crate::tcb::TcbImage;
    use crate::types::TcpState;
    const ALGOS: [CongestionAlgo; 5] = [
        CongestionAlgo::Reno,
        CongestionAlgo::Cubic,
        CongestionAlgo::None,
        CongestionAlgo::Bbr,
        CongestionAlgo::Dctcp,
    ];
    const STATES: [TcpState; 11] = [
        TcpState::Closed,
        TcpState::Listen,
        TcpState::SynSent,
        TcpState::SynReceived,
        TcpState::Established,
        TcpState::FinWait1,
        TcpState::FinWait2,
        TcpState::Closing,
        TcpState::TimeWait,
        TcpState::CloseWait,
        TcpState::LastAck,
    ];
    check(
        "tcb_image_encode_decode_round_trips",
        Config::default().cases(256),
        |rng| {
            (
                vec_of(rng, 41..42, |r| r.gen::<u64>()), // scalar field pool
                vec_of(rng, 0..600, |r| r.gen::<u8>()),  // send stream bytes
                vec_of(rng, 0..600, |r| r.gen::<u8>()),  // recv stream bytes
            )
        },
        |(pool, send_data, recv_data)| {
            if pool.is_empty() {
                return Ok(()); // shrunk away — nothing to build from
            }
            let w = |i: usize| pool[i % pool.len()];
            // Odd words become Some(value): options and flags get both
            // arms exercised without a dedicated generator each.
            let opt = |x: u64| if x & 1 == 1 { Some(x >> 1) } else { None };
            let img = TcbImage {
                state: STATES[w(0) as usize % STATES.len()],
                local_ip: Ipv4Addr::from(w(1) as u32),
                local_port: w(2) as u16,
                remote_ip: Ipv4Addr::from(w(3) as u32),
                remote_port: w(4) as u16,
                iss: SeqNum(w(5) as u32),
                irs: SeqNum(w(6) as u32),
                snd_nxt: SeqNum(w(7) as u32),
                snd_wnd: w(8),
                snd_wl1: SeqNum(w(9) as u32),
                snd_wl2: SeqNum(w(10) as u32),
                mss: w(11) as u16,
                snd_wscale: w(12) as u8,
                rcv_wscale: w(13) as u8,
                syn_sent: w(14) & 1 == 1,
                send_base: SeqNum(w(15) as u32),
                send_data,
                send_cap: w(16),
                rcv_nxt: SeqNum(w(17) as u32),
                recv_data,
                recv_cap: w(18),
                peer_fin_rcvd: w(19) & 1 == 1,
                close_requested: w(20) & 1 == 1,
                fin_seq: opt(w(21)).map(|v| SeqNum(v as u32)),
                rtx_deadline: opt(w(22)),
                rtx_now: w(23) & 1 == 1,
                retries: w(24) as u32,
                dup_acks: w(25) as u32,
                rtt: RttSnapshot {
                    srtt_bits: opt(w(26)),
                    rttvar_bits: w(27),
                    rto_ns: w(28),
                    base_rto_ns: w(29),
                    backoffs: w(30) as u32,
                },
                ack_pending: w(31) as u32,
                ack_deadline: opt(w(32)),
                ack_now: w(33) & 1 == 1,
                time_wait_deadline: opt(w(34)),
                probe_deadline: opt(w(35)),
                keepalive_deadline: opt(w(36)),
                tx_segments: w(37),
                rx_segments: w(38),
                retransmits: w(39),
                cc_algo: ALGOS[w(40) as usize % ALGOS.len()],
            };
            let wire = img.encode();
            let got = TcbImage::decode(&wire);
            prop_assert_eq!(got.as_ref(), Some(&img));
            for cut in [0, 1, wire.len() / 2, wire.len() - 1] {
                prop_assert_eq!(TcbImage::decode(&wire[..cut]), None);
            }
            Ok(())
        },
    );
}

/// Reliability's retransmit queue vs a naive model: random push /
/// transmit-advance / cumulative-ack streams leave exactly the model's
/// unacked-byte suffix retransmittable, and the unsent tail
/// (`len_from(snd_nxt)`) matches the model's untransmitted remainder.
#[test]
fn retransmit_queue_matches_naive_model() {
    check(
        "retransmit_queue_matches_naive_model",
        Config::default().cases(256),
        |rng| {
            (
                vec_of(rng, 1..60, |r| {
                    (r.gen_range(0u8..3), r.gen_range(1usize..400))
                }),
                rng.gen::<u32>(),
            )
        },
        |(ops, base)| {
            let mut buf = SendBuffer::new(SeqNum(base), 8192);
            let mut snd_nxt = SeqNum(base); // next byte to transmit
                                            // Model: the whole unacked stream, plus how much of it has
                                            // been handed to the wire at least once.
            let mut model: Vec<u8> = Vec::new();
            let mut transmitted = 0usize;
            let mut next_byte = 0u8;
            for (op, n) in ops {
                match op {
                    0 => {
                        // App push (capacity-limited).
                        let data: Vec<u8> = (0..n)
                            .map(|_| {
                                next_byte = next_byte.wrapping_add(1);
                                next_byte
                            })
                            .collect();
                        let pushed = buf.push(&data);
                        model.extend_from_slice(&data[..pushed]);
                    }
                    1 => {
                        // Transmit: advance snd_nxt over untransmitted bytes
                        // (what transmit_new_data does segment by segment).
                        let k = n.min(model.len() - transmitted);
                        snd_nxt += k as u32;
                        transmitted += k;
                    }
                    _ => {
                        // Cumulative ACK of the oldest k unacked bytes; the
                        // socket never sees an ACK beyond snd_nxt.
                        let k = n.min(transmitted);
                        let freed = buf.ack_to(buf.base() + k as u32);
                        prop_assert_eq!(freed, k);
                        model.drain(..k);
                        transmitted -= k;
                    }
                }
                // Retransmittable region == every transmitted-unacked byte.
                prop_assert_eq!(buf.len_from(buf.base()), model.len());
                let rtx = buf.peek(buf.base(), transmitted);
                prop_assert_eq!(&rtx, &model[..transmitted]);
                // Unsent tail == untransmitted remainder.
                prop_assert_eq!(buf.len_from(snd_nxt), model.len() - transmitted);
            }
            Ok(())
        },
    );
}

/// Flow control: the advertised window never exceeds the configured
/// buffer capacity, never underflows, and always equals cap - buffered —
/// across random writes, reads, and `SockOpt::RecvBuf` resizes.
#[test]
fn flow_window_never_exceeds_buffer() {
    check(
        "flow_window_never_exceeds_buffer",
        Config::default().cases(256),
        |rng| {
            vec_of(rng, 1..60, |r| {
                (r.gen_range(0u8..4), r.gen_range(1usize..600))
            })
        },
        |ops| {
            let mut rb = RecvBuffer::new(1024);
            for (op, n) in ops {
                match op {
                    0 | 1 => {
                        let data = vec![0xAB; n];
                        rb.write(&data);
                    }
                    2 => {
                        let mut out = vec![0u8; n];
                        rb.read(&mut out);
                    }
                    _ => rb.set_cap(n), // resize, clamped to buffered bytes
                }
                prop_assert!(rb.window() <= rb.cap(), "window within cap");
                prop_assert!(rb.len() <= rb.cap(), "buffered within cap");
                prop_assert_eq!(rb.window(), rb.cap() - rb.len());
            }
            Ok(())
        },
    );
}

/// Every congestion controller, under arbitrary ack/loss/rto streams:
/// loss keeps cwnd >= 2*MSS, RTO keeps cwnd >= 1 MSS, and ssthresh
/// decreases monotonically across a run of consecutive loss events.
#[test]
fn all_controllers_keep_loss_floor_and_monotone_ssthresh() {
    const ALGOS: [CongestionAlgo; 4] = [
        CongestionAlgo::Reno,
        CongestionAlgo::Cubic,
        CongestionAlgo::Bbr,
        CongestionAlgo::Dctcp,
    ];
    check(
        "all_controllers_keep_loss_floor_and_monotone_ssthresh",
        Config::default().cases(128),
        |rng| {
            (
                rng.gen_range(0usize..ALGOS.len()),
                vec_of(rng, 1..200, |r| r.gen::<u8>()),
            )
        },
        |(which, events)| {
            let mss = 1460usize;
            let algo = ALGOS[which];
            let mut cc = make(algo, mss as u16);
            let mut now = 0u64;
            let mut in_loss_run = false;
            let mut last_ssthresh = usize::MAX;
            for e in events {
                now += 500_000;
                match e % 8 {
                    0 => {
                        let d = cc.on_loss(now);
                        prop_assert!(
                            d.cwnd >= 2 * mss,
                            "{:?}: post-loss cwnd {} < 2*MSS",
                            algo,
                            d.cwnd
                        );
                        if in_loss_run {
                            prop_assert!(
                                d.ssthresh <= last_ssthresh,
                                "{:?}: ssthresh rose mid loss run",
                                algo
                            );
                        }
                        in_loss_run = true;
                        last_ssthresh = d.ssthresh;
                    }
                    1 => {
                        let d = cc.on_rto(now);
                        prop_assert!(d.cwnd >= mss, "{:?}: post-RTO floor", algo);
                        in_loss_run = false;
                    }
                    _ => {
                        let d = cc.on_ack(&cc_ack(mss, now));
                        prop_assert!(d.cwnd >= mss, "{:?}: cwnd below 1 MSS", algo);
                        in_loss_run = false;
                    }
                }
            }
            Ok(())
        },
    );
}
