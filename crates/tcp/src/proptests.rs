//! Property tests for TCP engine internals (buffers, congestion control,
//! RTO estimation). Cross-socket stream properties live in the
//! repository-level `tests/protocol_properties.rs`.

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::congestion::{CongestionControl, Cubic, Reno};
use crate::rto::RttEstimator;
use neat_net::SeqNum;
use proptest::prelude::*;

proptest! {
    /// SendBuffer: pushes + acks never lose or duplicate bytes; peek at
    /// any in-range position returns exactly the pushed bytes.
    #[test]
    fn send_buffer_conserves_bytes(
        ops in proptest::collection::vec((any::<bool>(), 1usize..300), 1..50),
        base in any::<u32>(),
    ) {
        let mut buf = SendBuffer::new(SeqNum(base), 4096);
        let mut model: Vec<u8> = Vec::new(); // unacked bytes
        let mut next_byte = 0u8;
        let mut acked = 0usize;
        for (is_push, n) in ops {
            if is_push {
                let data: Vec<u8> = (0..n).map(|_| {
                    next_byte = next_byte.wrapping_add(1);
                    next_byte
                }).collect();
                let pushed = buf.push(&data);
                prop_assert!(pushed <= data.len());
                model.extend_from_slice(&data[..pushed]);
            } else {
                let k = n.min(model.len());
                let freed = buf.ack_to(SeqNum(base) + (acked + k) as u32);
                prop_assert_eq!(freed, k);
                model.drain(..k);
                acked += k;
            }
            prop_assert_eq!(buf.len(), model.len());
            // Peek the entire live region and compare with the model.
            let got = buf.peek(buf.base(), model.len());
            prop_assert_eq!(&got, &model);
        }
    }

    /// RecvBuffer: FIFO with capacity; what goes in comes out in order.
    #[test]
    fn recv_buffer_fifo(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..100), 1..20)) {
        let mut rb = RecvBuffer::new(512);
        let mut model: Vec<u8> = Vec::new();
        for c in &chunks {
            let n = rb.write(c);
            model.extend_from_slice(&c[..n]);
            prop_assert!(rb.len() <= 512);
            // Read a random-ish prefix back.
            let mut out = vec![0u8; model.len() / 2 + 1];
            let r = rb.read(&mut out);
            prop_assert_eq!(&out[..r], &model[..r]);
            model.drain(..r);
        }
    }

    /// Reno invariants: cwnd stays >= 1 MSS, never exceeds doubling per
    /// ACK volley, and loss events reduce it.
    #[test]
    fn reno_invariants(acks in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mss = 1460u16;
        let mut r = Reno::new(mss);
        for is_loss in acks {
            let before = r.cwnd();
            if is_loss {
                r.on_fast_retransmit(0);
                prop_assert!(r.cwnd() <= before.max(2 * mss as usize));
            } else {
                r.on_ack(mss as usize, 0);
                prop_assert!(r.cwnd() >= before);
                prop_assert!(r.cwnd() <= before + mss as usize);
            }
            prop_assert!(r.cwnd() >= mss as usize);
        }
    }

    /// CUBIC never collapses below 2*MSS on fast retransmit and grows
    /// under ACK clocking.
    #[test]
    fn cubic_invariants(events in proptest::collection::vec(any::<u8>(), 1..200)) {
        let mss = 1460u16;
        let mut c = Cubic::new(mss);
        let mut now = 0u64;
        for e in events {
            now += 1_000_000;
            match e % 8 {
                0 => {
                    c.on_fast_retransmit(now);
                    prop_assert!(c.cwnd() >= 2 * mss as usize);
                }
                1 => {
                    c.on_timeout(now);
                    prop_assert_eq!(c.cwnd(), mss as usize);
                }
                _ => {
                    let before = c.cwnd();
                    c.on_ack(mss as usize, now);
                    prop_assert!(c.cwnd() >= before);
                }
            }
        }
    }

    /// The RTO estimator stays within clamps and backoff monotonically
    /// increases until the next sample.
    #[test]
    fn rto_bounds(samples in proptest::collection::vec(1_000u64..1_000_000_000, 1..100),
                  backoffs in 0u32..10) {
        let mut e = RttEstimator::new(200_000_000);
        for s in &samples {
            e.sample(*s);
            prop_assert!(e.rto() >= 1_000_000, "floor: {}", e.rto());
            prop_assert!(e.rto() <= 60_000_000_000, "ceiling");
            prop_assert!(e.rto() as f64 >= e.srtt().unwrap() as f64 * 0.99,
                "rto >= srtt: {} vs {:?}", e.rto(), e.srtt());
        }
        let mut prev = e.rto();
        for _ in 0..backoffs {
            e.backoff();
            prop_assert!(e.rto() >= prev);
            prev = e.rto();
        }
    }
}
