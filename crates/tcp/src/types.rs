//! Shared types: socket ids, configuration, states, events, errors.

use std::fmt;

/// Identifies a socket within one [`crate::TcpStack`] instance. Ids are
/// never reused within a stack's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId(pub u64);

/// The RFC 793 connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    Closed,
    Listen,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    Closing,
    TimeWait,
    CloseWait,
    LastAck,
}

impl TcpState {
    /// May user data still be sent in this state?
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }

    /// May data still arrive from the peer in this state?
    pub fn can_recv(self) -> bool {
        matches!(
            self,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        )
    }

    /// Is the connection fully torn down (resources reclaimable)?
    pub fn is_closed(self) -> bool {
        matches!(self, TcpState::Closed)
    }
}

impl fmt::Display for TcpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Which congestion controller a stack uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionAlgo {
    #[default]
    Reno,
    Cubic,
    /// No congestion control (cwnd pinned wide open) — useful to isolate
    /// flow-control behaviour in tests.
    None,
    /// BBR-style model-based controller: paces to a bandwidth-delay
    /// product estimated from delivery-rate and min-RTT filters.
    Bbr,
    /// DCTCP-style controller: scales the window cut by the observed
    /// congestion fraction (loss events proxy for ECN marks — the sim
    /// wire format carries no ECN bits).
    Dctcp,
}

/// A per-socket transport tuning knob, settable after `connect`/`accept`
/// instead of baking one global [`TcpConfig`] into the whole stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SockOpt {
    /// Switch the congestion controller for this connection.
    CongestionAlgo(CongestionAlgo),
    /// Override the initial congestion window, in segments (RFC 6928
    /// style: e.g. 10 for IW10).
    InitialCwnd(u32),
    /// Resize the receive buffer (and with it the advertised window
    /// ceiling), in bytes.
    RecvBuf(usize),
}

/// The discriminant of a [`SockOpt`], for `get_opt` queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockOptKind {
    CongestionAlgo,
    InitialCwnd,
    RecvBuf,
}

impl SockOpt {
    pub fn kind(&self) -> SockOptKind {
        match self {
            SockOpt::CongestionAlgo(_) => SockOptKind::CongestionAlgo,
            SockOpt::InitialCwnd(_) => SockOptKind::InitialCwnd,
            SockOpt::RecvBuf(_) => SockOptKind::RecvBuf,
        }
    }
}

/// Per-stack tunables (the control-plane settings of §4: e.g. the
/// TIME_WAIT timeout the OS manages while the NIC runs the data plane).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size we advertise and default to.
    pub mss: u16,
    /// Send buffer capacity per socket (bytes).
    pub send_buf: usize,
    /// Receive buffer capacity per socket (bytes) — advertised window base.
    pub recv_buf: usize,
    /// TIME_WAIT duration in nanoseconds (smoltcp uses a fixed 10 s).
    pub time_wait_ns: u64,
    /// Delayed-ACK timeout in nanoseconds (0 disables delayed ACKs).
    pub delayed_ack_ns: u64,
    /// Enable Nagle's algorithm.
    pub nagle: bool,
    /// Congestion control algorithm.
    pub congestion: CongestionAlgo,
    /// Maximum retransmissions before the connection is aborted.
    pub max_retries: u32,
    /// Initial RTO in nanoseconds (RFC 6298 says 1 s; datacenter-scale
    /// simulations shrink it).
    pub initial_rto_ns: u64,
    /// Listener SYN backlog + accept queue limit.
    pub backlog: usize,
    /// Keepalive probe interval in ns (0 disables keepalive).
    pub keepalive_ns: u64,
    /// GSO/TSO burst size: the send path may emit super-segments up to
    /// this many bytes (the NIC splits them to MSS on the wire). 0 means
    /// plain per-MSS segmentation. Must keep payload+40 <= 65535.
    pub gso_burst: usize,
    /// Stack-wide connection-memory budget in bytes (0 = unlimited).
    /// When accounted connection memory would exceed this, new SYNs are
    /// dropped (load shedding) and `connect` fails with
    /// [`TcpError::NoMemory`]; established connections are never killed.
    pub conn_memory_limit: u64,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            mss: 1460,
            send_buf: 64 * 1024,
            recv_buf: 64 * 1024,
            time_wait_ns: 10_000_000_000,
            delayed_ack_ns: 500_000, // 0.5 ms — LAN-scale
            nagle: true,
            congestion: CongestionAlgo::Reno,
            max_retries: 12,
            initial_rto_ns: 200_000_000, // 200 ms before first RTT sample
            backlog: 128,
            keepalive_ns: 0,
            gso_burst: 0,
            conn_memory_limit: 0,
        }
    }
}

/// Non-blocking readiness snapshot for one socket: the single query
/// surface that replaces ad-hoc `acceptable`/`recv_available`/`send_room`
/// probing. Mirrors `poll(2)`'s POLLIN/POLLOUT/POLLHUP bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Readiness {
    /// Data (or, for listeners, a pending accept) can be consumed now.
    /// Like POLLIN, this is also set at EOF so the reader observes it.
    pub readable: bool,
    /// Send-buffer room is available and the state still admits sending.
    pub writable: bool,
    /// The peer hung up: EOF received, connection closed or aborted.
    pub hup: bool,
}

impl Readiness {
    /// Nothing to do and nothing will become possible (closed/unknown).
    pub fn is_hup_only(&self) -> bool {
        self.hup && !self.readable && !self.writable
    }
}

/// User-visible socket events, drained via [`crate::TcpStack::poll_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockEvent {
    /// Active open completed.
    Connected(SocketId),
    /// A listener has a connection ready to accept.
    Acceptable(SocketId),
    /// New data is readable.
    Readable(SocketId),
    /// Send-buffer space became available.
    Writable(SocketId),
    /// Peer closed its direction (FIN received, EOF after drained data).
    PeerClosed(SocketId),
    /// Connection fully closed / reached TIME_WAIT.
    Closed(SocketId),
    /// Connection aborted: RST, retransmission limit, or listener overflow.
    Aborted(SocketId),
}

impl SockEvent {
    pub fn socket(&self) -> SocketId {
        match *self {
            SockEvent::Connected(s)
            | SockEvent::Acceptable(s)
            | SockEvent::Readable(s)
            | SockEvent::Writable(s)
            | SockEvent::PeerClosed(s)
            | SockEvent::Closed(s)
            | SockEvent::Aborted(s) => s,
        }
    }
}

/// Errors returned by socket operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// Unknown socket id.
    NoSocket,
    /// Operation invalid in the current state.
    BadState,
    /// Address/port already in use.
    AddrInUse,
    /// No ephemeral ports left.
    NoPorts,
    /// Send/receive buffer is full/empty.
    WouldBlock,
    /// The connection was reset by the peer.
    Reset,
    /// The connection timed out (retransmission limit).
    TimedOut,
    /// The stack's connection-memory budget is exhausted
    /// (`TcpConfig::conn_memory_limit`).
    NoMemory,
}

impl fmt::Display for TcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for TcpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_capabilities() {
        assert!(TcpState::Established.can_send());
        assert!(
            TcpState::CloseWait.can_send(),
            "peer closed, we can still send"
        );
        assert!(!TcpState::FinWait1.can_send(), "we closed, no more sending");
        assert!(TcpState::FinWait1.can_recv());
        assert!(!TcpState::CloseWait.can_recv(), "peer already sent FIN");
        assert!(TcpState::Closed.is_closed());
        assert!(!TcpState::TimeWait.is_closed());
    }

    #[test]
    fn event_socket_accessor() {
        let id = SocketId(7);
        for e in [
            SockEvent::Connected(id),
            SockEvent::Readable(id),
            SockEvent::Aborted(id),
        ] {
            assert_eq!(e.socket(), id);
        }
    }

    #[test]
    fn default_config_sane() {
        let c = TcpConfig::default();
        assert!(c.mss >= 536);
        assert!(c.send_buf >= c.mss as usize);
        assert_eq!(c.time_wait_ns, 10_000_000_000);
    }
}
