//! Socket-level integration tests: two [`TcpSocket`]s wired back-to-back
//! through real segment emit/parse, exercising the full component
//! coordination (handshake, transfer, teardown, loss recovery).

use super::*;

const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn cfg() -> TcpConfig {
    TcpConfig {
        initial_rto_ns: 50_000_000,
        ..TcpConfig::default()
    }
}

fn client(now: u64) -> TcpSocket {
    TcpSocket::connect(
        SocketId(1),
        &cfg(),
        (CLIENT_IP, 40000),
        (SERVER_IP, 80),
        SeqNum(1_000),
        now,
    )
}

/// Shuttle segments between two sockets until both are quiescent.
/// Returns the number of segments exchanged.
fn pump(a: &mut TcpSocket, b: &mut TcpSocket, now: u64) -> usize {
    let mut n = 0;
    loop {
        let mut progressed = false;
        while let Some((h, payload)) = a.poll_transmit(now) {
            // Real emit+parse so checksums and options are exercised.
            let bytes = h.emit(&payload, a.local_ip, b.local_ip);
            let (g, range) = TcpHeader::parse(&bytes, a.local_ip, b.local_ip).unwrap();
            b.on_segment(&g, &bytes[range], now);
            n += 1;
            progressed = true;
        }
        while let Some((h, payload)) = b.poll_transmit(now) {
            let bytes = h.emit(&payload, b.local_ip, a.local_ip);
            let (g, range) = TcpHeader::parse(&bytes, b.local_ip, a.local_ip).unwrap();
            a.on_segment(&g, &bytes[range], now);
            n += 1;
            progressed = true;
        }
        if !progressed {
            return n;
        }
    }
}

/// Build an established client/server pair via a real 3-way handshake.
fn established() -> (TcpSocket, TcpSocket) {
    let now = 0;
    let mut c = client(now);
    let (syn, _) = c.poll_transmit(now).expect("SYN");
    assert!(syn.flags.syn && !syn.flags.ack);
    let mut s = TcpSocket::accept_from_syn(
        SocketId(2),
        &cfg(),
        (SERVER_IP, 80),
        (CLIENT_IP, 40000),
        &syn,
        SeqNum(5_000),
        now,
    );
    pump(&mut c, &mut s, now);
    assert_eq!(c.state(), TcpState::Established);
    assert_eq!(s.state(), TcpState::Established);
    assert!(c
        .events
        .iter()
        .any(|e| matches!(e, SockEvent::Connected(_))));
    assert!(s
        .events
        .iter()
        .any(|e| matches!(e, SockEvent::Connected(_))));
    c.events.clear();
    s.events.clear();
    (c, s)
}

#[test]
fn three_way_handshake() {
    let (c, s) = established();
    assert_eq!(c.effective_mss(), 1460);
    assert_eq!(s.effective_mss(), 1460);
    assert_eq!(c.bytes_in_flight(), 0);
    assert_eq!(s.bytes_in_flight(), 0);
}

#[test]
fn data_transfer_both_directions() {
    let (mut c, mut s) = established();
    c.send(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    pump(&mut c, &mut s, 1_000_000);
    let mut buf = [0u8; 64];
    let n = s.recv(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"GET / HTTP/1.1\r\n\r\n");
    s.send(b"HTTP/1.1 200 OK\r\n\r\nhi").unwrap();
    pump(&mut c, &mut s, 2_000_000);
    let n = c.recv(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"HTTP/1.1 200 OK\r\n\r\nhi");
}

#[test]
fn large_transfer_respects_mss_and_window() {
    let (mut c, mut s) = established();
    let data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    let mut now = 0u64;
    while received.len() < data.len() {
        now += 1_000_000;
        if sent < data.len() {
            if let Ok(n) = c.send(&data[sent..]) {
                sent += n;
            }
        }
        // Drive timers for delayed ACKs.
        c.on_timer(now);
        s.on_timer(now);
        pump(&mut c, &mut s, now);
        let mut buf = [0u8; 4096];
        while let Ok(n) = s.recv(&mut buf) {
            if n == 0 {
                break;
            }
            received.extend_from_slice(&buf[..n]);
        }
        assert!(now < 10_000_000_000, "transfer did not complete");
    }
    assert_eq!(received, data);
}

#[test]
fn graceful_close_four_way() {
    let (mut c, mut s) = established();
    let now = 5_000_000;
    c.close(now);
    assert_eq!(c.state(), TcpState::FinWait1);
    pump(&mut c, &mut s, now);
    assert_eq!(s.state(), TcpState::CloseWait);
    assert!(s
        .events
        .iter()
        .any(|e| matches!(e, SockEvent::PeerClosed(_))));
    s.close(now);
    pump(&mut c, &mut s, now);
    assert_eq!(c.state(), TcpState::TimeWait);
    assert_eq!(s.state(), TcpState::Closed);
    // TIME_WAIT expires.
    c.on_timer(now + 10_000_000_001);
    assert_eq!(c.state(), TcpState::Closed);
}

#[test]
fn simultaneous_close() {
    let (mut c, mut s) = established();
    let now = 5_000_000;
    c.close(now);
    s.close(now);
    // Both FINs cross. Exchange everything.
    pump(&mut c, &mut s, now);
    // Both should end in TIME_WAIT (simultaneous close -> CLOSING ->
    // TIME_WAIT on both sides).
    assert_eq!(c.state(), TcpState::TimeWait);
    assert_eq!(s.state(), TcpState::TimeWait);
}

#[test]
fn retransmission_on_loss() {
    let (mut c, mut s) = established();
    c.send(b"important data").unwrap();
    // Drop the data segment (do not deliver).
    let (h, payload) = c.poll_transmit(0).expect("data segment");
    assert!(!payload.is_empty());
    let _ = h;
    assert!(c.poll_transmit(0).is_none());
    // RTO fires.
    let rto_at = c.next_timeout().expect("rtx armed");
    c.on_timer(rto_at);
    pump(&mut c, &mut s, rto_at);
    let mut buf = [0u8; 64];
    let n = s.recv(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"important data");
    assert!(c.retransmits >= 1);
}

#[test]
fn fast_retransmit_on_dup_acks() {
    let (mut c, mut s) = established();
    // Send 5 MSS of data; drop the first segment, deliver the rest.
    let data = vec![7u8; 5 * 1460];
    c.send(&data).unwrap();
    let now = 1_000_000;
    let mut segs = Vec::new();
    while let Some((h, p)) = c.poll_transmit(now) {
        segs.push((h, p));
    }
    assert!(
        segs.len() >= 3,
        "initial cwnd allows >=3 segments, got {}",
        segs.len()
    );
    // Deliver all but the first; each generates a dup ACK.
    for (h, p) in segs.iter().skip(1) {
        let bytes = h.emit(p, CLIENT_IP, SERVER_IP);
        let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
        s.on_segment(&g, &bytes[r], now);
    }
    // Collect the server's ACKs (all for the missing first segment).
    let mut acks = Vec::new();
    while let Some((h, p)) = s.poll_transmit(now) {
        acks.push((h, p));
    }
    for (h, p) in &acks {
        let bytes = h.emit(p, SERVER_IP, CLIENT_IP);
        let (g, r) = TcpHeader::parse(&bytes, SERVER_IP, CLIENT_IP).unwrap();
        c.on_segment(&g, &bytes[r], now);
    }
    if c.rel.dup_acks >= 3 {
        // Fast retransmit kicks in without waiting for the RTO.
        let (h, p) = c.poll_transmit(now).expect("fast retransmit");
        assert_eq!(h.seq, c.snd_una());
        assert!(!p.is_empty());
    } else {
        // Fewer than 3 dupacks (small initial cwnd): RTO still recovers.
        let rto_at = c.next_timeout().unwrap();
        c.on_timer(rto_at);
        assert!(c.poll_transmit(rto_at).is_some());
    }
}

#[test]
fn zero_window_blocks_sender() {
    let mut config = cfg();
    config.recv_buf = 2048; // tiny receive buffer
    let now = 0;
    let mut c = client(now);
    let (syn, _) = c.poll_transmit(now).unwrap();
    let mut s = TcpSocket::accept_from_syn(
        SocketId(2),
        &config,
        (SERVER_IP, 80),
        (CLIENT_IP, 40000),
        &syn,
        SeqNum(9_000),
        now,
    );
    pump(&mut c, &mut s, now);
    // Fill the server's receive buffer without the app reading.
    let data = vec![3u8; 8192];
    let mut pushed = 0;
    while pushed < data.len() {
        match c.send(&data[pushed..]) {
            Ok(n) => pushed += n,
            Err(_) => break,
        }
        pump(&mut c, &mut s, now);
    }
    assert!(s.recv_available() <= 2048);
    assert!(
        c.bytes_in_flight() == 0 || !c.rel.send_buf.is_empty(),
        "sender must hold back data beyond the advertised window"
    );
    // Application reads, window reopens, transfer resumes.
    let mut total = 0;
    let mut buf = [0u8; 1024];
    let mut now = now;
    for _ in 0..200 {
        now += 2_000_000;
        while let Ok(n) = s.recv(&mut buf) {
            if n == 0 {
                break;
            }
            total += n;
        }
        c.on_timer(now);
        s.on_timer(now);
        pump(&mut c, &mut s, now);
        if total >= pushed {
            break;
        }
    }
    assert_eq!(total, pushed, "all accepted bytes eventually delivered");
}

#[test]
fn rst_aborts_connection() {
    let (mut c, mut s) = established();
    c.abort();
    assert_eq!(c.state(), TcpState::Closed);
    let (h, p) = c.poll_transmit(0).expect("RST emitted");
    assert!(h.flags.rst);
    let bytes = h.emit(&p, CLIENT_IP, SERVER_IP);
    let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
    s.on_segment(&g, &bytes[r], 0);
    assert_eq!(s.state(), TcpState::Closed);
    assert!(s.events.iter().any(|e| matches!(e, SockEvent::Aborted(_))));
    assert_eq!(s.error, Some(TcpError::Reset));
}

#[test]
fn retry_limit_times_out() {
    let mut config = cfg();
    config.max_retries = 3;
    let now = 0;
    let mut c = TcpSocket::connect(
        SocketId(1),
        &config,
        (CLIENT_IP, 40000),
        (SERVER_IP, 80),
        SeqNum(100),
        now,
    );
    let _ = c.poll_transmit(now); // SYN into the void
    for _ in 0..10 {
        match c.next_timeout() {
            Some(d) => {
                let t = d;
                c.on_timer(t);
                let _ = c.poll_transmit(t);
            }
            None => break,
        }
        if c.state() == TcpState::Closed {
            break;
        }
    }
    assert_eq!(c.state(), TcpState::Closed);
    assert_eq!(c.error, Some(TcpError::TimedOut));
}

#[test]
fn eof_semantics_after_peer_close() {
    let (mut c, mut s) = established();
    c.send(b"last words").unwrap();
    c.close(0);
    pump(&mut c, &mut s, 0);
    let mut buf = [0u8; 64];
    let n = s.recv(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"last words");
    // Next read returns 0 (EOF), not WouldBlock.
    assert_eq!(s.recv(&mut buf).unwrap(), 0);
    assert!(s.at_eof());
}

#[test]
fn delayed_ack_single_segment() {
    let (mut c, mut s) = established();
    c.send(b"ping").unwrap();
    let now = 1_000_000;
    let (h, p) = c.poll_transmit(now).unwrap();
    let bytes = h.emit(&p, CLIENT_IP, SERVER_IP);
    let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
    s.on_segment(&g, &bytes[r], now);
    // One segment: ACK should be delayed, not immediate.
    assert!(
        s.poll_transmit(now).is_none(),
        "single segment should not trigger an immediate ACK"
    );
    let deadline = s.next_timeout().expect("delayed-ack timer armed");
    s.on_timer(deadline);
    let (ack, _) = s.poll_transmit(deadline).expect("delayed ACK fires");
    assert!(ack.flags.ack && !ack.flags.syn);
}

#[test]
fn nagle_coalesces_small_writes() {
    let (mut c, mut s) = established();
    let now = 0;
    c.send(b"a").unwrap();
    let first = c.poll_transmit(now);
    assert!(first.is_some(), "first small write goes out immediately");
    // More small writes while the first byte is unacked: held back.
    c.send(b"b").unwrap();
    c.send(b"c").unwrap();
    assert!(
        c.poll_transmit(now).is_none(),
        "Nagle must hold small segments while data is in flight"
    );
    // Deliver + ACK the first segment; the rest coalesce into one.
    let (h, p) = first.unwrap();
    let bytes = h.emit(&p, CLIENT_IP, SERVER_IP);
    let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
    s.on_segment(&g, &bytes[r], now);
    // Fire the server's delayed-ACK timer so the ACK releases Nagle.
    let ack_at = s.next_timeout().expect("delayed ack armed");
    s.on_timer(ack_at);
    pump(&mut c, &mut s, ack_at);
    let mut buf = [0u8; 8];
    let mut got = Vec::new();
    while let Ok(n) = s.recv(&mut buf) {
        if n == 0 {
            break;
        }
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(got, b"abc");
}

#[test]
fn out_of_order_delivery_reassembles() {
    let (mut c, mut s) = established();
    let now = 0;
    let data = vec![9u8; 3 * 1460];
    c.send(&data).unwrap();
    let mut segs = Vec::new();
    while let Some(seg) = c.poll_transmit(now) {
        segs.push(seg);
    }
    assert!(segs.len() >= 2);
    // Deliver in reverse order.
    for (h, p) in segs.iter().rev() {
        let bytes = h.emit(p, CLIENT_IP, SERVER_IP);
        let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
        s.on_segment(&g, &bytes[r], now);
    }
    let mut buf = vec![0u8; 8192];
    let mut got = Vec::new();
    while let Ok(n) = s.recv(&mut buf) {
        if n == 0 {
            break;
        }
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(got.len(), segs.iter().map(|(_, p)| p.len()).sum::<usize>());
    assert!(got.iter().all(|&b| b == 9));
}

#[test]
fn duplicate_segments_ignored() {
    let (mut c, mut s) = established();
    let now = 0;
    c.send(b"once only").unwrap();
    let (h, p) = c.poll_transmit(now).unwrap();
    let bytes = h.emit(&p, CLIENT_IP, SERVER_IP);
    let (g, r) = TcpHeader::parse(&bytes, CLIENT_IP, SERVER_IP).unwrap();
    s.on_segment(&g, &bytes[r.clone()], now);
    s.on_segment(&g, &bytes[r.clone()], now); // duplicate
    s.on_segment(&g, &bytes[r], now); // triplicate
    let mut buf = [0u8; 64];
    let n = s.recv(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"once only");
    assert_eq!(s.recv(&mut buf), Err(TcpError::WouldBlock));
}

#[test]
fn sock_opt_selects_controller_and_resizes_buffers() {
    let (mut c, _s) = established();
    assert_eq!(c.cc_algo(), CongestionAlgo::Reno, "stack default");
    c.set_opt(SockOpt::CongestionAlgo(CongestionAlgo::Bbr));
    assert_eq!(c.cc_algo(), CongestionAlgo::Bbr);
    assert_eq!(
        c.get_opt(SockOptKind::CongestionAlgo),
        Some(SockOpt::CongestionAlgo(CongestionAlgo::Bbr))
    );
    c.set_opt(SockOpt::InitialCwnd(20));
    let mss = c.effective_mss() as usize;
    assert_eq!(
        c.get_opt(SockOptKind::InitialCwnd),
        Some(SockOpt::InitialCwnd(20))
    );
    assert_eq!(c.cc.cwnd(), 20 * mss);
    c.set_opt(SockOpt::RecvBuf(4096));
    assert_eq!(
        c.get_opt(SockOptKind::RecvBuf),
        Some(SockOpt::RecvBuf(4096))
    );
    assert_eq!(c.fc.recv_buf.window(), 4096);
    // Re-selecting the same algorithm must not reset controller state.
    c.set_opt(SockOpt::InitialCwnd(33));
    c.set_opt(SockOpt::CongestionAlgo(CongestionAlgo::Bbr));
    assert_eq!(c.cc.cwnd(), 33 * mss);
}

#[test]
fn snapshot_restore_preserves_selected_algorithm() {
    let (mut c, _s) = established();
    c.set_opt(SockOpt::CongestionAlgo(CongestionAlgo::Dctcp));
    let img = c.snapshot();
    assert_eq!(img.cc_algo, CongestionAlgo::Dctcp);
    let r = TcpSocket::restore(SocketId(99), &cfg(), &img);
    assert_eq!(r.cc_algo(), CongestionAlgo::Dctcp);
    assert_eq!(r.snapshot(), img, "snapshot/restore/snapshot is identity");
}
