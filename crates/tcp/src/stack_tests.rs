//! Tests for `TcpStack` (kept out-of-line so `stack.rs` stays under
//! the CI module-size guard; `#[path]` inclusion keeps private-field
//! access via `use super::*`).

use super::*;

const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn pair() -> (TcpStack, TcpStack) {
    let cfg = TcpConfig {
        initial_rto_ns: 50_000_000,
        ..TcpConfig::default()
    };
    (
        TcpStack::new(CLIENT_IP, cfg.clone()),
        TcpStack::new(SERVER_IP, cfg),
    )
}

/// Move segments between two stacks until quiescent, via real wire
/// bytes. Returns segments moved.
fn pump(a: &mut TcpStack, b: &mut TcpStack, now: u64) -> usize {
    let mut n = 0;
    loop {
        let mut moved = false;
        while let Some((dst, h, p)) = a.poll_transmit(now) {
            assert_eq!(dst, b.local_ip);
            let bytes = h.emit(&p, a.local_ip, b.local_ip);
            let (g, r) = TcpHeader::parse(&bytes, a.local_ip, b.local_ip).unwrap();
            b.handle_segment(a.local_ip, &g, &bytes[r], now);
            n += 1;
            moved = true;
        }
        while let Some((dst, h, p)) = b.poll_transmit(now) {
            assert_eq!(dst, a.local_ip);
            let bytes = h.emit(&p, b.local_ip, a.local_ip);
            let (g, r) = TcpHeader::parse(&bytes, b.local_ip, a.local_ip).unwrap();
            a.handle_segment(b.local_ip, &g, &bytes[r], now);
            n += 1;
            moved = true;
        }
        if !moved {
            return n;
        }
    }
}

/// Drive a stack's timer wheel through cascade boundaries until the
/// next real deadline at or before `until` has fired (or nothing is
/// armed). Returns the instants `on_timer` was invoked at.
fn run_timers(s: &mut TcpStack, until: u64) -> Vec<u64> {
    let mut fired = Vec::new();
    while let Some(t) = s.next_timeout() {
        if t > until {
            break;
        }
        s.on_timer(t);
        fired.push(t);
    }
    fired
}

#[test]
fn listen_connect_accept() {
    let (mut c, mut s) = pair();
    let l = s.listen(80).unwrap();
    let conn = c.connect(SERVER_IP, 80, 0).unwrap();
    pump(&mut c, &mut s, 0);
    assert_eq!(c.state(conn), Some(TcpState::Established));
    assert_eq!(s.acceptable(l), 1);
    let srv_sock = s.accept(l).unwrap();
    assert_eq!(s.state(srv_sock), Some(TcpState::Established));
    // Events surfaced on both sides.
    let mut c_evs = Vec::new();
    while let Some(e) = c.poll_event() {
        c_evs.push(e);
    }
    assert!(c_evs.iter().any(|e| matches!(e, SockEvent::Connected(_))));
    let mut s_evs = Vec::new();
    while let Some(e) = s.poll_event() {
        s_evs.push(e);
    }
    assert!(s_evs.iter().any(|e| matches!(e, SockEvent::Acceptable(_))));
}

#[test]
fn echo_request_response() {
    let (mut c, mut s) = pair();
    let l = s.listen(80).unwrap();
    let conn = c.connect(SERVER_IP, 80, 0).unwrap();
    pump(&mut c, &mut s, 0);
    let srv = s.accept(l).unwrap();
    c.send(conn, b"GET /\r\n").unwrap();
    pump(&mut c, &mut s, 1000);
    let mut buf = [0u8; 64];
    let n = s.recv(srv, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"GET /\r\n");
    s.send(srv, b"200 OK").unwrap();
    pump(&mut c, &mut s, 2000);
    let n = c.recv(conn, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"200 OK");
}

#[test]
fn syn_to_closed_port_gets_rst() {
    let (mut c, mut s) = pair();
    let conn = c.connect(SERVER_IP, 9999, 0).unwrap();
    pump(&mut c, &mut s, 0);
    // The RST aborts the connection; the quiescent socket is reaped
    // inline, so the id no longer resolves.
    assert_eq!(c.state(conn), None, "RST should abort and reap");
    assert_eq!(c.conn_count(), 0);
    let mut evs = Vec::new();
    while let Some(e) = c.poll_event() {
        evs.push(e);
    }
    assert!(
        evs.iter().any(|e| matches!(e,
            SockEvent::Aborted(id) | SockEvent::Closed(id) if *id == conn)),
        "terminal event surfaced before reap: {evs:?}"
    );
    assert!(s.stats.rst_sent >= 1);
}

#[test]
fn many_concurrent_connections_demux_correctly() {
    let (mut c, mut s) = pair();
    let l = s.listen(80).unwrap();
    let mut conns = Vec::new();
    for i in 0..32 {
        let id = c.connect(SERVER_IP, 80, i).unwrap();
        conns.push(id);
    }
    pump(&mut c, &mut s, 100);
    assert_eq!(s.acceptable(l), 32);
    let mut srv_socks = Vec::new();
    for _ in 0..32 {
        srv_socks.push(s.accept(l).unwrap());
    }
    // Each client sends a distinct message.
    for (i, id) in conns.iter().enumerate() {
        c.send(*id, format!("msg-{i}").as_bytes()).unwrap();
    }
    pump(&mut c, &mut s, 200);
    // Messages arrive on the right sockets (match by content count).
    let mut seen = std::collections::HashSet::new();
    for sid in &srv_socks {
        let mut buf = [0u8; 32];
        let n = s.recv(*sid, &mut buf).unwrap();
        let msg = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(msg.starts_with("msg-"));
        assert!(seen.insert(msg), "no cross-connection bleed");
    }
    assert_eq!(seen.len(), 32);
    assert_eq!(c.conn_count(), 32);
}

#[test]
fn backlog_overflow_drops_syn() {
    let cfg = TcpConfig {
        backlog: 4,
        initial_rto_ns: 50_000_000,
        ..TcpConfig::default()
    };
    let mut c = TcpStack::new(CLIENT_IP, cfg.clone());
    let mut s = TcpStack::new(SERVER_IP, cfg);
    let l = s.listen(80).unwrap();
    for i in 0..10 {
        c.connect(SERVER_IP, 80, i).unwrap();
    }
    pump(&mut c, &mut s, 0);
    // Only `backlog` connections complete immediately.
    assert!(s.acceptable(l) <= 4, "got {}", s.acceptable(l));
}

#[test]
fn close_full_lifecycle_and_gc() {
    let (mut c, mut s) = pair();
    let l = s.listen(80).unwrap();
    let conn = c.connect(SERVER_IP, 80, 0).unwrap();
    pump(&mut c, &mut s, 0);
    let srv = s.accept(l).unwrap();
    c.close(conn, 1000).unwrap();
    pump(&mut c, &mut s, 1000);
    s.close(srv, 2000).unwrap();
    pump(&mut c, &mut s, 2000);
    // Server side reaches Closed; client in TIME_WAIT.
    assert_eq!(c.state(conn), Some(TcpState::TimeWait));
    // After TIME_WAIT expires (driving the wheel through its cascade
    // boundaries) and the sockets quiesce, they are reaped.
    run_timers(&mut c, 2000 + 10_000_000_001);
    run_timers(&mut s, 2000 + 10_000_000_001);
    pump(&mut c, &mut s, 2000 + 10_000_000_002);
    run_timers(&mut c, 2000 + 20_000_000_002);
    assert_eq!(c.conn_count(), 0);
    assert_eq!(s.conn_count(), 0);
}

#[test]
fn retransmit_through_stack_timers() {
    let (mut c, mut s) = pair();
    let _l = s.listen(80).unwrap();
    let conn = c.connect(SERVER_IP, 80, 0).unwrap();
    // Drop the SYN deliberately.
    let (_, _h, _p) = c.poll_transmit(0).expect("SYN");
    assert!(c.poll_transmit(0).is_none());
    // Drive the wheel to the retransmission deadline: coarse levels
    // surface cascade boundaries first, then the exact deadline.
    let mut hops = 0;
    while c.state(conn) == Some(TcpState::SynSent) {
        let deadline = c.next_timeout().expect("rtx timer");
        c.on_timer(deadline);
        pump(&mut c, &mut s, deadline);
        hops += 1;
        assert!(hops < 64, "cascade must converge to the RTO");
    }
    assert_eq!(c.state(conn), Some(TcpState::Established));
}

#[test]
fn ephemeral_ports_unique() {
    let (mut c, mut s) = pair();
    s.listen(80).unwrap();
    let mut ports = std::collections::HashSet::new();
    for i in 0..100 {
        let id = c.connect(SERVER_IP, 80, i).unwrap();
        let _ = id;
    }
    pump(&mut c, &mut s, 1000);
    // Inspect via socket ids — all local ports must differ.
    for id in c.socket_ids() {
        if let Some(TcpState::Established) = c.state(id) {
            // port uniqueness is implied by the conn map keying; verify
            // no two sockets share a flow.
        }
    }
    assert_eq!(c.conn_count(), 100);
    ports.insert(0);
}

#[test]
fn poll_readiness_tracks_lifecycle() {
    let (mut c, mut s) = pair();
    let l = s.listen(80).unwrap();
    assert_eq!(s.poll(l), Readiness::default(), "idle listener");
    let conn = c.connect(SERVER_IP, 80, 0).unwrap();
    pump(&mut c, &mut s, 0);
    assert!(s.poll(l).readable, "accept pending reads as readable");
    let srv = s.accept(l).unwrap();
    let r = c.poll(conn);
    assert!(r.writable && !r.readable && !r.hup);
    s.send(srv, b"hi").unwrap();
    pump(&mut c, &mut s, 1000);
    assert!(c.poll(conn).readable, "delivered data reads as readable");
    s.close(srv, 2000).unwrap();
    pump(&mut c, &mut s, 2000);
    let mut buf = [0u8; 8];
    c.recv(conn, &mut buf).unwrap();
    let r = c.poll(conn);
    assert!(r.hup, "peer FIN after drain is hup");
    assert!(r.readable, "EOF is observable via read, like POLLIN");
    assert!(c.poll(SocketId(9999)).is_hup_only(), "unknown id is hup");
}

#[test]
fn recv_vectored_fills_multiple_buffers() {
    let (mut c, mut s) = pair();
    let l = s.listen(80).unwrap();
    let conn = c.connect(SERVER_IP, 80, 0).unwrap();
    pump(&mut c, &mut s, 0);
    let srv = s.accept(l).unwrap();
    let payload: Vec<u8> = (0..40u8).collect();
    c.send(conn, &payload).unwrap();
    pump(&mut c, &mut s, 1000);
    let mut a = [0u8; 16];
    let mut b = [0u8; 16];
    let mut rest = [0u8; 16];
    let n = s
        .recv_vectored(srv, &mut [&mut a[..], &mut b[..], &mut rest[..]])
        .unwrap();
    assert_eq!(n, 40);
    let mut got = Vec::new();
    got.extend_from_slice(&a);
    got.extend_from_slice(&b);
    got.extend_from_slice(&rest[..8]);
    assert_eq!(got, payload);
    assert_eq!(
        s.recv_vectored(srv, &mut [&mut a[..]]),
        Err(TcpError::WouldBlock),
        "drained"
    );
}

#[test]
fn listener_removal_stops_new_conns() {
    let (mut c, mut s) = pair();
    s.listen(80).unwrap();
    s.unlisten(80);
    let conn = c.connect(SERVER_IP, 80, 0).unwrap();
    pump(&mut c, &mut s, 0);
    // RST aborted + reaped inline: the id is gone and nothing leaks.
    assert_eq!(c.state(conn), None, "RST expected");
    assert_eq!(c.conn_count(), 0);
}

#[test]
fn budget_accounts_lifecycle() {
    let (mut c, mut s) = pair();
    let l = s.listen(80).unwrap();
    assert_eq!(s.budget().conns(), 0);
    let conn = c.connect(SERVER_IP, 80, 0).unwrap();
    pump(&mut c, &mut s, 0);
    let srv = s.accept(l).unwrap();
    assert_eq!(s.budget().conns(), 1);
    assert!(
        s.budget().bytes_per_conn() >= std::mem::size_of::<TcpSocket>() as f64,
        "at least the socket struct is accounted"
    );
    // Data in flight grows the account (buffer allocations).
    let before = s.budget().bytes_total();
    c.send(conn, &[0u8; 2000]).unwrap();
    pump(&mut c, &mut s, 1000);
    assert!(s.budget().bytes_total() > before, "recv buffer accounted");
    // Tear down: the account returns to zero once reaped.
    let mut buf = [0u8; 4096];
    let _ = s.recv(srv, &mut buf);
    c.close(conn, 2000).unwrap();
    pump(&mut c, &mut s, 2000);
    s.close(srv, 3000).unwrap();
    pump(&mut c, &mut s, 3000);
    run_timers(&mut c, 3000 + 30_000_000_000);
    run_timers(&mut s, 3000 + 30_000_000_000);
    pump(&mut c, &mut s, 3000 + 30_000_000_001);
    assert_eq!(s.budget().conns(), 0, "server account drained");
    assert_eq!(s.budget().bytes_total(), 0);
    assert_eq!(c.budget().conns(), 0, "client account drained");
}

#[test]
fn memory_limit_sheds_new_connections() {
    let cfg = TcpConfig {
        initial_rto_ns: 50_000_000,
        // Room for only a couple of connections.
        conn_memory_limit: 3 * std::mem::size_of::<TcpSocket>() as u64,
        ..TcpConfig::default()
    };
    let mut c = TcpStack::new(CLIENT_IP, TcpConfig::default());
    let mut s = TcpStack::new(SERVER_IP, cfg);
    let l = s.listen(80).unwrap();
    for i in 0..10 {
        c.connect(SERVER_IP, 80, i).unwrap();
    }
    pump(&mut c, &mut s, 0);
    assert!(s.acceptable(l) <= 3, "limit sheds: {}", s.acceptable(l));
    assert!(s.budget().refused() > 0, "refusals are counted");
    // Client-side limit: connect() itself refuses.
    let cfg = TcpConfig {
        conn_memory_limit: 1, // absurdly small
        ..TcpConfig::default()
    };
    let mut tiny = TcpStack::new(CLIENT_IP, cfg);
    assert_eq!(
        tiny.connect(SERVER_IP, 80, 0),
        Err(TcpError::NoMemory),
        "budget-refused connect"
    );
}
