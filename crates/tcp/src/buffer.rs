//! Send and receive stream buffers.
//!
//! The send buffer keeps every byte from the ACK point (`snd.una`) forward —
//! the retransmittable part of the stream — addressed by sequence number.
//! The receive buffer holds in-order bytes awaiting the application; its
//! free space is the window we advertise.

use neat_net::SeqNum;
use std::collections::VecDeque;

/// Bytes between `snd.una` and the end of the user-enqueued stream.
#[derive(Debug)]
pub struct SendBuffer {
    /// Sequence number of `data[0]` (== snd.una).
    base: SeqNum,
    data: VecDeque<u8>,
    cap: usize,
}

impl SendBuffer {
    pub fn new(base: SeqNum, cap: usize) -> SendBuffer {
        SendBuffer {
            base,
            data: VecDeque::new(),
            cap,
        }
    }

    /// Enqueue user data; returns how many bytes were accepted.
    pub fn push(&mut self, buf: &[u8]) -> usize {
        let room = self.cap - self.data.len();
        let n = buf.len().min(room);
        self.data.extend(&buf[..n]);
        n
    }

    /// Total buffered bytes (unacked + unsent).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Free space for new user data.
    pub fn room(&self) -> usize {
        self.cap - self.data.len()
    }

    pub fn base(&self) -> SeqNum {
        self.base
    }

    /// Last sequence number + 1 covered by the buffer.
    pub fn end(&self) -> SeqNum {
        self.base + self.data.len() as u32
    }

    /// Drop bytes acknowledged up to `ack`; returns bytes released.
    pub fn ack_to(&mut self, ack: SeqNum) -> usize {
        let n = (ack - self.base).max(0) as usize;
        let n = n.min(self.data.len());
        self.data.drain(..n);
        self.base += n as u32;
        n
    }

    /// Copy out up to `len` bytes starting at sequence `seq` (for transmit
    /// or retransmit). Returns an empty vec if `seq` is outside the buffer.
    pub fn peek(&self, seq: SeqNum, len: usize) -> Vec<u8> {
        let off = seq - self.base;
        if off < 0 || off as usize >= self.data.len() {
            return Vec::new();
        }
        let off = off as usize;
        let end = (off + len).min(self.data.len());
        self.data.range(off..end).copied().collect()
    }

    /// Allocated heap bytes (capacity, not configured cap) — the number
    /// the `ConnBudget` accounts. Lazily-allocated buffers keep idle
    /// connections near zero here.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity()
    }

    /// Bytes available at or beyond `seq`.
    pub fn len_from(&self, seq: SeqNum) -> usize {
        let off = seq - self.base;
        if off < 0 {
            return self.data.len();
        }
        self.data.len().saturating_sub(off as usize)
    }

    /// Copy of every buffered byte, base first (checkpoint capture).
    pub fn contents(&self) -> Vec<u8> {
        self.data.iter().copied().collect()
    }

    /// Rebuild a buffer from a checkpoint. `cap` is widened to fit the
    /// snapshot so a restore can never silently truncate the stream.
    pub fn from_parts(base: SeqNum, data: Vec<u8>, cap: usize) -> SendBuffer {
        SendBuffer {
            base,
            cap: cap.max(data.len()),
            data: data.into(),
        }
    }
}

/// In-order received bytes awaiting the application.
#[derive(Debug)]
pub struct RecvBuffer {
    data: VecDeque<u8>,
    cap: usize,
}

impl RecvBuffer {
    pub fn new(cap: usize) -> RecvBuffer {
        RecvBuffer {
            data: VecDeque::new(),
            cap,
        }
    }

    /// Append in-order stream bytes (flow control guarantees room; any
    /// excess is truncated defensively).
    pub fn write(&mut self, buf: &[u8]) -> usize {
        let n = buf.len().min(self.cap - self.data.len());
        self.data.extend(&buf[..n]);
        n
    }

    /// Move up to `buf.len()` bytes out to the application.
    pub fn read(&mut self, buf: &mut [u8]) -> usize {
        let n = buf.len().min(self.data.len());
        for (i, b) in self.data.drain(..n).enumerate() {
            buf[i] = b;
        }
        n
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The receive window we can advertise.
    pub fn window(&self) -> usize {
        self.cap - self.data.len()
    }

    /// Configured capacity (advertised-window ceiling).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Resize the capacity (`SockOpt::RecvBuf`). Clamped to the bytes
    /// already buffered so the window can shrink to zero but never
    /// underflow; buffered data is never dropped.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap.max(self.data.len());
    }

    /// Allocated heap bytes (capacity, not configured cap).
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity()
    }

    /// Copy of every buffered byte (checkpoint capture).
    pub fn contents(&self) -> Vec<u8> {
        self.data.iter().copied().collect()
    }

    /// Rebuild a buffer from a checkpoint (cap widened to fit).
    pub fn from_parts(data: Vec<u8>, cap: usize) -> RecvBuffer {
        RecvBuffer {
            cap: cap.max(data.len()),
            data: data.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_buffer_push_ack_peek() {
        let mut s = SendBuffer::new(SeqNum(1000), 10);
        assert_eq!(s.push(b"hello world"), 10, "capacity limits push");
        assert_eq!(s.peek(SeqNum(1000), 5), b"hello");
        assert_eq!(s.peek(SeqNum(1006), 10), b"worl");
        assert_eq!(s.ack_to(SeqNum(1005)), 5);
        assert_eq!(s.base(), SeqNum(1005));
        assert_eq!(s.peek(SeqNum(1005), 5), b" worl");
        assert_eq!(s.room(), 5);
        assert_eq!(s.push(b"xyz"), 3);
        assert_eq!(s.end(), SeqNum(1013));
    }

    #[test]
    fn ack_beyond_end_clamps() {
        let mut s = SendBuffer::new(SeqNum(0), 100);
        s.push(b"abc");
        assert_eq!(s.ack_to(SeqNum(50)), 3);
        assert_eq!(s.base(), SeqNum(3), "base advances only over real data");
        assert!(s.is_empty());
    }

    #[test]
    fn old_ack_is_noop() {
        let mut s = SendBuffer::new(SeqNum(100), 100);
        s.push(b"abc");
        assert_eq!(s.ack_to(SeqNum(50)), 0);
        assert_eq!(s.base(), SeqNum(100));
    }

    #[test]
    fn peek_outside_returns_empty() {
        let s = SendBuffer::new(SeqNum(100), 100);
        assert!(s.peek(SeqNum(100), 4).is_empty());
        assert!(s.peek(SeqNum(90), 4).is_empty());
    }

    #[test]
    fn len_from_positions() {
        let mut s = SendBuffer::new(SeqNum(100), 100);
        s.push(b"0123456789");
        assert_eq!(s.len_from(SeqNum(100)), 10);
        assert_eq!(s.len_from(SeqNum(105)), 5);
        assert_eq!(s.len_from(SeqNum(110)), 0);
        assert_eq!(s.len_from(SeqNum(115)), 0);
    }

    #[test]
    fn send_buffer_wraps_sequence_space() {
        let mut s = SendBuffer::new(SeqNum(u32::MAX - 1), 100);
        s.push(b"abcdef");
        assert_eq!(s.end(), SeqNum(4));
        assert_eq!(s.peek(SeqNum(u32::MAX), 3), b"bcd");
        assert_eq!(s.ack_to(SeqNum(2)), 4);
        assert_eq!(s.peek(SeqNum(2), 2), b"ef");
    }

    #[test]
    fn recv_buffer_write_read_window() {
        let mut r = RecvBuffer::new(8);
        assert_eq!(r.window(), 8);
        assert_eq!(r.write(b"abcdefghij"), 8);
        assert_eq!(r.window(), 0);
        let mut out = [0u8; 5];
        assert_eq!(r.read(&mut out), 5);
        assert_eq!(&out, b"abcde");
        assert_eq!(r.window(), 5);
        assert_eq!(r.len(), 3);
        let mut rest = [0u8; 10];
        assert_eq!(r.read(&mut rest), 3);
        assert_eq!(&rest[..3], b"fgh");
        assert!(r.is_empty());
    }
}
