//! The single-component stack replica (`NEaT Nx` in the figures).
//!
//! One process per replica containing the whole stack: link/ARP/ICMP
//! handling, IP, TCP, UDP, and the socket fast path. Fewer cores and fewer
//! internal messages than the multi-component configuration, at the cost of
//! coarser fault isolation: a fault anywhere in the replica loses the
//! replica's entire state, including TCP connections (§3.7, Figure 13).

use crate::flow_repl::FlowRepl;
use crate::msg::{InputRec, Msg};
use crate::netcode::{FrameIo, RxClass};
use crate::sock_server::SockServer;
use neat_net::ethernet::MacAddr;
use neat_net::ipv4::IpProtocol;
use neat_net::udp::UdpHeader;
use neat_sim::{calibration, Ctx, Event, ProcId, Process, Time};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A whole-stack replica process.
pub struct SingleStackProc {
    pub name: String,
    /// NIC queue this replica is fed from.
    pub queue: usize,
    driver: ProcId,
    supervisor: ProcId,
    io: FrameIo,
    sock: SockServer,
    repl: FlowRepl,
    udp_binds: HashMap<u16, ProcId>,
    /// Termination state (§3.4): no new work; report when drained.
    terminating: bool,
    drained_reported: bool,
    /// Earliest armed timer deadline (avoid timer storms).
    armed: Option<u64>,
    /// ASLR layout token — randomized at every (re)start (§3.8).
    pub layout_token: u64,
}

impl SingleStackProc {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        queue: usize,
        driver: ProcId,
        supervisor: ProcId,
        ip: Ipv4Addr,
        mac: MacAddr,
        cfg: &crate::config::NeatConfig,
        arp_seed: Vec<(Ipv4Addr, MacAddr)>,
    ) -> SingleStackProc {
        let mut io = FrameIo::new(ip, mac);
        for (a, m) in arp_seed {
            io.seed_arp(a, m);
        }
        SingleStackProc {
            name: name.into(),
            queue,
            driver,
            supervisor,
            io,
            sock: SockServer::new(ip, cfg.tcp.clone()),
            repl: FlowRepl::new(cfg),
            udp_binds: HashMap::new(),
            terminating: false,
            drained_reported: false,
            armed: None,
            layout_token: 0,
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Loopback traffic can generate new events/segments in the same
        // handler; iterate to quiescence (bounded: each round consumes
        // queued stack output).
        for _ in 0..32 {
            let had_loopback = self.flush_once(ctx);
            if !had_loopback {
                break;
            }
        }
    }

    /// One flush round; returns true if loopback segments were processed
    /// (meaning another round may be needed).
    fn flush_once(&mut self, ctx: &mut Ctx<'_, Msg>) -> bool {
        let now = ctx.now().as_nanos();
        let me = ctx.self_id;
        // Stack events → app messages; charge per socket op + open/close.
        let (_, opened, closed) = self.sock.process_events(me);
        ctx.charge(opened as u64 * calibration::TCP_OPEN + closed as u64 * calibration::TCP_CLOSE);
        // Outbound segments → IP encapsulation; segments addressed to our
        // own IP take the replica's loopback device (§3.3: "this also
        // allows the loopback devices to be implemented by each of the
        // replicas") — no NIC, no driver, no other replica involved.
        let mut loopback = Vec::new();
        for (dst, seg) in self.sock.poll_wire(now) {
            ctx.charge(calibration::TCP_TX_SEG + calibration::IP_TX_PKT);
            if dst == self.io.ip {
                loopback.push(seg);
            } else {
                self.io.send_ip(dst, IpProtocol::Tcp, &seg, now);
            }
        }
        let had_loopback = !loopback.is_empty();
        for seg in loopback {
            ctx.charge(calibration::TCP_RX_SEG);
            let src = self.io.ip;
            if self.repl.logging() {
                self.repl.record(InputRec::Seg {
                    src,
                    bytes: seg.clone(),
                    now,
                });
            }
            if let Ok((h, range)) = neat_net::TcpHeader::parse(&seg, src, src) {
                self.sock.stack.handle_segment(src, &h, &seg[range], now);
            }
        }
        // Wire frames → driver.
        for frame in self.io.drain() {
            ctx.send(self.driver, Msg::NetTx(frame));
        }
        // App notifications.
        for (app, msg) in self.sock.take_app_msgs() {
            ctx.charge(calibration::SOCK_OP);
            ctx.send(app, msg);
        }
        // Replication delta: the flush is atomic w.r.t. crashes (Poison is
        // a message), so every output above is covered by this delta.
        if let Some((buddy, delta)) = self.repl.collect_delta(&mut self.sock, self.queue, now) {
            ctx.charge(calibration::SOCK_OP);
            ctx.send(buddy, delta);
        }
        // Timer re-arm.
        if let Some(d) = self.sock.next_timeout() {
            if self.armed.map(|a| d < a).unwrap_or(true) {
                self.armed = Some(d);
                let delay = d.saturating_sub(now);
                ctx.set_timer(Time::from_nanos(delay), 0);
            }
        }
        // Lazy-termination GC (§3.4).
        if self.terminating && !self.drained_reported && self.sock.conn_count() == 0 {
            self.drained_reported = true;
            ctx.send(self.supervisor, Msg::Drained { queue: self.queue });
        }
        had_loopback
    }

    fn handle_frame(&mut self, ctx: &mut Ctx<'_, Msg>, frame: neat_net::PktBuf) {
        let now = ctx.now().as_nanos();
        if !neat_net::pktbuf::pooling() {
            // Pool ablation: the pre-pool header strip copied the L4
            // payload out of the frame instead of taking a window.
            ctx.charge(calibration::copy_cost(frame.len()));
        }
        match self.io.classify_rx(&frame, now) {
            RxClass::Tcp { src, seg } => {
                ctx.charge(calibration::IP_RX_PKT + calibration::TCP_RX_SEG);
                if self.repl.logging() {
                    self.repl.record(InputRec::Seg {
                        src,
                        bytes: seg.to_vec(),
                        now,
                    });
                }
                if let Ok((h, range)) = neat_net::TcpHeader::parse(&seg, src, self.io.ip) {
                    self.sock.stack.handle_segment(src, &h, &seg[range], now);
                }
                // Bad checksum → silently dropped, like hardware.
            }
            RxClass::Udp { src, dgram } => {
                ctx.charge(calibration::IP_RX_PKT + calibration::UDP_PKT);
                if let Ok((h, range)) = UdpHeader::parse(&dgram, src, self.io.ip) {
                    match self.udp_binds.get(&h.dst_port).copied() {
                        Some(app) => {
                            ctx.send(
                                app,
                                Msg::UdpData {
                                    port: h.dst_port,
                                    src: (src, h.src_port),
                                    data: dgram[range].to_vec(),
                                },
                            );
                        }
                        None => {
                            // ICMP port unreachable (RFC 1122).
                            let orig: Vec<u8> = dgram.iter().take(28).copied().collect();
                            let icmp = neat_net::icmp::IcmpMessage::DestUnreachable {
                                code: neat_net::icmp::PORT_UNREACHABLE,
                                original: orig,
                            };
                            self.io.send_ip(src, IpProtocol::Icmp, &icmp.emit(), now);
                        }
                    }
                }
            }
            RxClass::Icmp { .. } | RxClass::Arp => {
                ctx.charge(calibration::IP_RX_PKT);
            }
            RxClass::Dropped => {
                ctx.charge(calibration::IP_RX_PKT / 2);
            }
        }
    }
}

impl Process<Msg> for SingleStackProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcId, msgs: Vec<Msg>) {
        // Amortized delivery: classify every frame in the batch, then run
        // the TX/event flush once for the whole run of packets.
        let mut deferred_flush = false;
        for msg in msgs {
            match msg {
                Msg::NetRx(frame) => {
                    self.handle_frame(ctx, frame);
                    deferred_flush = true;
                }
                other => self.on_event(ctx, Event::Message { from, msg: other }),
            }
        }
        if deferred_flush {
            self.flush(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            // Delivered via `on_batch` in practice; unroll defensively if a
            // batch ever reaches the scalar path.
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
            Event::Start => {
                // Fresh ASLR layout on every start (§3.8).
                self.layout_token = ctx.rng().gen();
                // Announce to the driver: packets may flow to this replica.
                ctx.send(
                    self.driver,
                    Msg::Announce {
                        queue: self.queue,
                        head: ctx.self_id,
                    },
                );
            }
            Event::Timer { .. } => {
                self.armed = None;
                let now = ctx.now().as_nanos();
                if self.repl.logging() {
                    self.repl.record(InputRec::Timer { now });
                }
                self.sock.on_timer(now);
                self.flush(ctx);
            }
            Event::Message { from, msg } => match msg {
                Msg::NetRx(frame) => {
                    self.handle_frame(ctx, frame);
                    self.flush(ctx);
                }
                m @ (Msg::Listen { .. }
                | Msg::Connect { .. }
                | Msg::ConnSend { .. }
                | Msg::ConnClose { .. }
                | Msg::SetSockOpt { .. }) => {
                    // Refuse new listens/connects while terminating; data
                    // on existing connections still flows.
                    if self.terminating && matches!(m, Msg::Listen { .. } | Msg::Connect { .. }) {
                        return;
                    }
                    let now = ctx.now().as_nanos();
                    if self.repl.logging() {
                        match &m {
                            Msg::Listen { port, app } => self.repl.record(InputRec::Listen {
                                port: *port,
                                app: *app,
                            }),
                            Msg::Connect { remote, app, token } => {
                                self.repl.record(InputRec::Connect {
                                    remote: *remote,
                                    app: *app,
                                    token: *token,
                                    now,
                                })
                            }
                            Msg::ConnSend { sock, data } => self.repl.record(InputRec::Send {
                                sock: *sock,
                                data: data.clone(),
                            }),
                            Msg::ConnClose { sock } => {
                                self.repl.record(InputRec::Close { sock: *sock, now })
                            }
                            Msg::SetSockOpt { sock, opt } => self.repl.record(InputRec::SetOpt {
                                sock: *sock,
                                opt: *opt,
                            }),
                            _ => {}
                        }
                    }
                    let ops = self.sock.handle_app(from, m, now);
                    ctx.charge(ops as u64 * calibration::SOCK_OP);
                    self.flush(ctx);
                }
                Msg::SetBuddy { buddy } => {
                    self.repl.set_buddy(&mut self.sock, buddy);
                    // Re-baseline immediately so the buddy's store starts
                    // complete.
                    self.flush(ctx);
                }
                Msg::ReplDelta { queue: _, payload } => {
                    ctx.charge(calibration::SOCK_OP);
                    self.repl.apply_delta(from, payload);
                }
                Msg::ReplHandoff { queue: _, old, to } => {
                    let flows = self.repl.take_flows_for(old);
                    ctx.charge(calibration::SOCK_OP);
                    ctx.send(to, Msg::ReplRestore { old, flows });
                }
                Msg::ReplRestore { old, flows } => {
                    let me = ctx.self_id;
                    ctx.charge(flows.len() as u64 * calibration::TCP_OPEN);
                    let restored = self.sock.restore_flows(me, old, flows);
                    neat_obs::counter_add("repl.flows_restored", restored.len() as u64);
                    ctx.send(
                        self.supervisor,
                        Msg::ReplRestored {
                            queue: self.queue,
                            flows: restored,
                        },
                    );
                    self.flush(ctx);
                }
                Msg::MigrateOut { to } => {
                    let flows = self.sock.export_for_migration();
                    ctx.charge(flows.len() as u64 * calibration::TCP_CLOSE);
                    neat_obs::counter_add("repl.flows_migrated", flows.len() as u64);
                    ctx.send(
                        to,
                        Msg::ReplRestore {
                            old: ctx.self_id,
                            flows,
                        },
                    );
                    self.flush(ctx);
                }
                Msg::ReplForget { owner } => self.repl.forget(owner),
                Msg::UdpBind { port, app } => {
                    ctx.charge(calibration::SOCK_OP);
                    self.udp_binds.insert(port, app);
                }
                Msg::UdpTx {
                    src_port,
                    dst,
                    data,
                } => {
                    ctx.charge(calibration::UDP_PKT + calibration::IP_TX_PKT);
                    let now = ctx.now().as_nanos();
                    let dgram = UdpHeader::emit(src_port, dst.1, &data, self.io.ip, dst.0);
                    self.io.send_ip(dst.0, IpProtocol::Udp, &dgram, now);
                    self.flush(ctx);
                }
                Msg::Terminate => {
                    self.terminating = true;
                    self.supervisor = from;
                    self.flush(ctx);
                }
                Msg::SetNeighbor { role, pid } => match role {
                    crate::msg::NeighborRole::Driver => self.driver = pid,
                    crate::msg::NeighborRole::Supervisor => self.supervisor = pid,
                    _ => {}
                },
                Msg::Poison => ctx.crash_self(),
                _ => {}
            },
        }
    }
}
