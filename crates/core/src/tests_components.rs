//! Component-level tests: drive individual NEaT processes inside a
//! minimal simulation and observe their message behaviour directly
//! (the integration tests in `tests/` cover full deployments).

use crate::driver::DriverProc;
use crate::msg::{Msg, NeighborRole};
use crate::syscall::SyscallProc;
use neat_sim::{Ctx, Event, MachineSpec, ProcId, Process, Sim, SimConfig, Time};
use std::cell::RefCell;
use std::rc::Rc;

/// A probe process recording every message it receives.
struct Probe {
    log: Rc<RefCell<Vec<String>>>,
}

impl Probe {
    fn describe(msg: &Msg) -> String {
        match msg {
            Msg::NetRx(f) => format!("NetRx({})", f.len()),
            Msg::HostTx(f) => format!("HostTx({})", f.len()),
            Msg::RxFrame { queue, frame } => format!("RxFrame(q{queue},{})", frame.len()),
            Msg::Listen { port, .. } => format!("Listen({port})"),
            Msg::ListenOk { port } => format!("ListenOk({port})"),
            Msg::SysListenDone { port } => format!("SysListenDone({port})"),
            Msg::SysReply { token } => format!("SysReply({token})"),
            Msg::NicGrowQueues { n } => format!("NicGrowQueues({n})"),
            other => format!("{other:?}").chars().take(24).collect(),
        }
    }
}

impl Process<Msg> for Probe {
    fn name(&self) -> String {
        "probe".into()
    }
    fn on_event(&mut self, _ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        if let Event::Message { msg, .. } = ev {
            self.log.borrow_mut().push(Self::describe(&msg));
        }
    }
}

fn mini_sim() -> (Sim<Msg>, Vec<neat_sim::HwThreadId>) {
    let mut sim: Sim<Msg> = Sim::new(SimConfig::default());
    let m = sim.add_machine(MachineSpec::amd_opteron_6168());
    let threads = (0..6).map(|c| sim.hw_thread(m, c, 0)).collect();
    (sim, threads)
}

fn probe(sim: &mut Sim<Msg>, t: neat_sim::HwThreadId) -> (ProcId, Rc<RefCell<Vec<String>>>) {
    let log = Rc::new(RefCell::new(Vec::new()));
    let pid = sim.spawn(t, Box::new(Probe { log: log.clone() }));
    (pid, log)
}

#[test]
fn driver_forwards_rx_only_after_announce() {
    let (mut sim, th) = mini_sim();
    let (nic, _nic_log) = probe(&mut sim, th[0]);
    let (head, head_log) = probe(&mut sim, th[1]);
    let drv = sim.spawn(th[2], Box::new(DriverProc::new("drv", nic, 2)));
    sim.run_until(Time::from_micros(10));

    // Before the replica announces itself: frames are held (dropped).
    sim.send_external(
        drv,
        Msg::RxFrame {
            queue: 0,
            frame: vec![0; 60].into(),
        },
    );
    sim.run_until(Time::from_micros(50));
    assert!(
        head_log.borrow().is_empty(),
        "no forwarding before announce"
    );

    // Announce, then frames flow.
    sim.send_external(drv, Msg::Announce { queue: 0, head });
    sim.send_external(
        drv,
        Msg::RxFrame {
            queue: 0,
            frame: vec![0; 60].into(),
        },
    );
    sim.run_until(Time::from_micros(100));
    assert_eq!(head_log.borrow().as_slice(), ["NetRx(60)"]);
}

#[test]
fn driver_stops_forwarding_on_replica_down() {
    let (mut sim, th) = mini_sim();
    let (nic, _) = probe(&mut sim, th[0]);
    let (head, head_log) = probe(&mut sim, th[1]);
    let drv = sim.spawn(th[2], Box::new(DriverProc::new("drv", nic, 1)));
    sim.run_until(Time::from_micros(10));
    sim.send_external(drv, Msg::Announce { queue: 0, head });
    sim.send_external(
        drv,
        Msg::RxFrame {
            queue: 0,
            frame: vec![1; 60].into(),
        },
    );
    sim.run_until(Time::from_micros(50));
    assert_eq!(head_log.borrow().len(), 1);

    sim.send_external(drv, Msg::ReplicaDown { queue: 0 });
    sim.send_external(
        drv,
        Msg::RxFrame {
            queue: 0,
            frame: vec![2; 60].into(),
        },
    );
    sim.run_until(Time::from_micros(100));
    assert_eq!(
        head_log.borrow().len(),
        1,
        "recovery hold: no packets to a down replica (§3.6)"
    );
}

#[test]
fn driver_tx_path_reaches_nic() {
    let (mut sim, th) = mini_sim();
    let (nic, nic_log) = probe(&mut sim, th[0]);
    let drv = sim.spawn(th[2], Box::new(DriverProc::new("drv", nic, 1)));
    sim.run_until(Time::from_micros(10));
    sim.send_external(drv, Msg::NetTx(vec![9; 100].into()));
    sim.run_until(Time::from_micros(50));
    assert_eq!(nic_log.borrow().as_slice(), ["HostTx(100)"]);
}

#[test]
fn driver_forwards_control_plane_to_nic() {
    let (mut sim, th) = mini_sim();
    let (nic, nic_log) = probe(&mut sim, th[0]);
    let drv = sim.spawn(th[2], Box::new(DriverProc::new("drv", nic, 1)));
    sim.run_until(Time::from_micros(10));
    sim.send_external(drv, Msg::NicGrowQueues { n: 3 });
    sim.run_until(Time::from_micros(50));
    assert_eq!(nic_log.borrow().as_slice(), ["NicGrowQueues(3)"]);
}

#[test]
fn syscall_replicates_listen_across_replicas() {
    let (mut sim, th) = mini_sim();
    let (r1, r1_log) = probe(&mut sim, th[0]);
    let (r2, r2_log) = probe(&mut sim, th[1]);
    let (app, app_log) = probe(&mut sim, th[3]);
    let sys = sim.spawn(th[2], Box::new(SyscallProc::new("syscall", vec![r1, r2])));
    sim.run_until(Time::from_micros(10));

    sim.send_external(sys, Msg::SysListen { port: 80, app });
    sim.run_until(Time::from_micros(50));
    assert_eq!(r1_log.borrow().as_slice(), ["Listen(80)"]);
    assert_eq!(r2_log.borrow().as_slice(), ["Listen(80)"]);
    assert!(
        app_log.borrow().is_empty(),
        "not done until all subsockets ack"
    );

    // Both replicas acknowledge; only then does the app learn.
    sim.send_external(sys, Msg::ListenOk { port: 80 });
    sim.run_until(Time::from_micros(80));
    assert!(app_log.borrow().is_empty(), "one ack is not enough");
    sim.send_external(sys, Msg::ListenOk { port: 80 });
    sim.run_until(Time::from_micros(120));
    assert_eq!(app_log.borrow().as_slice(), ["SysListenDone(80)"]);
}

#[test]
fn syscall_tracks_replica_lifecycle() {
    let (mut sim, th) = mini_sim();
    let (r1, r1_log) = probe(&mut sim, th[0]);
    let (r2, r2_log) = probe(&mut sim, th[1]);
    let (app, _) = probe(&mut sim, th[3]);
    let sys = sim.spawn(th[2], Box::new(SyscallProc::new("syscall", vec![r1])));
    sim.run_until(Time::from_micros(10));

    // r1 is replaced by r2 (restart), then a new listen goes to r2 only.
    sim.send_external(sys, Msg::ReplicaRestarted { old: r1, new: r2 });
    sim.send_external(sys, Msg::SysListen { port: 81, app });
    sim.run_until(Time::from_micros(60));
    assert!(r1_log.borrow().is_empty());
    assert_eq!(r2_log.borrow().as_slice(), ["Listen(81)"]);
}

#[test]
fn syscall_slow_path_round_trip() {
    let (mut sim, th) = mini_sim();
    let (app, app_log) = probe(&mut sim, th[3]);
    let sys = sim.spawn(th[2], Box::new(SyscallProc::new("syscall", vec![])));
    sim.run_until(Time::from_micros(10));
    // SysCall's reply goes to the sender; simulate the app sending by
    // routing through the probe's pid as `from` via a forwarder.
    struct Caller {
        sys: ProcId,
        app: ProcId,
    }
    impl Process<Msg> for Caller {
        fn name(&self) -> String {
            "caller".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
            match ev {
                Event::Start => ctx.send(self.sys, Msg::SysCall { token: 7 }),
                Event::Message { msg, .. } => {
                    if let Msg::SysReply { token } = msg {
                        ctx.send(self.app, Msg::SysReply { token });
                    }
                }
                Event::Timer { .. } | Event::Batch { .. } => {}
            }
        }
    }
    sim.spawn(th[4], Box::new(Caller { sys, app }));
    sim.run_until(Time::from_micros(100));
    assert_eq!(app_log.borrow().as_slice(), ["SysReply(7)"]);
}

#[test]
fn nic_proc_serializes_and_links() {
    // A server NIC proc forwards wire frames to the driver with queue
    // steering, and transmits host frames to its peer with TSO.
    use crate::nic_proc::{default_server_nic, NicMode, NicProc};
    let (mut sim, th) = mini_sim();
    let (drv, drv_log) = probe(&mut sim, th[0]);
    let (peer, peer_log) = probe(&mut sim, th[1]);
    let m = sim.machine_of_thread(th[0]);
    let dev = sim.add_device_thread(m);
    let nic = sim.spawn(
        dev,
        Box::new(NicProc::new(
            "nic",
            default_server_nic(2),
            NicMode::Server { driver: drv },
        )),
    );
    sim.send_external(
        nic,
        Msg::SetNeighbor {
            role: NeighborRole::PeerNic,
            pid: peer,
        },
    );
    sim.run_until(Time::from_micros(10));

    // RX: a TCP frame gets steered and forwarded to the driver.
    let tcp = neat_net::TcpHeader::new(
        1234,
        80,
        neat_net::SeqNum(0),
        neat_net::SeqNum(0),
        neat_net::TcpFlags::SYN,
    )
    .emit(
        &[],
        std::net::Ipv4Addr::new(1, 1, 1, 1),
        std::net::Ipv4Addr::new(2, 2, 2, 2),
    );
    let ip = neat_net::Ipv4Header::new(
        std::net::Ipv4Addr::new(1, 1, 1, 1),
        std::net::Ipv4Addr::new(2, 2, 2, 2),
        neat_net::ipv4::IpProtocol::Tcp,
        tcp.len(),
    )
    .emit(&tcp);
    let frame = neat_net::EthernetFrame {
        dst: neat_net::MacAddr::local(1),
        src: neat_net::MacAddr::local(2),
        ethertype: neat_net::EtherType::Ipv4,
    }
    .emit(&ip);
    sim.send_external(nic, Msg::WireFrame(frame.clone().into()));
    sim.run_until(Time::from_micros(50));
    assert_eq!(drv_log.borrow().len(), 1);
    assert!(drv_log.borrow()[0].starts_with("RxFrame"));

    // TX: a host frame goes out to the peer NIC as a wire frame.
    sim.send_external(nic, Msg::HostTx(frame.into()));
    sim.run_until(Time::from_micros(100));
    assert_eq!(peer_log.borrow().len(), 1);
}

#[test]
fn loopback_connects_within_one_replica() {
    // §3.3: each replica implements its own loopback device. An app
    // connecting to the server's own IP is served without the NIC or
    // driver ever seeing a frame.
    use crate::sockets::{LibEvent, SocketLib};
    use crate::stack_single::SingleStackProc;

    struct LoopApp {
        lib: SocketLib,
        server_ip: std::net::Ipv4Addr,
        got: Rc<RefCell<Vec<u8>>>,
        fd: Option<u32>,
    }
    impl Process<Msg> for LoopApp {
        fn name(&self) -> String {
            "loop-app".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
            match ev {
                Event::Start => {
                    self.lib.listen(ctx, 7777).unwrap();
                }
                Event::Message { msg, .. } => {
                    for e in self.lib.handle(ctx, &msg) {
                        match e {
                            LibEvent::ListenReady { .. } => {
                                let fd = self.lib.connect(ctx, (self.server_ip, 7777)).unwrap();
                                self.fd = Some(fd);
                            }
                            LibEvent::Connected { fd } => {
                                self.lib
                                    .send(ctx, fd, b"over the loopback".to_vec())
                                    .unwrap();
                            }
                            LibEvent::Readable { fd } => {
                                // Server side of the same app pulls the bytes.
                                let data = self.lib.recv(ctx, fd).unwrap();
                                self.got.borrow_mut().extend_from_slice(&data);
                            }
                            _ => {}
                        }
                    }
                }
                Event::Timer { .. } | Event::Batch { .. } => {}
            }
        }
    }

    let (mut sim, th) = mini_sim();
    let (fake_driver, drv_log) = probe(&mut sim, th[0]);
    let ip = std::net::Ipv4Addr::new(192, 168, 69, 1);
    let stack = sim.spawn(
        th[1],
        Box::new(SingleStackProc::new(
            "neat.0",
            0,
            fake_driver,
            ProcId(0),
            ip,
            neat_net::MacAddr::local(1),
            &crate::config::NeatConfig {
                tcp: neat_tcp::TcpConfig::default(),
                ..crate::config::NeatConfig::single(1)
            },
            vec![],
        )),
    );
    let got = Rc::new(RefCell::new(Vec::new()));
    let lib = SocketLib::new(ProcId(0), vec![stack], None);
    sim.spawn(
        th[2],
        Box::new(LoopApp {
            lib,
            server_ip: ip,
            got: got.clone(),
            fd: None,
        }),
    );
    sim.run_until(Time::from_millis(50));
    assert_eq!(
        got.borrow().as_slice(),
        b"over the loopback",
        "data delivered through the replica's loopback"
    );
    // The driver saw the replica announce itself, but no data frames.
    assert!(
        drv_log.borrow().iter().all(|m| !m.starts_with("NetTx")),
        "loopback traffic must not reach the driver: {:?}",
        drv_log.borrow()
    );
}

#[test]
fn crashed_replica_fails_inflight_connects_without_leaking() {
    // §3.6 + the non-blocking API: a SYN sent to a replica that dies
    // before answering must surface `ConnectFailed(ReplicaLost)` and must
    // not leak its `pending_connect` token.
    use crate::sockets::{LibEvent, SockErr, SocketLib};

    struct App {
        lib: SocketLib,
        failures: Rc<RefCell<Vec<SockErr>>>,
        pending: Rc<RefCell<usize>>,
    }
    impl Process<Msg> for App {
        fn name(&self) -> String {
            "app".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
            match ev {
                Event::Start => {
                    self.lib
                        .connect(ctx, (std::net::Ipv4Addr::new(192, 168, 69, 1), 80))
                        .unwrap();
                    *self.pending.borrow_mut() = self.lib.pending_connects();
                }
                Event::Message { msg, .. } => {
                    for e in self.lib.handle(ctx, &msg) {
                        if let LibEvent::ConnectFailed { err, .. } = e {
                            self.failures.borrow_mut().push(err);
                        }
                    }
                    *self.pending.borrow_mut() = self.lib.pending_connects();
                }
                Event::Timer { .. } | Event::Batch { .. } => {}
            }
        }
    }

    let (mut sim, th) = mini_sim();
    // The replica swallows the Connect and never answers (it will "crash").
    let (replica, _) = probe(&mut sim, th[0]);
    let (replacement, _) = probe(&mut sim, th[1]);
    let failures = Rc::new(RefCell::new(Vec::new()));
    let pending = Rc::new(RefCell::new(0));
    let app = sim.spawn(
        th[2],
        Box::new(App {
            lib: SocketLib::new(ProcId(0), vec![replica], None),
            failures: failures.clone(),
            pending: pending.clone(),
        }),
    );
    sim.run_until(Time::from_micros(50));
    assert_eq!(*pending.borrow(), 1, "one connect in flight");

    // The supervisor reports the restart; the library reconciles.
    sim.send_external(
        app,
        Msg::ReplicaRestarted {
            old: replica,
            new: replacement,
        },
    );
    sim.run_until(Time::from_micros(100));
    assert_eq!(
        failures.borrow().as_slice(),
        &[SockErr::ReplicaLost],
        "in-flight connect surfaced as ReplicaLost"
    );
    assert_eq!(*pending.borrow(), 0, "pending_connect token reclaimed");
}
