//! The message vocabulary of the simulated NewtOS system.
//!
//! Every interaction between processes — frames on the wire, driver/replica
//! queues, the socket fast path between applications and stack replicas,
//! SYSCALL traffic, and supervisor control — is one of these messages.
//! There is deliberately no other channel: this enum *is* the attack
//! surface, the failure surface, and the performance surface of the system.

use neat_net::PktBuf;
use neat_sim::ProcId;
use std::net::Ipv4Addr;

/// A connection as the application library sees it: which stack replica
/// owns it and the socket id inside that replica. The POSIX library maps
/// file descriptors to these handles behind the scenes (§3.3: "the library
/// only translates between socket numbers and the internal communication
/// channels").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnHandle {
    /// The stack (TCP component) process owning the connection.
    pub stack: ProcId,
    /// Socket id within that stack instance.
    pub sock: neat_tcp::SocketId,
}

/// All inter-process messages.
#[derive(Debug)]
pub enum Msg {
    // ------------------------------------------------------------------
    // Wire and device plane
    // ------------------------------------------------------------------
    /// An Ethernet frame travelling on the link between the two NICs.
    WireFrame(PktBuf),
    /// NIC → driver: a received frame, already steered to a queue.
    RxFrame { queue: usize, frame: PktBuf },
    /// Driver → NIC: transmit this frame (NIC applies TSO).
    HostTx(PktBuf),
    /// Driver → NIC control plane: add an exact-match steering filter.
    NicAddFilter {
        flow: neat_net::FlowKey,
        queue: usize,
    },
    /// Driver → NIC control plane: queues accepting new flows (§3.4).
    NicSetAccepting { queue: usize, accepting: bool },
    /// Driver → NIC control plane: grow to `n` queue pairs (scale-up).
    NicGrowQueues { n: usize },
    /// Control plane: enable/disable the NIC's flow-tracking filters
    /// (ablation hook; always on in the paper's envisioned hardware).
    NicSetTracking { on: bool },

    // ------------------------------------------------------------------
    // Driver ↔ stack components
    // ------------------------------------------------------------------
    /// Driver → first stack component of a replica: an inbound frame.
    /// Carries a refcounted [`PktBuf`] handle, not a copy (§3.2: packets
    /// traverse the pipeline by reference through shared pools).
    NetRx(PktBuf),
    /// Stack component → driver: an outbound frame (same zero-copy handle
    /// discipline).
    NetTx(PktBuf),
    /// A (re)started replica announces itself to the driver: frames for
    /// `queue` may flow again (§3.6: the driver withholds packets until the
    /// recovering replica "announces itself again").
    Announce { queue: usize, head: ProcId },

    // ------------------------------------------------------------------
    // Multi-component pipeline (PF → IP → TCP/UDP)
    // ------------------------------------------------------------------
    /// Packet filter → IP: an accepted inbound frame.
    PfPass(PktBuf),
    /// IP → TCP: a validated TCP segment with the source address. The
    /// segment is a zero-copy window into the original frame buffer (the
    /// IP header is stripped by narrowing the handle, not by copying).
    IpRxTcp { src: Ipv4Addr, seg: PktBuf },
    /// IP → UDP: a validated UDP datagram (same windowed handle).
    IpRxUdp { src: Ipv4Addr, dgram: PktBuf },
    /// TCP/UDP → IP: emit this transport payload to `dst`.
    IpTx {
        dst: Ipv4Addr,
        protocol: u8,
        payload: Vec<u8>,
    },
    /// Supervisor → component: (re)wire a pipeline neighbour.
    SetNeighbor { role: NeighborRole, pid: ProcId },

    // ------------------------------------------------------------------
    // Socket fast path (application library ↔ stack replica), §3.2
    // ------------------------------------------------------------------
    /// App → replica: create a listening subsocket on `port`; deliver
    /// incoming connections to `app`.
    Listen { port: u16, app: ProcId },
    /// Replica → app: subsocket created.
    ListenOk { port: u16 },
    /// App → replica: active open to `remote` for `app`.
    Connect {
        remote: (Ipv4Addr, u16),
        app: ProcId,
        token: u64,
    },
    /// Replica → app: active open completed.
    ConnOpen { conn: ConnHandle, token: u64 },
    /// Replica → app: active open failed.
    ConnFailed { token: u64 },
    /// Replica → app: a new accepted connection on a listening port.
    Incoming { port: u16, conn: ConnHandle },
    /// App → replica: send bytes on a connection (shared-memory socket
    /// buffer write + notification).
    ConnSend {
        sock: neat_tcp::SocketId,
        data: Vec<u8>,
    },
    /// Replica → app: received bytes.
    ConnData { conn: ConnHandle, data: Vec<u8> },
    /// App → replica: close (graceful).
    ConnClose { sock: neat_tcp::SocketId },
    /// App → replica: apply a per-socket option (congestion algorithm,
    /// initial cwnd, receive-buffer size) to an open connection.
    SetSockOpt {
        sock: neat_tcp::SocketId,
        opt: neat_tcp::SockOpt,
    },
    /// Replica → app: the peer closed its direction (EOF after data).
    ConnEof { conn: ConnHandle },
    /// Replica → app: connection fully closed (or aborted).
    ConnClosed { conn: ConnHandle, aborted: bool },

    // ------------------------------------------------------------------
    // UDP socket plane (stateless datagram service)
    // ------------------------------------------------------------------
    /// App → replica (UDP component): bind a datagram port.
    UdpBind { port: u16, app: ProcId },
    /// App → replica: send a datagram.
    UdpTx {
        src_port: u16,
        dst: (Ipv4Addr, u16),
        data: Vec<u8>,
    },
    /// Replica → app: a datagram arrived on a bound port.
    UdpData {
        port: u16,
        src: (Ipv4Addr, u16),
        data: Vec<u8>,
    },

    // ------------------------------------------------------------------
    // SYSCALL server (slow path), §3.1
    // ------------------------------------------------------------------
    /// App → SYSCALL: replicate a listening socket across all replicas.
    SysListen { port: u16, app: ProcId },
    /// SYSCALL → app: all subsockets are in place.
    SysListenDone { port: u16 },
    /// App → SYSCALL: miscellaneous slow-path call (modelled load).
    SysCall { token: u64 },
    /// SYSCALL → app: slow-path reply.
    SysReply { token: u64 },

    // ------------------------------------------------------------------
    // Supervisor / reincarnation server, §3.6 & §3.4
    // ------------------------------------------------------------------
    /// Engine-generated crash notification (registered hook).
    Crashed { pid: ProcId, name: String },
    /// Supervisor → driver: replica for `queue` died; hold its packets.
    ReplicaDown { queue: usize },
    /// Supervisor → apps: a stack replica was restarted; connection
    /// handles on `old` are dead, `new` is the replacement.
    ReplicaRestarted { old: ProcId, new: ProcId },
    /// Supervisor → apps/syscall: a brand-new replica joined (scale-up).
    ReplicaAdded { stack: ProcId },
    /// Supervisor → apps/syscall: a replica was garbage-collected after
    /// draining (scale-down completed).
    ReplicaRemoved { stack: ProcId },
    /// App → supervisor: register for replica lifecycle notifications.
    RegisterApp { app: ProcId },
    /// Harness → supervisor: scale the stack up by one replica.
    ScaleUp,
    /// Harness → supervisor: scale down by one replica (lazy termination).
    ScaleDown,
    /// Replica → supervisor: my connection count dropped to zero while in
    /// termination state — garbage-collect me.
    Drained { queue: usize },
    /// Supervisor → replica: enter termination state (no new connections;
    /// exit when drained).
    Terminate,

    // ------------------------------------------------------------------
    // Buddy-replica flow replication & live migration (§3.6 extension)
    // ------------------------------------------------------------------
    /// Supervisor → stack replica: your checkpoint buddy is `buddy`
    /// (`None` disables streaming, e.g. when the ring shrinks to one).
    SetBuddy { buddy: Option<ProcId> },
    /// Stack replica → its buddy: one replication delta for `queue` —
    /// either TCB checkpoints or input-log records, per config.
    ReplDelta { queue: usize, payload: ReplPayload },
    /// Supervisor → buddy of a crashed replica: replica `old` serving
    /// `queue` died; send your latest copy of its flows to `to` (the
    /// freshly respawned head).
    ReplHandoff {
        queue: usize,
        old: ProcId,
        to: ProcId,
    },
    /// Buddy (failover) or victim (migration) → new owner: adopt these
    /// flows. `old` is the replica they lived in before.
    ReplRestore { old: ProcId, flows: Vec<ReplFlow> },
    /// New owner → supervisor: flows adopted; re-steer them to `queue`
    /// via exact-match NIC filters.
    ReplRestored {
        queue: usize,
        flows: Vec<neat_net::FlowKey>,
    },
    /// New owner → app: your connection moved. `old` is the dead (or
    /// migrated-from) handle, `new` the live one; `app_bytes` is how much
    /// of the app's stream the restored state has already seen, so the
    /// library can resend the tail that died in the old replica's buffers.
    ConnMigrated {
        old: ConnHandle,
        new: ConnHandle,
        app_bytes: u64,
    },
    /// Supervisor → terminating replica: don't just drain — actively hand
    /// your established flows to `to` (live migration for scale-down).
    MigrateOut { to: ProcId },
    /// Supervisor → a buddy: drop the store held for `owner` (it was
    /// removed in an orderly way, not crashed).
    ReplForget { owner: ProcId },

    // ------------------------------------------------------------------
    // Fault injection (Table 3)
    // ------------------------------------------------------------------
    /// Harness → any component: an injected fault activates — crash.
    Poison,

    // ------------------------------------------------------------------
    // Application-level control (used by the workload crates)
    // ------------------------------------------------------------------
    /// Generic app kick/timer payload for workload processes.
    AppTick { token: u64 },
}

/// One replicated flow: everything the adopting stack needs to resume the
/// connection and re-wire its app binding.
#[derive(Debug, Clone)]
pub struct ReplFlow {
    /// The 4-tuple (remote side as src — the demux/steering orientation).
    pub flow: neat_net::FlowKey,
    /// Socket id the flow had in its previous owner (the app's dead
    /// handle is `ConnHandle { stack: old, sock: old_sock }`).
    pub old_sock: neat_tcp::SocketId,
    /// The application process bound to the connection.
    pub owner: ProcId,
    /// Application stream bytes the checkpointed state had accepted from
    /// the app (drives the library's resend-tail on migration).
    pub app_bytes: u64,
    /// Encoded [`neat_tcp::TcbImage`].
    pub img: Vec<u8>,
}

/// The body of one replication delta.
#[derive(Debug, Clone)]
pub enum ReplPayload {
    /// TCB checkpoints: `flows` supersede the buddy's copies; `closed`
    /// flows are forgotten. `full` marks a from-scratch snapshot (buddy
    /// drops everything it held for this queue first).
    Checkpoint {
        full: bool,
        flows: Vec<ReplFlow>,
        closed: Vec<neat_net::FlowKey>,
    },
    /// Deterministic input-log records; the buddy replays them through a
    /// scratch stack when (and only when) state is actually needed.
    Log { recs: Vec<InputRec> },
}

/// One record of the deterministic input log (State-Compute Replication).
/// Replaying these through a fresh `SockServer` with the same config
/// reproduces the exact socket table, ids included, because id and ISS
/// allocation are deterministic counters.
#[derive(Debug, Clone)]
pub enum InputRec {
    /// Primary's allocation counters at buddy-assignment time, so the
    /// mirror's replayed socket ids / ISSs / ephemeral ports line up
    /// exactly with the primary's.
    SyncAlloc {
        next_id: u64,
        iss: u32,
        next_port: u16,
    },
    /// App opened a listener.
    Listen { port: u16, app: ProcId },
    /// App requested an active open.
    Connect {
        remote: (Ipv4Addr, u16),
        app: ProcId,
        token: u64,
        now: u64,
    },
    /// An inbound, already-parsed TCP segment (raw post-IP bytes).
    Seg {
        src: Ipv4Addr,
        bytes: Vec<u8>,
        now: u64,
    },
    /// App enqueued stream bytes.
    Send {
        sock: neat_tcp::SocketId,
        data: Vec<u8>,
    },
    /// App closed a connection.
    Close { sock: neat_tcp::SocketId, now: u64 },
    /// App set a per-socket option.
    SetOpt {
        sock: neat_tcp::SocketId,
        opt: neat_tcp::SockOpt,
    },
    /// End-of-flush boundary (wire output + event pump point).
    Flush { now: u64 },
    /// A timer tick fired.
    Timer { now: u64 },
}

/// Pipeline neighbour roles for multi-component rewiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborRole {
    /// The driver this component transmits through.
    Driver,
    /// The packet filter ahead of IP.
    PacketFilter,
    /// The IP component.
    Ip,
    /// The TCP component.
    Tcp,
    /// The UDP component.
    Udp,
    /// The NIC at the other end of the link (device wiring).
    PeerNic,
    /// The supervisor / reincarnation server.
    Supervisor,
}
