//! The packet-filter component of the multi-component replica (§3.7).
//!
//! First in the ingress pipeline: it is the process that announces the
//! replica to the driver, matches inbound frames against a (configurable)
//! rule set, and forwards accepted frames to the IP component. Essentially
//! stateless — a crash loses nothing but in-flight frames, so its recovery
//! is fully transparent (Table 3).

use crate::msg::{Msg, NeighborRole};
use neat_sim::{calibration, Ctx, Event, ProcId, Process};
use std::net::Ipv4Addr;

/// A filter rule: drop frames matching the source prefix + port.
#[derive(Debug, Clone, Copy)]
pub struct PfRule {
    pub src_prefix: Ipv4Addr,
    pub prefix_len: u8,
    /// Destination port to match; 0 matches any.
    pub dst_port: u16,
}

impl PfRule {
    fn matches(&self, src: Ipv4Addr, dst_port: u16) -> bool {
        let mask = if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix_len as u32)
        };
        let a = u32::from(src) & mask;
        let b = u32::from(self.src_prefix) & mask;
        a == b && (self.dst_port == 0 || self.dst_port == dst_port)
    }
}

/// The packet-filter process.
pub struct PfProc {
    pub name: String,
    pub queue: usize,
    driver: ProcId,
    ip: Option<ProcId>,
    rules: Vec<PfRule>,
    pub passed: u64,
    pub filtered: u64,
}

impl PfProc {
    pub fn new(
        name: impl Into<String>,
        queue: usize,
        driver: ProcId,
        ip: Option<ProcId>,
        rules: Vec<PfRule>,
    ) -> PfProc {
        PfProc {
            name: name.into(),
            queue,
            driver,
            ip,
            rules,
            passed: 0,
            filtered: 0,
        }
    }

    fn drops(&self, frame: &[u8]) -> bool {
        if self.rules.is_empty() {
            return false;
        }
        match neat_nic::Steering::parse_flow(frame) {
            Some(f) => self
                .rules
                .iter()
                .any(|r| r.matches(f.key.src, f.key.dst_port)),
            None => false, // non-IP (ARP) always passes
        }
    }
}

impl Process<Msg> for PfProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            // Delivered via `on_batch` in practice; unroll defensively if a
            // batch ever reaches the scalar path.
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
            Event::Start => {
                ctx.send(
                    self.driver,
                    Msg::Announce {
                        queue: self.queue,
                        head: ctx.self_id,
                    },
                );
            }
            Event::Timer { .. } => {}
            Event::Message { msg, .. } => match msg {
                Msg::NetRx(frame) => {
                    ctx.charge(calibration::PF_PKT);
                    if self.drops(&frame) {
                        self.filtered += 1;
                        return;
                    }
                    self.passed += 1;
                    if let Some(ip) = self.ip {
                        ctx.send(ip, Msg::PfPass(frame));
                    }
                }
                Msg::SetNeighbor { role, pid } => match role {
                    NeighborRole::Ip => self.ip = Some(pid),
                    NeighborRole::Driver => self.driver = pid,
                    _ => {}
                },
                Msg::Poison => ctx.crash_self(),
                _ => {}
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_matching_prefixes() {
        let r = PfRule {
            src_prefix: Ipv4Addr::new(10, 1, 0, 0),
            prefix_len: 16,
            dst_port: 0,
        };
        assert!(r.matches(Ipv4Addr::new(10, 1, 2, 3), 80));
        assert!(!r.matches(Ipv4Addr::new(10, 2, 2, 3), 80));
        let rp = PfRule {
            src_prefix: Ipv4Addr::new(0, 0, 0, 0),
            prefix_len: 0,
            dst_port: 22,
        };
        assert!(rp.matches(Ipv4Addr::new(1, 2, 3, 4), 22));
        assert!(!rp.matches(Ipv4Addr::new(1, 2, 3, 4), 80));
    }
}
