//! The UDP component of the multi-component replica (§3.7).
//!
//! "Excluding TCP, the other components are essentially stateless (or
//! pseudostateless)" — UDP keeps only the bind table, which applications
//! re-establish after a restart, so recovery is transparent (Table 3).

use crate::msg::{Msg, NeighborRole};
use neat_net::udp::UdpHeader;
use neat_sim::{calibration, Ctx, Event, ProcId, Process};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The UDP process.
pub struct UdpProc {
    pub name: String,
    pub queue: usize,
    ip_comp: Option<ProcId>,
    local_ip: Ipv4Addr,
    binds: HashMap<u16, ProcId>,
    pub rx_datagrams: u64,
    pub unreachable_sent: u64,
}

impl UdpProc {
    pub fn new(
        name: impl Into<String>,
        queue: usize,
        ip_comp: Option<ProcId>,
        local_ip: Ipv4Addr,
    ) -> UdpProc {
        UdpProc {
            name: name.into(),
            queue,
            ip_comp,
            local_ip,
            binds: HashMap::new(),
            rx_datagrams: 0,
            unreachable_sent: 0,
        }
    }
}

impl Process<Msg> for UdpProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        let Event::Message { msg, .. } = ev else {
            return;
        };
        match msg {
            Msg::IpRxUdp { src, dgram } => {
                ctx.charge(calibration::UDP_PKT);
                self.rx_datagrams += 1;
                let Ok((h, range)) = UdpHeader::parse(&dgram, src, self.local_ip) else {
                    return;
                };
                match self.binds.get(&h.dst_port).copied() {
                    Some(app) => {
                        ctx.send(
                            app,
                            Msg::UdpData {
                                port: h.dst_port,
                                src: (src, h.src_port),
                                data: dgram[range].to_vec(),
                            },
                        );
                    }
                    None => {
                        self.unreachable_sent += 1;
                        let orig: Vec<u8> = dgram.iter().take(28).copied().collect();
                        let icmp = neat_net::icmp::IcmpMessage::DestUnreachable {
                            code: neat_net::icmp::PORT_UNREACHABLE,
                            original: orig,
                        };
                        if let Some(ip) = self.ip_comp {
                            ctx.send(
                                ip,
                                Msg::IpTx {
                                    dst: src,
                                    protocol: 1,
                                    payload: icmp.emit(),
                                },
                            );
                        }
                    }
                }
            }
            Msg::UdpBind { port, app } => {
                ctx.charge(calibration::SOCK_OP);
                self.binds.insert(port, app);
            }
            Msg::UdpTx {
                src_port,
                dst,
                data,
            } => {
                ctx.charge(calibration::UDP_PKT);
                let dgram = UdpHeader::emit(src_port, dst.1, &data, self.local_ip, dst.0);
                if let Some(ip) = self.ip_comp {
                    ctx.send(
                        ip,
                        Msg::IpTx {
                            dst: dst.0,
                            protocol: 17,
                            payload: dgram,
                        },
                    );
                }
            }
            Msg::SetNeighbor {
                role: NeighborRole::Ip,
                pid,
            } => {
                self.ip_comp = Some(pid);
            }
            Msg::Poison => ctx.crash_self(),
            _ => {}
        }
    }
}
