//! The application-side POSIX socket library (§3.2–§3.3).
//!
//! Embedded in every application process, this is the layer that makes
//! replication invisible: applications deal in file descriptors; the
//! library maps them to `(replica, socket)` handles, replicates listeners
//! via the SYSCALL server, picks a *random* replica for every active open
//! (the load-balancing-cum-security property of §3.8), and heals its
//! bookkeeping when the supervisor reports replica restarts.

use crate::msg::{ConnHandle, Msg};
use neat_sim::{Ctx, ProcId};
use std::collections::HashMap;

/// An application-level file descriptor.
pub type Fd = u32;

/// Events the library surfaces to application logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibEvent {
    /// `listen()` completed on all replicas.
    ListenReady { port: u16 },
    /// A connection was accepted on a listening port.
    Accepted { fd: Fd, port: u16 },
    /// An active open completed.
    Connected { fd: Fd },
    /// An active open failed.
    ConnectFailed { fd: Fd },
    /// Data arrived.
    Data { fd: Fd, data: Vec<u8> },
    /// Peer closed its direction (EOF).
    Eof { fd: Fd },
    /// Fully closed (`aborted` covers RST/timeout/replica loss).
    Closed { fd: Fd, aborted: bool },
}

/// Per-process socket library state.
#[derive(Debug)]
pub struct SocketLib {
    syscall: ProcId,
    supervisor: Option<ProcId>,
    /// Socket-owning heads of the live replicas.
    replicas: Vec<ProcId>,
    listen_ports: Vec<u16>,
    conn_of: HashMap<Fd, ConnHandle>,
    fd_of: HashMap<ConnHandle, Fd>,
    next_fd: Fd,
    next_token: u64,
    pending_connect: HashMap<u64, Fd>,
    /// Connections lost to replica crashes (reliability accounting).
    pub lost_to_crash: u64,
    registered: bool,
    /// When set, all per-connection operations route to this process
    /// instead of the handle's owner (the monolith's "syscalls run on the
    /// caller's core" semantics).
    route_override: Option<ProcId>,
}

impl SocketLib {
    pub fn new(syscall: ProcId, replicas: Vec<ProcId>, supervisor: Option<ProcId>) -> SocketLib {
        SocketLib {
            syscall,
            supervisor,
            replicas,
            listen_ports: Vec::new(),
            conn_of: HashMap::new(),
            fd_of: HashMap::new(),
            next_fd: 3, // 0..2 are stdio, of course
            next_token: 1,
            pending_connect: HashMap::new(),
            lost_to_crash: 0,
            registered: false,
            route_override: None,
        }
    }

    /// Route all connection operations through `pid` (monolith mode: the
    /// kernel context on the application's own core).
    pub fn set_route(&mut self, pid: ProcId) {
        self.route_override = Some(pid);
    }

    /// Register with the supervisor for lifecycle notifications. Call once
    /// from the process's `Start` handler.
    pub fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.registered {
            self.registered = true;
            if let Some(sup) = self.supervisor {
                ctx.send(sup, Msg::RegisterApp { app: ctx.self_id });
            }
        }
    }

    /// POSIX `listen()`: replicate across all stack replicas via SYSCALL.
    /// With `syscall == ProcId(0)` (monolith mode) the listen goes straight
    /// to the kernel context instead.
    pub fn listen(&mut self, ctx: &mut Ctx<'_, Msg>, port: u16) {
        ctx.charge(neat_sim::calibration::SYSCALL_CLIENT);
        self.listen_ports.push(port);
        if self.syscall == ProcId(0) {
            for r in self.replicas.clone() {
                ctx.send(
                    r,
                    Msg::Listen {
                        port,
                        app: ctx.self_id,
                    },
                );
            }
        } else {
            ctx.send(
                self.syscall,
                Msg::SysListen {
                    port,
                    app: ctx.self_id,
                },
            );
        }
    }

    /// POSIX `connect()`: bind a fresh fd to a *randomly chosen* replica
    /// (§3.8: "binding each connection to a random replica").
    pub fn connect(&mut self, ctx: &mut Ctx<'_, Msg>, remote: (std::net::Ipv4Addr, u16)) -> Fd {
        let fd = self.alloc_fd();
        let token = self.next_token;
        self.next_token += 1;
        self.pending_connect.insert(token, fd);
        let idx = ctx.rng().gen_range(0..self.replicas.len());
        let replica = self.replicas[idx];
        ctx.send(
            replica,
            Msg::Connect {
                remote,
                app: ctx.self_id,
                token,
            },
        );
        fd
    }

    /// POSIX `write()` on a connection fd.
    pub fn send(&mut self, ctx: &mut Ctx<'_, Msg>, fd: Fd, data: Vec<u8>) -> bool {
        let Some(conn) = self.conn_of.get(&fd) else {
            return false;
        };
        ctx.charge(neat_sim::calibration::copy_cost(data.len()));
        let to = self.route_override.unwrap_or(conn.stack);
        ctx.send(
            to,
            Msg::ConnSend {
                sock: conn.sock,
                data,
            },
        );
        true
    }

    /// POSIX `close()` on a connection fd.
    pub fn close(&mut self, ctx: &mut Ctx<'_, Msg>, fd: Fd) {
        if let Some(conn) = self.conn_of.get(&fd) {
            let to = self.route_override.unwrap_or(conn.stack);
            ctx.send(to, Msg::ConnClose { sock: conn.sock });
        }
    }

    fn alloc_fd(&mut self) -> Fd {
        let fd = self.next_fd;
        self.next_fd += 1;
        fd
    }

    fn bind(&mut self, conn: ConnHandle, fd: Fd) {
        self.conn_of.insert(fd, conn);
        self.fd_of.insert(conn, fd);
    }

    fn unbind(&mut self, conn: &ConnHandle) -> Option<Fd> {
        let fd = self.fd_of.remove(conn)?;
        self.conn_of.remove(&fd);
        Some(fd)
    }

    pub fn open_conns(&self) -> usize {
        self.conn_of.len()
    }

    pub fn replica_of(&self, fd: Fd) -> Option<ProcId> {
        self.conn_of.get(&fd).map(|c| c.stack)
    }

    /// Translate one inbound message into library events. Unrecognized
    /// messages yield no events (the app handles them itself).
    pub fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: &Msg) -> Vec<LibEvent> {
        match msg {
            Msg::SysListenDone { port } => vec![LibEvent::ListenReady { port: *port }],
            Msg::ListenOk { port } if self.syscall == ProcId(0) => {
                vec![LibEvent::ListenReady { port: *port }]
            }
            Msg::Incoming { port, conn } => {
                let fd = self.alloc_fd();
                self.bind(*conn, fd);
                vec![LibEvent::Accepted { fd, port: *port }]
            }
            Msg::ConnOpen { conn, token } => match self.pending_connect.remove(token) {
                Some(fd) => {
                    self.bind(*conn, fd);
                    vec![LibEvent::Connected { fd }]
                }
                None => vec![],
            },
            Msg::ConnFailed { token } => match self.pending_connect.remove(token) {
                Some(fd) => vec![LibEvent::ConnectFailed { fd }],
                None => vec![],
            },
            Msg::ConnData { conn, data } => match self.fd_of.get(conn) {
                Some(&fd) => vec![LibEvent::Data {
                    fd,
                    data: data.clone(),
                }],
                None => vec![],
            },
            Msg::ConnEof { conn } => match self.fd_of.get(conn) {
                Some(&fd) => vec![LibEvent::Eof { fd }],
                None => vec![],
            },
            Msg::ConnClosed { conn, aborted } => match self.unbind(conn) {
                Some(fd) => vec![LibEvent::Closed {
                    fd,
                    aborted: *aborted,
                }],
                None => vec![],
            },
            Msg::ReplicaRestarted { old, new } => {
                // All handles on the dead replica are gone — stateless
                // recovery (§3.6). Surface each as an aborted close.
                let dead: Vec<ConnHandle> = self
                    .fd_of
                    .keys()
                    .filter(|c| c.stack == *old)
                    .copied()
                    .collect();
                let mut evs = Vec::new();
                for conn in dead {
                    if let Some(fd) = self.unbind(&conn) {
                        self.lost_to_crash += 1;
                        evs.push(LibEvent::Closed { fd, aborted: true });
                    }
                }
                for r in &mut self.replicas {
                    if *r == *old {
                        *r = *new;
                    }
                }
                // Re-establish listening subsockets on the new replica.
                for port in self.listen_ports.clone() {
                    ctx.send(
                        *new,
                        Msg::Listen {
                            port,
                            app: ctx.self_id,
                        },
                    );
                }
                evs
            }
            Msg::ReplicaAdded { stack } => {
                self.replicas.push(*stack);
                for port in self.listen_ports.clone() {
                    ctx.send(
                        *stack,
                        Msg::Listen {
                            port,
                            app: ctx.self_id,
                        },
                    );
                }
                vec![]
            }
            Msg::ReplicaRemoved { stack } => {
                self.replicas.retain(|r| r != stack);
                vec![]
            }
            _ => vec![],
        }
    }
}
