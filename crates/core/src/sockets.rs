//! The application-side POSIX socket library (§3.2–§3.3).
//!
//! Embedded in every application process, this is the layer that makes
//! replication invisible: applications deal in file descriptors; the
//! library maps them to `(replica, socket)` handles, replicates listeners
//! via the SYSCALL server, picks a *random* replica for every active open
//! (the load-balancing-cum-security property of §3.8), and heals its
//! bookkeeping when the supervisor reports replica restarts.
//!
//! The API is errno-shaped: every fallible operation returns
//! `Result<_, SockErr>`, and readiness is queried through the unified
//! non-blocking `poll(fd) -> Readiness` surface shared with
//! [`neat_tcp::TcpStack::poll`]. Incoming bytes are buffered per fd and
//! pulled with [`SocketLib::recv`] — [`LibEvent`] is only the wakeup
//! channel, it never carries payload.

use crate::msg::{ConnHandle, Msg};
use neat_sim::{Ctx, ProcId};
use std::collections::{HashMap, HashSet, VecDeque};

pub use neat_tcp::Readiness;
pub use neat_tcp::{SockOpt, SockOptKind};

/// An application-level file descriptor.
pub type Fd = u32;

/// Errno-like error type for every socket-library operation. `TcpError`
/// from the in-stack engine maps into this at the stack boundary so
/// applications see exactly one error vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockErr {
    /// The operation cannot make progress now (no data, no buffer room).
    WouldBlock,
    /// The fd is unknown or not (yet) bound to a connection.
    NotConnected,
    /// The connection was reset/aborted by the peer or the stack.
    ConnReset,
    /// The remote end refused the connection.
    ConnRefused,
    /// The replica owning the socket crashed with the operation in flight.
    ReplicaLost,
    /// The local address/port is already in use.
    AddrInUse,
    /// No ephemeral ports left.
    NoPorts,
    /// The operation is invalid in the socket's current state.
    BadState,
    /// The connection timed out (retransmission limit).
    TimedOut,
    /// The stack's connection-memory budget is exhausted (ENOMEM/ENOBUFS).
    NoMemory,
}

impl From<neat_tcp::TcpError> for SockErr {
    fn from(e: neat_tcp::TcpError) -> SockErr {
        use neat_tcp::TcpError as T;
        match e {
            T::NoSocket => SockErr::NotConnected,
            T::BadState => SockErr::BadState,
            T::AddrInUse => SockErr::AddrInUse,
            T::NoPorts => SockErr::NoPorts,
            T::WouldBlock => SockErr::WouldBlock,
            T::Reset => SockErr::ConnReset,
            T::TimedOut => SockErr::TimedOut,
            T::NoMemory => SockErr::NoMemory,
        }
    }
}

impl std::fmt::Display for SockErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for SockErr {}

/// Events the library surfaces to application logic. Pure notifications:
/// data itself is pulled with [`SocketLib::recv`] after a `Readable`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibEvent {
    /// `listen()` completed on all replicas.
    ListenReady { port: u16 },
    /// A connection was accepted on a listening port.
    Accepted { fd: Fd, port: u16 },
    /// An active open completed.
    Connected { fd: Fd },
    /// An active open failed (`ReplicaLost` when the chosen replica
    /// crashed between SYN and completion).
    ConnectFailed { fd: Fd, err: SockErr },
    /// Readiness changed: poll the fd and drain it with `recv`.
    Readable { fd: Fd },
    /// Fully closed. `err` is `None` for a clean close, `ConnReset` for
    /// RST/timeout, `ReplicaLost` when the owning replica crashed.
    Closed { fd: Fd, err: Option<SockErr> },
}

/// Per-fd receive-side state: bytes delivered by the stack but not yet
/// pulled by the application, plus the EOF latch.
#[derive(Debug, Default)]
struct RxState {
    buf: VecDeque<u8>,
    eof: bool,
}

/// Retained tail of recently written bytes, kept per fd so a migrated
/// connection can resend whatever the old replica accepted after its last
/// replication checkpoint (the `app_bytes` gap in [`Msg::ConnMigrated`]).
const TX_TAIL_CAP: usize = 64 * 1024;

/// Per-fd transmit-side bookkeeping for transparent migration.
#[derive(Debug, Default)]
struct TxState {
    /// Total bytes ever written on this fd.
    sent_total: u64,
    /// The last up-to-[`TX_TAIL_CAP`] of those bytes.
    tail: VecDeque<u8>,
}

/// Per-process socket library state.
#[derive(Debug)]
pub struct SocketLib {
    syscall: ProcId,
    supervisor: Option<ProcId>,
    /// Socket-owning heads of the live replicas.
    replicas: Vec<ProcId>,
    listen_ports: Vec<u16>,
    conn_of: HashMap<Fd, ConnHandle>,
    fd_of: HashMap<ConnHandle, Fd>,
    rx: HashMap<Fd, RxState>,
    tx: HashMap<Fd, TxState>,
    /// Stacks reported dead by the supervisor. In-flight messages from
    /// them (e.g. an `Incoming` racing the crash report) must not bind a
    /// fresh fd to a handle that can never carry data again.
    dead_stacks: HashSet<ProcId>,
    next_fd: Fd,
    next_token: u64,
    /// In-flight active opens: token → (fd, chosen replica). Recording the
    /// replica is what lets a crash between SYN and `Connected` be
    /// reconciled against the supervisor's restart report instead of
    /// leaking the entry forever.
    pending_connect: HashMap<u64, (Fd, ProcId)>,
    /// Last-set per-fd socket options: the library-side shadow `get_opt`
    /// answers from, and the flush source when an option is set while the
    /// `connect()` is still in flight (applied as soon as the fd binds).
    opts: HashMap<Fd, Vec<SockOpt>>,
    /// Connections lost to replica crashes (reliability accounting).
    pub lost_to_crash: u64,
    registered: bool,
    /// When set, all per-connection operations route to this process
    /// instead of the handle's owner (the monolith's "syscalls run on the
    /// caller's core" semantics).
    route_override: Option<ProcId>,
}

impl SocketLib {
    pub fn new(syscall: ProcId, replicas: Vec<ProcId>, supervisor: Option<ProcId>) -> SocketLib {
        SocketLib {
            syscall,
            supervisor,
            replicas,
            listen_ports: Vec::new(),
            conn_of: HashMap::new(),
            fd_of: HashMap::new(),
            rx: HashMap::new(),
            tx: HashMap::new(),
            dead_stacks: HashSet::new(),
            next_fd: 3, // 0..2 are stdio, of course
            next_token: 1,
            pending_connect: HashMap::new(),
            opts: HashMap::new(),
            lost_to_crash: 0,
            registered: false,
            route_override: None,
        }
    }

    /// Route all connection operations through `pid` (monolith mode: the
    /// kernel context on the application's own core).
    pub fn set_route(&mut self, pid: ProcId) {
        self.route_override = Some(pid);
    }

    /// Register with the supervisor for lifecycle notifications. Call once
    /// from the process's `Start` handler.
    pub fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.registered {
            self.registered = true;
            if let Some(sup) = self.supervisor {
                ctx.send(sup, Msg::RegisterApp { app: ctx.self_id });
            }
        }
    }

    /// POSIX `listen()`: replicate across all stack replicas via SYSCALL.
    /// With `syscall == ProcId(0)` (monolith mode) the listen goes straight
    /// to the kernel context instead.
    pub fn listen(&mut self, ctx: &mut Ctx<'_, Msg>, port: u16) -> Result<(), SockErr> {
        if self.listen_ports.contains(&port) {
            return Err(SockErr::AddrInUse);
        }
        ctx.charge(neat_sim::calibration::SYSCALL_CLIENT);
        self.listen_ports.push(port);
        if self.syscall == ProcId(0) {
            for r in self.replicas.clone() {
                ctx.send(
                    r,
                    Msg::Listen {
                        port,
                        app: ctx.self_id,
                    },
                );
            }
        } else {
            ctx.send(
                self.syscall,
                Msg::SysListen {
                    port,
                    app: ctx.self_id,
                },
            );
        }
        Ok(())
    }

    /// POSIX `connect()`: bind a fresh fd to a *randomly chosen* replica
    /// (§3.8: "binding each connection to a random replica").
    pub fn connect(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        remote: (std::net::Ipv4Addr, u16),
    ) -> Result<Fd, SockErr> {
        if self.replicas.is_empty() {
            return Err(SockErr::NotConnected);
        }
        let fd = self.alloc_fd();
        let token = self.next_token;
        self.next_token += 1;
        let idx = ctx.rng().gen_range(0..self.replicas.len());
        let replica = self.replicas[idx];
        self.pending_connect.insert(token, (fd, replica));
        ctx.send(
            replica,
            Msg::Connect {
                remote,
                app: ctx.self_id,
                token,
            },
        );
        Ok(fd)
    }

    /// POSIX `write()` on a connection fd. Returns the bytes queued.
    pub fn send(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        fd: Fd,
        data: Vec<u8>,
    ) -> Result<usize, SockErr> {
        let Some(conn) = self.conn_of.get(&fd) else {
            return Err(SockErr::NotConnected);
        };
        let len = data.len();
        ctx.charge(neat_sim::calibration::copy_cost(len));
        let to = self.route_override.unwrap_or(conn.stack);
        let tx = self.tx.entry(fd).or_default();
        tx.sent_total += len as u64;
        tx.tail.extend(data.iter().copied());
        while tx.tail.len() > TX_TAIL_CAP {
            tx.tail.pop_front();
        }
        ctx.send(
            to,
            Msg::ConnSend {
                sock: conn.sock,
                data,
            },
        );
        Ok(len)
    }

    /// POSIX `close()` on a connection fd.
    pub fn close(&mut self, ctx: &mut Ctx<'_, Msg>, fd: Fd) -> Result<(), SockErr> {
        let Some(conn) = self.conn_of.get(&fd) else {
            return Err(SockErr::NotConnected);
        };
        let to = self.route_override.unwrap_or(conn.stack);
        ctx.send(to, Msg::ConnClose { sock: conn.sock });
        Ok(())
    }

    /// POSIX `setsockopt()` on a connection fd: select the congestion
    /// algorithm, override the initial cwnd, or resize the receive
    /// buffer. Options set while the `connect()` is still in flight are
    /// buffered and applied the moment the fd binds; on a bound fd the
    /// option reaches the owning replica immediately.
    pub fn set_opt(&mut self, ctx: &mut Ctx<'_, Msg>, fd: Fd, opt: SockOpt) -> Result<(), SockErr> {
        let bound = self.conn_of.contains_key(&fd);
        let pending = self.pending_connect.values().any(|&(pfd, _)| pfd == fd);
        if !bound && !pending {
            return Err(SockErr::NotConnected);
        }
        let shadow = self.opts.entry(fd).or_default();
        match shadow.iter_mut().find(|o| o.kind() == opt.kind()) {
            Some(slot) => *slot = opt,
            None => shadow.push(opt),
        }
        if let Some(conn) = self.conn_of.get(&fd) {
            let to = self.route_override.unwrap_or(conn.stack);
            ctx.send(
                to,
                Msg::SetSockOpt {
                    sock: conn.sock,
                    opt,
                },
            );
        }
        Ok(())
    }

    /// POSIX `getsockopt()`: read back the last value set on this fd.
    /// Answers from the library-side shadow (no slow-path round trip);
    /// `None` means the option was never set here, i.e. the stack default
    /// applies.
    pub fn get_opt(&self, fd: Fd, kind: SockOptKind) -> Option<SockOpt> {
        self.opts
            .get(&fd)?
            .iter()
            .copied()
            .find(|o| o.kind() == kind)
    }

    /// Flush options set before the fd was bound to its connection.
    fn flush_opts(&mut self, ctx: &mut Ctx<'_, Msg>, fd: Fd) {
        let Some(conn) = self.conn_of.get(&fd) else {
            return;
        };
        let to = self.route_override.unwrap_or(conn.stack);
        let sock = conn.sock;
        for &opt in self.opts.get(&fd).into_iter().flatten() {
            ctx.send(to, Msg::SetSockOpt { sock, opt });
        }
    }

    /// Unified non-blocking readiness query. Mirrors `poll(2)` semantics:
    /// `readable` is also set at EOF so the reader observes it via `recv`.
    pub fn poll(&self, fd: Fd) -> Readiness {
        let bound = self.conn_of.contains_key(&fd);
        match self.rx.get(&fd) {
            Some(st) => Readiness {
                readable: !st.buf.is_empty() || st.eof,
                writable: bound,
                hup: st.eof || !bound,
            },
            None => Readiness {
                readable: false,
                writable: bound,
                hup: !bound,
            },
        }
    }

    /// Non-blocking read: drain everything buffered for `fd`. `Ok` with an
    /// empty vec means EOF; `Err(WouldBlock)` means no data yet.
    pub fn recv(&mut self, ctx: &mut Ctx<'_, Msg>, fd: Fd) -> Result<Vec<u8>, SockErr> {
        if !self.conn_of.contains_key(&fd) && !self.rx.contains_key(&fd) {
            return Err(SockErr::NotConnected);
        }
        let st = self.rx.entry(fd).or_default();
        if st.buf.is_empty() {
            return if st.eof {
                Ok(Vec::new()) // EOF, like read() == 0
            } else {
                Err(SockErr::WouldBlock)
            };
        }
        let data: Vec<u8> = std::mem::take(&mut st.buf).into();
        // The app-side copy out of the stack's buffers is the one copy the
        // zero-copy frame plane cannot elide.
        ctx.charge(neat_sim::calibration::copy_cost(data.len()));
        Ok(data)
    }

    fn alloc_fd(&mut self) -> Fd {
        let fd = self.next_fd;
        self.next_fd += 1;
        fd
    }

    fn bind(&mut self, conn: ConnHandle, fd: Fd) {
        self.conn_of.insert(fd, conn);
        self.fd_of.insert(conn, fd);
    }

    fn unbind(&mut self, conn: &ConnHandle) -> Option<Fd> {
        let fd = self.fd_of.remove(conn)?;
        self.conn_of.remove(&fd);
        self.rx.remove(&fd);
        self.tx.remove(&fd);
        self.opts.remove(&fd);
        Some(fd)
    }

    pub fn open_conns(&self) -> usize {
        self.conn_of.len()
    }

    pub fn replica_of(&self, fd: Fd) -> Option<ProcId> {
        self.conn_of.get(&fd).map(|c| c.stack)
    }

    /// In-flight `connect()`s that have not completed yet (diagnostics;
    /// the crash-reconciliation tests assert this drains).
    pub fn pending_connects(&self) -> usize {
        self.pending_connect.len()
    }

    /// Translate one inbound message into library events. Unrecognized
    /// messages yield no events (the app handles them itself).
    pub fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: &Msg) -> Vec<LibEvent> {
        match msg {
            Msg::SysListenDone { port } => vec![LibEvent::ListenReady { port: *port }],
            Msg::ListenOk { port } if self.syscall == ProcId(0) => {
                vec![LibEvent::ListenReady { port: *port }]
            }
            Msg::Incoming { port, conn } => {
                if self.dead_stacks.contains(&conn.stack) {
                    // The accept raced the owning replica's crash report:
                    // binding it would leak an fd that can never progress.
                    return vec![];
                }
                let fd = self.alloc_fd();
                self.bind(*conn, fd);
                vec![LibEvent::Accepted { fd, port: *port }]
            }
            Msg::ConnOpen { conn, token } => match self.pending_connect.remove(token) {
                Some((fd, _)) => {
                    self.bind(*conn, fd);
                    self.flush_opts(ctx, fd);
                    vec![LibEvent::Connected { fd }]
                }
                None => vec![],
            },
            Msg::ConnFailed { token } => match self.pending_connect.remove(token) {
                Some((fd, _)) => {
                    self.opts.remove(&fd);
                    vec![LibEvent::ConnectFailed {
                        fd,
                        err: SockErr::ConnRefused,
                    }]
                }
                None => vec![],
            },
            Msg::ConnData { conn, data } => match self.fd_of.get(conn) {
                Some(&fd) => {
                    let st = self.rx.entry(fd).or_default();
                    st.buf.extend(data.iter().copied());
                    vec![LibEvent::Readable { fd }]
                }
                None => vec![],
            },
            Msg::ConnEof { conn } => match self.fd_of.get(conn) {
                Some(&fd) => {
                    self.rx.entry(fd).or_default().eof = true;
                    vec![LibEvent::Readable { fd }]
                }
                None => vec![],
            },
            Msg::ConnClosed { conn, aborted } => match self.unbind(conn) {
                Some(fd) => vec![LibEvent::Closed {
                    fd,
                    err: aborted.then_some(SockErr::ConnReset),
                }],
                None => vec![],
            },
            Msg::ConnMigrated {
                old,
                new,
                app_bytes,
            } => {
                // The connection moved (failover or live migration): rebind
                // the fd, then resend whatever the app wrote that the
                // restored state never saw. No event — the application is
                // not supposed to notice.
                let Some(fd) = self.fd_of.remove(old) else {
                    return vec![];
                };
                self.conn_of.insert(fd, *new);
                self.fd_of.insert(*new, fd);
                let gap = self
                    .tx
                    .get(&fd)
                    .map(|t| t.sent_total.saturating_sub(*app_bytes))
                    .unwrap_or(0);
                if gap == 0 {
                    return vec![];
                }
                let tail_bytes = match self.tx.get(&fd) {
                    Some(t) if gap as usize <= t.tail.len() => {
                        let skip = t.tail.len() - gap as usize;
                        t.tail.iter().skip(skip).copied().collect::<Vec<u8>>()
                    }
                    _ => {
                        // The gap outruns the retained tail: the stream
                        // cannot be made whole, so surface a reset.
                        if let Some(fd) = self.unbind(new) {
                            self.lost_to_crash += 1;
                            return vec![LibEvent::Closed {
                                fd,
                                err: Some(SockErr::ConnReset),
                            }];
                        }
                        return vec![];
                    }
                };
                let to = self.route_override.unwrap_or(new.stack);
                ctx.charge(neat_sim::calibration::copy_cost(tail_bytes.len()));
                ctx.send(
                    to,
                    Msg::ConnSend {
                        sock: new.sock,
                        data: tail_bytes,
                    },
                );
                vec![]
            }
            Msg::ReplicaRestarted { old, new } => {
                // Handles still on the dead replica are gone — either
                // stateless recovery (§3.6) or the flows buddy replication
                // could not restore. Reap them *eagerly*: free the fd and
                // its buffers now and tell the app with a reset, instead of
                // leaving entries to be discovered on the next poll.
                self.dead_stacks.insert(*old);
                let dead: Vec<ConnHandle> = self
                    .fd_of
                    .keys()
                    .filter(|c| c.stack == *old)
                    .copied()
                    .collect();
                let mut evs = Vec::new();
                for conn in dead {
                    if let Some(fd) = self.unbind(&conn) {
                        self.lost_to_crash += 1;
                        evs.push(LibEvent::Closed {
                            fd,
                            err: Some(SockErr::ConnReset),
                        });
                    }
                }
                // Reconcile in-flight connects against the restart report:
                // a SYN sent to the dead replica will never be answered, so
                // fail those fds instead of leaking their tokens.
                let orphaned: Vec<u64> = self
                    .pending_connect
                    .iter()
                    .filter(|(_, (_, replica))| replica == old)
                    .map(|(tok, _)| *tok)
                    .collect();
                for tok in orphaned {
                    if let Some((fd, _)) = self.pending_connect.remove(&tok) {
                        self.lost_to_crash += 1;
                        evs.push(LibEvent::ConnectFailed {
                            fd,
                            err: SockErr::ReplicaLost,
                        });
                    }
                }
                for r in &mut self.replicas {
                    if *r == *old {
                        *r = *new;
                    }
                }
                // Re-establish listening subsockets on the new replica.
                for port in self.listen_ports.clone() {
                    ctx.send(
                        *new,
                        Msg::Listen {
                            port,
                            app: ctx.self_id,
                        },
                    );
                }
                evs
            }
            Msg::ReplicaAdded { stack } => {
                self.replicas.push(*stack);
                for port in self.listen_ports.clone() {
                    ctx.send(
                        *stack,
                        Msg::Listen {
                            port,
                            app: ctx.self_id,
                        },
                    );
                }
                vec![]
            }
            Msg::ReplicaRemoved { stack } => {
                self.replicas.retain(|r| r != stack);
                self.dead_stacks.insert(*stack);
                // An orderly removal drains (or migrates) every connection
                // first, so normally nothing is bound here. If the replica
                // died mid-drain, its remaining handles are gone: reap them
                // eagerly, as in the restart path.
                let dead: Vec<ConnHandle> = self
                    .fd_of
                    .keys()
                    .filter(|c| c.stack == *stack)
                    .copied()
                    .collect();
                let mut evs = Vec::new();
                for conn in dead {
                    if let Some(fd) = self.unbind(&conn) {
                        self.lost_to_crash += 1;
                        evs.push(LibEvent::Closed {
                            fd,
                            err: Some(SockErr::ConnReset),
                        });
                    }
                }
                evs
            }
            _ => vec![],
        }
    }
}
