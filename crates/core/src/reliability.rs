//! Reliability estimation (Figure 13).
//!
//! "We used the code size (proportional to code coverage for our test
//! workload) of each component to estimate the probability that a single
//! component fails when a failure occurs within the network stack —
//! assuming uniform failure probability throughout the code — and the
//! resulting expected fraction of state preserved after a failure." (§6.6)
//!
//! Only the TCP component holds irrecoverable state (stateless recovery),
//! and the state is partitioned evenly across N replicas, so:
//!
//! * multi-component, N replicas: `preserved = 1 − P(fault hits TCP)/N`
//! * single-component, N replicas: a fault anywhere inside a replica loses
//!   that replica's whole TCP state: `preserved = 1 − P(fault in replica
//!   code)/N` (driver faults lose nothing — transparent recovery, §3.5).

use crate::config::StackMode;
use crate::fault::CodeSizes;

/// Expected fraction of TCP state preserved after one stack failure.
pub fn expected_state_preserved(sizes: &CodeSizes, mode: StackMode, replicas: usize) -> f64 {
    assert!(replicas >= 1);
    let p_loss = match mode {
        StackMode::Multi => sizes.tcp_fraction(),
        StackMode::Single => sizes.replica_fraction_single(),
    };
    1.0 - p_loss / replicas as f64
}

/// One point of Figure 13: a configuration with its measured peak
/// throughput and its expected preservation.
#[derive(Debug, Clone)]
pub struct ReliabilityPoint {
    pub label: String,
    pub cores: u32,
    pub threads: u32,
    pub max_krps: f64,
    pub preserved_pct: f64,
}

impl ReliabilityPoint {
    pub fn new(
        label: impl Into<String>,
        cores: u32,
        threads: u32,
        max_krps: f64,
        sizes: &CodeSizes,
        mode: StackMode,
        replicas: usize,
    ) -> ReliabilityPoint {
        ReliabilityPoint {
            label: label.into(),
            cores,
            threads,
            max_krps,
            preserved_pct: expected_state_preserved(sizes, mode, replicas) * 100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_replicas_preserve_more() {
        let s = CodeSizes::measured();
        let m1 = expected_state_preserved(&s, StackMode::Multi, 1);
        let m2 = expected_state_preserved(&s, StackMode::Multi, 2);
        let m4 = expected_state_preserved(&s, StackMode::Multi, 4);
        assert!(m1 < m2 && m2 < m4, "{m1} {m2} {m4}");
        assert!(m4 > 0.80);
    }

    #[test]
    fn multi_beats_single_at_equal_replicas() {
        // Finer isolation: only TCP faults lose state in multi mode.
        let s = CodeSizes::measured();
        for n in 1..=4 {
            let multi = expected_state_preserved(&s, StackMode::Multi, n);
            let single = expected_state_preserved(&s, StackMode::Single, n);
            assert!(
                multi > single,
                "multi {multi} vs single {single} at {n} replicas"
            );
        }
    }

    #[test]
    fn single_1x_loses_almost_everything() {
        // Figure 13's bottom-left point: NEaT 1x preserves ~nothing.
        let s = CodeSizes::measured();
        let p = expected_state_preserved(&s, StackMode::Single, 1);
        assert!(p < 0.2, "NEaT 1x preserves little: {p}");
    }

    #[test]
    fn bounds_hold() {
        let s = CodeSizes::measured();
        for n in 1..=8 {
            for mode in [StackMode::Single, StackMode::Multi] {
                let p = expected_state_preserved(&s, mode, n);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
