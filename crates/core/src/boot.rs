//! Boot builder: assembles a NEaT deployment on a simulated machine.
//!
//! Spawns the NIC device engines, the driver, the stack replicas (single-
//! or multi-component), the SYSCALL server, and the supervisor, and wires
//! them together in dependency order. Application processes are added by
//! the workload crates afterwards.

use crate::config::{NeatConfig, StackMode};
use crate::driver::DriverProc;
use crate::ip_comp::IpProc;
use crate::msg::{Msg, NeighborRole};
use crate::nic_proc::{default_server_nic, NicMode, NicProc};
use crate::pf_comp::PfProc;
use crate::stack_single::SingleStackProc;
use crate::supervisor::{Role, SupStats, Supervisor};
use crate::syscall::SyscallProc;
use crate::tcp_comp::TcpProc;
use crate::udp_comp::UdpProc;
use neat_net::MacAddr;
use neat_nic::{FaultInjector, Nic, NicConfig};
use neat_sim::{HwThreadId, MachineId, ProcId, Sim};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Hardware-thread assignments for one replica.
#[derive(Debug, Clone, Copy)]
pub enum ReplicaSlots {
    /// Single-component: the whole stack on one thread.
    Single(HwThreadId),
    /// Multi-component: TCP on its own thread; IP (plus the colocated PF
    /// and UDP processes) on another — matching the paper's layouts where
    /// only TCP and IP get dedicated cores (Figure 6a).
    Multi { tcp: HwThreadId, ip: HwThreadId },
}

/// Thread assignments for the OS side of the machine.
#[derive(Debug, Clone)]
pub struct NeatSlots {
    /// Supervisor + "all the remaining operating system processes" (§6.3).
    pub os: HwThreadId,
    pub syscall: HwThreadId,
    pub driver: HwThreadId,
    pub replicas: Vec<ReplicaSlots>,
    /// Spare threads the supervisor may use for scale-up.
    pub spare: Vec<HwThreadId>,
}

/// Everything the harness needs to talk to a booted deployment.
pub struct NeatDeployment {
    pub machine: MachineId,
    pub nic: ProcId,
    pub driver: ProcId,
    pub syscall: ProcId,
    pub supervisor: ProcId,
    /// Socket-owning head per replica (TCP comp or single stack).
    pub sockets_heads: Vec<ProcId>,
    /// All component pids per replica (fault-injection targets).
    pub comp_pids: Vec<Vec<(Role, ProcId)>>,
    pub sup_stats: Rc<RefCell<SupStats>>,
    pub config: NeatConfig,
}

/// Spawn a NIC device engine on `machine`. Returns its pid; wire the peer
/// with [`wire_link`] once both ends exist.
pub fn spawn_nic(
    sim: &mut Sim<Msg>,
    machine: MachineId,
    name: &str,
    queues: usize,
    mode_server: bool,
) -> ProcId {
    let dev = sim.add_device_thread(machine);
    let nic: Nic = if mode_server {
        default_server_nic(queues)
    } else {
        Nic::new(
            NicConfig {
                queue_pairs: 1,
                ..Default::default()
            },
            FaultInjector::disabled(0xC11E27),
        )
    };
    let mode = if mode_server {
        NicMode::Server {
            driver: ProcId(0), // wired later
        }
    } else {
        NicMode::ClientHub
    };
    sim.spawn(dev, Box::new(NicProc::new(name, nic, mode)))
}

/// Connect two NIC processes back-to-back (the 10GbE DAC cable).
pub fn wire_link(sim: &mut Sim<Msg>, a: ProcId, b: ProcId) {
    sim.send_external(
        a,
        Msg::SetNeighbor {
            role: NeighborRole::PeerNic,
            pid: b,
        },
    );
    sim.send_external(
        b,
        Msg::SetNeighbor {
            role: NeighborRole::PeerNic,
            pid: a,
        },
    );
}

/// Boot a full NEaT deployment. The server NIC must already exist.
pub fn boot_neat(
    sim: &mut Sim<Msg>,
    machine: MachineId,
    cfg: NeatConfig,
    slots: NeatSlots,
    nic: ProcId,
    arp_seed: Vec<(Ipv4Addr, MacAddr)>,
) -> NeatDeployment {
    assert_eq!(
        slots.replicas.len(),
        cfg.replicas,
        "slot count must match replica count"
    );
    // --- driver ---
    let driver = sim.spawn(
        slots.driver,
        Box::new(DriverProc::new("drv", nic, cfg.replicas)),
    );
    sim.send_external(
        nic,
        Msg::SetNeighbor {
            role: NeighborRole::Driver,
            pid: driver,
        },
    );

    // --- replicas ---
    let mut sockets_heads = Vec::new();
    let mut comp_pids: Vec<Vec<(Role, ProcId)>> = Vec::new();
    // Per-queue component registry handed to the supervisor.
    type QueueComps = Vec<(Role, ProcId, HwThreadId)>;
    let mut registry: Vec<(usize, QueueComps)> = Vec::new();
    for (q, rslot) in slots.replicas.iter().enumerate() {
        match (*rslot, cfg.mode) {
            (ReplicaSlots::Single(t), StackMode::Single) => {
                let proc = SingleStackProc::new(
                    format!("neat.{q}"),
                    q,
                    driver,
                    ProcId(0), // learns the supervisor from Terminate
                    cfg.ip,
                    cfg.mac,
                    &cfg,
                    arp_seed.clone(),
                );
                let pid = sim.spawn(t, Box::new(proc));
                sockets_heads.push(pid);
                comp_pids.push(vec![(Role::Single, pid)]);
                registry.push((q, vec![(Role::Single, pid, t)]));
            }
            (
                ReplicaSlots::Multi {
                    tcp: t_tcp,
                    ip: t_ip,
                },
                StackMode::Multi,
            ) => {
                let tcp = sim.spawn(
                    t_tcp,
                    Box::new(TcpProc::new(
                        format!("tcp.{q}"),
                        q,
                        ProcId(0),
                        None,
                        cfg.ip,
                        &cfg,
                    )),
                );
                let udp = sim.spawn(
                    t_ip,
                    Box::new(UdpProc::new(format!("udp.{q}"), q, None, cfg.ip)),
                );
                let ip = sim.spawn(
                    t_ip,
                    Box::new(IpProc::new(
                        format!("ip.{q}"),
                        q,
                        driver,
                        Some(tcp),
                        Some(udp),
                        cfg.ip,
                        cfg.mac,
                        arp_seed.clone(),
                    )),
                );
                let pf = sim.spawn(
                    t_ip,
                    Box::new(PfProc::new(
                        format!("pf.{q}"),
                        q,
                        driver,
                        Some(ip),
                        Vec::new(),
                    )),
                );
                sim.send_external(
                    tcp,
                    Msg::SetNeighbor {
                        role: NeighborRole::Ip,
                        pid: ip,
                    },
                );
                sim.send_external(
                    udp,
                    Msg::SetNeighbor {
                        role: NeighborRole::Ip,
                        pid: ip,
                    },
                );
                sockets_heads.push(tcp);
                comp_pids.push(vec![
                    (Role::Tcp, tcp),
                    (Role::Ip, ip),
                    (Role::Pf, pf),
                    (Role::Udp, udp),
                ]);
                registry.push((
                    q,
                    vec![
                        (Role::Tcp, tcp, t_tcp),
                        (Role::Udp, udp, t_ip),
                        (Role::Ip, ip, t_ip),
                        (Role::Pf, pf, t_ip),
                    ],
                ));
            }
            _ => panic!("replica slot kind does not match stack mode"),
        }
    }

    // --- SYSCALL server ---
    let syscall = sim.spawn(
        slots.syscall,
        Box::new(SyscallProc::new("syscall", sockets_heads.clone())),
    );

    // --- supervisor (crash monitor) ---
    let sup_stats = Rc::new(RefCell::new(SupStats::default()));
    let mut sup = Supervisor::new(
        "os.supervisor",
        cfg.clone(),
        arp_seed,
        nic,
        driver,
        slots.driver,
        syscall,
        slots.spare.clone(),
        sup_stats.clone(),
    );
    for (q, comps) in registry {
        sup.register_replica(q, comps);
    }
    let supervisor = sim.spawn(slots.os, Box::new(sup));
    sim.set_crash_monitor(supervisor, |pid, name| Msg::Crashed {
        pid,
        name: name.to_string(),
    });
    // Boot-time heads were built before the supervisor existed; tell them
    // where it lives so supervisor-directed reports (`ReplRestored`) work
    // outside the Terminate path too.
    for &head in &sockets_heads {
        sim.send_external(
            head,
            Msg::SetNeighbor {
                role: NeighborRole::Supervisor,
                pid: supervisor,
            },
        );
    }

    NeatDeployment {
        machine,
        nic,
        driver,
        syscall,
        supervisor,
        sockets_heads,
        comp_pids,
        sup_stats,
        config: cfg,
    }
}
