//! Security side effect of replication (§3.8): address-space
//! re-randomization across connections.
//!
//! Each replica starts (and restarts) with an independent ASLR layout; the
//! library binds every new connection to a *random* replica. Consecutive
//! connections are therefore handled by processes with unpredictably
//! different memory layouts, countering memory-error attacks that need a
//! stable layout across requests (Hacking Blind et al.). This module
//! quantifies that unpredictability.

use std::collections::HashMap;

/// Observes the replica (layout) that served each consecutive connection.
#[derive(Debug, Default)]
pub struct AslrObserver {
    /// Layout token of the replica serving each connection, in order.
    sequence: Vec<u64>,
}

impl AslrObserver {
    pub fn new() -> AslrObserver {
        AslrObserver::default()
    }

    /// Record the layout token of the replica that served a connection.
    pub fn record(&mut self, layout_token: u64) {
        self.sequence.push(layout_token);
    }

    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Number of distinct layouts observed.
    pub fn distinct_layouts(&self) -> usize {
        let set: std::collections::HashSet<u64> = self.sequence.iter().copied().collect();
        set.len()
    }

    /// Shannon entropy (bits) of the layout distribution: the attacker's
    /// per-connection uncertainty about which layout will serve them.
    pub fn entropy_bits(&self) -> f64 {
        if self.sequence.is_empty() {
            return 0.0;
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &t in &self.sequence {
            *counts.entry(t).or_default() += 1;
        }
        let n = self.sequence.len() as f64;
        -counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Fraction of consecutive connection pairs that landed on the *same*
    /// layout — the attacker's chance a probed layout is still valid for
    /// the next connection. With N replicas this approaches 1/N.
    pub fn consecutive_same_fraction(&self) -> f64 {
        if self.sequence.len() < 2 {
            return 1.0;
        }
        let same = self.sequence.windows(2).filter(|w| w[0] == w[1]).count();
        same as f64 / (self.sequence.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_util::Rng;

    #[test]
    fn single_replica_no_entropy() {
        let mut o = AslrObserver::new();
        for _ in 0..100 {
            o.record(42);
        }
        assert_eq!(o.distinct_layouts(), 1);
        assert_eq!(o.entropy_bits(), 0.0);
        assert_eq!(o.consecutive_same_fraction(), 1.0);
    }

    #[test]
    fn four_replicas_two_bits() {
        let mut o = AslrObserver::new();
        let layouts = [11u64, 22, 33, 44];
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            o.record(layouts[rng.gen_range(0usize..4)]);
        }
        assert_eq!(o.distinct_layouts(), 4);
        assert!(
            (o.entropy_bits() - 2.0).abs() < 0.05,
            "{}",
            o.entropy_bits()
        );
        let f = o.consecutive_same_fraction();
        assert!((f - 0.25).abs() < 0.05, "{f}");
    }

    #[test]
    fn restart_adds_layouts() {
        // A replica restart yields a fresh token: distinct layouts grow
        // beyond the replica count over time.
        let mut o = AslrObserver::new();
        o.record(1);
        o.record(2);
        o.record(99); // replica 1 restarted with a new layout
        assert_eq!(o.distinct_layouts(), 3);
    }

    #[test]
    fn empty_observer_sane() {
        let o = AslrObserver::new();
        assert!(o.is_empty());
        assert_eq!(o.entropy_bits(), 0.0);
    }
}
