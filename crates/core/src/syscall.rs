//! The SYSCALL server (§3.1–§3.2).
//!
//! All *blocking* system calls route through this dedicated process; the
//! socket fast path bypasses it, so "as the load grows, the core becomes
//! increasingly idle". Its main structural job in NEaT is listening-socket
//! replication: one `listen()` from an application fans out into one
//! subsocket per stack replica (§3.3).

use crate::msg::Msg;
use neat_sim::{calibration, Ctx, Event, ProcId, Process};
use std::collections::HashMap;

/// The SYSCALL server process.
pub struct SyscallProc {
    pub name: String,
    /// Socket-owning head of each live replica (TCP component or
    /// single-component stack).
    replicas: Vec<ProcId>,
    /// In-flight listen replications: port → (app, acks outstanding).
    pending_listen: HashMap<u16, (ProcId, usize)>,
    pub calls_served: u64,
}

impl SyscallProc {
    pub fn new(name: impl Into<String>, replicas: Vec<ProcId>) -> SyscallProc {
        SyscallProc {
            name: name.into(),
            replicas,
            pending_listen: HashMap::new(),
            calls_served: 0,
        }
    }
}

impl Process<Msg> for SyscallProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        let Event::Message { from, msg } = ev else {
            return;
        };
        match msg {
            Msg::SysListen { port, app } => {
                ctx.charge(calibration::SYSCALL_SERVER);
                self.calls_served += 1;
                neat_obs::counter_add("sys.calls_served", 1);
                // Replicate the listening socket across all replicas: the
                // library creates "a socket per each replica of the stack,
                // they all listen at the same address" (§3.3).
                self.pending_listen.insert(port, (app, self.replicas.len()));
                for r in self.replicas.clone() {
                    ctx.send(r, Msg::Listen { port, app });
                }
            }
            Msg::ListenOk { port } => {
                if let Some((app, remaining)) = self.pending_listen.get_mut(&port) {
                    *remaining -= 1;
                    if *remaining == 0 {
                        let app = *app;
                        self.pending_listen.remove(&port);
                        ctx.send(app, Msg::SysListenDone { port });
                    }
                }
            }
            Msg::SysCall { token } => {
                ctx.charge(calibration::SYSCALL_SERVER);
                self.calls_served += 1;
                neat_obs::counter_add("sys.calls_served", 1);
                ctx.send(from, Msg::SysReply { token });
            }
            Msg::ReplicaRestarted { old, new } => {
                for r in &mut self.replicas {
                    if *r == old {
                        *r = new;
                    }
                }
            }
            Msg::ReplicaAdded { stack } => self.replicas.push(stack),
            Msg::ReplicaRemoved { stack } => self.replicas.retain(|r| *r != stack),
            Msg::Poison => ctx.crash_self(),
            _ => {}
        }
    }
}
