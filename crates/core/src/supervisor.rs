//! The supervisor ("reincarnation server" in MINIX 3 terms).
//!
//! It is the crash monitor for every NEaT component and implements the
//! paper's recovery and scaling protocols:
//!
//! * **Stateless recovery (§3.6)** — when a component crashes, all its
//!   state is gone (the engine drops the process). The supervisor restarts
//!   a fresh instance on the same hardware thread after a recovery delay,
//!   rewires its pipeline neighbours, and — only if the dead component was
//!   a TCP/socket owner — tells applications and the SYSCALL server that
//!   connection handles on the old pid are dead. Other replicas never
//!   notice: isolation means there is nothing to clean up across replicas.
//! * **Scale-up/down (§3.4)** — scale-up grows the NIC queue set and boots
//!   a replica on spare threads; scale-down marks a replica *terminating*
//!   (the NIC stops steering new flows to it) and garbage-collects it only
//!   once its connection count drains to zero — lazy termination that
//!   never breaks a connection.

use crate::config::{NeatConfig, StackMode};
use crate::ip_comp::IpProc;
use crate::msg::{Msg, NeighborRole};
use crate::pf_comp::PfProc;
use crate::stack_single::SingleStackProc;
use crate::tcp_comp::TcpProc;
use crate::udp_comp::UdpProc;
use neat_net::MacAddr;
use neat_sim::{Ctx, Event, HwThreadId, ProcId, Process, Time};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Component roles within a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    Single,
    Pf,
    Ip,
    Tcp,
    Udp,
    Driver,
}

/// Harness-visible supervisor counters (shared instrumentation handle).
#[derive(Debug, Default, Clone)]
pub struct SupStats {
    pub crashes_seen: u64,
    pub recoveries: u64,
    /// Crashes that lost TCP state (TCP component or single-comp replica).
    pub stateful_losses: u64,
    pub scale_ups: u64,
    pub scale_downs_completed: u64,
    /// Crash events that raced replica removal (concurrent scale-down):
    /// the event is dropped or folded into the drain instead of
    /// resurrecting a replica that no longer exists.
    pub stale_crashes: u64,
    /// Buddy handoffs that completed: the respawned head adopted the
    /// crashed replica's flows before the fallback deadline.
    pub handoffs_completed: u64,
}

/// Per-replica bookkeeping.
#[derive(Debug)]
struct ReplicaRec {
    queue: usize,
    /// role → (pid, thread). Removed replicas have this emptied.
    comps: HashMap<Role, (ProcId, HwThreadId)>,
    terminating: bool,
    alive: bool,
}

/// A scheduled respawn.
#[derive(Debug)]
struct RespawnJob {
    queue: Option<usize>, // None for the driver
    role: Role,
    old_pid: ProcId,
    thread: HwThreadId,
}

/// A buddy handoff in flight: the restart report to applications is held
/// back until the respawned head confirms it adopted the dead replica's
/// flows ([`Msg::ReplRestored`]) or the fallback timer gives up.
#[derive(Debug)]
struct PendingFailover {
    old: ProcId,
    new: ProcId,
    token: u64,
}

/// The supervisor process.
pub struct Supervisor {
    pub name: String,
    cfg: NeatConfig,
    arp_seed: Vec<(Ipv4Addr, MacAddr)>,
    nic: ProcId,
    driver: ProcId,
    driver_thread: HwThreadId,
    syscall: ProcId,
    replicas: Vec<ReplicaRec>,
    apps: Vec<ProcId>,
    /// Spare hardware threads for scale-up.
    spare: Vec<HwThreadId>,
    jobs: HashMap<u64, RespawnJob>,
    /// Fallback timers for in-flight handoffs: token → queue.
    fallback: HashMap<u64, usize>,
    /// Handoffs awaiting [`Msg::ReplRestored`], keyed by queue.
    pending_failover: HashMap<usize, PendingFailover>,
    /// Last `(head, buddy)` told to each queue, to skip no-op
    /// [`Msg::SetBuddy`] sends (each one forces a full re-checkpoint).
    assigned: HashMap<usize, (ProcId, Option<ProcId>)>,
    next_token: u64,
    pub stats: Rc<RefCell<SupStats>>,
}

impl Supervisor {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        cfg: NeatConfig,
        arp_seed: Vec<(Ipv4Addr, MacAddr)>,
        nic: ProcId,
        driver: ProcId,
        driver_thread: HwThreadId,
        syscall: ProcId,
        spare: Vec<HwThreadId>,
        stats: Rc<RefCell<SupStats>>,
    ) -> Supervisor {
        Supervisor {
            name: name.into(),
            cfg,
            arp_seed,
            nic,
            driver,
            driver_thread,
            syscall,
            replicas: Vec::new(),
            apps: Vec::new(),
            spare,
            jobs: HashMap::new(),
            fallback: HashMap::new(),
            pending_failover: HashMap::new(),
            assigned: HashMap::new(),
            next_token: 1,
            stats,
        }
    }

    /// Register a booted replica (called by the boot builder).
    pub fn register_replica(&mut self, queue: usize, comps: Vec<(Role, ProcId, HwThreadId)>) {
        while self.replicas.len() <= queue {
            self.replicas.push(ReplicaRec {
                queue: self.replicas.len(),
                comps: HashMap::new(),
                terminating: false,
                alive: false,
            });
        }
        let rec = &mut self.replicas[queue];
        rec.alive = true;
        for (role, pid, thread) in comps {
            rec.comps.insert(role, (pid, thread));
        }
    }

    /// The socket-owning head of a replica (TCP comp or single stack).
    fn sockets_head(&self, queue: usize) -> Option<ProcId> {
        let rec = self.replicas.get(queue)?;
        rec.comps
            .get(&Role::Tcp)
            .or_else(|| rec.comps.get(&Role::Single))
            .map(|(p, _)| *p)
    }

    fn find_crashed(&self, pid: ProcId) -> Option<(Option<usize>, Role, HwThreadId)> {
        if pid == self.driver {
            return Some((None, Role::Driver, self.driver_thread));
        }
        for rec in &self.replicas {
            for (role, (p, t)) in &rec.comps {
                if *p == pid {
                    return Some((Some(rec.queue), *role, *t));
                }
            }
        }
        None
    }

    fn stale_crash(&mut self) {
        self.stats.borrow_mut().stale_crashes += 1;
        neat_obs::counter_add("sup.stale_crash", 1);
    }

    /// The buddy ring: `(queue, head)` of every live, non-terminating
    /// replica, in queue order. Each head streams its flow state to the
    /// next entry (wrapping).
    fn ring(&self) -> Vec<(usize, ProcId)> {
        self.replicas
            .iter()
            .filter(|r| r.alive && !r.terminating)
            .filter_map(|r| self.sockets_head(r.queue).map(|h| (r.queue, h)))
            .collect()
    }

    /// The head currently holding queue `q`'s replicated flows (its ring
    /// successor), if replication is on and the ring has a successor.
    fn buddy_head_of(&self, q: usize) -> Option<ProcId> {
        if !self.cfg.replication.enabled {
            return None;
        }
        let ring = self.ring();
        if ring.len() < 2 {
            return None;
        }
        let i = ring.iter().position(|(rq, _)| *rq == q)?;
        Some(ring[(i + 1) % ring.len()].1)
    }

    /// (Re)issue `SetBuddy` across the ring after any membership or head
    /// change. Only heads whose `(self, buddy)` pair actually changed are
    /// told — a `SetBuddy` forces a full re-checkpoint, which is not free.
    fn reassign_buddies(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.cfg.replication.enabled {
            return;
        }
        let ring = self.ring();
        for (i, &(q, head)) in ring.iter().enumerate() {
            let buddy = if ring.len() < 2 {
                None
            } else {
                Some(ring[(i + 1) % ring.len()].1)
            };
            if self.assigned.get(&q) != Some(&(head, buddy)) {
                self.assigned.insert(q, (head, buddy));
                ctx.send(head, Msg::SetBuddy { buddy });
            }
        }
    }

    fn schedule_respawn(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        queue: Option<usize>,
        role: Role,
        old_pid: ProcId,
        thread: HwThreadId,
    ) {
        let token = self.next_token;
        self.next_token += 1;
        self.jobs.insert(
            token,
            RespawnJob {
                queue,
                role,
                old_pid,
                thread,
            },
        );
        ctx.set_timer(Time::from_nanos(self.cfg.recovery_delay_ns), token);
    }

    fn notify_apps(&self, ctx: &mut Ctx<'_, Msg>, make: impl Fn() -> Msg) {
        for app in &self.apps {
            ctx.send(*app, make());
        }
        ctx.send(self.syscall, make());
    }

    fn respawn(&mut self, ctx: &mut Ctx<'_, Msg>, job: RespawnJob) {
        let RespawnJob {
            queue,
            role,
            old_pid,
            thread,
        } = job;
        // Stale-crash guards: between the crash and this timer the replica
        // may have been removed (scale-down completed against a dead head)
        // or marked terminating. Never `unwrap()` our way into respawning
        // a replica that no longer exists.
        if role != Role::Driver {
            let Some(q) = queue else {
                self.stale_crash();
                return;
            };
            let Some(rec) = self.replicas.get(q) else {
                self.stale_crash();
                return;
            };
            if !rec.alive {
                self.stale_crash();
                return;
            }
            if rec.terminating {
                // The crashed replica was picked for scale-down while this
                // respawn was pending. Its connections died with it; finish
                // the removal instead of resurrecting a draining replica.
                self.stale_crash();
                self.gc_drained(ctx, q);
                return;
            }
        }
        self.stats.borrow_mut().recoveries += 1;
        neat_obs::counter_add("sup.recoveries", 1);
        if neat_obs::tracing() {
            neat_obs::trace::instant(
                0,
                format!("recover: {role:?}.{queue:?}"),
                "lifecycle",
                ctx.now().as_nanos(),
            );
        }
        let delay = Time::from_nanos(self.cfg.spawn_delay_ns);
        match role {
            Role::Driver => {
                let queues = self.replicas.len().max(self.cfg.replicas);
                let drv = crate::driver::DriverProc::new("drv", self.nic, queues);
                let new = ctx.spawn(thread, Box::new(drv), delay);
                self.driver = new;
                ctx.send(
                    self.nic,
                    Msg::SetNeighbor {
                        role: NeighborRole::Driver,
                        pid: new,
                    },
                );
                // Re-announce every live head and repoint TX paths.
                for rec in &self.replicas {
                    if !rec.alive {
                        continue;
                    }
                    let head = rec
                        .comps
                        .get(&Role::Pf)
                        .or_else(|| rec.comps.get(&Role::Single));
                    if let Some((head_pid, _)) = head {
                        ctx.send(
                            self.driver,
                            Msg::Announce {
                                queue: rec.queue,
                                head: *head_pid,
                            },
                        );
                    }
                    for r in [Role::Ip, Role::Single, Role::Pf] {
                        if let Some((pid, _)) = rec.comps.get(&r) {
                            ctx.send(
                                *pid,
                                Msg::SetNeighbor {
                                    role: NeighborRole::Driver,
                                    pid: new,
                                },
                            );
                        }
                    }
                }
            }
            Role::Single => {
                let Some(q) = queue else {
                    return;
                };
                let proc = SingleStackProc::new(
                    format!("neat.{q}"),
                    q,
                    self.driver,
                    ctx.self_id,
                    self.cfg.ip,
                    self.cfg.mac,
                    &self.cfg,
                    self.arp_seed.clone(),
                );
                let new = ctx.spawn(thread, Box::new(proc), delay);
                self.replicas[q].comps.insert(Role::Single, (new, thread));
                self.head_restarted(ctx, q, old_pid, new);
            }
            Role::Tcp => {
                let Some(q) = queue else {
                    return;
                };
                let ip_pid = self.replicas[q].comps.get(&Role::Ip).map(|(p, _)| *p);
                let proc = TcpProc::new(
                    format!("tcp.{q}"),
                    q,
                    ctx.self_id,
                    ip_pid,
                    self.cfg.ip,
                    &self.cfg,
                );
                let new = ctx.spawn(thread, Box::new(proc), delay);
                self.replicas[q].comps.insert(Role::Tcp, (new, thread));
                if let Some(ip) = ip_pid {
                    ctx.send(
                        ip,
                        Msg::SetNeighbor {
                            role: NeighborRole::Tcp,
                            pid: new,
                        },
                    );
                }
                self.head_restarted(ctx, q, old_pid, new);
            }
            Role::Ip => {
                let Some(q) = queue else {
                    return;
                };
                let rec = &self.replicas[q];
                let tcp = rec.comps.get(&Role::Tcp).map(|(p, _)| *p);
                let udp = rec.comps.get(&Role::Udp).map(|(p, _)| *p);
                let pf = rec.comps.get(&Role::Pf).map(|(p, _)| *p);
                let proc = IpProc::new(
                    format!("ip.{q}"),
                    q,
                    self.driver,
                    tcp,
                    udp,
                    self.cfg.ip,
                    self.cfg.mac,
                    self.arp_seed.clone(),
                );
                let new = ctx.spawn(thread, Box::new(proc), delay);
                self.replicas[q].comps.insert(Role::Ip, (new, thread));
                // Neighbours of the new IP are baked in; repoint PF, TCP,
                // and UDP at it.
                for (r, pid) in [
                    (NeighborRole::Ip, pf),
                    (NeighborRole::Ip, tcp),
                    (NeighborRole::Ip, udp),
                ] {
                    if let Some(p) = pid {
                        ctx.send(p, Msg::SetNeighbor { role: r, pid: new });
                    }
                }
            }
            Role::Pf => {
                let Some(q) = queue else {
                    return;
                };
                let ip = self.replicas[q].comps.get(&Role::Ip).map(|(p, _)| *p);
                let proc = PfProc::new(format!("pf.{q}"), q, self.driver, ip, Vec::new());
                let new = ctx.spawn(thread, Box::new(proc), delay);
                self.replicas[q].comps.insert(Role::Pf, (new, thread));
                // PF announces itself to the driver on Start.
            }
            Role::Udp => {
                let Some(q) = queue else {
                    return;
                };
                let ip = self.replicas[q].comps.get(&Role::Ip).map(|(p, _)| *p);
                let proc = UdpProc::new(format!("udp.{q}"), q, ip, self.cfg.ip);
                let new = ctx.spawn(thread, Box::new(proc), delay);
                self.replicas[q].comps.insert(Role::Udp, (new, thread));
                if let Some(ip) = ip {
                    ctx.send(
                        ip,
                        Msg::SetNeighbor {
                            role: NeighborRole::Udp,
                            pid: new,
                        },
                    );
                }
            }
        }
    }

    /// A socket-owning head (TCP comp or single stack) was respawned as
    /// `new`. With a buddy holding the dead head's flows, start a
    /// transparent handoff and hold back the restart report until the
    /// flows are adopted; otherwise fall straight back to stateless
    /// recovery (§3.6) and report the loss.
    fn head_restarted(&mut self, ctx: &mut Ctx<'_, Msg>, q: usize, old_pid: ProcId, new: ProcId) {
        let buddy = self.buddy_head_of(q).filter(|b| *b != new);
        if let Some(b) = buddy {
            ctx.send(
                b,
                Msg::ReplHandoff {
                    queue: q,
                    old: old_pid,
                    to: new,
                },
            );
            let token = self.next_token;
            self.next_token += 1;
            self.fallback.insert(token, q);
            self.pending_failover.insert(
                q,
                PendingFailover {
                    old: old_pid,
                    new,
                    token,
                },
            );
            // Fallback: if the restore never confirms (e.g. the buddy dies
            // too), report the restart anyway so apps reap dead handles.
            ctx.set_timer(
                Time::from_nanos(self.cfg.spawn_delay_ns + self.cfg.recovery_delay_ns),
                token,
            );
        } else {
            self.stats.borrow_mut().stateful_losses += 1;
            neat_obs::counter_add("sup.stateful_losses", 1);
            self.notify_apps(ctx, || Msg::ReplicaRestarted { old: old_pid, new });
        }
        self.reassign_buddies(ctx);
    }

    fn scale_up(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let queue = self.replicas.len();
        let delay = Time::from_nanos(self.cfg.spawn_delay_ns);
        let needed = match self.cfg.mode {
            StackMode::Single => 1,
            StackMode::Multi => 2,
        };
        if self.spare.len() < needed {
            return; // no cores left — the paper's hard resource wall
        }
        ctx.send(self.driver, Msg::NicGrowQueues { n: queue + 1 });
        match self.cfg.mode {
            StackMode::Single => {
                let t = self.spare.remove(0);
                let proc = SingleStackProc::new(
                    format!("neat.{queue}"),
                    queue,
                    self.driver,
                    ctx.self_id,
                    self.cfg.ip,
                    self.cfg.mac,
                    &self.cfg,
                    self.arp_seed.clone(),
                );
                let pid = ctx.spawn(t, Box::new(proc), delay);
                self.register_replica(queue, vec![(Role::Single, pid, t)]);
                self.notify_apps(ctx, || Msg::ReplicaAdded { stack: pid });
            }
            StackMode::Multi => {
                let t_tcp = self.spare.remove(0);
                let t_ip = self.spare.remove(0);
                // Spawn TCP and UDP first so IP can be wired at build time;
                // PF and UDP share the IP thread (as in the paper's
                // placements, where only TCP and IP get dedicated cores).
                let tcp = ctx.spawn(
                    t_tcp,
                    Box::new(TcpProc::new(
                        format!("tcp.{queue}"),
                        queue,
                        ctx.self_id,
                        None,
                        self.cfg.ip,
                        &self.cfg,
                    )),
                    delay,
                );
                let udp = ctx.spawn(
                    t_ip,
                    Box::new(UdpProc::new(
                        format!("udp.{queue}"),
                        queue,
                        None,
                        self.cfg.ip,
                    )),
                    delay,
                );
                let ip = ctx.spawn(
                    t_ip,
                    Box::new(IpProc::new(
                        format!("ip.{queue}"),
                        queue,
                        self.driver,
                        Some(tcp),
                        Some(udp),
                        self.cfg.ip,
                        self.cfg.mac,
                        self.arp_seed.clone(),
                    )),
                    delay,
                );
                let pf = ctx.spawn(
                    t_ip,
                    Box::new(PfProc::new(
                        format!("pf.{queue}"),
                        queue,
                        self.driver,
                        Some(ip),
                        Vec::new(),
                    )),
                    delay,
                );
                ctx.send(
                    tcp,
                    Msg::SetNeighbor {
                        role: NeighborRole::Ip,
                        pid: ip,
                    },
                );
                ctx.send(
                    udp,
                    Msg::SetNeighbor {
                        role: NeighborRole::Ip,
                        pid: ip,
                    },
                );
                self.register_replica(
                    queue,
                    vec![
                        (Role::Tcp, tcp, t_tcp),
                        (Role::Udp, udp, t_ip),
                        (Role::Ip, ip, t_ip),
                        (Role::Pf, pf, t_ip),
                    ],
                );
                self.notify_apps(ctx, || Msg::ReplicaAdded { stack: tcp });
            }
        }
        self.stats.borrow_mut().scale_ups += 1;
        neat_obs::counter_add("sup.scale_ups", 1);
        if neat_obs::tracing() {
            neat_obs::trace::instant(0, "scale-up", "lifecycle", ctx.now().as_nanos());
        }
        self.reassign_buddies(ctx);
    }

    fn scale_down(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Pick the highest-numbered live, non-terminating replica; never
        // terminate the last one.
        let live: Vec<usize> = self
            .replicas
            .iter()
            .filter(|r| r.alive && !r.terminating)
            .map(|r| r.queue)
            .collect();
        if live.len() <= 1 {
            return;
        }
        let Some(&q) = live.last() else {
            return;
        };
        let head = self.sockets_head(q);
        // Migration target: the victim's ring successor, resolved while
        // the victim is still a ring member.
        let target = self.buddy_head_of(q).filter(|t| Some(*t) != head);
        self.replicas[q].terminating = true;
        // New connections avoid this queue; existing ones keep flowing.
        ctx.send(
            self.driver,
            Msg::NicSetAccepting {
                queue: q,
                accepting: false,
            },
        );
        if let Some(h) = head {
            // Live migration: instead of waiting for every connection to
            // drain, hand the established flows to a surviving replica
            // over the same transfer path failover uses. The victim then
            // drains (now trivially) and is garbage-collected as usual.
            if let Some(t) = target {
                ctx.send(h, Msg::MigrateOut { to: t });
            }
            ctx.send(h, Msg::Terminate);
        }
        self.reassign_buddies(ctx);
    }

    fn gc_drained(&mut self, ctx: &mut Ctx<'_, Msg>, queue: usize) {
        let Some(rec) = self.replicas.get_mut(queue) else {
            return;
        };
        if !rec.terminating || !rec.alive {
            return;
        }
        rec.alive = false;
        let head = rec
            .comps
            .get(&Role::Tcp)
            .or_else(|| rec.comps.get(&Role::Single))
            .map(|(p, _)| *p);
        let comps: Vec<(ProcId, HwThreadId)> = rec.comps.drain().map(|(_, v)| v).collect();
        for (pid, thread) in comps {
            ctx.kill(pid, false);
            // The freed threads become spare capacity (the paper: "makes
            // the corresponding cores available to the applications").
            if !self.spare.contains(&thread) {
                self.spare.push(thread);
            }
        }
        ctx.send(self.driver, Msg::ReplicaDown { queue });
        self.assigned.remove(&queue);
        self.pending_failover.remove(&queue);
        if let Some(h) = head {
            if self.cfg.replication.enabled {
                // Drop any replication state still held for the dead head.
                for (_, other) in self.ring() {
                    ctx.send(other, Msg::ReplForget { owner: h });
                }
                // Report the removal *after* any in-flight `ConnMigrated`
                // (two message hops away): apps must rebind migrated flows
                // before they reap the dead head's remaining handles.
                let margin = Time::from_nanos(200_000);
                for app in self.apps.clone() {
                    ctx.send_delayed(app, Msg::ReplicaRemoved { stack: h }, margin);
                }
                ctx.send_delayed(self.syscall, Msg::ReplicaRemoved { stack: h }, margin);
            } else {
                self.notify_apps(ctx, || Msg::ReplicaRemoved { stack: h });
            }
        }
        self.stats.borrow_mut().scale_downs_completed += 1;
        neat_obs::counter_add("sup.scale_downs", 1);
        if neat_obs::tracing() {
            neat_obs::trace::instant(0, "scale-down", "lifecycle", ctx.now().as_nanos());
        }
    }
}

impl Process<Msg> for Supervisor {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            // Delivered via `on_batch` in practice; unroll defensively if a
            // batch ever reaches the scalar path.
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
            Event::Start => {
                // Initial buddy-ring assignment (no-op unless replication
                // is enabled in the config).
                self.reassign_buddies(ctx);
            }
            Event::Timer { token } => {
                if let Some(job) = self.jobs.remove(&token) {
                    self.respawn(ctx, job);
                } else if let Some(q) = self.fallback.remove(&token) {
                    let current = self
                        .pending_failover
                        .get(&q)
                        .is_some_and(|p| p.token == token);
                    if current {
                        if let Some(p) = self.pending_failover.remove(&q) {
                            // The handoff never confirmed (e.g. the buddy
                            // died too): fall back to the stateless-recovery
                            // report so apps reap the dead handles.
                            self.stats.borrow_mut().stateful_losses += 1;
                            neat_obs::counter_add("sup.stateful_losses", 1);
                            self.notify_apps(ctx, || Msg::ReplicaRestarted {
                                old: p.old,
                                new: p.new,
                            });
                        }
                    }
                }
            }
            Event::Message { msg, .. } => match msg {
                Msg::Crashed { pid, .. } => {
                    self.stats.borrow_mut().crashes_seen += 1;
                    neat_obs::counter_add("sup.crashes_seen", 1);
                    if let Some((queue, role, thread)) = self.find_crashed(pid) {
                        // A crash can race a concurrent scale-down: the
                        // replica is already draining and its connections
                        // died with it — finish the removal instead of
                        // resurrecting a terminating replica.
                        if let Some(q) = queue {
                            if self
                                .replicas
                                .get(q)
                                .is_some_and(|r| r.terminating && r.alive)
                            {
                                self.stale_crash();
                                self.gc_drained(ctx, q);
                                return;
                            }
                        }
                        // If the pipeline head died, tell the driver to
                        // hold (drop) that queue's packets meanwhile.
                        if matches!(role, Role::Pf | Role::Single) {
                            if let Some(q) = queue {
                                ctx.send(self.driver, Msg::ReplicaDown { queue: q });
                            }
                        }
                        self.schedule_respawn(ctx, queue, role, pid, thread);
                    }
                }
                Msg::RegisterApp { app } if !self.apps.contains(&app) => {
                    self.apps.push(app);
                }
                Msg::ScaleUp => self.scale_up(ctx),
                Msg::ScaleDown => self.scale_down(ctx),
                Msg::Drained { queue } => self.gc_drained(ctx, queue),
                Msg::ReplRestored { queue, flows } => {
                    // Re-steer every adopted flow to its (new) queue with
                    // exact-match NIC filters. Idempotent for failover
                    // (same queue as RSS); load-bearing for migration.
                    for flow in &flows {
                        ctx.send(self.driver, Msg::NicAddFilter { flow: *flow, queue });
                    }
                    if let Some(p) = self.pending_failover.remove(&queue) {
                        self.fallback.remove(&p.token);
                        self.stats.borrow_mut().handoffs_completed += 1;
                        neat_obs::counter_add("sup.handoffs_completed", 1);
                        // Deferred restart report: each app's ConnMigrated
                        // rebinds (sent one hop earlier by the head) land
                        // first, so adopted flows are not reaped as dead.
                        self.notify_apps(ctx, || Msg::ReplicaRestarted {
                            old: p.old,
                            new: p.new,
                        });
                    }
                }
                _ => {}
            },
        }
    }
}
