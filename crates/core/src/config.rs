//! NEaT deployment configuration.

use neat_tcp::TcpConfig;
use std::net::Ipv4Addr;

/// Single- vs multi-component replicas (§3.7, compile-time in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackMode {
    /// Whole stack (PF+IP+TCP+UDP logic) in one process per replica —
    /// `NEaT Nx` in the figures.
    Single,
    /// Each replica vertically split into isolated PF, IP, TCP, and UDP
    /// processes — `Multi Nx` in the figures. More cores, more isolation.
    Multi,
}

/// Which mechanism keeps the buddy's copy of per-flow state current.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplMechanism {
    /// Ship incremental TCB checkpoints after every flush (primary).
    #[default]
    Checkpoint,
    /// Ship the deterministic input log; the buddy replays it through a
    /// scratch stack on demand (State-Compute Replication style).
    InputLog,
}

/// Buddy-replica flow replication (the transparent-recovery extension to
/// §3.6, plus live flow migration for `scale_down`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Master switch. Off by default: replication costs one checkpoint
    /// message per flush per replica, and the reliability benches measure
    /// both modes.
    pub enabled: bool,
    /// Checkpoint streaming (default) or input-log replay.
    pub mechanism: ReplMechanism,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            enabled: false,
            mechanism: ReplMechanism::Checkpoint,
        }
    }
}

/// Configuration of one NEaT deployment on a server machine.
#[derive(Debug, Clone)]
pub struct NeatConfig {
    pub mode: StackMode,
    /// Initial number of stack replicas.
    pub replicas: usize,
    /// The server's IP address (all replicas share it; the NIC partitions
    /// flows between them).
    pub ip: Ipv4Addr,
    /// The server NIC's MAC address.
    pub mac: neat_net::MacAddr,
    /// TCP engine tunables (control-plane settings, §4).
    pub tcp: TcpConfig,
    /// Delay to create and boot a replica process (spawn latency, §3.4).
    pub spawn_delay_ns: u64,
    /// Crash-to-restart delay for the supervisor's recovery path (§3.6).
    pub recovery_delay_ns: u64,
    /// Buddy-replica flow replication (transparent recovery + migration).
    pub replication: ReplicationConfig,
}

impl Default for NeatConfig {
    fn default() -> Self {
        NeatConfig {
            mode: StackMode::Single,
            replicas: 2,
            ip: Ipv4Addr::new(192, 168, 69, 1),
            mac: neat_net::MacAddr::local(1),
            tcp: TcpConfig {
                // LAN-scale RTO floor for the simulated testbed.
                initial_rto_ns: 20_000_000,
                // The i82599 offers TSO; hand it 61 KB super-segments.
                gso_burst: 61_440,
                ..TcpConfig::default()
            },
            spawn_delay_ns: 2_000_000,    // 2 ms to fork+exec a replica
            recovery_delay_ns: 5_000_000, // 5 ms crash-detect + restart
            replication: ReplicationConfig::default(),
        }
    }
}

impl NeatConfig {
    pub fn single(replicas: usize) -> NeatConfig {
        NeatConfig {
            mode: StackMode::Single,
            replicas,
            ..Default::default()
        }
    }

    pub fn multi(replicas: usize) -> NeatConfig {
        NeatConfig {
            mode: StackMode::Multi,
            replicas,
            ..Default::default()
        }
    }

    /// Builder-style switch: same deployment, buddy replication on.
    pub fn replicated(mut self) -> NeatConfig {
        self.replication.enabled = true;
        self
    }

    /// Builder-style switch to the input-log replay mechanism.
    pub fn with_input_log(mut self) -> NeatConfig {
        self.replication.enabled = true;
        self.replication.mechanism = ReplMechanism::InputLog;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(NeatConfig::single(3).mode, StackMode::Single);
        assert_eq!(NeatConfig::single(3).replicas, 3);
        assert_eq!(NeatConfig::multi(2).mode, StackMode::Multi);
    }
}
