//! NEaT deployment configuration.

use neat_tcp::TcpConfig;
use std::net::Ipv4Addr;

/// Single- vs multi-component replicas (§3.7, compile-time in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackMode {
    /// Whole stack (PF+IP+TCP+UDP logic) in one process per replica —
    /// `NEaT Nx` in the figures.
    Single,
    /// Each replica vertically split into isolated PF, IP, TCP, and UDP
    /// processes — `Multi Nx` in the figures. More cores, more isolation.
    Multi,
}

/// Configuration of one NEaT deployment on a server machine.
#[derive(Debug, Clone)]
pub struct NeatConfig {
    pub mode: StackMode,
    /// Initial number of stack replicas.
    pub replicas: usize,
    /// The server's IP address (all replicas share it; the NIC partitions
    /// flows between them).
    pub ip: Ipv4Addr,
    /// The server NIC's MAC address.
    pub mac: neat_net::MacAddr,
    /// TCP engine tunables (control-plane settings, §4).
    pub tcp: TcpConfig,
    /// Delay to create and boot a replica process (spawn latency, §3.4).
    pub spawn_delay_ns: u64,
    /// Crash-to-restart delay for the supervisor's recovery path (§3.6).
    pub recovery_delay_ns: u64,
}

impl Default for NeatConfig {
    fn default() -> Self {
        NeatConfig {
            mode: StackMode::Single,
            replicas: 2,
            ip: Ipv4Addr::new(192, 168, 69, 1),
            mac: neat_net::MacAddr::local(1),
            tcp: TcpConfig {
                // LAN-scale RTO floor for the simulated testbed.
                initial_rto_ns: 20_000_000,
                // The i82599 offers TSO; hand it 61 KB super-segments.
                gso_burst: 61_440,
                ..TcpConfig::default()
            },
            spawn_delay_ns: 2_000_000,    // 2 ms to fork+exec a replica
            recovery_delay_ns: 5_000_000, // 5 ms crash-detect + restart
        }
    }
}

impl NeatConfig {
    pub fn single(replicas: usize) -> NeatConfig {
        NeatConfig {
            mode: StackMode::Single,
            replicas,
            ..Default::default()
        }
    }

    pub fn multi(replicas: usize) -> NeatConfig {
        NeatConfig {
            mode: StackMode::Multi,
            replicas,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(NeatConfig::single(3).mode, StackMode::Single);
        assert_eq!(NeatConfig::single(3).replicas, 3);
        assert_eq!(NeatConfig::multi(2).mode, StackMode::Multi);
    }
}
