//! The NIC as a simulated device engine.
//!
//! One `NicProc` per machine, pinned to a *device* thread (it models the
//! hardware pipeline, not a CPU). Two personalities:
//!
//! * **Server mode** — the 82599 serving NEaT: inbound wire frames are
//!   classified (RSS + filters) to the queue of the owning replica and
//!   handed to the NIC driver process; outbound host frames are
//!   TSO-segmented and serialized onto the link at 10 Gb/s.
//! * **Client-hub mode** — the load generator's NIC: it learns which
//!   httperf process owns which local port from outbound traffic and
//!   steers responses straight back to it (the "connection tracking"
//!   extension §4 argues NICs should offer; acceptable here because the
//!   client machine is harness, not the system under test).

use crate::msg::Msg;
use neat_net::PktBuf;
use neat_nic::Nic;
use neat_sim::{calibration, Ctx, Event, ProcId, Process};
use std::collections::HashMap;

/// Which machine role this NIC plays.
pub enum NicMode {
    /// Steer to queues and notify the driver process.
    Server { driver: ProcId },
    /// Learn port→process from TX; deliver RX directly to app stacks.
    ClientHub,
}

/// The NIC device process.
pub struct NicProc {
    pub name: String,
    nic: Nic,
    mode: NicMode,
    /// The NIC at the other end of the cable.
    peer: Option<ProcId>,
    /// Client-hub: local port → owning process.
    port_owner: HashMap<u16, ProcId>,
    /// Client-hub: processes registered for default/ARP traffic.
    default_owner: Option<ProcId>,
}

impl NicProc {
    pub fn new(name: impl Into<String>, nic: Nic, mode: NicMode) -> NicProc {
        NicProc {
            name: name.into(),
            nic,
            mode,
            peer: None,
            port_owner: HashMap::new(),
            default_owner: None,
        }
    }

    /// Wire to the peer NIC (done by the builder once both exist).
    pub fn with_peer(mut self, peer: ProcId) -> NicProc {
        self.peer = Some(peer);
        self
    }

    fn transmit(&mut self, ctx: &mut Ctx<'_, Msg>, frame: PktBuf) {
        let Some(peer) = self.peer else { return };
        for (wire_frame, ser_time) in self.nic.host_tx(frame) {
            // Serialization occupies the device pipeline — this is the
            // 10 Gb/s ceiling of Figures 4-5.
            ctx.charge_ns(ser_time.as_nanos());
            ctx.send_delayed(peer, Msg::WireFrame(wire_frame), self.nic.link_latency());
        }
    }

    fn receive(&mut self, ctx: &mut Ctx<'_, Msg>, frame: PktBuf) {
        ctx.charge_ns(calibration::NIC_DESC_NS);
        let now = ctx.now().as_nanos();
        match &self.mode {
            NicMode::Server { driver } => {
                let driver = *driver;
                if let Some(queue) = self.nic.wire_rx(frame, now) {
                    // The frame is in the ring; hand it to the driver.
                    if let Some(f) = self.nic.rx_pop(queue) {
                        ctx.send(driver, Msg::RxFrame { queue, frame: f });
                    }
                }
            }
            NicMode::ClientHub => {
                // Steer by destination port to the owning client process.
                let owner = neat_nic::Steering::parse_flow(&frame)
                    .and_then(|f| self.port_owner.get(&f.key.dst_port).copied())
                    .or(self.default_owner);
                if let Some(pid) = owner {
                    ctx.send(pid, Msg::NetRx(frame));
                }
            }
        }
    }
}

impl Process<Msg> for NicProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn dispatch_cost(&self) -> u64 {
        0 // device pipeline costs are charged explicitly in ns
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcId, msgs: Vec<Msg>) {
        // A coalesced run of wire frames: push them all into the RX rings,
        // then drain each touched queue once — one descriptor-ring pass
        // per batch instead of one per frame.
        if let NicMode::Server { driver } = &self.mode {
            let driver = *driver;
            if msgs.iter().all(|m| matches!(m, Msg::WireFrame(_))) {
                let now = ctx.now().as_nanos();
                let mut touched: Vec<usize> = Vec::new();
                for msg in msgs {
                    let Msg::WireFrame(frame) = msg else {
                        unreachable!()
                    };
                    ctx.charge_ns(calibration::NIC_DESC_NS);
                    if let Some(q) = self.nic.wire_rx(frame, now) {
                        if !touched.contains(&q) {
                            touched.push(q);
                        }
                    }
                }
                for q in touched {
                    for f in self.nic.rx_pop_batch(q, usize::MAX) {
                        ctx.send(driver, Msg::RxFrame { queue: q, frame: f });
                    }
                }
                return;
            }
        }
        for msg in msgs {
            self.on_event(ctx, Event::Message { from, msg });
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            // Delivered via `on_batch` in practice; unroll defensively if a
            // batch ever reaches the scalar path.
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
            Event::Start => {}
            Event::Timer { .. } => {}
            Event::Message { from, msg } => match msg {
                Msg::WireFrame(frame) => self.receive(ctx, frame),
                Msg::HostTx(frame) => self.transmit(ctx, frame),
                Msg::NetTx(frame) => {
                    // Client-hub: learn the sender's ports from its flows.
                    if matches!(self.mode, NicMode::ClientHub) {
                        if let Some(f) = neat_nic::Steering::parse_flow(&frame) {
                            self.port_owner.insert(f.key.src_port, from);
                        }
                    }
                    self.transmit(ctx, frame);
                }
                Msg::Announce { head, .. } => {
                    // Client-hub registration (first becomes ARP handler).
                    self.default_owner.get_or_insert(head);
                }
                Msg::SetNeighbor { role, pid } => match role {
                    crate::msg::NeighborRole::PeerNic => self.peer = Some(pid),
                    crate::msg::NeighborRole::Driver => {
                        if let NicMode::Server { driver } = &mut self.mode {
                            *driver = pid;
                        }
                    }
                    _ => {}
                },
                Msg::NicAddFilter { flow, queue } => {
                    self.nic.add_filter(flow, queue);
                }
                Msg::NicSetAccepting { queue, accepting } => {
                    self.nic.set_queue_accepting(queue, accepting);
                }
                Msg::NicGrowQueues { n } => {
                    self.nic.grow_queues(n);
                }
                Msg::NicSetTracking { on } => {
                    self.nic.set_tracking(on);
                }
                _ => {}
            },
        }
    }
}

/// Convenience: the serialization-bounded throughput sanity number used in
/// tests — requests/sec the link itself supports at tiny frames.
pub fn link_bound_small_frame_rps() -> f64 {
    neat_nic::LinkModel::ten_gbe().max_fps(60) / 4.0 // ~4 frames per request
}

/// Build the default server NIC hardware with `queues` queue pairs.
pub fn default_server_nic(queues: usize) -> Nic {
    Nic::new(
        neat_nic::NicConfig {
            queue_pairs: queues,
            ..Default::default()
        },
        neat_nic::FaultInjector::disabled(0x11C_0FF),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_bound_sanity() {
        let rps = link_bound_small_frame_rps();
        assert!(
            rps > 1e6,
            "link is never the bottleneck at 20B files: {rps}"
        );
    }

    #[test]
    fn default_nic_queue_count() {
        let nic = default_server_nic(3);
        assert_eq!(nic.num_queues(), 3);
    }
}
