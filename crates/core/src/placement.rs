//! Core/thread placement: which process runs on which hardware thread.
//!
//! The paper's evaluation is largely a study of placements (Figures 6, 8,
//! and 10): dedicating cores to OS components, colocating relatively idle
//! components on SMT siblings, and leaving the rest to the applications.
//! [`Placement`] is a simple slot allocator over a machine's `(core,
//! thread)` grid that reproduces those layouts.

use neat_sim::{MachineId, Sim};

/// One hardware-thread slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    pub core: u32,
    pub thread: u32,
}

/// An ordered allocator of hardware threads on one machine.
#[derive(Debug, Clone)]
pub struct Placement {
    pub machine_cores: u32,
    pub threads_per_core: u32,
    next_core: u32,
    /// Slots explicitly assigned so far.
    used: Vec<Slot>,
}

impl Placement {
    pub fn new(machine_cores: u32, threads_per_core: u32) -> Placement {
        Placement {
            machine_cores,
            threads_per_core,
            next_core: 0,
            used: Vec::new(),
        }
    }

    /// Claim thread 0 of the next free core (a dedicated core).
    pub fn dedicated_core(&mut self) -> Slot {
        let s = Slot {
            core: self.next_core,
            thread: 0,
        };
        assert!(
            s.core < self.machine_cores,
            "placement exceeds machine cores"
        );
        self.next_core += 1;
        self.used.push(s);
        s
    }

    /// Claim a specific slot (for hand-built layouts like Figure 8/10).
    pub fn at(&mut self, core: u32, thread: u32) -> Slot {
        assert!(core < self.machine_cores && thread < self.threads_per_core);
        let s = Slot { core, thread };
        assert!(!self.used.contains(&s), "slot {s:?} already used");
        self.used.push(s);
        s
    }

    /// Claim the SMT sibling (thread 1) of an already-claimed core.
    pub fn sibling_of(&mut self, s: Slot) -> Slot {
        assert!(self.threads_per_core >= 2, "no SMT on this machine");
        self.at(s.core, 1 - s.thread)
    }

    /// All slots not yet claimed, cores-first order (thread 0 of every
    /// remaining core, then thread 1 of every core).
    pub fn remaining(&self) -> Vec<Slot> {
        let mut out = Vec::new();
        for t in 0..self.threads_per_core {
            for c in 0..self.machine_cores {
                let s = Slot { core: c, thread: t };
                if !self.used.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Claim the next remaining slot, cores-first.
    pub fn next_remaining(&mut self) -> Option<Slot> {
        let s = self.remaining().into_iter().next()?;
        self.used.push(s);
        Some(s)
    }

    pub fn used_count(&self) -> usize {
        self.used.len()
    }

    /// Resolve a slot to the simulator's hardware-thread id.
    pub fn hw(&self, sim: &Sim<crate::Msg>, machine: MachineId, s: Slot) -> neat_sim::HwThreadId {
        sim.hw_thread(machine, s.core, s.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_cores_advance() {
        let mut p = Placement::new(12, 1);
        let a = p.dedicated_core();
        let b = p.dedicated_core();
        assert_eq!(a, Slot { core: 0, thread: 0 });
        assert_eq!(b, Slot { core: 1, thread: 0 });
        assert_eq!(p.remaining().len(), 10);
    }

    #[test]
    fn sibling_colocation() {
        let mut p = Placement::new(8, 2);
        let a = p.dedicated_core();
        let sib = p.sibling_of(a);
        assert_eq!(sib, Slot { core: 0, thread: 1 });
        assert_eq!(p.remaining().len(), 14);
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn double_claim_panics() {
        let mut p = Placement::new(4, 2);
        p.at(2, 1);
        p.at(2, 1);
    }

    #[test]
    fn remaining_orders_cores_first() {
        let mut p = Placement::new(2, 2);
        p.at(0, 0);
        let r = p.remaining();
        assert_eq!(
            r,
            vec![
                Slot { core: 1, thread: 0 },
                Slot { core: 0, thread: 1 },
                Slot { core: 1, thread: 1 }
            ]
        );
    }

    #[test]
    fn amd_12_core_fig6_layout_fits() {
        // Figure 6(b): OS, SYSCALL, NIC Drv, NEaT 1-3, Web 1-6 = 12 cores.
        let mut p = Placement::new(12, 1);
        let _os = p.dedicated_core();
        let _sys = p.dedicated_core();
        let _drv = p.dedicated_core();
        for _ in 0..3 {
            p.dedicated_core();
        }
        let webs = p.remaining();
        assert_eq!(webs.len(), 6);
    }
}
