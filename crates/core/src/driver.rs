//! The NIC driver process.
//!
//! One single-threaded process on its own core (§3.5: the paper never
//! needed to scale the driver — 10G line rate fits on one core). It moves
//! frames between the NIC's queues and the per-replica channels, and it is
//! the enforcement point of the recovery protocol: while a replica is down
//! the driver "does not pass any packets to the recovering replica until it
//! announces itself again" (§3.6).

use crate::msg::Msg;
use neat_sim::{calibration, Ctx, Event, ProcId, Process, Time};

/// The NIC driver.
pub struct DriverProc {
    pub name: String,
    /// The NIC device this driver serves.
    nic: ProcId,
    /// Head process of each replica's ingress pipeline, indexed by queue.
    /// `None` while the replica is down (recovery hold).
    heads: Vec<Option<ProcId>>,
    /// Frames dropped because the replica was down.
    pub held_dropped: u64,
    pub rx_forwarded: u64,
    pub tx_forwarded: u64,
    /// End of the last descriptor operation (batch amortization).
    last_op_ns: u64,
    obs: DriverObs,
}

/// Metrics-registry handles for the driver's forwarding counters.
struct DriverObs {
    rx_forwarded: neat_obs::Counter,
    tx_forwarded: neat_obs::Counter,
    held_dropped: neat_obs::Counter,
}

impl DriverObs {
    fn new() -> DriverObs {
        DriverObs {
            rx_forwarded: neat_obs::counter("driver.rx_forwarded"),
            tx_forwarded: neat_obs::counter("driver.tx_forwarded"),
            held_dropped: neat_obs::counter("driver.held_dropped"),
        }
    }
}

impl DriverProc {
    pub fn new(name: impl Into<String>, nic: ProcId, queues: usize) -> DriverProc {
        DriverProc {
            name: name.into(),
            nic,
            heads: vec![None; queues],
            held_dropped: 0,
            rx_forwarded: 0,
            tx_forwarded: 0,
            last_op_ns: 0,
            obs: DriverObs::new(),
        }
    }

    /// NAPI-style batching: descriptor work within a batch window is much
    /// cheaper than the first (cold) packet of a batch.
    fn desc_cost(&mut self, now: u64, cold: u64, batched: u64) -> u64 {
        let cost = if now.saturating_sub(self.last_op_ns) <= calibration::DRV_BATCH_WINDOW_NS {
            batched
        } else {
            cold
        };
        self.last_op_ns = now;
        cost
    }

    /// RX forward: NIC queue -> replica pipeline head, at the given
    /// descriptor cost.
    fn rx_frame(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        queue: usize,
        frame: neat_net::PktBuf,
        cost: u64,
    ) {
        ctx.charge(cost);
        match self.heads.get(queue).copied().flatten() {
            Some(head) if ctx.is_alive(head) => {
                self.rx_forwarded += 1;
                self.obs.rx_forwarded.inc();
                if !neat_net::pktbuf::pooling() {
                    // Pool ablation: the pre-pool path deep-copied the
                    // frame into the replica's channel here.
                    ctx.charge(calibration::copy_cost(frame.len()));
                }
                ctx.send(head, Msg::NetRx(frame));
            }
            _ => {
                // Replica down: hold (drop) until it re-announces.
                // TCP retransmission absorbs the gap (§3.6).
                self.held_dropped += 1;
                self.obs.held_dropped.inc();
            }
        }
    }

    /// TX forward: stack component -> NIC, at the given descriptor cost.
    fn tx_frame(&mut self, ctx: &mut Ctx<'_, Msg>, frame: neat_net::PktBuf, cost: u64) {
        ctx.charge(cost);
        self.tx_forwarded += 1;
        self.obs.tx_forwarded.inc();
        if !neat_net::pktbuf::pooling() {
            ctx.charge(calibration::copy_cost(frame.len()));
        }
        ctx.send(self.nic, Msg::HostTx(frame));
    }
}

impl Process<Msg> for DriverProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcId, msgs: Vec<Msg>) {
        // A coalesced run of frames is one vectored ring pass: the first
        // frame pays the usual (possibly cold) descriptor cost, the rest
        // pay the bulk vectored rate (§3.4; rx_pop_batch on the device
        // side is the matching NIC-facing drain).
        let mut in_run = false;
        for msg in msgs {
            match msg {
                Msg::RxFrame { queue, frame } => {
                    let now = ctx.now().as_nanos();
                    let cost = if in_run {
                        self.last_op_ns = now;
                        calibration::DRV_RX_PKT_VECTORED
                    } else {
                        self.desc_cost(
                            now,
                            calibration::DRV_RX_PKT,
                            calibration::DRV_RX_PKT_BATCHED,
                        )
                    };
                    self.rx_frame(ctx, queue, frame, cost);
                    in_run = true;
                }
                Msg::NetTx(frame) => {
                    let now = ctx.now().as_nanos();
                    let cost = if in_run {
                        self.last_op_ns = now;
                        calibration::DRV_TX_PKT_VECTORED
                    } else {
                        self.desc_cost(
                            now,
                            calibration::DRV_TX_PKT,
                            calibration::DRV_TX_PKT_BATCHED,
                        )
                    };
                    self.tx_frame(ctx, frame, cost);
                    in_run = true;
                }
                other => self.on_event(ctx, Event::Message { from, msg: other }),
            }
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        let Event::Message { msg, .. } = ev else {
            return;
        };
        match msg {
            // --- RX path: NIC queue -> replica pipeline head.
            Msg::RxFrame { queue, frame } => {
                let now = ctx.now().as_nanos();
                let cost = self.desc_cost(
                    now,
                    calibration::DRV_RX_PKT,
                    calibration::DRV_RX_PKT_BATCHED,
                );
                self.rx_frame(ctx, queue, frame, cost);
            }
            // --- TX path: any stack component -> NIC.
            Msg::NetTx(frame) => {
                let now = ctx.now().as_nanos();
                let cost = self.desc_cost(
                    now,
                    calibration::DRV_TX_PKT,
                    calibration::DRV_TX_PKT_BATCHED,
                );
                self.tx_frame(ctx, frame, cost);
            }
            // --- Replica lifecycle.
            Msg::Announce { queue, head } => {
                if queue >= self.heads.len() {
                    self.heads.resize(queue + 1, None);
                }
                self.heads[queue] = Some(head);
            }
            Msg::ReplicaDown { queue } => {
                if let Some(h) = self.heads.get_mut(queue) {
                    *h = None;
                }
            }
            // --- NIC control plane, forwarded to the device.
            Msg::NicAddFilter { flow, queue } => {
                ctx.charge(calibration::DRV_TX_PKT); // PCI write cost
                ctx.send(self.nic, Msg::NicAddFilter { flow, queue });
            }
            Msg::NicSetAccepting { queue, accepting } => {
                ctx.send(self.nic, Msg::NicSetAccepting { queue, accepting });
            }
            Msg::NicGrowQueues { n } => {
                if n > self.heads.len() {
                    self.heads.resize(n, None);
                }
                ctx.send(self.nic, Msg::NicGrowQueues { n });
            }
            // --- Fault injection.
            Msg::Poison => ctx.crash_self(),
            _ => {}
        }
    }
}

/// How long the driver waits before polling an empty queue again when
/// sharing a core (unused on dedicated cores — the MWAIT model covers it).
pub const DRIVER_IDLE_REPOLL: Time = Time(20_000);
