//! The stack-side half of the socket fast path (§3.2).
//!
//! Each replica's socket-owning component (the TCP process in
//! multi-component mode, the whole replica in single-component mode) embeds
//! a [`SockServer`]: a [`TcpStack`] plus the bookkeeping that maps sockets
//! to their owning application processes and translates stack events into
//! fast-path messages. The paper's "mostly system-call-less" design means
//! these messages model shared-memory queue operations, not kernel calls.

use crate::msg::{ConnHandle, Msg, ReplFlow};
use neat_net::FlowKey;
use neat_sim::ProcId;
use neat_tcp::{SockEvent, SocketId, TcbImage, TcpConfig, TcpStack};
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Stack-side socket service.
#[derive(Debug)]
pub struct SockServer {
    pub stack: TcpStack,
    /// Connection socket → owning application.
    owners: HashMap<SocketId, ProcId>,
    /// Listening port → (listener socket, owning application).
    listeners: HashMap<u16, (SocketId, ProcId)>,
    /// Listener socket id → port (reverse map).
    listener_ports: HashMap<SocketId, u16>,
    /// Pending active opens: socket → (app, token).
    connects: HashMap<SocketId, (ProcId, u64)>,
    /// Data accepted from apps but not yet pushed into the stack
    /// (send-buffer backpressure).
    backlog: HashMap<SocketId, VecDeque<u8>>,
    /// Application stream bytes the stack has accepted per connection —
    /// the replication-side half of the output-commit contract: a
    /// migrated library compares this against its own sent counter and
    /// resends the difference.
    app_bytes: HashMap<SocketId, u64>,
    /// Messages owed to applications.
    to_app: Vec<(ProcId, Msg)>,
    /// Count of sockets opened/accepted (TCP_OPEN/TCP_CLOSE charging).
    pub opened: u64,
    pub closed: u64,
}

impl SockServer {
    pub fn new(local_ip: Ipv4Addr, cfg: TcpConfig) -> SockServer {
        SockServer {
            stack: TcpStack::new(local_ip, cfg),
            owners: HashMap::new(),
            listeners: HashMap::new(),
            listener_ports: HashMap::new(),
            connects: HashMap::new(),
            backlog: HashMap::new(),
            app_bytes: HashMap::new(),
            to_app: Vec::new(),
            opened: 0,
            closed: 0,
        }
    }

    /// Handle one application fast-path message. Returns the number of
    /// socket operations performed (for cost charging).
    pub fn handle_app(&mut self, from: ProcId, msg: Msg, now: u64) -> u32 {
        match msg {
            Msg::Listen { port, app } => {
                if let Ok(lid) = self.stack.listen(port) {
                    self.listeners.insert(port, (lid, app));
                    self.listener_ports.insert(lid, port);
                }
                self.to_app.push((from, Msg::ListenOk { port }));
                1
            }
            Msg::Connect { remote, app, token } => {
                match self.stack.connect(remote.0, remote.1, now) {
                    Ok(sock) => {
                        self.owners.insert(sock, app);
                        self.connects.insert(sock, (app, token));
                    }
                    Err(_) => self.to_app.push((app, Msg::ConnFailed { token })),
                }
                1
            }
            Msg::ConnSend { sock, data } => {
                let q = self.backlog.entry(sock).or_default();
                q.extend(data);
                self.flush_backlog(sock);
                1
            }
            Msg::ConnClose { sock } => {
                let _ = self.stack.close(sock, now);
                1
            }
            Msg::SetSockOpt { sock, opt } => {
                let _ = self.stack.set_opt(sock, opt);
                1
            }
            _ => 0,
        }
    }

    fn flush_backlog(&mut self, sock: SocketId) {
        if let Some(q) = self.backlog.get_mut(&sock) {
            while !q.is_empty() {
                let chunk: Vec<u8> = q.iter().copied().take(16 * 1024).collect();
                match self.stack.send(sock, &chunk) {
                    Ok(n) => {
                        q.drain(..n);
                        if n == 0 {
                            break;
                        }
                        *self.app_bytes.entry(sock).or_insert(0) += n as u64;
                    }
                    Err(_) => break,
                }
            }
            if q.is_empty() {
                self.backlog.remove(&sock);
            }
        }
    }

    /// Translate queued stack events into application messages. `me` is
    /// the pid handles should reference. Returns (events handled,
    /// connections opened, connections closed) for cost charging.
    pub fn process_events(&mut self, me: ProcId) -> (u32, u32, u32) {
        let mut handled = 0;
        let mut opened = 0;
        let mut closed = 0;
        while let Some(ev) = self.stack.poll_event() {
            handled += 1;
            match ev {
                SockEvent::Acceptable(lid) => {
                    let Some(port) = self.listener_ports.get(&lid).copied() else {
                        continue;
                    };
                    let Some((_, app)) = self.listeners.get(&port).copied() else {
                        continue;
                    };
                    while let Ok(sock) = self.stack.accept(lid) {
                        self.owners.insert(sock, app);
                        opened += 1;
                        self.opened += 1;
                        self.to_app.push((
                            app,
                            Msg::Incoming {
                                port,
                                conn: ConnHandle { stack: me, sock },
                            },
                        ));
                        // Data may already have arrived with the handshake.
                        self.pump_readable(me, sock);
                    }
                }
                SockEvent::Connected(sock) => {
                    if let Some((app, token)) = self.connects.remove(&sock) {
                        opened += 1;
                        self.opened += 1;
                        self.to_app.push((
                            app,
                            Msg::ConnOpen {
                                conn: ConnHandle { stack: me, sock },
                                token,
                            },
                        ));
                    }
                }
                SockEvent::Readable(sock) => {
                    self.pump_readable(me, sock);
                }
                SockEvent::Writable(sock) => {
                    self.flush_backlog(sock);
                }
                SockEvent::PeerClosed(sock) => {
                    // Drain any remaining data first, then signal EOF.
                    self.pump_readable(me, sock);
                    if let Some(app) = self.owners.get(&sock).copied() {
                        self.to_app.push((
                            app,
                            Msg::ConnEof {
                                conn: ConnHandle { stack: me, sock },
                            },
                        ));
                    }
                }
                SockEvent::Closed(sock) | SockEvent::Aborted(sock) => {
                    let aborted = matches!(ev, SockEvent::Aborted(_));
                    if let Some((app, token)) = self.connects.remove(&sock) {
                        // Active open failed.
                        let _ = app;
                        self.to_app.push((app, Msg::ConnFailed { token }));
                    } else if let Some(app) = self.owners.remove(&sock) {
                        closed += 1;
                        self.closed += 1;
                        self.to_app.push((
                            app,
                            Msg::ConnClosed {
                                conn: ConnHandle { stack: me, sock },
                                aborted,
                            },
                        ));
                    }
                    self.backlog.remove(&sock);
                    self.app_bytes.remove(&sock);
                }
            }
        }
        (handled, opened, closed)
    }

    fn pump_readable(&mut self, me: ProcId, sock: SocketId) {
        let Some(app) = self.owners.get(&sock).copied() else {
            return;
        };
        // Vectored drain: pull the whole receive buffer through one
        // iovec-style call per 16 KiB rather than looping 4 KiB at a time.
        let mut buf = [0u8; 16384];
        let mut data = Vec::new();
        loop {
            let (a, rest) = buf.split_at_mut(4096);
            let (b, rest) = rest.split_at_mut(4096);
            let (c, d) = rest.split_at_mut(4096);
            match self.stack.recv_vectored(sock, &mut [a, b, c, d]) {
                Ok(0) => break,
                Ok(n) => {
                    data.extend_from_slice(&buf[..n]);
                    if n < buf.len() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        if !data.is_empty() {
            self.to_app.push((
                app,
                Msg::ConnData {
                    conn: ConnHandle { stack: me, sock },
                    data,
                },
            ));
        }
    }

    /// Take the application messages produced so far.
    pub fn take_app_msgs(&mut self) -> Vec<(ProcId, Msg)> {
        std::mem::take(&mut self.to_app)
    }

    /// Wire segments owed: `(dst ip, raw TCP bytes)`.
    pub fn poll_wire(&mut self, now: u64) -> Vec<(Ipv4Addr, Vec<u8>)> {
        let mut out = Vec::new();
        while let Some((dst, h, payload)) = self.stack.poll_transmit(now) {
            let bytes = h.emit(&payload, self.stack.local_ip, dst);
            out.push((dst, bytes));
        }
        out
    }

    pub fn next_timeout(&self) -> Option<u64> {
        self.stack.next_timeout()
    }

    pub fn on_timer(&mut self, now: u64) {
        self.stack.on_timer(now);
        // Timer ticks are the natural low-frequency heartbeat to refresh
        // the `tcp.conn.*` memory gauges from this replica's budget.
        self.stack.publish_mem_gauges();
    }

    /// Live connection count (lazy-termination GC input, §3.4).
    pub fn conn_count(&self) -> usize {
        self.stack.conn_count()
    }

    /// Accounted connection-memory budget of the underlying stack.
    pub fn budget(&self) -> &neat_tcp::ConnBudget {
        self.stack.budget()
    }

    /// Ports currently being listened on.
    pub fn listen_ports(&self) -> Vec<u16> {
        self.listeners.keys().copied().collect()
    }

    /// Listening ports with their owning apps, sorted by port.
    pub fn listeners(&self) -> Vec<(u16, ProcId)> {
        let mut v: Vec<(u16, ProcId)> = self
            .listeners
            .iter()
            .map(|(port, (_, app))| (*port, *app))
            .collect();
        v.sort_unstable_by_key(|(p, _)| *p);
        v
    }

    // ------------------------------------------------------------------
    // Flow replication & migration
    // ------------------------------------------------------------------

    /// Application bound to a connection socket, if any.
    pub fn owner_of(&self, sock: SocketId) -> Option<ProcId> {
        self.owners.get(&sock).copied()
    }

    /// App-stream bytes the stack has accepted on `sock`.
    pub fn app_bytes_of(&self, sock: SocketId) -> u64 {
        self.app_bytes.get(&sock).copied().unwrap_or(0)
    }

    /// Enable (or disable) checkpoint-delta tracking in the stack.
    pub fn set_repl_tracking(&mut self, on: bool) {
        self.stack.set_repl_tracking(on);
    }

    /// Drain this flush's checkpoint delta: dirty replicable flows as
    /// ready-to-ship [`ReplFlow`]s, plus the flows that closed. Flows not
    /// yet bound to an app (accept-queue residents) are skipped — there is
    /// no application handle to rebind on the far side.
    pub fn take_checkpoint_delta(&mut self) -> (Vec<ReplFlow>, Vec<FlowKey>) {
        let dirty = self.stack.take_repl_dirty();
        let closed = self.stack.take_repl_closed();
        let mut flows = Vec::new();
        for (id, flow, img) in dirty {
            let Some(owner) = self.owners.get(&id).copied() else {
                continue;
            };
            flows.push(ReplFlow {
                flow,
                old_sock: id,
                owner,
                app_bytes: self.app_bytes_of(id),
                img: img.encode(),
            });
        }
        (flows, closed)
    }

    /// Checkpoint every app-bound replicable connection (sent when a
    /// buddy is first assigned, so its store starts complete).
    pub fn full_checkpoint(&self) -> Vec<ReplFlow> {
        self.stack
            .export_all_conns()
            .into_iter()
            .filter_map(|(id, flow, img)| {
                let owner = self.owners.get(&id).copied()?;
                Some(ReplFlow {
                    flow,
                    old_sock: id,
                    owner,
                    app_bytes: self.app_bytes_of(id),
                    img: img.encode(),
                })
            })
            .collect()
    }

    /// Adopt replicated flows (failover restore or live-migration import).
    /// `old` is the replica the flows lived in. Each successful restore
    /// rebinds the owning app via [`Msg::ConnMigrated`] and is returned so
    /// the supervisor can re-steer the flow to this replica's queue.
    pub fn restore_flows(&mut self, me: ProcId, old: ProcId, flows: Vec<ReplFlow>) -> Vec<FlowKey> {
        let mut restored = Vec::new();
        for f in flows {
            let Some(img) = TcbImage::decode(&f.img) else {
                neat_obs::counter_add("repl.decode_errors", 1);
                continue;
            };
            match self.stack.restore_conn(&img) {
                Ok(new_id) => {
                    self.owners.insert(new_id, f.owner);
                    self.app_bytes.insert(new_id, f.app_bytes);
                    self.opened += 1;
                    self.to_app.push((
                        f.owner,
                        Msg::ConnMigrated {
                            old: ConnHandle {
                                stack: old,
                                sock: f.old_sock,
                            },
                            new: ConnHandle {
                                stack: me,
                                sock: new_id,
                            },
                            app_bytes: f.app_bytes,
                        },
                    ));
                    restored.push(f.flow);
                }
                Err(_) => {
                    neat_obs::counter_add("repl.restore_refused", 1);
                }
            }
        }
        restored
    }

    /// Export every app-bound established flow for live migration and
    /// remove them locally — silently (no FIN/RST/user event): the flows
    /// keep living in the target replica. Unbound accept-queue residents
    /// stay behind and drain normally.
    pub fn export_for_migration(&mut self) -> Vec<ReplFlow> {
        let exported = self.full_checkpoint();
        for f in &exported {
            self.stack.remove_conn(f.old_sock);
            self.owners.remove(&f.old_sock);
            self.app_bytes.remove(&f.old_sock);
            self.backlog.remove(&f.old_sock);
        }
        self.closed += exported.len() as u64;
        exported
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_net::TcpHeader;

    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);
    const APP: ProcId = ProcId(77);
    const ME: ProcId = ProcId(50);

    fn cfg() -> TcpConfig {
        TcpConfig {
            initial_rto_ns: 50_000_000,
            ..TcpConfig::default()
        }
    }

    /// Drive a client-side raw TcpStack against a SockServer.
    fn pump(client: &mut TcpStack, srv: &mut SockServer, now: u64) {
        loop {
            let mut moved = false;
            while let Some((_, h, p)) = client.poll_transmit(now) {
                let bytes = h.emit(&p, CLIENT, SERVER);
                let (g, r) = TcpHeader::parse(&bytes, CLIENT, SERVER).unwrap();
                srv.stack.handle_segment(CLIENT, &g, &bytes[r], now);
                moved = true;
            }
            srv.process_events(ME);
            for (dst, seg) in srv.poll_wire(now) {
                assert_eq!(dst, CLIENT);
                let (g, r) = TcpHeader::parse(&seg, SERVER, CLIENT).unwrap();
                client.handle_segment(SERVER, &g, &seg[r], now);
                moved = true;
            }
            if !moved {
                break;
            }
        }
    }

    #[test]
    fn listen_accept_incoming_flow() {
        let mut srv = SockServer::new(SERVER, cfg());
        let mut client = TcpStack::new(CLIENT, cfg());
        srv.handle_app(APP, Msg::Listen { port: 80, app: APP }, 0);
        let msgs = srv.take_app_msgs();
        assert!(matches!(msgs[0].1, Msg::ListenOk { port: 80 }));
        client.connect(SERVER, 80, 0).unwrap();
        pump(&mut client, &mut srv, 0);
        let msgs = srv.take_app_msgs();
        let incoming = msgs
            .iter()
            .find(|(_, m)| matches!(m, Msg::Incoming { .. }))
            .expect("incoming connection surfaced to the app");
        assert_eq!(incoming.0, APP);
    }

    #[test]
    fn data_flows_to_app_and_back() {
        let mut srv = SockServer::new(SERVER, cfg());
        let mut client = TcpStack::new(CLIENT, cfg());
        srv.handle_app(APP, Msg::Listen { port: 80, app: APP }, 0);
        srv.take_app_msgs();
        let cconn = client.connect(SERVER, 80, 0).unwrap();
        pump(&mut client, &mut srv, 0);
        let conn = match srv.take_app_msgs().into_iter().find_map(|(_, m)| match m {
            Msg::Incoming { conn, .. } => Some(conn),
            _ => None,
        }) {
            Some(c) => c,
            None => panic!("no incoming"),
        };
        // Client sends a request.
        client.send(cconn, b"GET /x HTTP/1.1\r\n\r\n").unwrap();
        pump(&mut client, &mut srv, 1000);
        let data = srv
            .take_app_msgs()
            .into_iter()
            .find_map(|(_, m)| match m {
                Msg::ConnData { data, .. } => Some(data),
                _ => None,
            })
            .expect("request delivered to app");
        assert_eq!(data, b"GET /x HTTP/1.1\r\n\r\n");
        // App responds through the fast path.
        srv.handle_app(
            APP,
            Msg::ConnSend {
                sock: conn.sock,
                data: b"HTTP/1.1 200 OK\r\n\r\n".to_vec(),
            },
            2000,
        );
        pump(&mut client, &mut srv, 2000);
        let mut buf = [0u8; 128];
        let n = client.recv(cconn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"HTTP/1.1 200 OK\r\n\r\n");
    }

    #[test]
    fn eof_and_close_surface_to_app() {
        let mut srv = SockServer::new(SERVER, cfg());
        let mut client = TcpStack::new(CLIENT, cfg());
        srv.handle_app(APP, Msg::Listen { port: 80, app: APP }, 0);
        srv.take_app_msgs();
        let cconn = client.connect(SERVER, 80, 0).unwrap();
        pump(&mut client, &mut srv, 0);
        let conn = srv
            .take_app_msgs()
            .into_iter()
            .find_map(|(_, m)| match m {
                Msg::Incoming { conn, .. } => Some(conn),
                _ => None,
            })
            .unwrap();
        client.close(cconn, 100).unwrap();
        pump(&mut client, &mut srv, 100);
        let msgs = srv.take_app_msgs();
        assert!(
            msgs.iter().any(|(_, m)| matches!(m, Msg::ConnEof { .. })),
            "EOF surfaced: {msgs:?}"
        );
        // Server app closes its side; the connection winds down fully.
        srv.handle_app(APP, Msg::ConnClose { sock: conn.sock }, 200);
        pump(&mut client, &mut srv, 200);
        let msgs = srv.take_app_msgs();
        assert!(
            msgs.iter()
                .any(|(_, m)| matches!(m, Msg::ConnClosed { aborted: false, .. })),
            "close surfaced: {msgs:?}"
        );
    }

    #[test]
    fn backlogged_sends_flush_on_writable() {
        let mut srv = SockServer::new(SERVER, cfg());
        let mut client = TcpStack::new(CLIENT, cfg());
        srv.handle_app(APP, Msg::Listen { port: 80, app: APP }, 0);
        srv.take_app_msgs();
        let _cconn = client.connect(SERVER, 80, 0).unwrap();
        pump(&mut client, &mut srv, 0);
        let conn = srv
            .take_app_msgs()
            .into_iter()
            .find_map(|(_, m)| match m {
                Msg::Incoming { conn, .. } => Some(conn),
                _ => None,
            })
            .unwrap();
        // Push far more than the 64KB send buffer.
        let big = vec![5u8; 256 * 1024];
        srv.handle_app(
            APP,
            Msg::ConnSend {
                sock: conn.sock,
                data: big.clone(),
            },
            100,
        );
        // Drain repeatedly with timers (ACK clock).
        let mut received = Vec::new();
        let mut now = 100u64;
        for _ in 0..2000 {
            now += 1_000_000;
            srv.on_timer(now);
            client.on_timer(now);
            pump(&mut client, &mut srv, now);
            let mut buf = [0u8; 8192];
            for id in client.socket_ids() {
                while let Ok(n) = client.recv(id, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    received.extend_from_slice(&buf[..n]);
                }
            }
            if received.len() >= big.len() {
                break;
            }
        }
        assert_eq!(received.len(), big.len(), "entire backlog delivered");
    }
}
