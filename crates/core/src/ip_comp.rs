//! The IP component of the multi-component replica (§3.7, Figure 3).
//!
//! Owns link/ARP/ICMP state and IPv4 validation/encapsulation. Mostly
//! read-only state (the ARP cache is reconstructible), so its crash
//! recovery is application-transparent (Table 3).

use crate::msg::{Msg, NeighborRole};
use crate::netcode::{FrameIo, RxClass};
use neat_net::ethernet::MacAddr;
use neat_net::ipv4::IpProtocol;
use neat_sim::{calibration, Ctx, Event, ProcId, Process};
use std::net::Ipv4Addr;

/// The IP process.
pub struct IpProc {
    pub name: String,
    pub queue: usize,
    driver: ProcId,
    tcp: Option<ProcId>,
    udp: Option<ProcId>,
    io: FrameIo,
}

impl IpProc {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        queue: usize,
        driver: ProcId,
        tcp: Option<ProcId>,
        udp: Option<ProcId>,
        ip: Ipv4Addr,
        mac: MacAddr,
        arp_seed: Vec<(Ipv4Addr, MacAddr)>,
    ) -> IpProc {
        let mut io = FrameIo::new(ip, mac);
        for (a, m) in arp_seed {
            io.seed_arp(a, m);
        }
        IpProc {
            name: name.into(),
            queue,
            driver,
            tcp,
            udp,
            io,
        }
    }

    fn drain_wire(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for frame in self.io.drain() {
            ctx.send(self.driver, Msg::NetTx(frame));
        }
    }
}

impl Process<Msg> for IpProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            // Delivered via `on_batch` in practice; unroll defensively if a
            // batch ever reaches the scalar path.
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
            Event::Start | Event::Timer { .. } => {}
            Event::Message { msg, .. } => match msg {
                Msg::PfPass(frame) | Msg::NetRx(frame) => {
                    ctx.charge(calibration::IP_RX_PKT);
                    if !neat_net::pktbuf::pooling() {
                        // Pool ablation: the pre-pool header strip copied
                        // the L4 payload instead of taking a window.
                        ctx.charge(calibration::copy_cost(frame.len()));
                    }
                    let now = ctx.now().as_nanos();
                    match self.io.classify_rx(&frame, now) {
                        RxClass::Tcp { src, seg } => {
                            if let Some(tcp) = self.tcp {
                                ctx.send(tcp, Msg::IpRxTcp { src, seg });
                            }
                        }
                        RxClass::Udp { src, dgram } => {
                            if let Some(udp) = self.udp {
                                ctx.send(udp, Msg::IpRxUdp { src, dgram });
                            }
                        }
                        RxClass::Icmp { .. } | RxClass::Arp | RxClass::Dropped => {}
                    }
                    self.drain_wire(ctx);
                }
                Msg::IpTx {
                    dst,
                    protocol,
                    payload,
                } => {
                    ctx.charge(calibration::IP_TX_PKT);
                    let now = ctx.now().as_nanos();
                    self.io
                        .send_ip(dst, IpProtocol::from(protocol), &payload, now);
                    self.drain_wire(ctx);
                }
                Msg::SetNeighbor { role, pid } => match role {
                    NeighborRole::Tcp => self.tcp = Some(pid),
                    NeighborRole::Udp => self.udp = Some(pid),
                    NeighborRole::Driver => self.driver = pid,
                    _ => {}
                },
                Msg::Poison => ctx.crash_self(),
                _ => {}
            },
        }
    }
}
