//! Shared link/network-layer logic: frame classification, ARP resolution,
//! ICMP echo, and IP/Ethernet encapsulation.
//!
//! Both the single-component replica and the multi-component IP process
//! embed a [`FrameIo`]; the httperf-side library stacks reuse it too. This
//! is pure protocol code — the owning process charges the CPU costs.

use neat_net::arp::{ArpCache, ArpOp, ArpPacket};
use neat_net::ethernet::{EtherType, EthernetFrame, MacAddr};
use neat_net::icmp::IcmpMessage;
use neat_net::ipv4::{IpProtocol, Ipv4Header};
use neat_net::PktBuf;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What an inbound frame turned out to be.
#[derive(Debug)]
pub enum RxClass {
    /// A TCP segment for us: (source ip, raw TCP bytes). The segment is a
    /// zero-copy window into the received frame's buffer.
    Tcp { src: Ipv4Addr, seg: PktBuf },
    /// A UDP datagram for us: (source ip, raw UDP bytes), windowed too.
    Udp { src: Ipv4Addr, dgram: PktBuf },
    /// An ICMP message for us (echo handled internally; surfaced for
    /// accounting).
    Icmp { src: Ipv4Addr },
    /// ARP handled internally (cache update / reply queued).
    Arp,
    /// Not for us / unparseable / checksum failure — dropped.
    Dropped,
}

/// Per-instance link/network state.
#[derive(Debug)]
pub struct FrameIo {
    pub ip: Ipv4Addr,
    pub mac: MacAddr,
    arp: ArpCache,
    /// Packets awaiting ARP resolution, keyed by next-hop IP.
    pending: HashMap<Ipv4Addr, Vec<Vec<u8>>>,
    /// Frames ready to go out on the wire (pooled handles from birth).
    out: Vec<PktBuf>,
    /// Last time an ARP request was sent per destination (rate limit).
    last_arp_req: HashMap<Ipv4Addr, u64>,
    pub rx_bad_checksum: u64,
    pub rx_not_for_us: u64,
}

impl FrameIo {
    pub fn new(ip: Ipv4Addr, mac: MacAddr) -> FrameIo {
        FrameIo {
            ip,
            mac,
            arp: ArpCache::new(),
            pending: HashMap::new(),
            out: Vec::new(),
            last_arp_req: HashMap::new(),
            rx_bad_checksum: 0,
            rx_not_for_us: 0,
        }
    }

    /// Pre-seed the neighbour cache (static ARP, as on the paper's
    /// two-machine DAC testbed).
    pub fn seed_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp.insert(ip, mac, 0);
        // Keep the entry permanently fresh for static seeding.
        self.arp.insert(ip, mac, u64::MAX / 2);
    }

    /// Classify one inbound Ethernet frame, handling ARP and ICMP echo
    /// internally. Any generated replies are queued for [`Self::drain`].
    pub fn classify_rx(&mut self, frame: &PktBuf, now_ns: u64) -> RxClass {
        let Ok((eth, off)) = EthernetFrame::parse(frame) else {
            self.rx_not_for_us += 1;
            return RxClass::Dropped;
        };
        if eth.dst != self.mac && !eth.dst.is_broadcast() {
            self.rx_not_for_us += 1;
            return RxClass::Dropped;
        }
        match eth.ethertype {
            EtherType::Arp => {
                let Ok(arp) = ArpPacket::parse(&frame[off..]) else {
                    return RxClass::Dropped;
                };
                self.arp.insert(arp.sender_ip, arp.sender_mac, now_ns);
                self.flush_pending(arp.sender_ip, now_ns);
                if arp.op == ArpOp::Request && arp.target_ip == self.ip {
                    let reply = ArpPacket::reply_to(&arp, self.mac);
                    let f = EthernetFrame {
                        dst: arp.sender_mac,
                        src: self.mac,
                        ethertype: EtherType::Arp,
                    }
                    .emit(&reply.emit());
                    self.out.push(PktBuf::from_vec(f));
                }
                RxClass::Arp
            }
            EtherType::Ipv4 => {
                let Ok((ip, payload)) = Ipv4Header::parse(&frame[off..]) else {
                    self.rx_bad_checksum += 1;
                    return RxClass::Dropped;
                };
                if ip.dst != self.ip {
                    self.rx_not_for_us += 1;
                    return RxClass::Dropped;
                }
                // Strip headers by narrowing the refcounted handle — no
                // payload copy on the RX fast path.
                let l4 = frame.slice(off + payload.start, payload.len());
                match ip.protocol {
                    IpProtocol::Tcp => RxClass::Tcp {
                        src: ip.src,
                        seg: l4,
                    },
                    IpProtocol::Udp => RxClass::Udp {
                        src: ip.src,
                        dgram: l4,
                    },
                    IpProtocol::Icmp => {
                        if let Ok(m) = IcmpMessage::parse(&l4) {
                            if let Some(reply) = IcmpMessage::reply_to(&m) {
                                self.send_ip(ip.src, IpProtocol::Icmp, &reply.emit(), now_ns);
                            }
                        }
                        RxClass::Icmp { src: ip.src }
                    }
                    IpProtocol::Unknown(_) => RxClass::Dropped,
                }
            }
            EtherType::Unknown(_) => RxClass::Dropped,
        }
    }

    /// Encapsulate and queue an IP packet to `dst`, resolving the MAC via
    /// ARP (packets queue while a request is outstanding).
    pub fn send_ip(&mut self, dst: Ipv4Addr, protocol: IpProtocol, payload: &[u8], now_ns: u64) {
        let pkt = Ipv4Header::new(self.ip, dst, protocol, payload.len()).emit(payload);
        match self.arp.lookup(dst, now_ns) {
            Some(mac) => {
                let f = EthernetFrame {
                    dst: mac,
                    src: self.mac,
                    ethertype: EtherType::Ipv4,
                }
                .emit(&pkt);
                self.out.push(PktBuf::from_vec(f));
            }
            None => {
                self.pending.entry(dst).or_default().push(pkt);
                // Rate-limit ARP requests to one per second per target
                // (smoltcp behaviour).
                let due = self
                    .last_arp_req
                    .get(&dst)
                    .map(|t| now_ns.saturating_sub(*t) >= 1_000_000_000)
                    .unwrap_or(true);
                if due {
                    self.last_arp_req.insert(dst, now_ns);
                    let req = ArpPacket::request(self.mac, self.ip, dst);
                    let f = EthernetFrame {
                        dst: MacAddr::BROADCAST,
                        src: self.mac,
                        ethertype: EtherType::Arp,
                    }
                    .emit(&req.emit());
                    self.out.push(PktBuf::from_vec(f));
                }
            }
        }
    }

    fn flush_pending(&mut self, dst: Ipv4Addr, now_ns: u64) {
        if let Some(pkts) = self.pending.remove(&dst) {
            if let Some(mac) = self.arp.lookup(dst, now_ns) {
                for pkt in pkts {
                    let f = EthernetFrame {
                        dst: mac,
                        src: self.mac,
                        ethertype: EtherType::Ipv4,
                    }
                    .emit(&pkt);
                    self.out.push(PktBuf::from_vec(f));
                }
            }
        }
    }

    /// Take all frames queued for transmission.
    pub fn drain(&mut self) -> Vec<PktBuf> {
        std::mem::take(&mut self.out)
    }

    pub fn pending_arp(&self) -> usize {
        self.pending.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 100);

    fn a() -> FrameIo {
        FrameIo::new(A_IP, MacAddr::local(1))
    }
    fn b() -> FrameIo {
        FrameIo::new(B_IP, MacAddr::local(2))
    }

    #[test]
    fn arp_resolution_round_trip() {
        let mut a = a();
        let mut b = b();
        // A wants to send TCP to B without knowing B's MAC.
        a.send_ip(B_IP, IpProtocol::Tcp, b"segment", 0);
        let frames = a.drain();
        assert_eq!(frames.len(), 1, "only the ARP request goes out");
        assert_eq!(a.pending_arp(), 1);
        // B receives the broadcast request and replies.
        assert!(matches!(b.classify_rx(&frames[0], 0), RxClass::Arp));
        let replies = b.drain();
        assert_eq!(replies.len(), 1);
        // A consumes the reply; the pending packet flushes.
        assert!(matches!(a.classify_rx(&replies[0], 10), RxClass::Arp));
        let flushed = a.drain();
        assert_eq!(flushed.len(), 1);
        assert_eq!(a.pending_arp(), 0);
        // And B can classify the TCP frame.
        match b.classify_rx(&flushed[0], 20) {
            RxClass::Tcp { src, seg } => {
                assert_eq!(src, A_IP);
                assert_eq!(&seg[..], b"segment");
            }
            other => panic!("expected TCP, got {other:?}"),
        }
    }

    #[test]
    fn seeded_arp_skips_resolution() {
        let mut a = a();
        a.seed_arp(B_IP, MacAddr::local(2));
        a.send_ip(B_IP, IpProtocol::Tcp, b"hi", 0);
        let frames = a.drain();
        assert_eq!(frames.len(), 1);
        let (eth, _) = EthernetFrame::parse(&frames[0]).unwrap();
        assert_eq!(eth.dst, MacAddr::local(2));
        assert_eq!(eth.ethertype, EtherType::Ipv4);
    }

    #[test]
    fn frames_for_other_hosts_dropped() {
        let mut a = a();
        let mut b = b();
        b.seed_arp(A_IP, MacAddr::local(9)); // wrong MAC for A
        b.send_ip(A_IP, IpProtocol::Tcp, b"x", 0);
        let f = b.drain().remove(0);
        assert!(matches!(a.classify_rx(&f, 0), RxClass::Dropped));
        assert_eq!(a.rx_not_for_us, 1);
    }

    #[test]
    fn icmp_echo_answered() {
        let mut a = a();
        let mut b = b();
        a.seed_arp(B_IP, MacAddr::local(2));
        b.seed_arp(A_IP, MacAddr::local(1));
        let ping = IcmpMessage::EchoRequest {
            ident: 7,
            seq: 1,
            data: vec![1, 2, 3],
        };
        b.send_ip(A_IP, IpProtocol::Icmp, &ping.emit(), 0);
        let f = b.drain().remove(0);
        assert!(matches!(a.classify_rx(&f, 0), RxClass::Icmp { .. }));
        let reply_frames = a.drain();
        assert_eq!(reply_frames.len(), 1);
        match b.classify_rx(&reply_frames[0], 0) {
            RxClass::Icmp { src } => assert_eq!(src, A_IP),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupted_ip_header_dropped() {
        let mut a = a();
        let mut b = b();
        b.seed_arp(A_IP, MacAddr::local(1));
        b.send_ip(A_IP, IpProtocol::Tcp, b"data", 0);
        let mut bytes = b.drain().remove(0).to_vec();
        bytes[16] ^= 0xFF; // corrupt an IP header byte
        let f = PktBuf::from_vec(bytes);
        assert!(matches!(a.classify_rx(&f, 0), RxClass::Dropped));
        assert_eq!(a.rx_bad_checksum, 1);
    }

    #[test]
    fn arp_requests_rate_limited() {
        let mut a = a();
        a.send_ip(B_IP, IpProtocol::Tcp, b"1", 0);
        a.send_ip(B_IP, IpProtocol::Tcp, b"2", 1_000);
        let frames = a.drain();
        assert_eq!(frames.len(), 1, "second ARP within 1s suppressed");
        assert_eq!(a.pending_arp(), 2);
        // After a second, a new request may go out.
        a.send_ip(B_IP, IpProtocol::Tcp, b"3", 1_500_000_000);
        assert_eq!(a.drain().len(), 1);
    }

    #[test]
    fn udp_classified() {
        let mut a = a();
        let mut b = b();
        b.seed_arp(A_IP, MacAddr::local(1));
        let dgram = neat_net::udp::UdpHeader::emit(53, 53, b"q", B_IP, A_IP);
        b.send_ip(A_IP, IpProtocol::Udp, &dgram, 0);
        let f = b.drain().remove(0);
        assert!(matches!(a.classify_rx(&f, 0), RxClass::Udp { .. }));
    }
}
