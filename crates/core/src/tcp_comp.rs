//! The TCP component of the multi-component replica (§3.7, Figure 3).
//!
//! The only component with "significant per-connection read/write state,
//! read/write control state, and in-flight data" (§6.6) — which is why only
//! TCP faults cause visible state loss in the fault-injection experiments.

use crate::flow_repl::FlowRepl;
use crate::msg::{InputRec, Msg, NeighborRole};
use crate::sock_server::SockServer;
use neat_sim::{calibration, Ctx, Event, ProcId, Process, Time};
use std::net::Ipv4Addr;

/// The TCP process.
pub struct TcpProc {
    pub name: String,
    pub queue: usize,
    supervisor: ProcId,
    ip: Option<ProcId>,
    sock: SockServer,
    repl: FlowRepl,
    terminating: bool,
    drained_reported: bool,
    armed: Option<u64>,
    /// ASLR layout token — randomized at every (re)start (§3.8).
    pub layout_token: u64,
}

impl TcpProc {
    pub fn new(
        name: impl Into<String>,
        queue: usize,
        supervisor: ProcId,
        ip: Option<ProcId>,
        local_ip: Ipv4Addr,
        cfg: &crate::config::NeatConfig,
    ) -> TcpProc {
        TcpProc {
            name: name.into(),
            queue,
            supervisor,
            ip,
            sock: SockServer::new(local_ip, cfg.tcp.clone()),
            repl: FlowRepl::new(cfg),
            terminating: false,
            drained_reported: false,
            armed: None,
            layout_token: 0,
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now().as_nanos();
        let me = ctx.self_id;
        let (_, opened, closed) = self.sock.process_events(me);
        ctx.charge(opened as u64 * calibration::TCP_OPEN + closed as u64 * calibration::TCP_CLOSE);
        for (dst, seg) in self.sock.poll_wire(now) {
            ctx.charge(calibration::TCP_TX_SEG);
            if let Some(ip) = self.ip {
                ctx.send(
                    ip,
                    Msg::IpTx {
                        dst,
                        protocol: 6,
                        payload: seg,
                    },
                );
            }
        }
        for (app, msg) in self.sock.take_app_msgs() {
            ctx.charge(calibration::SOCK_OP);
            ctx.send(app, msg);
        }
        // Replication delta last: crashes arrive as messages, so the whole
        // flush is atomic — every output above is covered by this delta.
        if let Some((buddy, delta)) = self.repl.collect_delta(&mut self.sock, self.queue, now) {
            ctx.charge(calibration::SOCK_OP);
            ctx.send(buddy, delta);
        }
        if let Some(d) = self.sock.next_timeout() {
            if self.armed.map(|a| d < a).unwrap_or(true) {
                self.armed = Some(d);
                ctx.set_timer(Time::from_nanos(d.saturating_sub(now)), 0);
            }
        }
        if self.terminating && !self.drained_reported && self.sock.conn_count() == 0 {
            self.drained_reported = true;
            ctx.send(self.supervisor, Msg::Drained { queue: self.queue });
        }
    }
}

impl Process<Msg> for TcpProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcId, msgs: Vec<Msg>) {
        // Amortized delivery: absorb every segment in the batch, then run
        // the TX/event flush once for the whole run.
        let mut deferred_flush = false;
        for msg in msgs {
            match msg {
                Msg::IpRxTcp { src, seg } => {
                    ctx.charge(calibration::TCP_RX_SEG);
                    let now = ctx.now().as_nanos();
                    if self.repl.logging() {
                        self.repl.record(InputRec::Seg {
                            src,
                            bytes: seg.to_vec(),
                            now,
                        });
                    }
                    if let Ok((h, range)) =
                        neat_net::TcpHeader::parse(&seg, src, self.sock.stack.local_ip)
                    {
                        self.sock.stack.handle_segment(src, &h, &seg[range], now);
                    }
                    deferred_flush = true;
                }
                other => self.on_event(ctx, Event::Message { from, msg: other }),
            }
        }
        if deferred_flush {
            self.flush(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            // Delivered via `on_batch` in practice; unroll defensively if a
            // batch ever reaches the scalar path.
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
            Event::Start => {
                self.layout_token = ctx.rng().gen();
            }
            Event::Timer { .. } => {
                self.armed = None;
                let now = ctx.now().as_nanos();
                if self.repl.logging() {
                    self.repl.record(InputRec::Timer { now });
                }
                self.sock.on_timer(now);
                self.flush(ctx);
            }
            Event::Message { from, msg } => match msg {
                Msg::IpRxTcp { src, seg } => {
                    ctx.charge(calibration::TCP_RX_SEG);
                    let now = ctx.now().as_nanos();
                    if self.repl.logging() {
                        self.repl.record(InputRec::Seg {
                            src,
                            bytes: seg.to_vec(),
                            now,
                        });
                    }
                    if let Ok((h, range)) =
                        neat_net::TcpHeader::parse(&seg, src, self.sock.stack.local_ip)
                    {
                        self.sock.stack.handle_segment(src, &h, &seg[range], now);
                    }
                    self.flush(ctx);
                }
                m @ (Msg::Listen { .. }
                | Msg::Connect { .. }
                | Msg::ConnSend { .. }
                | Msg::ConnClose { .. }
                | Msg::SetSockOpt { .. }) => {
                    if self.terminating && matches!(m, Msg::Listen { .. } | Msg::Connect { .. }) {
                        return;
                    }
                    let now = ctx.now().as_nanos();
                    if self.repl.logging() {
                        match &m {
                            Msg::Listen { port, app } => self.repl.record(InputRec::Listen {
                                port: *port,
                                app: *app,
                            }),
                            Msg::Connect { remote, app, token } => {
                                self.repl.record(InputRec::Connect {
                                    remote: *remote,
                                    app: *app,
                                    token: *token,
                                    now,
                                })
                            }
                            Msg::ConnSend { sock, data } => self.repl.record(InputRec::Send {
                                sock: *sock,
                                data: data.clone(),
                            }),
                            Msg::ConnClose { sock } => {
                                self.repl.record(InputRec::Close { sock: *sock, now })
                            }
                            Msg::SetSockOpt { sock, opt } => self.repl.record(InputRec::SetOpt {
                                sock: *sock,
                                opt: *opt,
                            }),
                            _ => {}
                        }
                    }
                    let ops = self.sock.handle_app(from, m, now);
                    ctx.charge(ops as u64 * calibration::SOCK_OP);
                    self.flush(ctx);
                }
                Msg::SetBuddy { buddy } => {
                    self.repl.set_buddy(&mut self.sock, buddy);
                    // Re-baseline immediately so the buddy's store starts
                    // complete.
                    self.flush(ctx);
                }
                Msg::ReplDelta { queue: _, payload } => {
                    ctx.charge(calibration::SOCK_OP);
                    self.repl.apply_delta(from, payload);
                }
                Msg::ReplHandoff { queue: _, old, to } => {
                    let flows = self.repl.take_flows_for(old);
                    ctx.charge(calibration::SOCK_OP);
                    ctx.send(to, Msg::ReplRestore { old, flows });
                }
                Msg::ReplRestore { old, flows } => {
                    let me = ctx.self_id;
                    ctx.charge(flows.len() as u64 * calibration::TCP_OPEN);
                    let restored = self.sock.restore_flows(me, old, flows);
                    neat_obs::counter_add("repl.flows_restored", restored.len() as u64);
                    ctx.send(
                        self.supervisor,
                        Msg::ReplRestored {
                            queue: self.queue,
                            flows: restored,
                        },
                    );
                    self.flush(ctx);
                }
                Msg::MigrateOut { to } => {
                    let flows = self.sock.export_for_migration();
                    ctx.charge(flows.len() as u64 * calibration::TCP_CLOSE);
                    neat_obs::counter_add("repl.flows_migrated", flows.len() as u64);
                    ctx.send(
                        to,
                        Msg::ReplRestore {
                            old: ctx.self_id,
                            flows,
                        },
                    );
                    self.flush(ctx);
                }
                Msg::ReplForget { owner } => self.repl.forget(owner),
                Msg::SetNeighbor { role, pid } => match role {
                    NeighborRole::Ip => self.ip = Some(pid),
                    NeighborRole::Supervisor => self.supervisor = pid,
                    _ => {}
                },
                Msg::Terminate => {
                    self.terminating = true;
                    self.supervisor = from;
                    self.flush(ctx);
                }
                Msg::Poison => ctx.crash_self(),
                _ => {}
            },
        }
    }
}
