//! Buddy-replica flow replication (the transparent-recovery extension to
//! §3.6, plus the transfer path live flow migration rides on).
//!
//! Every stack replica owns a [`FlowRepl`]. It plays two roles at once:
//!
//! * **primary** — after each flush it collects a replication delta for
//!   its own flows and ships it to its buddy ([`Msg::ReplDelta`]);
//! * **buddy** — it stores the deltas other replicas send *it*, and on a
//!   supervisor handoff ([`Msg::ReplHandoff`]) surrenders its copy of the
//!   dead replica's flows so the respawned replica can adopt them.
//!
//! Two mechanisms are implemented (config-selected, checkpoint primary):
//!
//! * **Checkpoint** ([`ReplMechanism::Checkpoint`]): incremental encoded
//!   [`neat_tcp::TcbImage`]s of every flow touched since the last flush.
//!   The store is a plain map; handoff is a drain.
//! * **InputLog** ([`ReplMechanism::InputLog`], State-Compute-Replication
//!   style): the primary streams its deterministic input records; the
//!   buddy replays them through a live *mirror* [`SockServer`] whose
//!   allocation counters are synced to the primary's, so replayed socket
//!   ids, ISSs and checkpoints match the primary's exactly. Handoff
//!   exports the mirror. Limitation (documented in DESIGN.md): flows
//!   already established when a buddy is (re)assigned predate the log the
//!   mirror sees and are not covered — the checkpoint mechanism has no
//!   such gap, which is why it is the default.
//!
//! The output-commit argument for why a delta-per-flush is enough: crashes
//! are delivered as messages ([`Msg::Poison`]), so a flush — input
//! processing, event pump, wire-output collection, delta emission — is
//! atomic with respect to failure. Every client-visible output therefore
//! has a covering delta enqueued on the (reliable, ordered) message
//! fabric, and the buddy's copy is never behind anything the peer or the
//! application has observed.

use crate::config::{NeatConfig, ReplMechanism, ReplicationConfig};
use crate::msg::{InputRec, Msg, ReplFlow, ReplPayload};
use crate::sock_server::SockServer;
use neat_net::{FlowKey, TcpHeader};
use neat_sim::ProcId;
use neat_tcp::TcpConfig;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What a buddy holds on behalf of one primary.
#[derive(Debug)]
enum BuddyStore {
    /// Latest checkpoint per flow.
    Checkpoint(HashMap<FlowKey, ReplFlow>),
    /// Live replay mirror of the primary (input-log mechanism).
    Mirror(Box<SockServer>),
}

/// Per-replica replication engine (both the primary and the buddy half).
#[derive(Debug)]
pub struct FlowRepl {
    cfg: ReplicationConfig,
    tcp_cfg: TcpConfig,
    local_ip: Ipv4Addr,
    /// Who we stream our deltas to.
    buddy: Option<ProcId>,
    /// Next delta must re-baseline the buddy (fresh assignment).
    need_full: bool,
    /// Input records accumulated since the last delta (log mechanism).
    pending_log: Vec<InputRec>,
    /// Stores held on behalf of other replicas, keyed by their pid.
    store: HashMap<ProcId, BuddyStore>,
}

impl FlowRepl {
    pub fn new(cfg: &NeatConfig) -> FlowRepl {
        FlowRepl {
            cfg: cfg.replication,
            tcp_cfg: cfg.tcp.clone(),
            local_ip: cfg.ip,
            buddy: None,
            need_full: false,
            pending_log: Vec::new(),
            store: HashMap::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Is input-log recording live? (Procs skip cloning wire bytes into
    /// records when it is not.)
    pub fn logging(&self) -> bool {
        self.cfg.enabled && self.cfg.mechanism == ReplMechanism::InputLog && self.buddy.is_some()
    }

    /// Supervisor (re)assigned our buddy. The next delta re-baselines it.
    /// Also turns checkpoint-delta tracking on in our own stack.
    pub fn set_buddy(&mut self, srv: &mut SockServer, buddy: Option<ProcId>) {
        if !self.cfg.enabled {
            return;
        }
        self.buddy = buddy;
        self.need_full = buddy.is_some();
        self.pending_log.clear();
        srv.set_repl_tracking(buddy.is_some() && self.cfg.mechanism == ReplMechanism::Checkpoint);
    }

    pub fn buddy(&self) -> Option<ProcId> {
        self.buddy
    }

    /// Append one input record (log mechanism; call only when
    /// [`FlowRepl::logging`]).
    pub fn record(&mut self, rec: InputRec) {
        self.pending_log.push(rec);
    }

    /// End-of-flush: build the delta message owed to the buddy, if any.
    /// Returns `(buddy, msg)` ready to send.
    pub fn collect_delta(
        &mut self,
        srv: &mut SockServer,
        queue: usize,
        now: u64,
    ) -> Option<(ProcId, Msg)> {
        let buddy = self.buddy?;
        if !self.cfg.enabled {
            return None;
        }
        let payload = match self.cfg.mechanism {
            ReplMechanism::Checkpoint => {
                if self.need_full {
                    self.need_full = false;
                    let flows = srv.full_checkpoint();
                    // The dirty/closed sets are folded into the snapshot.
                    let _ = srv.take_checkpoint_delta();
                    ReplPayload::Checkpoint {
                        full: true,
                        flows,
                        closed: Vec::new(),
                    }
                } else {
                    let (flows, closed) = srv.take_checkpoint_delta();
                    if flows.is_empty() && closed.is_empty() {
                        return None;
                    }
                    ReplPayload::Checkpoint {
                        full: false,
                        flows,
                        closed,
                    }
                }
            }
            ReplMechanism::InputLog => {
                if self.need_full {
                    self.need_full = false;
                    // Re-baseline: the mirror starts empty, learns our
                    // listeners, and adopts our allocation counters so
                    // every replayed allocation matches ours.
                    let mut head = Vec::new();
                    for (port, app) in srv.listeners() {
                        head.push(InputRec::Listen { port, app });
                    }
                    let (next_id, iss, next_port) = srv.stack.alloc_state();
                    head.push(InputRec::SyncAlloc {
                        next_id,
                        iss,
                        next_port,
                    });
                    head.append(&mut self.pending_log);
                    self.pending_log = head;
                } else if self.pending_log.is_empty() {
                    return None;
                }
                self.pending_log.push(InputRec::Flush { now });
                ReplPayload::Log {
                    recs: std::mem::take(&mut self.pending_log),
                }
            }
        };
        neat_obs::counter_add("repl.deltas_sent", 1);
        Some((buddy, Msg::ReplDelta { queue, payload }))
    }

    /// Buddy half: fold one incoming delta from `from` into its store.
    pub fn apply_delta(&mut self, from: ProcId, payload: ReplPayload) {
        neat_obs::counter_add("repl.deltas_applied", 1);
        match payload {
            ReplPayload::Checkpoint {
                full,
                flows,
                closed,
            } => {
                let entry = self
                    .store
                    .entry(from)
                    .or_insert_with(|| BuddyStore::Checkpoint(HashMap::new()));
                if !matches!(entry, BuddyStore::Checkpoint(_)) || full {
                    *entry = BuddyStore::Checkpoint(HashMap::new());
                }
                let BuddyStore::Checkpoint(map) = entry else {
                    unreachable!()
                };
                for f in flows {
                    map.insert(f.flow, f);
                }
                for k in closed {
                    map.remove(&k);
                }
            }
            ReplPayload::Log { recs } => {
                if !self.store.contains_key(&from)
                    || !matches!(self.store[&from], BuddyStore::Mirror(_))
                {
                    self.store.insert(
                        from,
                        BuddyStore::Mirror(Box::new(SockServer::new(
                            self.local_ip,
                            self.tcp_cfg.clone(),
                        ))),
                    );
                }
                let Some(BuddyStore::Mirror(srv)) = self.store.get_mut(&from) else {
                    unreachable!()
                };
                for rec in recs {
                    replay(srv, rec);
                }
            }
        }
    }

    /// Buddy half: surrender the flows held for `owner` (supervisor
    /// handoff, or cleanup). Deterministically ordered by the flow's
    /// socket id in its previous owner.
    pub fn take_flows_for(&mut self, owner: ProcId) -> Vec<ReplFlow> {
        match self.store.remove(&owner) {
            None => Vec::new(),
            Some(BuddyStore::Checkpoint(map)) => {
                let mut flows: Vec<ReplFlow> = map.into_values().collect();
                flows.sort_unstable_by_key(|f| f.old_sock);
                flows
            }
            Some(BuddyStore::Mirror(mut srv)) => srv.export_for_migration(),
        }
    }

    /// Drop the store held for `owner` (it was removed, not crashed).
    pub fn forget(&mut self, owner: ProcId) {
        self.store.remove(&owner);
    }

    /// Flows currently held on behalf of `owner` (diagnostics/tests).
    pub fn held_for(&self, owner: ProcId) -> usize {
        match self.store.get(&owner) {
            None => 0,
            Some(BuddyStore::Checkpoint(map)) => map.len(),
            Some(BuddyStore::Mirror(srv)) => srv.conn_count(),
        }
    }
}

/// Apply one input record to a mirror. The mirror's outputs (wire
/// segments, app messages) are computed and discarded — only the state
/// they imply is wanted.
fn replay(srv: &mut SockServer, rec: InputRec) {
    // The `from`/`me` pids only shape discarded messages.
    const NOBODY: ProcId = ProcId(0);
    match rec {
        InputRec::SyncAlloc {
            next_id,
            iss,
            next_port,
        } => srv.stack.sync_alloc(next_id, iss, next_port),
        InputRec::Listen { port, app } => {
            srv.handle_app(app, Msg::Listen { port, app }, 0);
        }
        InputRec::Connect {
            remote,
            app,
            token,
            now,
        } => {
            srv.handle_app(app, Msg::Connect { remote, app, token }, now);
        }
        InputRec::Seg { src, bytes, now } => {
            if let Ok((h, r)) = TcpHeader::parse(&bytes, src, srv.stack.local_ip) {
                srv.stack.handle_segment(src, &h, &bytes[r], now);
            }
        }
        InputRec::Send { sock, data } => {
            // Flows predating the log (no mirror socket) are skipped so
            // their backlog can't accrete in the mirror.
            if srv.stack.state(sock).is_some() {
                srv.handle_app(NOBODY, Msg::ConnSend { sock, data }, 0);
            }
        }
        InputRec::Close { sock, now } => {
            srv.handle_app(NOBODY, Msg::ConnClose { sock }, now);
        }
        InputRec::SetOpt { sock, opt } => {
            // Same pre-log-flow guard as Send.
            if srv.stack.state(sock).is_some() {
                srv.handle_app(NOBODY, Msg::SetSockOpt { sock, opt }, 0);
            }
        }
        InputRec::Timer { now } => srv.on_timer(now),
        InputRec::Flush { now } => {
            srv.process_events(NOBODY);
            let _ = srv.poll_wire(now);
            let _ = srv.take_app_msgs();
        }
    }
}
