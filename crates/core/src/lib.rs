//! # neat — a reliable and scalable network stack by design
//!
//! This crate is the reproduction of the paper's contribution: **NEaT**, a
//! BSD-socket-compatible network stack built from *isolated*, *partitioned*
//! process replicas on a NewtOS-style multiserver system (CoNEXT '16).
//!
//! The principles, enforced by construction on the `neat-sim` substrate:
//!
//! * **Isolation** — every component (NIC driver, packet filter, IP, TCP,
//!   UDP, SYSCALL server, each application) is a single-threaded
//!   event-driven process pinned to a hardware thread, communicating only
//!   via message queues.
//! * **Partitioning** — network state is partitioned across N fully
//!   independent stack replicas. A TCP connection lives in exactly one
//!   replica; the NIC steers every packet of a flow to that replica's
//!   queue; listening sockets are transparently replicated as per-replica
//!   subsockets at `listen()` time (§3.3).
//!
//! Consequences reproduced here:
//!
//! * a crashing replica is restarted *statelessly* by the supervisor; only
//!   its own connections are lost and only TCP faults lose any state at all
//!   (§3.6, Table 3);
//! * throughput scales with replicas and with hyper-threads (§6, Figures
//!   7–11), because there is no shared state to contend on;
//! * consecutive connections land in replicas with independently randomized
//!   address-space layouts (§3.8) — measured by [`security`].
//!
//! The crate provides both the **single-component** replica (whole stack in
//! one process, `NEaT Nx` in the figures) and the **multi-component**
//! replica (packet filter → IP → TCP/UDP pipeline, `Multi Nx`), the SYSCALL
//! server, the NIC driver process, the crash supervisor with replica
//! blueprints, the user-space socket library with subsocket replication,
//! and dynamic scale-up/down with lazy termination (§3.4).

pub mod boot;
pub mod config;
pub mod driver;
pub mod fault;
pub mod flow_repl;
pub mod ip_comp;
pub mod msg;
pub mod netcode;
pub mod nic_proc;
pub mod pf_comp;
pub mod placement;
pub mod reliability;
pub mod security;
pub mod sock_server;
pub mod sockets;
pub mod stack_single;
pub mod supervisor;
pub mod syscall;
pub mod tcp_comp;
pub mod udp_comp;

#[cfg(test)]
mod tests_components;

pub use config::{NeatConfig, ReplMechanism, ReplicationConfig, StackMode};
pub use msg::{ConnHandle, InputRec, Msg, ReplFlow, ReplPayload};
pub use placement::{Placement, Slot};
