//! Fault injection (§6.6, Table 3).
//!
//! The paper "injected faults into various (randomly selected) parts of
//! the code in the network stack", with the probability a component is hit
//! proportional to its code size. We reproduce the same mechanism: the
//! component weights are the *actual line counts of this repository's
//! component sources*, measured at compile time, and an activated fault
//! crashes the owning process — exercising the real recovery path.

use crate::supervisor::Role;
use neat_util::Rng;

/// Per-component code sizes (lines), measured from the real sources.
#[derive(Debug, Clone, Copy)]
pub struct CodeSizes {
    pub tcp: usize,
    pub ip: usize,
    pub udp: usize,
    pub pf: usize,
    pub driver: usize,
}

/// Count non-empty lines of *deployed* code: everything up to the
/// `#[cfg(test)]` module (tests never run in the replica processes).
fn loc(s: &str) -> usize {
    s.split("#[cfg(test)]")
        .next()
        .unwrap_or("")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

impl CodeSizes {
    /// Count the real sources making up each component of the stack.
    pub fn measured() -> CodeSizes {
        let tcp = loc(include_str!("../../tcp/src/socket.rs"))
            + loc(include_str!("../../tcp/src/stack.rs"))
            + loc(include_str!("../../tcp/src/buffer.rs"))
            + loc(include_str!("../../tcp/src/assembler.rs"))
            + loc(include_str!("../../tcp/src/rto.rs"))
            + loc(include_str!("../../tcp/src/tcb.rs"))
            + loc(include_str!("../../tcp/src/components/mod.rs"))
            + loc(include_str!("../../tcp/src/components/conn_mgmt.rs"))
            + loc(include_str!("../../tcp/src/components/reliability.rs"))
            + loc(include_str!("../../tcp/src/components/flow_control.rs"))
            + loc(include_str!(
                "../../tcp/src/components/congestion_control.rs"
            ))
            + loc(include_str!("../../tcp/src/types.rs"))
            + loc(include_str!("tcp_comp.rs"))
            + loc(include_str!("sock_server.rs"));
        let ip = loc(include_str!("ip_comp.rs"))
            + loc(include_str!("netcode.rs"))
            + loc(include_str!("../../net/src/ipv4.rs"))
            + loc(include_str!("../../net/src/arp.rs"))
            + loc(include_str!("../../net/src/icmp.rs"))
            + loc(include_str!("../../net/src/checksum.rs"))
            + loc(include_str!("../../net/src/ethernet.rs"));
        let udp = loc(include_str!("udp_comp.rs")) + loc(include_str!("../../net/src/udp.rs"));
        let pf = loc(include_str!("pf_comp.rs"));
        let driver = loc(include_str!("driver.rs"));
        CodeSizes {
            tcp,
            ip,
            udp,
            pf,
            driver,
        }
    }

    pub fn total(&self) -> usize {
        self.tcp + self.ip + self.udp + self.pf + self.driver
    }

    /// Fraction of stack code that is the (stateful) TCP component —
    /// the probability a uniform code fault loses connection state.
    pub fn tcp_fraction(&self) -> f64 {
        self.tcp as f64 / self.total() as f64
    }

    /// Fraction of code inside a single-component replica (everything
    /// except the shared driver).
    pub fn replica_fraction_single(&self) -> f64 {
        (self.tcp + self.ip + self.udp + self.pf) as f64 / self.total() as f64
    }
}

/// Draw a fault target with probability proportional to code size.
pub fn pick_target(sizes: &CodeSizes, rng: &mut Rng) -> Role {
    let total = sizes.total();
    let x = rng.gen_range(0..total);
    if x < sizes.tcp {
        Role::Tcp
    } else if x < sizes.tcp + sizes.ip {
        Role::Ip
    } else if x < sizes.tcp + sizes.ip + sizes.udp {
        Role::Udp
    } else if x < sizes.tcp + sizes.ip + sizes.udp + sizes.pf {
        Role::Pf
    } else {
        Role::Driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_measured_and_tcp_dominates() {
        let s = CodeSizes::measured();
        assert!(s.tcp > 1000, "tcp sources are substantial: {s:?}");
        assert!(s.ip > 300);
        assert!(s.udp > 50);
        assert!(s.pf > 20);
        assert!(s.driver > 20);
        assert!(
            s.tcp > s.ip && s.tcp > s.udp && s.tcp > s.pf && s.tcp > s.driver,
            "TCP is the largest component, as in the paper: {s:?}"
        );
        let f = s.tcp_fraction();
        assert!((0.30..0.75).contains(&f), "tcp fraction {f}");
    }

    #[test]
    fn pick_target_matches_weights() {
        let s = CodeSizes::measured();
        let mut rng = Rng::seed_from_u64(7);
        let mut tcp_hits = 0;
        let n = 20_000;
        for _ in 0..n {
            if pick_target(&s, &mut rng) == Role::Tcp {
                tcp_hits += 1;
            }
        }
        let emp = tcp_hits as f64 / n as f64;
        let exp = s.tcp_fraction();
        assert!(
            (emp - exp).abs() < 0.02,
            "empirical {emp} vs expected {exp}"
        );
    }

    #[test]
    fn all_targets_reachable() {
        let s = CodeSizes::measured();
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50_000 {
            seen.insert(format!("{:?}", pick_target(&s, &mut rng)));
        }
        assert_eq!(seen.len(), 5, "every component can be hit: {seen:?}");
    }
}
