//! Property tests for the NIC model: steering stability, fault-injector
//! conservation, TSO framing invariants. Runs on the in-tree
//! `neat_util::check` harness.

use neat_net::tcp::{TcpFlags, TcpHeader};
use neat_net::{EtherType, EthernetFrame, Ipv4Header, MacAddr, SeqNum};
use neat_nic::{FaultConfig, FaultInjector, Nic, NicConfig, Steering};
use neat_util::check::{check, vec_of, Config};
use neat_util::{prop_assert, prop_assert_eq};
use std::net::Ipv4Addr;

fn frame(src: u32, sp: u16, dp: u16, flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
    let s = Ipv4Addr::from(src);
    let d = Ipv4Addr::new(192, 168, 69, 1);
    let tcp = TcpHeader::new(sp, dp, SeqNum(1), SeqNum(0), flags).emit(payload, s, d);
    let ip = Ipv4Header::new(s, d, neat_net::ipv4::IpProtocol::Tcp, tcp.len()).emit(&tcp);
    EthernetFrame {
        dst: MacAddr::local(1),
        src: MacAddr::local(2),
        ethertype: EtherType::Ipv4,
    }
    .emit(&ip)
}

/// Flow affinity: for any sequence of flows and queue counts, every
/// packet of a flow is classified to one queue.
#[test]
fn steering_flow_affinity() {
    check(
        "steering_flow_affinity",
        Config::default().cases(96),
        |rng| {
            (
                vec_of(rng, 1..40, |r| {
                    (
                        r.gen::<u32>(),
                        r.gen_range(1024u16..65000),
                        r.gen_range(1u16..1024),
                    )
                }),
                rng.gen_range(1usize..16),
            )
        },
        |(flows, queues)| {
            if queues == 0 {
                return Ok(());
            }
            let mut s = Steering::new(queues);
            let mut assigned = std::collections::HashMap::new();
            let mut now = 0u64;
            for (src, sp, dp) in &flows {
                // SYN first, then data packets of the same flow interleaved.
                now += 1_000;
                let q0 = s.classify_track(&frame(*src, *sp, *dp, TcpFlags::SYN, &[]), now);
                prop_assert!(q0 < queues);
                let prev = assigned.insert((*src, *sp, *dp), q0);
                if let Some(p) = prev {
                    prop_assert_eq!(p, q0, "re-SYN keeps the filter-pinned queue");
                }
                for _ in 0..3 {
                    now += 1_000;
                    let q = s.classify_track(&frame(*src, *sp, *dp, TcpFlags::ack(), b"x"), now);
                    prop_assert_eq!(q, q0, "data follows the SYN's queue");
                }
            }
            Ok(())
        },
    );
}

/// Fault injector conservation: every frame is exactly one of passed,
/// corrupted, or dropped; corrupted frames differ in exactly one bit.
#[test]
fn fault_injector_conservation() {
    check(
        "fault_injector_conservation",
        Config::default().cases(128),
        |rng| {
            (
                rng.gen_range(0u8..=100),
                rng.gen_range(0u8..=100),
                rng.gen::<u64>(),
                rng.gen_range(1usize..200),
            )
        },
        |(drop_pct, corrupt_pct, seed, n)| {
            let mut inj = FaultInjector::new(
                FaultConfig {
                    drop_pct,
                    corrupt_pct,
                    ..Default::default()
                },
                seed,
            );
            let orig = vec![0x5Au8; 64];
            for i in 0..n {
                match inj.apply(orig.clone().into(), i as u64) {
                    neat_nic::faults::FaultOutcome::Pass(f) => prop_assert_eq!(&f[..], &orig[..]),
                    neat_nic::faults::FaultOutcome::Corrupted(f) => {
                        let bits: u32 =
                            f.iter().zip(&orig).map(|(a, b)| (a ^ b).count_ones()).sum();
                        prop_assert_eq!(bits, 1);
                    }
                    neat_nic::faults::FaultOutcome::Dropped => {}
                }
            }
            prop_assert_eq!(inj.passed + inj.corrupted + inj.dropped, n as u64);
            Ok(())
        },
    );
}

/// Determinism: the same seed yields the same outcome sequence — the
/// foundation of reproducible fault-injection campaigns (Table 3).
#[test]
fn fault_injector_deterministic() {
    check(
        "fault_injector_deterministic",
        Config::default().cases(32),
        |rng| (rng.gen::<u64>(), rng.gen_range(1usize..100)),
        |(seed, n)| {
            let run = |seed: u64| {
                let mut inj = FaultInjector::new(
                    FaultConfig {
                        drop_pct: 30,
                        corrupt_pct: 30,
                        ..Default::default()
                    },
                    seed,
                );
                (0..n)
                    .map(|i| inj.apply(vec![0xAAu8; 32].into(), i as u64))
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(seed), run(seed));
            Ok(())
        },
    );
}

/// TSO: frames on the wire never exceed MSS+headers, cover the payload
/// exactly once, in order.
#[test]
fn tso_framing_invariants() {
    check(
        "tso_framing_invariants",
        Config::default().cases(96),
        |rng| {
            (
                neat_util::check::bytes(rng, 1..10_000),
                rng.gen_range(200usize..1460),
            )
        },
        |(payload, mss)| {
            if payload.is_empty() || mss == 0 {
                return Ok(());
            }
            let f = frame(0x0A00_0001, 9999, 80, TcpFlags::psh_ack(), &payload);
            let out = neat_nic::tso::tso_split(f, mss);
            let mut covered = 0usize;
            let mut expect_seq = SeqNum(1);
            for w in &out {
                let (_, off) = EthernetFrame::parse(w).unwrap();
                let (iph, r) = Ipv4Header::parse(&w[off..]).unwrap();
                let l4 = &w[off..][r];
                let (th, pr) = TcpHeader::parse(l4, iph.src, iph.dst).unwrap();
                let seg = &l4[pr];
                prop_assert!(seg.len() <= mss);
                prop_assert_eq!(th.seq, expect_seq);
                prop_assert_eq!(seg, &payload[covered..covered + seg.len()]);
                expect_seq += seg.len() as u32;
                covered += seg.len();
            }
            prop_assert_eq!(covered, payload.len());
            Ok(())
        },
    );
}

/// Device-level: growing queues never reroutes filtered (existing)
/// flows.
#[test]
fn grow_preserves_existing_flows() {
    check(
        "grow_preserves_existing_flows",
        Config::default().cases(64),
        |rng| {
            (
                vec_of(rng, 1..30, |r| r.gen_range(1024u16..60000)),
                rng.gen_range(2usize..12),
            )
        },
        |(ports, grow_to)| {
            if grow_to < 1 {
                return Ok(());
            }
            let mut nic = Nic::new(
                NicConfig {
                    queue_pairs: 1,
                    ..Default::default()
                },
                FaultInjector::disabled(1),
            );
            let mut homes = Vec::new();
            for (i, p) in ports.iter().enumerate() {
                let q = nic
                    .wire_rx(frame(7, *p, 80, TcpFlags::SYN, &[]).into(), i as u64)
                    .unwrap();
                homes.push(q);
            }
            nic.grow_queues(grow_to);
            for (i, p) in ports.iter().enumerate() {
                if let Some(q) = nic.wire_rx(
                    frame(7, *p, 80, TcpFlags::ack(), b"d").into(),
                    1_000 + i as u64,
                ) {
                    prop_assert_eq!(q, homes[i], "existing flow moved after grow");
                }
            }
            Ok(())
        },
    );
}
