//! Property tests for the NIC model: steering stability, fault-injector
//! conservation, TSO framing invariants.

use neat_net::tcp::{TcpFlags, TcpHeader};
use neat_net::{EtherType, EthernetFrame, Ipv4Header, MacAddr, SeqNum};
use neat_nic::{FaultConfig, FaultInjector, Nic, NicConfig, Steering};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn frame(src: u32, sp: u16, dp: u16, flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
    let s = Ipv4Addr::from(src);
    let d = Ipv4Addr::new(192, 168, 69, 1);
    let tcp = TcpHeader::new(sp, dp, SeqNum(1), SeqNum(0), flags).emit(payload, s, d);
    let ip = Ipv4Header::new(s, d, neat_net::ipv4::IpProtocol::Tcp, tcp.len()).emit(&tcp);
    EthernetFrame {
        dst: MacAddr::local(1),
        src: MacAddr::local(2),
        ethertype: EtherType::Ipv4,
    }
    .emit(&ip)
}

proptest! {
    /// Flow affinity: for any sequence of flows and queue counts, every
    /// packet of a flow is classified to one queue.
    #[test]
    fn steering_flow_affinity(
        flows in proptest::collection::vec((any::<u32>(), 1024u16..65000, 1u16..1024), 1..40),
        queues in 1usize..16,
    ) {
        let mut s = Steering::new(queues);
        let mut assigned = std::collections::HashMap::new();
        let mut now = 0u64;
        for (src, sp, dp) in &flows {
            // SYN first, then data packets of the same flow interleaved.
            now += 1_000;
            let q0 = s.classify_track(&frame(*src, *sp, *dp, TcpFlags::SYN, &[]), now);
            prop_assert!(q0 < queues);
            let prev = assigned.insert((*src, *sp, *dp), q0);
            if let Some(p) = prev {
                prop_assert_eq!(p, q0, "re-SYN keeps the filter-pinned queue");
            }
            for _ in 0..3 {
                now += 1_000;
                let q = s.classify_track(&frame(*src, *sp, *dp, TcpFlags::ack(), b"x"), now);
                prop_assert_eq!(q, q0, "data follows the SYN's queue");
            }
        }
    }

    /// Fault injector conservation: every frame is exactly one of passed,
    /// corrupted, or dropped; corrupted frames differ in exactly one bit.
    #[test]
    fn fault_injector_conservation(
        drop_pct in 0u8..=100, corrupt_pct in 0u8..=100, seed in any::<u64>(),
        n in 1usize..200,
    ) {
        let mut inj = FaultInjector::new(
            FaultConfig { drop_pct, corrupt_pct, ..Default::default() },
            seed,
        );
        let orig = vec![0x5Au8; 64];
        for i in 0..n {
            match inj.apply(orig.clone(), i as u64) {
                neat_nic::faults::FaultOutcome::Pass(f) => prop_assert_eq!(&f, &orig),
                neat_nic::faults::FaultOutcome::Corrupted(f) => {
                    let bits: u32 = f.iter().zip(&orig).map(|(a, b)| (a ^ b).count_ones()).sum();
                    prop_assert_eq!(bits, 1);
                }
                neat_nic::faults::FaultOutcome::Dropped => {}
            }
        }
        prop_assert_eq!(inj.passed + inj.corrupted + inj.dropped, n as u64);
    }

    /// TSO: frames on the wire never exceed MSS+headers, cover the payload
    /// exactly once, in order.
    #[test]
    fn tso_framing_invariants(
        payload in proptest::collection::vec(any::<u8>(), 1..10_000),
        mss in 200usize..1460,
    ) {
        let f = frame(0x0A00_0001, 9999, 80, TcpFlags::psh_ack(), &payload);
        let out = neat_nic::tso::tso_split(f, mss);
        let mut covered = 0usize;
        let mut expect_seq = SeqNum(1);
        for w in &out {
            let (_, off) = EthernetFrame::parse(w).unwrap();
            let (iph, r) = Ipv4Header::parse(&w[off..]).unwrap();
            let l4 = &w[off..][r];
            let (th, pr) = TcpHeader::parse(l4, iph.src, iph.dst).unwrap();
            let seg = &l4[pr];
            prop_assert!(seg.len() <= mss);
            prop_assert_eq!(th.seq, expect_seq);
            prop_assert_eq!(seg, &payload[covered..covered + seg.len()]);
            expect_seq = expect_seq + seg.len() as u32;
            covered += seg.len();
        }
        prop_assert_eq!(covered, payload.len());
    }

    /// Device-level: growing queues never reroutes filtered (existing)
    /// flows.
    #[test]
    fn grow_preserves_existing_flows(
        ports in proptest::collection::vec(1024u16..60000, 1..30),
        grow_to in 2usize..12,
    ) {
        let mut nic = Nic::new(
            NicConfig { queue_pairs: 1, ..Default::default() },
            FaultInjector::disabled(1),
        );
        let mut homes = Vec::new();
        for (i, p) in ports.iter().enumerate() {
            let q = nic.wire_rx(frame(7, *p, 80, TcpFlags::SYN, &[]), i as u64).unwrap();
            homes.push(q);
        }
        nic.grow_queues(grow_to);
        for (i, p) in ports.iter().enumerate() {
            if let Some(q) = nic.wire_rx(frame(7, *p, 80, TcpFlags::ack(), b"d"), 1_000 + i as u64) {
                prop_assert_eq!(q, homes[i], "existing flow moved after grow");
            }
        }
    }
}
