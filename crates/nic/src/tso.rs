//! TCP segmentation offload: the host hands the NIC one oversized TCP
//! frame; the hardware cuts it into MSS-sized wire segments, fixing up
//! sequence numbers, lengths, flags, and checksums.
//!
//! The paper's testbed relies on this ("TSO … greatly improves performance
//! and allows smaller configurations to reach a full 10Gb/s", §6).

use neat_net::ethernet::{EtherType, EthernetFrame};
use neat_net::ipv4::{IpProtocol, Ipv4Header};
use neat_net::tcp::TcpHeader;
use neat_net::PktBuf;

/// [`tso_split`] on pooled buffers: frames that need no split pass the
/// original handle through untouched (zero-copy fast path); oversized
/// frames materialize fresh per-segment buffers.
pub fn tso_split_pkt(frame: PktBuf, mss: usize) -> Vec<PktBuf> {
    if !needs_split(&frame, mss) {
        return vec![frame];
    }
    tso_split(frame.to_vec(), mss)
        .into_iter()
        .map(PktBuf::from_vec)
        .collect()
}

/// Cheap pre-check: is this an IPv4/TCP frame with payload beyond `mss`?
fn needs_split(frame: &[u8], mss: usize) -> bool {
    let Ok((eth, ip_off)) = EthernetFrame::parse(frame) else {
        return false;
    };
    if eth.ethertype != EtherType::Ipv4 {
        return false;
    }
    let Ok((ip, l4_range)) = Ipv4Header::parse(&frame[ip_off..]) else {
        return false;
    };
    if ip.protocol != IpProtocol::Tcp {
        return false;
    }
    let l4 = &frame[ip_off..][l4_range];
    let Ok((_, payload_range)) = TcpHeader::parse(l4, ip.src, ip.dst) else {
        return false;
    };
    l4[payload_range].len() > mss
}

/// Split an Ethernet frame carrying an oversized IPv4/TCP payload into
/// MSS-sized frames. Non-TCP frames and frames already within `mss` pass
/// through unchanged.
pub fn tso_split(frame: Vec<u8>, mss: usize) -> Vec<Vec<u8>> {
    let Ok((eth, ip_off)) = EthernetFrame::parse(&frame) else {
        return vec![frame];
    };
    if eth.ethertype != EtherType::Ipv4 {
        return vec![frame];
    }
    let Ok((ip, l4_range)) = Ipv4Header::parse(&frame[ip_off..]) else {
        return vec![frame];
    };
    if ip.protocol != IpProtocol::Tcp {
        return vec![frame];
    }
    let l4 = &frame[ip_off..][l4_range];
    let Ok((tcp, payload_range)) = TcpHeader::parse(l4, ip.src, ip.dst) else {
        return vec![frame];
    };
    let payload = &l4[payload_range];
    if payload.len() <= mss {
        return vec![frame];
    }

    let mut out = Vec::new();
    let mut off = 0;
    while off < payload.len() {
        let end = (off + mss).min(payload.len());
        let last = end == payload.len();
        let mut h = tcp;
        h.seq = tcp.seq + off as u32;
        // FIN/PSH only on the final segment.
        h.flags.fin = tcp.flags.fin && last;
        h.flags.psh = tcp.flags.psh && last;
        // Options (MSS/wscale) belong to SYN segments only; data frames
        // here never carry them, but clear defensively.
        h.mss = None;
        h.window_scale = None;
        let seg = h.emit(&payload[off..end], ip.src, ip.dst);
        let ip_pkt = Ipv4Header::new(ip.src, ip.dst, IpProtocol::Tcp, seg.len()).emit(&seg);
        out.push(eth.emit(&ip_pkt));
        off = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_net::tcp::TcpFlags;
    use neat_net::{MacAddr, SeqNum};
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn build(payload: &[u8], flags: TcpFlags) -> Vec<u8> {
        let tcp = TcpHeader::new(1234, 80, SeqNum(1000), SeqNum(50), flags).emit(payload, SRC, DST);
        let ip = Ipv4Header::new(SRC, DST, IpProtocol::Tcp, tcp.len()).emit(&tcp);
        EthernetFrame {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
        }
        .emit(&ip)
    }

    fn parse_seg(frame: &[u8]) -> (TcpHeader, Vec<u8>) {
        let (_, off) = EthernetFrame::parse(frame).unwrap();
        let (ip, r) = Ipv4Header::parse(&frame[off..]).unwrap();
        let l4 = &frame[off..][r];
        let (h, pr) = TcpHeader::parse(l4, ip.src, ip.dst).unwrap();
        (h, l4[pr].to_vec())
    }

    #[test]
    fn small_frame_passthrough() {
        let f = build(b"tiny", TcpFlags::psh_ack());
        let out = tso_split(f.clone(), 1460);
        assert_eq!(out, vec![f]);
    }

    #[test]
    fn oversized_frame_splits_with_correct_seqs() {
        let payload: Vec<u8> = (0..4000u32).map(|i| (i % 256) as u8).collect();
        let f = build(&payload, TcpFlags::psh_ack());
        let out = tso_split(f, 1460);
        assert_eq!(out.len(), 3);
        let mut reassembled = Vec::new();
        let mut expect_seq = SeqNum(1000);
        for (i, frame) in out.iter().enumerate() {
            let (h, p) = parse_seg(frame);
            assert_eq!(h.seq, expect_seq, "segment {i} sequence");
            assert!(h.flags.ack);
            let last = i == out.len() - 1;
            assert_eq!(h.flags.psh, last, "PSH only on the last segment");
            expect_seq += p.len() as u32;
            reassembled.extend_from_slice(&p);
        }
        assert_eq!(reassembled, payload);
    }

    #[test]
    fn fin_only_on_last() {
        let payload = vec![7u8; 3000];
        let f = build(&payload, TcpFlags::fin_ack());
        let out = tso_split(f, 1460);
        assert!(out.len() > 1);
        for (i, frame) in out.iter().enumerate() {
            let (h, _) = parse_seg(frame);
            assert_eq!(h.flags.fin, i == out.len() - 1);
        }
    }

    #[test]
    fn checksums_valid_after_split() {
        // parse_seg would fail on a bad checksum; also verify IP header.
        let payload = vec![1u8; 5000];
        let f = build(&payload, TcpFlags::psh_ack());
        for frame in tso_split(f, 1000) {
            let (_, off) = EthernetFrame::parse(&frame).unwrap();
            assert!(Ipv4Header::parse(&frame[off..]).is_ok());
            parse_seg(&frame);
        }
    }

    #[test]
    fn non_tcp_passthrough() {
        let udpish = {
            let ip = Ipv4Header::new(SRC, DST, IpProtocol::Udp, 3000).emit(&vec![0u8; 3000]);
            EthernetFrame {
                dst: MacAddr::local(1),
                src: MacAddr::local(2),
                ethertype: EtherType::Ipv4,
            }
            .emit(&ip)
        };
        assert_eq!(tso_split(udpish.clone(), 1460), vec![udpish]);
    }
}
