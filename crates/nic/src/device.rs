//! The assembled NIC device: queue pairs + steering + TSO + faults + link
//! timing, as one passive hardware model the driver process drives.

use crate::faults::{FaultInjector, FaultOutcome};
use crate::link::LinkModel;
use crate::queue::DescRing;
use crate::steer::Steering;
use crate::tso;
use neat_net::{FlowKey, PktBuf};
use neat_sim::Time;

/// Static NIC configuration.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Number of RX/TX queue pairs (== max stack replicas served).
    pub queue_pairs: usize,
    /// Descriptors per RX ring.
    pub ring_size: usize,
    /// TSO segment size used when splitting oversized TX frames.
    pub tso_mss: usize,
    /// Enable TSO.
    pub tso: bool,
    pub link: LinkModel,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            queue_pairs: 4,
            ring_size: 512,
            tso_mss: 1460,
            tso: true,
            link: LinkModel::ten_gbe(),
        }
    }
}

/// Counters exposed to the experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    pub rx_frames: u64,
    pub tx_frames: u64,
    pub rx_bytes: u64,
    pub tx_bytes: u64,
    pub rx_dropped_ring: u64,
    pub tso_splits: u64,
}

/// Metrics-registry handles mirroring [`NicStats`]. All NIC instances in a
/// simulation share the same registry entries (aggregate view).
#[derive(Debug, Clone, Copy)]
struct NicObs {
    rx_frames: neat_obs::Counter,
    tx_frames: neat_obs::Counter,
    rx_dropped_ring: neat_obs::Counter,
    ring_depth_max: neat_obs::Gauge,
}

impl NicObs {
    fn new() -> NicObs {
        NicObs {
            rx_frames: neat_obs::counter("nic.rx_frames"),
            tx_frames: neat_obs::counter("nic.tx_frames"),
            rx_dropped_ring: neat_obs::counter("nic.rx_dropped_ring"),
            ring_depth_max: neat_obs::gauge("nic.rx_ring_depth_max"),
        }
    }
}

/// The simulated 82599. RX path: wire → faults → steering → per-queue ring.
/// TX path: host frame → TSO → wire frames (with serialization times).
#[derive(Debug)]
pub struct Nic {
    cfg: NicConfig,
    steering: Steering,
    rx_rings: Vec<DescRing>,
    rx_faults: FaultInjector,
    pub stats: NicStats,
    obs: NicObs,
}

impl Nic {
    pub fn new(cfg: NicConfig, rx_faults: FaultInjector) -> Nic {
        let steering = Steering::new(cfg.queue_pairs);
        let rx_rings = (0..cfg.queue_pairs)
            .map(|_| DescRing::new(cfg.ring_size))
            .collect();
        Nic {
            cfg,
            steering,
            rx_rings,
            rx_faults,
            stats: NicStats::default(),
            obs: NicObs::new(),
        }
    }

    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    pub fn num_queues(&self) -> usize {
        self.rx_rings.len()
    }

    /// A frame arrived from the wire at `now_ns`. Returns the queue it was
    /// steered to, or `None` if faults or ring overflow consumed it.
    pub fn wire_rx(&mut self, frame: PktBuf, now_ns: u64) -> Option<usize> {
        let frame = match self.rx_faults.apply(frame, now_ns) {
            FaultOutcome::Pass(f) | FaultOutcome::Corrupted(f) => f,
            FaultOutcome::Dropped => return None,
        };
        self.stats.rx_frames += 1;
        self.obs.rx_frames.inc();
        self.stats.rx_bytes += frame.len() as u64;
        let q = self.steering.classify_track(&frame, now_ns);
        if self.rx_rings[q].push(frame) {
            let depth = self.rx_rings[q].len() as f64;
            if depth > self.obs.ring_depth_max.get() {
                self.obs.ring_depth_max.set(depth);
            }
            Some(q)
        } else {
            self.stats.rx_dropped_ring += 1;
            self.obs.rx_dropped_ring.inc();
            None
        }
    }

    /// The driver fetches the next received frame from a queue.
    pub fn rx_pop(&mut self, queue: usize) -> Option<PktBuf> {
        self.rx_rings.get_mut(queue)?.pop()
    }

    /// Vectored fetch: the driver reads up to `max` frames in one
    /// descriptor-ring pass (batched RX, §3.4).
    pub fn rx_pop_batch(&mut self, queue: usize, max: usize) -> Vec<PktBuf> {
        self.rx_rings
            .get_mut(queue)
            .map(|r| r.pop_batch(max))
            .unwrap_or_default()
    }

    pub fn rx_pending(&self, queue: usize) -> usize {
        self.rx_rings.get(queue).map(|r| r.len()).unwrap_or(0)
    }

    /// The host hands the NIC a frame for transmission. Returns the wire
    /// frames (after TSO) each paired with its serialization time.
    pub fn host_tx(&mut self, frame: PktBuf) -> Vec<(PktBuf, Time)> {
        let frames = if self.cfg.tso {
            let split = tso::tso_split_pkt(frame, self.cfg.tso_mss);
            if split.len() > 1 {
                self.stats.tso_splits += 1;
            }
            split
        } else {
            vec![frame]
        };
        frames
            .into_iter()
            .map(|f| {
                self.stats.tx_frames += 1;
                self.obs.tx_frames.inc();
                self.stats.tx_bytes += f.len() as u64;
                let t = self.cfg.link.tx_time(f.len());
                (f, t)
            })
            .collect()
    }

    /// One-way link latency to the peer NIC.
    pub fn link_latency(&self) -> Time {
        self.cfg.link.latency
    }

    // --- control plane (driver-configured), §4 ---

    pub fn add_filter(&mut self, key: FlowKey, queue: usize) -> bool {
        self.steering.add_filter(key, queue)
    }

    pub fn remove_filter(&mut self, key: &FlowKey) {
        self.steering.remove_filter(key);
    }

    pub fn set_queue_accepting(&mut self, queue: usize, accepting: bool) {
        self.steering.set_accepting(queue, accepting);
    }

    /// Toggle SYN-learned tracking filters (ablation hook).
    pub fn set_tracking(&mut self, on: bool) {
        self.steering.track_flows = on;
    }

    /// Grow the queue set for scale-up (§3.4).
    pub fn grow_queues(&mut self, n: usize) {
        while self.rx_rings.len() < n {
            self.rx_rings.push(DescRing::new(self.cfg.ring_size));
        }
        self.steering.grow(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use neat_net::ethernet::{EtherType, EthernetFrame};
    use neat_net::ipv4::{IpProtocol, Ipv4Header};
    use neat_net::tcp::{TcpFlags, TcpHeader};
    use neat_net::{MacAddr, SeqNum};
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn frame(src_port: u16, payload: &[u8]) -> Vec<u8> {
        let tcp = TcpHeader::new(src_port, 80, SeqNum(0), SeqNum(0), TcpFlags::psh_ack())
            .emit(payload, SRC, DST);
        let ip = Ipv4Header::new(SRC, DST, IpProtocol::Tcp, tcp.len()).emit(&tcp);
        EthernetFrame {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
        }
        .emit(&ip)
    }

    #[test]
    fn rx_steers_to_stable_queue() {
        let mut nic = Nic::new(NicConfig::default(), FaultInjector::disabled(1));
        let q1 = nic.wire_rx(frame(1000, b"a").into(), 0).unwrap();
        let q2 = nic.wire_rx(frame(1000, b"b").into(), 0).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(nic.rx_pending(q1), 2);
        assert!(nic.rx_pop(q1).is_some());
        assert!(nic.rx_pop(q1).is_some());
        assert!(nic.rx_pop(q1).is_none());
    }

    #[test]
    fn ring_overflow_drops() {
        let cfg = NicConfig {
            ring_size: 2,
            queue_pairs: 1,
            ..Default::default()
        };
        let mut nic = Nic::new(cfg, FaultInjector::disabled(1));
        assert!(nic.wire_rx(frame(1, b"x").into(), 0).is_some());
        assert!(nic.wire_rx(frame(2, b"x").into(), 0).is_some());
        assert!(nic.wire_rx(frame(3, b"x").into(), 0).is_none());
        assert_eq!(nic.stats.rx_dropped_ring, 1);
    }

    #[test]
    fn tx_tso_produces_timed_wire_frames() {
        let mut nic = Nic::new(NicConfig::default(), FaultInjector::disabled(1));
        let big = frame(5000, &vec![9u8; 4000]);
        let out = nic.host_tx(big.into());
        assert_eq!(out.len(), 3);
        assert_eq!(nic.stats.tso_splits, 1);
        for (f, t) in &out {
            assert!(t.as_nanos() > 0);
            assert!(f.len() <= 14 + 20 + 20 + 1460);
        }
    }

    #[test]
    fn tx_without_tso_passthrough() {
        let cfg = NicConfig {
            tso: false,
            ..Default::default()
        };
        let mut nic = Nic::new(cfg, FaultInjector::disabled(1));
        let big = frame(5000, &vec![9u8; 4000]);
        let out = nic.host_tx(big.clone().into());
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0].0[..], &big[..]);
    }

    #[test]
    fn faults_drop_on_rx() {
        let mut nic = Nic::new(
            NicConfig::default(),
            FaultInjector::new(
                FaultConfig {
                    drop_pct: 100,
                    ..Default::default()
                },
                1,
            ),
        );
        assert!(nic.wire_rx(frame(1, b"x").into(), 0).is_none());
        assert_eq!(nic.stats.rx_frames, 0);
    }

    #[test]
    fn grow_queues_expands() {
        let cfg = NicConfig {
            queue_pairs: 1,
            ..Default::default()
        };
        let mut nic = Nic::new(cfg, FaultInjector::disabled(1));
        assert_eq!(nic.num_queues(), 1);
        nic.grow_queues(3);
        assert_eq!(nic.num_queues(), 3);
        let mut seen = std::collections::HashSet::new();
        for p in 0..256 {
            if let Some(q) = nic.wire_rx(frame(2000 + p, b"s").into(), 0) {
                seen.insert(q);
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn filters_pin_flows() {
        let mut nic = Nic::new(NicConfig::default(), FaultInjector::disabled(1));
        let f: neat_net::PktBuf = frame(7777, b"z").into();
        let flow = crate::steer::Steering::parse_flow(&f).unwrap().key;
        let natural = nic.wire_rx(f.clone(), 0).unwrap();
        let target = (natural + 1) % nic.num_queues();
        assert!(nic.add_filter(flow, target));
        assert_eq!(nic.wire_rx(f, 0).unwrap(), target);
    }
}
