//! Link-level fault injection, modelled on smoltcp's example options:
//! `--drop-chance`, `--corrupt-chance`, `--size-limit`, rate limiting via a
//! token bucket. Used to demonstrate the stack's robustness and to stress
//! the recovery experiments.

use neat_net::PktBuf;
use neat_util::Rng;

/// Fault injection configuration (probabilities in percent, like smoltcp).
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Probability (0–100) of dropping a frame.
    pub drop_pct: u8,
    /// Probability (0–100) of flipping one bit in a frame.
    pub corrupt_pct: u8,
    /// Drop frames larger than this many bytes (0 = unlimited).
    pub size_limit: usize,
    /// Token bucket size in frames (0 = no rate limit).
    pub rate_tokens: u32,
    /// Bucket refill interval in nanoseconds.
    pub refill_interval_ns: u64,
}

/// What happened to a frame passed through the injector. `Pass` keeps
/// the original buffer handle (zero-copy); only `Corrupted` re-grants —
/// corruption is the one fault that must materialize new bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Pass through unchanged.
    Pass(PktBuf),
    /// Pass through with one octet mutated.
    Corrupted(PktBuf),
    /// Silently dropped.
    Dropped,
}

/// Stateful fault injector (token bucket + RNG).
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: Rng,
    tokens: u32,
    last_refill_ns: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub passed: u64,
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig, seed: u64) -> FaultInjector {
        let tokens = cfg.rate_tokens;
        FaultInjector {
            cfg,
            rng: Rng::seed_from_u64(seed),
            tokens,
            last_refill_ns: 0,
            dropped: 0,
            corrupted: 0,
            passed: 0,
        }
    }

    /// A no-fault injector (everything passes).
    pub fn disabled(seed: u64) -> FaultInjector {
        FaultInjector::new(FaultConfig::default(), seed)
    }

    /// Run one frame through the injector at simulated time `now_ns`.
    pub fn apply(&mut self, frame: PktBuf, now_ns: u64) -> FaultOutcome {
        // Size limit.
        if self.cfg.size_limit > 0 && frame.len() > self.cfg.size_limit {
            self.dropped += 1;
            return FaultOutcome::Dropped;
        }
        // Token-bucket rate limit.
        if self.cfg.rate_tokens > 0 {
            if self.cfg.refill_interval_ns > 0
                && now_ns.saturating_sub(self.last_refill_ns) >= self.cfg.refill_interval_ns
            {
                self.tokens = self.cfg.rate_tokens;
                self.last_refill_ns = now_ns;
            }
            if self.tokens == 0 {
                self.dropped += 1;
                return FaultOutcome::Dropped;
            }
            self.tokens -= 1;
        }
        // Random drop.
        if self.cfg.drop_pct > 0 && self.rng.gen_range(0u32..100) < self.cfg.drop_pct as u32 {
            self.dropped += 1;
            return FaultOutcome::Dropped;
        }
        // Random single-octet corruption (the only path that copies).
        if self.cfg.corrupt_pct > 0
            && !frame.is_empty()
            && self.rng.gen_range(0u32..100) < self.cfg.corrupt_pct as u32
        {
            let mut bytes = frame.to_vec();
            let idx = self.rng.gen_range(0..bytes.len());
            let bit = 1u8 << self.rng.gen_range(0u32..8);
            bytes[idx] ^= bit;
            self.corrupted += 1;
            return FaultOutcome::Corrupted(PktBuf::from_vec(bytes));
        }
        self.passed += 1;
        FaultOutcome::Pass(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_passes_everything() {
        let mut f = FaultInjector::disabled(1);
        for i in 0..100u8 {
            match f.apply(vec![i; 64].into(), 0) {
                FaultOutcome::Pass(v) => assert_eq!(&v[..], &vec![i; 64][..]),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(f.passed, 100);
    }

    #[test]
    fn drop_rate_approximates_config() {
        let mut f = FaultInjector::new(
            FaultConfig {
                drop_pct: 15,
                ..Default::default()
            },
            42,
        );
        let mut drops = 0;
        for _ in 0..10_000 {
            if f.apply(vec![0; 64].into(), 0) == FaultOutcome::Dropped {
                drops += 1;
            }
        }
        let rate = drops as f64 / 10_000.0;
        assert!((0.12..=0.18).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut f = FaultInjector::new(
            FaultConfig {
                corrupt_pct: 100,
                ..Default::default()
            },
            7,
        );
        let orig = vec![0u8; 64];
        match f.apply(orig.clone().into(), 0) {
            FaultOutcome::Corrupted(v) => {
                let flipped: u32 = v.iter().zip(&orig).map(|(a, b)| (a ^ b).count_ones()).sum();
                assert_eq!(flipped, 1);
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn size_limit_drops_large() {
        let mut f = FaultInjector::new(
            FaultConfig {
                size_limit: 100,
                ..Default::default()
            },
            1,
        );
        assert_eq!(f.apply(vec![0; 101].into(), 0), FaultOutcome::Dropped);
        assert!(matches!(
            f.apply(vec![0; 100].into(), 0),
            FaultOutcome::Pass(_)
        ));
    }

    #[test]
    fn token_bucket_limits_and_refills() {
        let mut f = FaultInjector::new(
            FaultConfig {
                rate_tokens: 4,
                refill_interval_ns: 50_000_000,
                ..Default::default()
            },
            1,
        );
        let mut passed = 0;
        for _ in 0..10 {
            if matches!(f.apply(vec![0; 10].into(), 1000), FaultOutcome::Pass(_)) {
                passed += 1;
            }
        }
        assert_eq!(passed, 4, "bucket exhausted after 4 frames");
        // After the refill interval, tokens return.
        assert!(matches!(
            f.apply(vec![0; 10].into(), 60_000_000),
            FaultOutcome::Pass(_)
        ));
    }

    #[test]
    fn deterministic_with_seed() {
        let run = |seed| {
            let mut f = FaultInjector::new(
                FaultConfig {
                    drop_pct: 50,
                    ..Default::default()
                },
                seed,
            );
            (0..64)
                .map(|_| f.apply(vec![0; 8].into(), 0) == FaultOutcome::Dropped)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
