//! The physical link: serialization at line rate plus cable latency.
//!
//! The paper's testbed links two machines with a 10GbE DAC cable; the
//! 10 Gb/s ceiling is what saturates Figures 4–5 past ~7 KB file sizes.

use neat_sim::calibration;
use neat_sim::Time;

/// A full-duplex point-to-point link.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Line rate in bits per second.
    pub bps: u64,
    /// One-way propagation + PHY latency.
    pub latency: Time,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            bps: calibration::LINK_BPS,
            latency: calibration::LINK_LATENCY,
        }
    }
}

/// Ethernet per-frame wire overhead: preamble(7) + SFD(1) + FCS(4) + IFG(12).
pub const WIRE_OVERHEAD_BYTES: u64 = 24;

/// Minimum Ethernet frame size on the wire (without overhead).
pub const MIN_FRAME: u64 = 60;

impl LinkModel {
    pub fn ten_gbe() -> LinkModel {
        LinkModel::default()
    }

    /// Time to serialize one frame of `len` bytes onto the wire.
    pub fn tx_time(&self, len: usize) -> Time {
        let wire_bytes = (len as u64).max(MIN_FRAME) + WIRE_OVERHEAD_BYTES;
        Time::from_nanos(wire_bytes * 8 * 1_000_000_000 / self.bps)
    }

    /// Theoretical frames/second at a given frame size.
    pub fn max_fps(&self, len: usize) -> f64 {
        1e9 / self.tx_time(len).as_nanos() as f64
    }

    /// Theoretical payload goodput (bytes/second) at a given frame size
    /// with `overhead` header bytes per frame.
    pub fn goodput(&self, frame_len: usize, header_bytes: usize) -> f64 {
        let payload = frame_len.saturating_sub(header_bytes) as f64;
        payload * self.max_fps(frame_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_size_frame_time() {
        let l = LinkModel::ten_gbe();
        // 1538 wire bytes at 10 Gb/s = 1230.4 ns
        let t = l.tx_time(1514);
        assert!((1200..=1260).contains(&t.as_nanos()), "{t}");
    }

    #[test]
    fn small_frames_padded_to_minimum() {
        let l = LinkModel::ten_gbe();
        assert_eq!(l.tx_time(1), l.tx_time(60));
        assert!(l.tx_time(61) > l.tx_time(60));
    }

    #[test]
    fn line_rate_packet_rate() {
        let l = LinkModel::ten_gbe();
        // 10GbE minimum-size frame rate ≈ 14.88 Mpps.
        let fps = l.max_fps(60);
        assert!((14.0e6..15.5e6).contains(&fps), "{fps}");
    }

    #[test]
    fn goodput_below_line_rate() {
        let l = LinkModel::ten_gbe();
        let gp = l.goodput(1514, 54); // TCP/IP/Ethernet headers
        assert!(gp < 10e9 / 8.0);
        assert!(gp > 1.1e9, "~1.18 GB/s of TCP payload on 10GbE: {gp}");
    }
}
