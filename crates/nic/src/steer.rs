//! Packet classification and steering: RSS hashing with an indirection
//! table, overridden by exact-match flow-director filters.
//!
//! This is the mechanism that lets NEaT keep every packet of a connection on
//! the path to the same replica (Figure 2) without any inter-replica
//! communication: "the NIC driver can thus dispatch the packets to the right
//! replica based on the receive queue of the NIC" (§3.1).

use neat_net::ethernet::{EtherType, EthernetFrame};
use neat_net::ipv4::{IpProtocol, Ipv4Header};
use neat_net::wire::get_u16;
use neat_net::{FlowKey, RssHasher};
use std::collections::HashMap;

/// The flow fields extracted from a frame for classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedFlow {
    pub key: FlowKey,
    /// True for TCP SYN-only segments (new inbound connections) — the
    /// driver uses this to learn flow→queue mappings.
    pub is_syn: bool,
    /// True for RST segments (tracking filters are torn down).
    pub is_rst: bool,
}

/// Classifier state: hash + filters + queue count.
#[derive(Debug)]
pub struct Steering {
    rss: RssHasher,
    /// Exact-match filters: flow → (queue, last-seen ns). The 82599 holds
    /// ~8k of these; idle entries expire like ATR's sampled filters.
    filters: HashMap<FlowKey, (usize, u64)>,
    max_filters: usize,
    /// Learn a tracking filter from every new flow's SYN — the hardware
    /// extension §4 argues for ("ensure all the corresponding packets of
    /// each flow follow the same route"), which makes the scale-up/down
    /// protocol of §3.4 keep existing connections intact.
    pub track_flows: bool,
    /// Idle tracking filters older than this are reclaimable.
    filter_idle_ns: u64,
    num_queues: usize,
    /// Which queues currently accept *new* flows (termination-state
    /// replicas are excluded here per §3.4's lazy scale-down).
    accepting: Vec<bool>,
}

impl Steering {
    pub fn new(num_queues: usize) -> Steering {
        Steering {
            rss: RssHasher::default(),
            filters: HashMap::new(),
            max_filters: 8_192,
            track_flows: true,
            filter_idle_ns: 10_000_000_000,
            num_queues,
            accepting: vec![true; num_queues],
        }
    }

    pub fn num_queues(&self) -> usize {
        self.num_queues
    }

    /// Extract the flow 5-tuple from an Ethernet frame carrying IPv4 TCP
    /// or UDP. Non-IP and non-TCP/UDP traffic goes to queue 0 by default.
    pub fn parse_flow(frame: &[u8]) -> Option<ParsedFlow> {
        let (eth, off) = EthernetFrame::parse(frame).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let (ip, payload) = Ipv4Header::parse(&frame[off..]).ok()?;
        let l4 = &frame[off..][payload];
        match ip.protocol {
            IpProtocol::Tcp | IpProtocol::Udp => {
                if l4.len() < 14 {
                    return None;
                }
                let src_port = get_u16(l4, 0);
                let dst_port = get_u16(l4, 2);
                let flags = if ip.protocol == IpProtocol::Tcp {
                    l4[13]
                } else {
                    0
                };
                let is_syn = flags & 0x02 != 0 && flags & 0x10 == 0;
                let is_rst = flags & 0x04 != 0;
                Some(ParsedFlow {
                    key: FlowKey {
                        src: ip.src,
                        dst: ip.dst,
                        src_port,
                        dst_port,
                        protocol: u8::from(ip.protocol),
                    },
                    is_syn,
                    is_rst,
                })
            }
            _ => None,
        }
    }

    /// Classify a frame to a queue. Filters take precedence over the RSS
    /// hash. New flows (no filter) are steered by hashing over the queues
    /// currently accepting new connections.
    pub fn classify(&self, frame: &[u8]) -> usize {
        let Some(flow) = Self::parse_flow(frame) else {
            return 0;
        };
        if let Some(&(q, _)) = self.filters.get(&flow.key) {
            return q;
        }
        self.hash_accepting(&flow.key)
    }

    fn hash_accepting(&self, key: &FlowKey) -> usize {
        let accepting: Vec<usize> = self
            .accepting
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| i)
            .collect();
        if accepting.is_empty() {
            return self.rss.queue_for(key, self.num_queues);
        }
        let idx = self.rss.queue_for(key, accepting.len());
        accepting[idx]
    }

    /// Classify with flow tracking (the data-plane fast path of a tracking
    /// NIC): new flows get a filter pinning them to the chosen queue; RSTs
    /// tear the filter down; idle filters expire.
    pub fn classify_track(&mut self, frame: &[u8], now_ns: u64) -> usize {
        let Some(flow) = Self::parse_flow(frame) else {
            return 0;
        };
        if let Some(entry) = self.filters.get_mut(&flow.key) {
            let q = entry.0;
            entry.1 = now_ns;
            if flow.is_rst {
                self.filters.remove(&flow.key);
            }
            return q;
        }
        let q = self.hash_accepting(&flow.key);
        if self.track_flows && flow.is_syn {
            if self.filters.len() >= self.max_filters {
                // Reclaim idle entries (connections long gone).
                let idle = self.filter_idle_ns;
                self.filters
                    .retain(|_, (_, seen)| now_ns.saturating_sub(*seen) < idle);
            }
            if self.filters.len() < self.max_filters {
                self.filters.insert(flow.key, (q, now_ns));
            }
        }
        q
    }

    /// Install an exact-match filter (software-configured, like the real
    /// flow director). Returns false when the filter table is full.
    pub fn add_filter(&mut self, key: FlowKey, queue: usize) -> bool {
        if self.filters.len() >= self.max_filters && !self.filters.contains_key(&key) {
            return false;
        }
        self.filters.insert(key, (queue, 0));
        true
    }

    pub fn remove_filter(&mut self, key: &FlowKey) {
        self.filters.remove(key);
    }

    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Mark a queue as (not) accepting new flows — the lazy-termination
    /// control of §3.4: "instruct the NIC to distribute new connections
    /// only to replicas in nontermination state but continue to serve
    /// packets on existing connections".
    pub fn set_accepting(&mut self, queue: usize, accepting: bool) {
        self.accepting[queue] = accepting;
    }

    pub fn is_accepting(&self, queue: usize) -> bool {
        self.accepting[queue]
    }

    /// Grow the queue set (scale-up, §3.4).
    pub fn grow(&mut self, num_queues: usize) {
        assert!(num_queues >= self.num_queues);
        self.accepting.resize(num_queues, true);
        self.num_queues = num_queues;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_net::tcp::{TcpFlags, TcpHeader};
    use neat_net::{MacAddr, SeqNum};
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 100);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 1);

    fn tcp_frame(src_port: u16, flags: TcpFlags) -> Vec<u8> {
        let tcp = TcpHeader::new(src_port, 80, SeqNum(1), SeqNum(0), flags).emit(&[], SRC, DST);
        let ip = Ipv4Header::new(SRC, DST, IpProtocol::Tcp, tcp.len()).emit(&tcp);
        EthernetFrame {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
        }
        .emit(&ip)
    }

    #[test]
    fn parse_flow_extracts_tuple() {
        let f = Steering::parse_flow(&tcp_frame(5555, TcpFlags::SYN)).unwrap();
        assert_eq!(f.key.src, SRC);
        assert_eq!(f.key.dst, DST);
        assert_eq!(f.key.src_port, 5555);
        assert_eq!(f.key.dst_port, 80);
        assert!(f.is_syn);
        let f2 = Steering::parse_flow(&tcp_frame(5555, TcpFlags::ack())).unwrap();
        assert!(!f2.is_syn);
    }

    #[test]
    fn same_flow_same_queue() {
        let s = Steering::new(4);
        let frame = tcp_frame(1234, TcpFlags::SYN);
        let q = s.classify(&frame);
        let frame2 = tcp_frame(1234, TcpFlags::ack());
        assert_eq!(
            s.classify(&frame2),
            q,
            "every packet of a flow → same queue"
        );
    }

    #[test]
    fn filters_override_hash() {
        let mut s = Steering::new(4);
        let frame = tcp_frame(4242, TcpFlags::SYN);
        let hashed = s.classify(&frame);
        let flow = Steering::parse_flow(&frame).unwrap().key;
        let forced = (hashed + 1) % 4;
        assert!(s.add_filter(flow, forced));
        assert_eq!(s.classify(&frame), forced);
        s.remove_filter(&flow);
        assert_eq!(s.classify(&frame), hashed);
    }

    #[test]
    fn non_accepting_queue_excluded_for_new_flows() {
        let mut s = Steering::new(2);
        s.set_accepting(1, false);
        for p in 1024..1124 {
            let q = s.classify(&tcp_frame(p, TcpFlags::SYN));
            assert_eq!(q, 0, "all new flows must go to the accepting queue");
        }
        // Existing flows with filters still reach the draining queue.
        let frame = tcp_frame(9999, TcpFlags::ack());
        let flow = Steering::parse_flow(&frame).unwrap().key;
        s.add_filter(flow, 1);
        assert_eq!(s.classify(&frame), 1);
    }

    #[test]
    fn flows_balance_across_queues() {
        let s = Steering::new(4);
        let mut counts = [0usize; 4];
        for p in 1024..3072u16 {
            counts[s.classify(&tcp_frame(p, TcpFlags::SYN))] += 1;
        }
        for c in counts {
            assert!(c > 2048 / 4 / 2, "queue starved: {counts:?}");
        }
    }

    #[test]
    fn grow_adds_queues() {
        let mut s = Steering::new(1);
        for p in 0..64 {
            assert_eq!(s.classify(&tcp_frame(p + 1024, TcpFlags::SYN)), 0);
        }
        s.grow(3);
        let mut seen = std::collections::HashSet::new();
        for p in 0..256 {
            seen.insert(s.classify(&tcp_frame(p + 2048, TcpFlags::SYN)));
        }
        assert_eq!(seen.len(), 3, "new queues receive flows after grow");
    }

    #[test]
    fn filter_table_capacity() {
        let mut s = Steering::new(2);
        s.max_filters = 4;
        for i in 0..4u16 {
            let key = FlowKey::tcp(SRC, 1000 + i, DST, 80);
            assert!(s.add_filter(key, 0));
        }
        assert!(!s.add_filter(FlowKey::tcp(SRC, 2000, DST, 80), 0));
        assert_eq!(s.filter_count(), 4);
    }

    #[test]
    fn garbage_frames_default_queue() {
        let s = Steering::new(4);
        assert_eq!(s.classify(&[0u8; 10]), 0);
        assert_eq!(s.classify(&[0u8; 100]), 0);
    }
}
