//! Descriptor rings: the bounded RX/TX queues of one NIC queue pair.

use neat_net::PktBuf;
use std::collections::VecDeque;

/// A bounded frame ring. When full, new frames are dropped (tail drop) —
/// exactly what an overloaded replica's RX queue does in the paper's
/// overload experiments.
#[derive(Debug)]
pub struct DescRing {
    frames: VecDeque<PktBuf>,
    cap: usize,
    /// Total frames ever enqueued.
    pub enqueued: u64,
    /// Frames dropped because the ring was full.
    pub dropped: u64,
}

impl DescRing {
    pub fn new(cap: usize) -> DescRing {
        DescRing {
            frames: VecDeque::with_capacity(cap.min(1024)),
            cap,
            enqueued: 0,
            dropped: 0,
        }
    }

    /// Enqueue a frame; returns false (and counts a drop) when full.
    pub fn push(&mut self, frame: PktBuf) -> bool {
        if self.frames.len() >= self.cap {
            self.dropped += 1;
            false
        } else {
            self.frames.push_back(frame);
            self.enqueued += 1;
            true
        }
    }

    pub fn pop(&mut self) -> Option<PktBuf> {
        self.frames.pop_front()
    }

    /// Vectored drain: take up to `max` frames in one descriptor pass
    /// (the driver's batched RX ring read).
    pub fn pop_batch(&mut self, max: usize) -> Vec<PktBuf> {
        let n = self.frames.len().min(max);
        self.frames.drain(..n).collect()
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Discard everything (device reset).
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = DescRing::new(4);
        assert!(r.push(vec![1].into()));
        assert!(r.push(vec![2].into()));
        assert_eq!(r.pop().as_deref(), Some(&[1u8][..]));
        assert_eq!(r.pop().as_deref(), Some(&[2u8][..]));
        assert!(r.pop().is_none());
    }

    #[test]
    fn pop_batch_drains_in_order() {
        let mut r = DescRing::new(8);
        for i in 0..5u8 {
            assert!(r.push(vec![i].into()));
        }
        let batch = r.pop_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(&batch[0][..], &[0]);
        assert_eq!(&batch[2][..], &[2]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop_batch(10).len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn tail_drop_when_full() {
        let mut r = DescRing::new(2);
        assert!(r.push(vec![1].into()));
        assert!(r.push(vec![2].into()));
        assert!(!r.push(vec![3].into()));
        assert_eq!(r.dropped, 1);
        assert_eq!(r.enqueued, 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut r = DescRing::new(2);
        r.push(vec![1].into());
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.enqueued, 1);
    }
}
