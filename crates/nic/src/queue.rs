//! Descriptor rings: the bounded RX/TX queues of one NIC queue pair.

use std::collections::VecDeque;

/// A bounded frame ring. When full, new frames are dropped (tail drop) —
/// exactly what an overloaded replica's RX queue does in the paper's
/// overload experiments.
#[derive(Debug)]
pub struct DescRing {
    frames: VecDeque<Vec<u8>>,
    cap: usize,
    /// Total frames ever enqueued.
    pub enqueued: u64,
    /// Frames dropped because the ring was full.
    pub dropped: u64,
}

impl DescRing {
    pub fn new(cap: usize) -> DescRing {
        DescRing {
            frames: VecDeque::with_capacity(cap.min(1024)),
            cap,
            enqueued: 0,
            dropped: 0,
        }
    }

    /// Enqueue a frame; returns false (and counts a drop) when full.
    pub fn push(&mut self, frame: Vec<u8>) -> bool {
        if self.frames.len() >= self.cap {
            self.dropped += 1;
            false
        } else {
            self.frames.push_back(frame);
            self.enqueued += 1;
            true
        }
    }

    pub fn pop(&mut self) -> Option<Vec<u8>> {
        self.frames.pop_front()
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Discard everything (device reset).
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = DescRing::new(4);
        assert!(r.push(vec![1]));
        assert!(r.push(vec![2]));
        assert_eq!(r.pop(), Some(vec![1]));
        assert_eq!(r.pop(), Some(vec![2]));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut r = DescRing::new(2);
        assert!(r.push(vec![1]));
        assert!(r.push(vec![2]));
        assert!(!r.push(vec![3]));
        assert_eq!(r.dropped, 1);
        assert_eq!(r.enqueued, 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut r = DescRing::new(2);
        r.push(vec![1]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.enqueued, 1);
    }
}
