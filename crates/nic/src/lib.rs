//! # neat-nic — a simulated Intel 82599-style 10 GbE NIC
//!
//! NEaT "delegate[s] part of the data plane functionality to the hardware"
//! (§3.1): the NIC classifies every inbound packet and steers all packets of
//! a flow to the same queue — and therefore to the same stack replica. This
//! crate models the hardware features the paper relies on:
//!
//! * multiple RX/TX **queue pairs**, one pair per stack replica (§4);
//! * **RSS** — Toeplitz 5-tuple hashing with an indirection to N queues —
//!   and exact-match **flow-director filters** that override the hash
//!   (the 82599 "can hold up to 8 thousand filters");
//! * **TSO** — the host may hand the NIC an oversized TCP frame, which the
//!   hardware splits into MSS-sized segments on the wire;
//! * a full-duplex **link model** (serialization at 10 Gb/s + DAC latency)
//!   that provides the bandwidth ceiling of the paper's Figures 4–5;
//! * smoltcp-style **fault injection** (drop / corrupt / rate-limit /
//!   size-limit) used by the reliability experiments.
//!
//! The crate is pure hardware logic; the driver *process* that connects a
//! NIC to stack replicas lives in the `neat` crate.

pub mod device;
pub mod faults;
pub mod link;
pub mod queue;
pub mod steer;
pub mod tso;

pub use device::{Nic, NicConfig, NicStats};
pub use faults::{FaultConfig, FaultInjector};
pub use link::LinkModel;
pub use queue::DescRing;
pub use steer::{ParsedFlow, Steering};
