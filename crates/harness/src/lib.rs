//! Integration-test and example host crate; the real content lives in the repository-level `tests/` and `examples/` directories wired via Cargo target paths.
