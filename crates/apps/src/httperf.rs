//! `httperf` — the load generator (§6.1–§6.2).
//!
//! Each instance is one process on the client machine (the paper runs "12
//! httperf processes — one per client machine's core"), embedding its own
//! library TCP stack (mTCP-style OS bypass — the client box is harness,
//! not the system under test). It keeps `num_conns` persistent
//! connections open, issues `requests_per_conn` GETs on each, replaces
//! finished connections with fresh ones, and reports rates/latency with
//! httperf's semantics: "dismisses from the request rate and throughput
//! any connection which has an error".

use crate::http;
use neat::msg::Msg;
use neat::netcode::{FrameIo, RxClass};
use neat_net::ethernet::MacAddr;
use neat_net::ipv4::IpProtocol;
use neat_sim::{calibration, Ctx, Event, Histogram, ProcId, Process, Time};
use neat_tcp::{SockEvent, SockOpt, SocketId, TcpConfig, TcpStack};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct HttperfConfig {
    pub target: (Ipv4Addr, u16),
    /// Concurrent persistent connections held open.
    pub num_conns: usize,
    /// Requests per connection before it is closed and replaced.
    pub requests_per_conn: u32,
    /// Request path (selects the file size on the server).
    pub path: String,
    /// Per-request timeout; expiry makes the connection an error.
    pub timeout_ns: u64,
    /// Ephemeral port partition for this instance.
    pub port_range: (u16, u16),
    /// Stagger between the initial connection opens.
    pub open_spacing_ns: u64,
    /// Think time between receiving a response and issuing the next
    /// request (0 = closed loop at full speed).
    pub think_ns: u64,
    /// Socket options applied to every connection right after `connect`
    /// (httperf's `--sock-opt` style flags: congestion algorithm, initial
    /// cwnd, receive-buffer size).
    pub sock_opts: Vec<SockOpt>,
}

impl Default for HttperfConfig {
    fn default() -> Self {
        HttperfConfig {
            target: (Ipv4Addr::new(192, 168, 69, 1), 8000),
            num_conns: 16,
            requests_per_conn: 100,
            path: "/file".into(),
            timeout_ns: 5_000_000_000,
            port_range: (49_152, 50_151),
            open_spacing_ns: 20_000,
            think_ns: 0,
            sock_opts: Vec::new(),
        }
    }
}

/// Cumulative measurements, shared with the harness. Snapshot/subtract
/// across a window to get rates.
#[derive(Debug, Default)]
pub struct ClientMetrics {
    /// Successfully completed requests (on non-error connections so far).
    pub completed: u64,
    pub response_bytes: u64,
    pub latency: Histogram,
    /// Connections that errored (timeout / reset / replica crash).
    pub conn_errors: u64,
    /// Requests completed on connections that later errored — httperf
    /// subtracts these from its report.
    pub requests_on_error_conns: u64,
    pub conns_finished: u64,
    pub conns_opened: u64,
    /// Order-sensitive FNV-1a fold of every byte the client application
    /// read, in delivery order across all its connections. Two fixed-seed
    /// runs that delivered byte-identical streams produce equal digests,
    /// so failover tests can assert the recovered byte stream exactly
    /// matches the uncrashed one.
    pub rx_digest: u64,
}

impl ClientMetrics {
    /// Error-adjusted completed count (httperf's reported number).
    pub fn reported_requests(&self) -> u64 {
        self.completed.saturating_sub(self.requests_on_error_conns)
    }

    fn digest_bytes(&mut self, data: &[u8]) {
        let mut h = if self.rx_digest == 0 {
            0xcbf2_9ce4_8422_2325 // FNV-1a offset basis
        } else {
            self.rx_digest
        };
        for &b in data {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        self.rx_digest = h;
    }
}

#[derive(Debug)]
struct ConnRun {
    parser: http::StreamParser,
    requests_done: u32,
    /// Completed requests counted into `completed` for this connection.
    counted: u64,
    sent_at: Option<u64>,
    connected: bool,
}

const TOK_STACK: u64 = 0;
const TOK_SCAN: u64 = 1;
const TOK_OPEN: u64 = 2;
/// Tokens >= TOK_THINK encode a think-time wakeup for socket id
/// `token - TOK_THINK`.
const TOK_THINK: u64 = 1_000;

/// The load-generator process.
pub struct HttperfProc {
    pub name: String,
    cfg: HttperfConfig,
    nic: ProcId,
    stack: TcpStack,
    io: FrameIo,
    conns: HashMap<SocketId, ConnRun>,
    armed: Option<u64>,
    pub metrics: Rc<RefCell<ClientMetrics>>,
    obs: ClientObs,
}

/// Metrics-registry handles mirroring the hot-path [`ClientMetrics`] counters.
#[derive(Clone, Copy)]
struct ClientObs {
    completed: neat_obs::Counter,
    conn_errors: neat_obs::Counter,
    latency: neat_obs::HistogramHandle,
}

impl ClientObs {
    fn new() -> ClientObs {
        ClientObs {
            completed: neat_obs::counter("client.responses"),
            conn_errors: neat_obs::counter("client.conn_errors"),
            latency: neat_obs::histogram("client.latency_ns"),
        }
    }
}

impl HttperfProc {
    pub fn new(
        name: impl Into<String>,
        cfg: HttperfConfig,
        nic: ProcId,
        client_ip: Ipv4Addr,
        client_mac: MacAddr,
        arp_seed: Vec<(Ipv4Addr, MacAddr)>,
        metrics: Rc<RefCell<ClientMetrics>>,
    ) -> HttperfProc {
        let tcp_cfg = TcpConfig {
            initial_rto_ns: 20_000_000,
            // Load generators recycle ports aggressively (the standard
            // tcp_tw_reuse benchmarking setting): a full 10 s TIME_WAIT
            // would exhaust the port range under 1-request/connection
            // churn and throttle the offered load.
            time_wait_ns: 250_000_000,
            ..TcpConfig::default()
        };
        let mut stack = TcpStack::new(client_ip, tcp_cfg);
        stack.set_port_range(cfg.port_range.0, cfg.port_range.1);
        let mut io = FrameIo::new(client_ip, client_mac);
        for (a, m) in arp_seed {
            io.seed_arp(a, m);
        }
        HttperfProc {
            name: name.into(),
            cfg,
            nic,
            stack,
            io,
            conns: HashMap::new(),
            armed: None,
            metrics,
            obs: ClientObs::new(),
        }
    }

    fn open_conn(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.charge(calibration::CLIENT_CONN);
        let now = ctx.now().as_nanos();
        if let Ok(sock) = self
            .stack
            .connect(self.cfg.target.0, self.cfg.target.1, now)
        {
            for &opt in &self.cfg.sock_opts {
                let _ = self.stack.set_opt(sock, opt);
            }
            self.metrics.borrow_mut().conns_opened += 1;
            self.conns.insert(
                sock,
                ConnRun {
                    parser: http::StreamParser::new(),
                    requests_done: 0,
                    counted: 0,
                    sent_at: None,
                    connected: false,
                },
            );
        }
    }

    /// Drain a connection's receive buffer through the unified readiness
    /// surface: `poll(fd)` gates the loop, `recv_vectored` pulls up to
    /// 16 KiB per call through four iovec windows.
    fn read_all(&mut self, sock: SocketId) -> Vec<u8> {
        let mut buf = [0u8; 16384];
        let mut data = Vec::new();
        while self.stack.poll(sock).readable {
            let (a, rest) = buf.split_at_mut(4096);
            let (b, rest) = rest.split_at_mut(4096);
            let (c, d) = rest.split_at_mut(4096);
            match self.stack.recv_vectored(sock, &mut [a, b, c, d]) {
                Ok(0) => break,
                Ok(n) => data.extend_from_slice(&buf[..n]),
                Err(_) => break,
            }
        }
        data
    }

    fn issue_request(&mut self, ctx: &mut Ctx<'_, Msg>, sock: SocketId) {
        ctx.charge(calibration::CLIENT_REQUEST);
        let now = ctx.now().as_nanos();
        let req = http::format_request(&self.cfg.path, true);
        let _ = self.stack.send(sock, &req);
        if let Some(run) = self.conns.get_mut(&sock) {
            run.sent_at = Some(now);
        }
    }

    fn conn_failed(&mut self, ctx: &mut Ctx<'_, Msg>, sock: SocketId) {
        if let Some(run) = self.conns.remove(&sock) {
            let mut m = self.metrics.borrow_mut();
            m.conn_errors += 1;
            m.requests_on_error_conns += run.counted;
            drop(m);
            self.obs.conn_errors.inc();
            let _ = self.stack.abort(sock);
            // Replace the connection to hold the offered load constant.
            self.open_conn(ctx);
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now().as_nanos();
        // --- stack events ---
        while let Some(ev) = self.stack.poll_event() {
            match ev {
                SockEvent::Connected(sock) => {
                    if let Some(run) = self.conns.get_mut(&sock) {
                        run.connected = true;
                        self.issue_request(ctx, sock);
                    }
                }
                SockEvent::Readable(sock) => {
                    let data = self.read_all(sock);
                    ctx.charge(calibration::copy_cost(data.len()));
                    if !data.is_empty() {
                        self.metrics.borrow_mut().digest_bytes(&data);
                    }
                    let Some(run) = self.conns.get_mut(&sock) else {
                        continue;
                    };
                    run.parser.push(&data);
                    let mut finished = false;
                    while let Some(resp) = run.parser.next_response() {
                        let mut m = self.metrics.borrow_mut();
                        if let Some(t0) = run.sent_at.take() {
                            let d = now.saturating_sub(t0);
                            m.latency.record(Time::from_nanos(d));
                            self.obs.latency.observe(d);
                        }
                        m.completed += 1;
                        m.response_bytes += resp.body.len() as u64;
                        drop(m);
                        self.obs.completed.inc();
                        run.counted += 1;
                        run.requests_done += 1;
                        if run.requests_done >= self.cfg.requests_per_conn {
                            finished = true;
                            break;
                        }
                        // Next request on the persistent connection
                        // (after any configured think time).
                        if self.cfg.think_ns > 0 {
                            ctx.set_timer(Time::from_nanos(self.cfg.think_ns), TOK_THINK + sock.0);
                        } else {
                            ctx.charge(calibration::CLIENT_REQUEST);
                            let req = http::format_request(&self.cfg.path, true);
                            let _ = self.stack.send(sock, &req);
                            run.sent_at = Some(now);
                        }
                    }
                    if finished {
                        self.metrics.borrow_mut().conns_finished += 1;
                        self.conns.remove(&sock);
                        let _ = self.stack.close(sock, now);
                        self.open_conn(ctx);
                    }
                }
                SockEvent::Aborted(sock) => {
                    self.conn_failed(ctx, sock);
                }
                SockEvent::Closed(_)
                | SockEvent::PeerClosed(_)
                | SockEvent::Writable(_)
                | SockEvent::Acceptable(_) => {}
            }
        }
        // --- wire out ---
        while let Some((dst, h, payload)) = self.stack.poll_transmit(now) {
            ctx.charge(calibration::TCP_TX_SEG / 2); // fast client cores
            let seg = h.emit(&payload, self.stack.local_ip, dst);
            self.io.send_ip(dst, IpProtocol::Tcp, &seg, now);
        }
        for frame in self.io.drain() {
            ctx.send(self.nic, Msg::NetTx(frame));
        }
        // --- timers ---
        if let Some(d) = self.stack.next_timeout() {
            if self.armed.map(|a| d < a).unwrap_or(true) {
                self.armed = Some(d);
                ctx.set_timer(Time::from_nanos(d.saturating_sub(now)), TOK_STACK);
            }
        }
    }

    /// Classify one inbound frame and feed any TCP segment to the stack
    /// (no flush — callers decide when to drain).
    fn absorb_frame(&mut self, ctx: &mut Ctx<'_, Msg>, frame: &neat_net::PktBuf) {
        let now = ctx.now().as_nanos();
        if let RxClass::Tcp { src, seg } = self.io.classify_rx(frame, now) {
            ctx.charge(calibration::TCP_RX_SEG / 2);
            if let Ok((h, range)) = neat_net::TcpHeader::parse(&seg, src, self.stack.local_ip) {
                self.stack.handle_segment(src, &h, &seg[range], now);
            }
        }
    }

    fn scan_timeouts(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now().as_nanos();
        let timed_out: Vec<SocketId> = self
            .conns
            .iter()
            .filter(|(_, r)| {
                r.sent_at
                    .map(|t| now.saturating_sub(t) > self.cfg.timeout_ns)
                    .unwrap_or(false)
            })
            .map(|(s, _)| *s)
            .collect();
        for sock in timed_out {
            self.conn_failed(ctx, sock);
        }
        // Also replace connections that failed to even open (SYN lost to a
        // dead replica etc. — the stack reports those via Aborted, handled
        // above).
        ctx.set_timer(Time::from_millis(50), TOK_SCAN);
    }
}

impl Process<Msg> for HttperfProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcId, msgs: Vec<Msg>) {
        // Amortized delivery: absorb every frame in the batch, then run
        // the event/TX drain once for the whole run of responses.
        let mut deferred_drain = false;
        for msg in msgs {
            match msg {
                Msg::NetRx(frame) => {
                    self.absorb_frame(ctx, &frame);
                    deferred_drain = true;
                }
                other => self.on_event(ctx, Event::Message { from, msg: other }),
            }
        }
        if deferred_drain {
            self.drain(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            // Delivered via `on_batch` in practice; unroll defensively if a
            // batch ever reaches the scalar path.
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
            Event::Start => {
                // Register with the client NIC hub (ARP/default traffic).
                ctx.send(
                    self.nic,
                    Msg::Announce {
                        queue: 0,
                        head: ctx.self_id,
                    },
                );
                // Stagger the initial opens.
                for i in 0..self.cfg.num_conns {
                    ctx.set_timer(
                        Time::from_nanos(1 + i as u64 * self.cfg.open_spacing_ns),
                        TOK_OPEN,
                    );
                }
                ctx.set_timer(Time::from_millis(50), TOK_SCAN);
            }
            Event::Timer { token } => match token {
                TOK_OPEN => {
                    self.open_conn(ctx);
                    self.drain(ctx);
                }
                TOK_SCAN => {
                    self.scan_timeouts(ctx);
                    self.drain(ctx);
                }
                t if t >= TOK_THINK => {
                    let sock = SocketId(t - TOK_THINK);
                    if self.conns.contains_key(&sock) {
                        self.issue_request(ctx, sock);
                        self.drain(ctx);
                    }
                }
                _ => {
                    self.armed = None;
                    let now = ctx.now().as_nanos();
                    self.stack.on_timer(now);
                    self.drain(ctx);
                }
            },
            Event::Message { msg, .. } => {
                if let Msg::NetRx(frame) = msg {
                    self.absorb_frame(ctx, &frame);
                    self.drain(ctx);
                }
            }
        }
    }
}
