//! Testbed assembly: a server machine running NEaT (or the monolithic
//! baseline), a client machine running httperf instances, and the 10GbE
//! link between them — the complete §6 experimental setup as one object.

use crate::httperf::{ClientMetrics, HttperfConfig, HttperfProc};
use crate::webserver::{FileStore, WebMetrics, WebServerProc};
use neat::boot::{boot_neat, spawn_nic, wire_link, NeatDeployment, NeatSlots, ReplicaSlots};
use neat::config::{NeatConfig, StackMode};
use neat::msg::Msg;
use neat::placement::{Placement, Slot};
use neat::sockets::SocketLib;
use neat_net::MacAddr;
use neat_sim::{HwThreadId, MachineId, MachineSpec, ProcId, Sim, SimConfig, Time};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

pub const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 1);
pub const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 100);
pub const SERVER_MAC: MacAddr = MacAddr([0x02, 0, 0, 0, 0, 1]);
pub const CLIENT_MAC: MacAddr = MacAddr([0x02, 0, 0, 0, 0, 2]);
pub const BASE_PORT: u16 = 8000;

/// The client workload (httperf parameters).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Concurrent connections per httperf instance.
    pub conns_per_client: usize,
    /// Requests per connection (the paper uses 100, or 1 in §6.5).
    pub requests_per_conn: u32,
    /// Request path; `/file` is the 20-byte default.
    pub path: String,
    /// httperf request timeout.
    pub timeout_ns: u64,
    /// Think time between response and next request (0 = closed loop).
    pub think_ns: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            conns_per_client: 16,
            requests_per_conn: 100,
            path: "/file".into(),
            timeout_ns: 5_000_000_000,
            think_ns: 0,
        }
    }
}

/// How server-side processes map onto cores/threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPlan {
    /// Every component on a dedicated core, thread 0 only (the AMD
    /// layouts of Figure 6; also Xeon without HT).
    Dedicated,
    /// Exploit SMT: driver+SYSCALL share a core; replicas pack two per
    /// core; webs fill every remaining hardware thread (Figures 8/10).
    HtColocated,
}

/// Full testbed specification.
#[derive(Debug, Clone)]
pub struct TestbedSpec {
    pub server: MachineSpec,
    pub neat: NeatConfig,
    pub placement: PlacementPlan,
    pub web_instances: usize,
    /// Number of httperf processes (the paper uses 12).
    pub clients: usize,
    pub workload: Workload,
    /// Server-side keep-alive limit (lighttpd config; paper: 1000).
    pub server_max_reqs_per_conn: u32,
    /// Files served.
    pub files: FileStore,
    pub seed: u64,
    /// Link-level fault injection at the server NIC's RX path
    /// (drop/corrupt percentages, smoltcp-style).
    pub wire_faults: neat_nic::FaultConfig,
    /// Per-link message-coalescing horizon in nanoseconds (§3.4 batching;
    /// 0 disables — the `nobatch` ablation axis).
    pub batch_ns: u64,
    /// Override the web servers' per-request application cost in cycles
    /// (`None` = calibrated lighttpd). Benches set a small value to model
    /// a lightweight app and expose the stack's own throughput ceiling.
    pub web_request_cycles: Option<u64>,
    /// Socket options applied on both sides of every connection: the web
    /// servers set them on each accept, the httperf clients on each
    /// connect (the `cc_compare` bench selects controllers this way).
    pub sock_opts: Vec<neat_tcp::SockOpt>,
}

impl TestbedSpec {
    /// The §6.3 AMD testbed with a given NEaT config and web count.
    pub fn amd(neat: NeatConfig, web_instances: usize) -> TestbedSpec {
        TestbedSpec {
            server: MachineSpec::amd_opteron_6168(),
            neat,
            placement: PlacementPlan::Dedicated,
            web_instances,
            clients: 12,
            workload: Workload::default(),
            server_max_reqs_per_conn: 1000,
            files: FileStore::paper_default(),
            seed: 0xCA5E,
            wire_faults: neat_nic::FaultConfig::default(),
            batch_ns: 2_000,
            web_request_cycles: None,
            sock_opts: Vec::new(),
        }
    }

    /// The §6.4 Xeon testbed (HT colocation on by default).
    pub fn xeon(neat: NeatConfig, web_instances: usize) -> TestbedSpec {
        TestbedSpec {
            server: MachineSpec::xeon_e5520_dual(),
            placement: PlacementPlan::HtColocated,
            ..TestbedSpec::amd(neat, web_instances)
        }
    }
}

/// A built, running testbed.
pub struct Testbed {
    pub sim: Sim<Msg>,
    pub server_machine: MachineId,
    pub client_machine: MachineId,
    pub deployment: NeatDeployment,
    pub webs: Vec<ProcId>,
    pub web_metrics: Vec<Rc<RefCell<WebMetrics>>>,
    pub clients: Vec<ProcId>,
    pub client_metrics: Vec<Rc<RefCell<ClientMetrics>>>,
    /// Hardware thread of the driver (Table 2's subject).
    pub driver_thread: HwThreadId,
    pub web_threads: Vec<HwThreadId>,
    pub replica_threads: Vec<HwThreadId>,
}

/// One measurement window's aggregate report.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub duration: Time,
    pub requests: u64,
    pub krps: f64,
    pub mbps: f64,
    pub mean_latency: Time,
    pub p99_latency: Time,
    pub conn_errors: u64,
}

/// Slot layout before resolution to hardware-thread ids.
struct PreSlots {
    os: Slot,
    syscall: Slot,
    driver: Slot,
    replicas: Vec<(Slot, Option<Slot>)>,
    spare: Vec<Slot>,
}

impl Testbed {
    /// Build and boot the whole testbed. The system is run for a short
    /// boot phase (listeners replicated, ARP settled) before the load
    /// generators start.
    pub fn build(spec: TestbedSpec) -> Testbed {
        let mut sim: Sim<Msg> = Sim::new(SimConfig {
            seed: spec.seed,
            batch_ns: spec.batch_ns,
            ..SimConfig::default()
        });
        let server_machine = sim.add_machine(spec.server.clone());
        let client_machine = sim.add_machine(MachineSpec::load_generator());

        // --- NICs and link ---
        let server_nic = {
            let dev = sim.add_device_thread(server_machine);
            let nic = neat_nic::Nic::new(
                neat_nic::NicConfig {
                    queue_pairs: spec.neat.replicas.max(1),
                    ..Default::default()
                },
                neat_nic::FaultInjector::new(spec.wire_faults.clone(), spec.seed ^ 0xFA_17),
            );
            sim.spawn(
                dev,
                Box::new(neat::nic_proc::NicProc::new(
                    "nic.srv",
                    nic,
                    neat::nic_proc::NicMode::Server { driver: ProcId(0) },
                )),
            )
        };
        let client_nic = spawn_nic(&mut sim, client_machine, "nic.cli", 1, false);
        wire_link(&mut sim, server_nic, client_nic);

        // --- server-side layout ---
        let (pre, web_slots) = layout_resolved(&spec);
        fn resolve(sim: &Sim<Msg>, m: MachineId, s: Slot) -> HwThreadId {
            sim.hw_thread(m, s.core, s.thread)
        }
        let to_hw = |s: Slot| resolve(&sim, server_machine, s);
        let slots = NeatSlots {
            os: to_hw(pre.os),
            syscall: to_hw(pre.syscall),
            driver: to_hw(pre.driver),
            replicas: pre
                .replicas
                .iter()
                .map(|(a, b)| match (spec.neat.mode, b) {
                    (StackMode::Single, _) => ReplicaSlots::Single(to_hw(*a)),
                    (StackMode::Multi, Some(ip)) => ReplicaSlots::Multi {
                        tcp: to_hw(*a),
                        ip: to_hw(*ip),
                    },
                    _ => unreachable!(),
                })
                .collect(),
            spare: pre.spare.iter().map(|s| to_hw(*s)).collect(),
        };
        let driver_thread = slots.driver;
        let replica_threads: Vec<HwThreadId> = slots
            .replicas
            .iter()
            .map(|r| match r {
                ReplicaSlots::Single(t) => *t,
                ReplicaSlots::Multi { tcp, .. } => *tcp,
            })
            .collect();

        let mut cfg = spec.neat.clone();
        cfg.ip = SERVER_IP;
        cfg.mac = SERVER_MAC;
        let arp_seed = vec![(CLIENT_IP, CLIENT_MAC)];
        let deployment = boot_neat(&mut sim, server_machine, cfg, slots, server_nic, arp_seed);

        // --- web servers ---
        let mut webs = Vec::new();
        let mut web_metrics = Vec::new();
        let mut web_threads = Vec::new();
        for (i, slot) in web_slots.iter().enumerate() {
            let port = BASE_PORT + i as u16;
            let lib = SocketLib::new(
                deployment.syscall,
                deployment.sockets_heads.clone(),
                Some(deployment.supervisor),
            );
            let metrics = Rc::new(RefCell::new(WebMetrics::default()));
            let mut proc = WebServerProc::new(
                format!("web.{i}"),
                lib,
                spec.files.clone(),
                port,
                spec.server_max_reqs_per_conn,
                metrics.clone(),
            );
            if let Some(c) = spec.web_request_cycles {
                proc = proc.with_request_cycles(c);
            }
            if !spec.sock_opts.is_empty() {
                proc = proc.with_sock_opts(spec.sock_opts.clone());
            }
            let t = resolve(&sim, server_machine, *slot);
            web_threads.push(t);
            webs.push(sim.spawn(t, Box::new(proc)));
            web_metrics.push(metrics);
        }

        // --- boot phase: let listeners replicate before load arrives ---
        sim.run_until(Time::from_millis(5));

        // --- httperf clients ---
        let mut clients = Vec::new();
        let mut client_metrics = Vec::new();
        for i in 0..spec.clients {
            let port = BASE_PORT + (i % spec.web_instances.max(1)) as u16;
            let range_lo = 16_000 + (i as u16) * 3_000;
            let cfg = HttperfConfig {
                target: (SERVER_IP, port),
                num_conns: spec.workload.conns_per_client,
                requests_per_conn: spec.workload.requests_per_conn,
                path: spec.workload.path.clone(),
                timeout_ns: spec.workload.timeout_ns,
                port_range: (range_lo, range_lo + 2_999),
                open_spacing_ns: 50_000,
                think_ns: spec.workload.think_ns,
                sock_opts: spec.sock_opts.clone(),
            };
            let metrics = Rc::new(RefCell::new(ClientMetrics::default()));
            let proc = HttperfProc::new(
                format!("httperf.{i}"),
                cfg,
                client_nic,
                CLIENT_IP,
                CLIENT_MAC,
                vec![(SERVER_IP, SERVER_MAC)],
                metrics.clone(),
            );
            let core = (i as u32) % MachineSpec::load_generator().cores;
            let t = sim.hw_thread(client_machine, core, 0);
            clients.push(sim.spawn(t, Box::new(proc)));
            client_metrics.push(metrics);
        }

        Testbed {
            sim,
            server_machine,
            client_machine,
            deployment,
            webs,
            web_metrics,
            clients,
            client_metrics,
            driver_thread,
            web_threads,
            replica_threads,
        }
    }

    /// Sum of reported (error-adjusted) client requests so far.
    pub fn total_reported(&self) -> u64 {
        self.client_metrics
            .iter()
            .map(|m| m.borrow().reported_requests())
            .sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.client_metrics
            .iter()
            .map(|m| m.borrow().response_bytes)
            .sum()
    }

    pub fn total_errors(&self) -> u64 {
        self.client_metrics
            .iter()
            .map(|m| m.borrow().conn_errors)
            .sum()
    }

    /// Merged latency histogram across clients.
    pub fn merged_latency(&self) -> neat_sim::Histogram {
        let mut h = neat_sim::Histogram::new();
        for m in &self.client_metrics {
            h.merge(&m.borrow().latency);
        }
        h
    }

    /// Run a warmup, then measure a window; returns the report.
    pub fn measure(&mut self, warmup: Time, window: Time) -> RunReport {
        let t0 = self.sim.now();
        self.sim.run_until(t0 + warmup);
        let req0 = self.total_reported();
        let bytes0 = self.total_bytes();
        let err0 = self.total_errors();
        self.sim.reset_all_stats();
        // Metric values (counters, gauges, histograms) restart with the
        // window; registrations and handles survive.
        neat_obs::reset();
        let start = self.sim.now();
        self.sim.run_until(start + window);
        let duration = self.sim.now().since(start);
        // Publish engine-side gauges (per-thread utilisation, queue
        // high-water marks) into the registry for this window, plus the
        // packet-pool and link-coalescing counters.
        self.sim.export_obs();
        neat_net::pktbuf::export_obs();
        let requests = self.total_reported().saturating_sub(req0);
        let bytes = self.total_bytes().saturating_sub(bytes0);
        let lat = self.merged_latency();
        RunReport {
            duration,
            requests,
            krps: requests as f64 / duration.as_secs_f64() / 1e3,
            mbps: bytes as f64 / 1e6 / duration.as_secs_f64(),
            mean_latency: lat.mean(),
            p99_latency: lat.quantile(0.99),
            conn_errors: self.total_errors().saturating_sub(err0),
        }
    }
}

/// Resolve a spec to its slot layout (split out for testability).
fn layout_resolved(spec: &TestbedSpec) -> (PreSlots, Vec<Slot>) {
    let m = &spec.server;
    let mut p = Placement::new(m.cores, m.threads_per_core);
    match spec.placement {
        PlacementPlan::Dedicated => {
            let os = p.dedicated_core();
            let syscall = p.dedicated_core();
            let driver = p.dedicated_core();
            let mut replicas = Vec::new();
            for _ in 0..spec.neat.replicas {
                replicas.push(match spec.neat.mode {
                    StackMode::Single => (p.dedicated_core(), None),
                    StackMode::Multi => {
                        let tcp = p.dedicated_core();
                        let ip = p.dedicated_core();
                        (tcp, Some(ip))
                    }
                });
            }
            let mut webs = Vec::new();
            for _ in 0..spec.web_instances {
                // On non-SMT machines only thread 0 exists; on SMT machines
                // the Dedicated plan still uses one thread per core first.
                webs.push(
                    p.next_remaining()
                        .expect("not enough cores for the web instances"),
                );
            }
            let spare = p.remaining();
            (
                PreSlots {
                    os,
                    syscall,
                    driver,
                    replicas,
                    spare,
                },
                webs,
            )
        }
        PlacementPlan::HtColocated => {
            assert!(m.threads_per_core >= 2);
            // Figure 8/10: NIC Drv + SYSCALL share core 0; OS takes one
            // thread of core 1; stack replicas pack two per core on SMT
            // siblings starting from a fresh core; webs fill core 1's
            // second thread and then pack the remaining cores.
            let driver = p.at(0, 0);
            let syscall = p.at(0, 1);
            let os = p.at(1, 0);
            let next = |p: &mut Placement, idx: &mut u32| -> Slot {
                let s = Slot {
                    core: 2 + *idx / 2,
                    thread: *idx % 2,
                };
                *idx += 1;
                p.at(s.core, s.thread)
            };
            let mut idx = 0u32;
            let mut replicas = Vec::new();
            match spec.neat.mode {
                StackMode::Single => {
                    for _ in 0..spec.neat.replicas {
                        replicas.push((next(&mut p, &mut idx), None));
                    }
                }
                StackMode::Multi => {
                    // Pair the TCP processes of consecutive replicas on one
                    // core and their IP processes on another (Figure 8c).
                    let mut tcps = Vec::new();
                    for _ in 0..spec.neat.replicas {
                        tcps.push(next(&mut p, &mut idx));
                    }
                    // Align IPs to a fresh core.
                    if idx % 2 == 1 {
                        idx += 1;
                    }
                    let mut ips = Vec::new();
                    for _ in 0..spec.neat.replicas {
                        ips.push(next(&mut p, &mut idx));
                    }
                    for (t, i) in tcps.into_iter().zip(ips) {
                        replicas.push((t, Some(i)));
                    }
                }
            }
            let mut webs = Vec::new();
            for _ in 0..spec.web_instances {
                webs.push(p.next_remaining().expect("web thread"));
            }
            let spare = p.remaining();
            (
                PreSlots {
                    os,
                    syscall,
                    driver,
                    replicas,
                    spare,
                },
                webs,
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Monolithic (Linux-like) testbed
// ---------------------------------------------------------------------------

/// Specification of a Linux-baseline testbed (§6.1).
#[derive(Debug, Clone)]
pub struct MonoTestbedSpec {
    pub server: MachineSpec,
    pub tuning: neat_monolith::MonoTuning,
    /// lighttpd instances — the paper runs one per core (AMD: 12) or one
    /// per hardware thread (Xeon: 16).
    pub web_instances: usize,
    pub clients: usize,
    pub workload: Workload,
    pub server_max_reqs_per_conn: u32,
    pub files: FileStore,
    pub seed: u64,
    /// Shared-memory cost factor of the machine (see `MonoShared`).
    pub hw_factor: f64,
    /// Per-link message-coalescing horizon (0 disables). The baseline
    /// keeps it too: it models NAPI-style interrupt moderation.
    pub batch_ns: u64,
}

impl MonoTestbedSpec {
    pub fn amd(tuning: neat_monolith::MonoTuning) -> MonoTestbedSpec {
        MonoTestbedSpec {
            server: MachineSpec::amd_opteron_6168(),
            tuning,
            web_instances: 12,
            clients: 12,
            workload: Workload::default(),
            server_max_reqs_per_conn: 1000,
            files: FileStore::paper_default(),
            seed: 0x11_u64,
            hw_factor: 1.0,
            batch_ns: 2_000,
        }
    }

    /// The Xeon baseline: "16 lighttpd instances on each of the 8 cores /
    /// 16 threads" (§6.4).
    pub fn xeon(tuning: neat_monolith::MonoTuning) -> MonoTestbedSpec {
        MonoTestbedSpec {
            server: MachineSpec::xeon_e5520_dual(),
            web_instances: 16,
            clients: 16,
            hw_factor: 0.47,
            ..MonoTestbedSpec::amd(tuning)
        }
    }
}

/// A built Linux-baseline testbed.
pub struct MonoTestbed {
    pub sim: Sim<Msg>,
    pub deployment: neat_monolith::MonoDeployment,
    pub webs: Vec<ProcId>,
    pub web_metrics: Vec<Rc<RefCell<WebMetrics>>>,
    pub clients: Vec<ProcId>,
    pub client_metrics: Vec<Rc<RefCell<ClientMetrics>>>,
    pub web_threads: Vec<HwThreadId>,
}

impl MonoTestbed {
    pub fn build(spec: MonoTestbedSpec) -> MonoTestbed {
        let mut sim: Sim<Msg> = Sim::new(SimConfig {
            seed: spec.seed,
            batch_ns: spec.batch_ns,
            ..SimConfig::default()
        });
        let server_machine = sim.add_machine(spec.server.clone());
        let client_machine = sim.add_machine(MachineSpec::load_generator());

        // One kernel context (and one web) per hardware thread used.
        let m = &spec.server;
        let mut threads = Vec::new();
        for c in 0..m.cores {
            for t in 0..m.threads_per_core {
                threads.push(sim.hw_thread(server_machine, c, t));
            }
        }
        threads.truncate(spec.web_instances);

        let mut nic_cfg = neat_nic::NicConfig {
            queue_pairs: threads.len(),
            tso: spec.tuning.tso,
            ..Default::default()
        };
        nic_cfg.tso_mss = 1460;
        let nic_hw = neat_nic::Nic::new(nic_cfg, neat_nic::FaultInjector::disabled(7));
        let dev = sim.add_device_thread(server_machine);
        let server_nic = sim.spawn(
            dev,
            Box::new(neat::nic_proc::NicProc::new(
                "nic.srv",
                nic_hw,
                neat::nic_proc::NicMode::Server { driver: ProcId(0) },
            )),
        );
        let client_nic = spawn_nic(&mut sim, client_machine, "nic.cli", 1, false);
        wire_link(&mut sim, server_nic, client_nic);

        let deployment = neat_monolith::boot_monolith(
            &mut sim,
            &threads,
            server_nic,
            SERVER_IP,
            SERVER_MAC,
            neat_tcp::TcpConfig {
                initial_rto_ns: 20_000_000,
                gso_burst: if spec.tuning.tso { 61_440 } else { 0 },
                ..Default::default()
            },
            spec.tuning.clone(),
            vec![(CLIENT_IP, CLIENT_MAC)],
            BASE_PORT,
            spec.hw_factor,
        );

        // Web servers: one per kernel context, same hardware thread.
        let mut webs = Vec::new();
        let mut web_metrics = Vec::new();
        for (i, t) in threads.iter().enumerate() {
            let port = BASE_PORT + i as u16;
            let mut lib = SocketLib::new(ProcId(0), vec![deployment.ctxs[i]], None);
            lib.set_route(deployment.ctxs[i]);
            let metrics = Rc::new(RefCell::new(WebMetrics::default()));
            let proc = WebServerProc::new(
                format!("web.{i}"),
                lib,
                spec.files.clone(),
                port,
                spec.server_max_reqs_per_conn,
                metrics.clone(),
            );
            webs.push(sim.spawn(*t, Box::new(proc)));
            web_metrics.push(metrics);
        }

        sim.run_until(Time::from_millis(5));

        let mut clients = Vec::new();
        let mut client_metrics = Vec::new();
        for i in 0..spec.clients {
            let port = BASE_PORT + (i % spec.web_instances.max(1)) as u16;
            let range_lo = 16_000 + (i as u16) * 3_000;
            let cfg = HttperfConfig {
                target: (SERVER_IP, port),
                num_conns: spec.workload.conns_per_client,
                requests_per_conn: spec.workload.requests_per_conn,
                path: spec.workload.path.clone(),
                timeout_ns: spec.workload.timeout_ns,
                port_range: (range_lo, range_lo + 2_999),
                open_spacing_ns: 50_000,
                think_ns: spec.workload.think_ns,
                sock_opts: Vec::new(),
            };
            let metrics = Rc::new(RefCell::new(ClientMetrics::default()));
            let proc = HttperfProc::new(
                format!("httperf.{i}"),
                cfg,
                client_nic,
                CLIENT_IP,
                CLIENT_MAC,
                vec![(SERVER_IP, SERVER_MAC)],
                metrics.clone(),
            );
            let core = (i as u32) % MachineSpec::load_generator().cores;
            let t = sim.hw_thread(client_machine, core, 0);
            clients.push(sim.spawn(t, Box::new(proc)));
            client_metrics.push(metrics);
        }

        MonoTestbed {
            sim,
            deployment,
            webs,
            web_metrics,
            clients,
            client_metrics,
            web_threads: threads,
        }
    }

    pub fn total_reported(&self) -> u64 {
        self.client_metrics
            .iter()
            .map(|m| m.borrow().reported_requests())
            .sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.client_metrics
            .iter()
            .map(|m| m.borrow().response_bytes)
            .sum()
    }

    pub fn total_errors(&self) -> u64 {
        self.client_metrics
            .iter()
            .map(|m| m.borrow().conn_errors)
            .sum()
    }

    pub fn merged_latency(&self) -> neat_sim::Histogram {
        let mut h = neat_sim::Histogram::new();
        for m in &self.client_metrics {
            h.merge(&m.borrow().latency);
        }
        h
    }

    pub fn measure(&mut self, warmup: Time, window: Time) -> RunReport {
        let t0 = self.sim.now();
        self.sim.run_until(t0 + warmup);
        let req0 = self.total_reported();
        let bytes0 = self.total_bytes();
        let err0 = self.total_errors();
        self.sim.reset_all_stats();
        // Metric values (counters, gauges, histograms) restart with the
        // window; registrations and handles survive.
        neat_obs::reset();
        let start = self.sim.now();
        self.sim.run_until(start + window);
        let duration = self.sim.now().since(start);
        // Publish engine-side gauges (per-thread utilisation, queue
        // high-water marks) into the registry for this window, plus the
        // packet-pool and link-coalescing counters.
        self.sim.export_obs();
        neat_net::pktbuf::export_obs();
        let requests = self.total_reported().saturating_sub(req0);
        let bytes = self.total_bytes().saturating_sub(bytes0);
        let lat = self.merged_latency();
        RunReport {
            duration,
            requests,
            krps: requests as f64 / duration.as_secs_f64() / 1e3,
            mbps: bytes as f64 / 1e6 / duration.as_secs_f64(),
            mean_latency: lat.mean(),
            p99_latency: lat.quantile(0.99),
            conn_errors: self.total_errors().saturating_sub(err0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amd_layout_fig6b_fits_12_cores() {
        let spec = TestbedSpec::amd(NeatConfig::single(3), 6);
        let (pre, webs) = layout_resolved(&spec);
        assert_eq!(webs.len(), 6);
        assert!(pre.spare.is_empty(), "NEaT 3x + 6 webs uses all 12 cores");
    }

    #[test]
    fn amd_layout_fig6a_multi_2x() {
        let spec = TestbedSpec::amd(NeatConfig::multi(2), 5);
        let (pre, webs) = layout_resolved(&spec);
        assert_eq!(pre.replicas.len(), 2);
        assert_eq!(webs.len(), 5);
        assert!(pre.spare.is_empty(), "Multi 2x + 5 webs uses all 12 cores");
    }

    #[test]
    #[should_panic(expected = "not enough cores")]
    fn overcommitted_layout_panics() {
        let spec = TestbedSpec::amd(NeatConfig::single(3), 7);
        let _ = layout_resolved(&spec);
    }

    #[test]
    fn xeon_ht_layout_neat4x_nine_webs() {
        let spec = TestbedSpec::xeon(NeatConfig::single(4), 9);
        let (pre, webs) = layout_resolved(&spec);
        assert_eq!(pre.replicas.len(), 4);
        assert_eq!(webs.len(), 9);
        // 16 threads: drv+sys(2) + os(1) + 4 replicas + 9 webs = 16.
        assert!(pre.spare.is_empty());
    }
}
