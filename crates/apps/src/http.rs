//! A minimal HTTP/1.1 codec: exactly what lighttpd and httperf need for
//! the paper's workload — GET requests over persistent connections,
//! `Content-Length`-framed responses, `Connection: close` handling.

/// A parsed HTTP request line + the headers we care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub keep_alive: bool,
}

/// A parsed response status + body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    pub keep_alive: bool,
}

/// Incremental parser state over a connection's byte stream.
#[derive(Debug, Default)]
pub struct StreamParser {
    buf: Vec<u8>,
}

impl StreamParser {
    pub fn new() -> StreamParser {
        StreamParser::default()
    }

    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn find_headers_end(&self) -> Option<usize> {
        self.buf
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| p + 4)
    }

    /// Pop the next complete request, if any.
    pub fn next_request(&mut self) -> Option<Request> {
        let end = self.find_headers_end()?;
        let head = String::from_utf8_lossy(&self.buf[..end]).to_string();
        self.buf.drain(..end);
        let mut lines = head.lines();
        let reqline = lines.next()?;
        let mut parts = reqline.split_whitespace();
        let method = parts.next()?.to_string();
        let path = parts.next()?.to_string();
        let version = parts.next().unwrap_or("HTTP/1.1");
        // HTTP/1.1 defaults to keep-alive; "Connection: close" overrides.
        let mut keep_alive = version.ends_with("1.1");
        for l in lines {
            let l = l.to_ascii_lowercase();
            if l.starts_with("connection:") {
                keep_alive = l.contains("keep-alive");
            }
        }
        Some(Request {
            method,
            path,
            keep_alive,
        })
    }

    /// Pop the next complete response (requires `Content-Length`).
    pub fn next_response(&mut self) -> Option<Response> {
        let end = self.find_headers_end()?;
        let head = String::from_utf8_lossy(&self.buf[..end]).to_string();
        let mut content_length = 0usize;
        let mut status = 0u16;
        let mut keep_alive = true;
        for (i, l) in head.lines().enumerate() {
            if i == 0 {
                status = l
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                continue;
            }
            let ll = l.to_ascii_lowercase();
            if let Some(v) = ll.strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap_or(0);
            } else if ll.starts_with("connection:") {
                keep_alive = ll.contains("keep-alive");
            }
        }
        if self.buf.len() < end + content_length {
            return None; // body not complete yet
        }
        let body = self.buf[end..end + content_length].to_vec();
        self.buf.drain(..end + content_length);
        Some(Response {
            status,
            body,
            keep_alive,
        })
    }
}

/// Build a GET request.
pub fn format_request(path: &str, keep_alive: bool) -> Vec<u8> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "GET {path} HTTP/1.1\r\nHost: server\r\nUser-Agent: httperf/0.9\r\nConnection: {conn}\r\n\r\n"
    )
    .into_bytes()
}

/// Build a response with a body.
pub fn format_response(status: u16, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        _ => "Status",
    };
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nServer: weblite/1.0\r\nContent-Length: {}\r\nConnection: {conn}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut p = StreamParser::new();
        p.push(&format_request("/index.html", true));
        let r = p.next_request().unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/index.html");
        assert!(r.keep_alive);
        assert!(p.next_request().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn connection_close_honored() {
        let mut p = StreamParser::new();
        p.push(&format_request("/x", false));
        assert!(!p.next_request().unwrap().keep_alive);
    }

    #[test]
    fn partial_request_waits() {
        let mut p = StreamParser::new();
        let req = format_request("/a", true);
        p.push(&req[..10]);
        assert!(p.next_request().is_none());
        p.push(&req[10..]);
        assert!(p.next_request().is_some());
    }

    #[test]
    fn pipelined_requests_pop_in_order() {
        let mut p = StreamParser::new();
        p.push(&format_request("/1", true));
        p.push(&format_request("/2", true));
        assert_eq!(p.next_request().unwrap().path, "/1");
        assert_eq!(p.next_request().unwrap().path, "/2");
        assert!(p.next_request().is_none());
    }

    #[test]
    fn response_roundtrip_with_body() {
        let mut p = StreamParser::new();
        let body = vec![7u8; 20];
        p.push(&format_response(200, &body, true));
        let r = p.next_response().unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, body);
        assert!(r.keep_alive);
    }

    #[test]
    fn response_body_split_across_pushes() {
        let mut p = StreamParser::new();
        let full = format_response(200, b"hello world!", false);
        let cut = full.len() - 5;
        p.push(&full[..cut]);
        assert!(p.next_response().is_none());
        p.push(&full[cut..]);
        let r = p.next_response().unwrap();
        assert_eq!(r.body, b"hello world!");
        assert!(!r.keep_alive);
    }

    #[test]
    fn back_to_back_responses() {
        let mut p = StreamParser::new();
        p.push(&format_response(200, b"a", true));
        p.push(&format_response(404, b"nope", true));
        assert_eq!(p.next_response().unwrap().status, 200);
        let second = p.next_response().unwrap();
        assert_eq!(second.status, 404);
        assert_eq!(second.body, b"nope");
    }
}
