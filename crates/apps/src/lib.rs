//! # neat-apps — workloads and testbed assembly
//!
//! The evaluation applications of the paper: a lighttpd-like static web
//! server "serving only static files cached in memory" and an
//! httperf-like load generator that "repeatedly open[s] persistent
//! connections and request[s] a small 20-byte file" (§6.2) — plus the
//! scenario builder that assembles complete simulated testbeds (server
//! machine + NEaT or monolith deployment + client machine + 10GbE link).

pub mod http;
pub mod httperf;
pub mod scenario;
pub mod webserver;

pub use httperf::{ClientMetrics, HttperfConfig, HttperfProc};
pub use scenario::{Testbed, TestbedSpec, Workload};
pub use webserver::{FileStore, WebServerProc};
