//! `weblite` — the lighttpd stand-in (§6.2).
//!
//! An event-driven static web server that "does as little as possible":
//! serve in-memory files over persistent HTTP/1.1 connections. Each
//! instance is one isolated process using the NEaT socket library — it
//! never knows (or cares) which stack replica owns each connection.

use crate::http;
use neat::msg::Msg;
use neat::sockets::{Fd, LibEvent, SockErr, SockOpt, SocketLib};
use neat_sim::{calibration, Ctx, Event, Process};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// In-memory document root.
#[derive(Debug, Clone, Default)]
pub struct FileStore {
    files: HashMap<String, Vec<u8>>,
}

impl FileStore {
    pub fn new() -> FileStore {
        FileStore::default()
    }

    pub fn put(&mut self, path: impl Into<String>, body: Vec<u8>) {
        self.files.insert(path.into(), body);
    }

    /// The paper's workload file: 20 bytes at `/file`.
    pub fn paper_default() -> FileStore {
        let mut f = FileStore::new();
        f.put("/file", vec![b'x'; 20]);
        f
    }

    /// A document root with one file of each size in `sizes` at
    /// `/file<size>` (Figures 4–5's sweep).
    pub fn size_sweep(sizes: &[usize]) -> FileStore {
        let mut f = FileStore::new();
        for &s in sizes {
            f.put(format!("/file{s}"), vec![b'x'; s]);
        }
        f
    }

    pub fn get(&self, path: &str) -> Option<&Vec<u8>> {
        self.files.get(path)
    }
}

/// Shared observable server-side counters.
#[derive(Debug, Default)]
pub struct WebMetrics {
    pub requests_served: u64,
    pub bytes_sent: u64,
    pub conns_accepted: u64,
    pub conns_lost_to_crash: u64,
    pub not_found: u64,
    /// Raw pid of the stack replica that owned each accepted connection,
    /// in accept order — the §3.8 layout-unpredictability measurement
    /// stream (each replica (re)start has a fresh ASLR layout).
    pub served_by: Vec<u64>,
}

/// Per-connection server state.
#[derive(Debug)]
struct ConnState {
    parser: http::StreamParser,
    requests_served: u32,
    closing: bool,
}

/// The web server process.
pub struct WebServerProc {
    pub name: String,
    lib: SocketLib,
    files: FileStore,
    port: u16,
    /// Close connections after this many requests (lighttpd
    /// `max-keep-alive-requests`; the paper sets 1000, tests use less).
    max_requests_per_conn: u32,
    conns: HashMap<Fd, ConnState>,
    /// CPU cycles of application work per served request. Defaults to the
    /// calibrated lighttpd cost; benches lower it to model a lightweight
    /// app (null-RPC style) when measuring the stack's own ceiling.
    pub request_cycles: u64,
    /// Socket options applied to every accepted connection (lighttpd's
    /// per-vhost socket tuning: congestion algorithm, buffers).
    sock_opts: Vec<SockOpt>,
    pub metrics: Rc<RefCell<WebMetrics>>,
    obs: WebObs,
}

/// Metrics-registry handles mirroring the hot-path [`WebMetrics`] counters.
#[derive(Clone, Copy)]
struct WebObs {
    requests_served: neat_obs::Counter,
    conns_accepted: neat_obs::Counter,
    conns_lost: neat_obs::Counter,
}

impl WebObs {
    fn new() -> WebObs {
        WebObs {
            requests_served: neat_obs::counter("web.requests_served"),
            conns_accepted: neat_obs::counter("web.conns_accepted"),
            conns_lost: neat_obs::counter("web.conns_lost_to_crash"),
        }
    }
}

impl WebServerProc {
    pub fn new(
        name: impl Into<String>,
        lib: SocketLib,
        files: FileStore,
        port: u16,
        max_requests_per_conn: u32,
        metrics: Rc<RefCell<WebMetrics>>,
    ) -> WebServerProc {
        WebServerProc {
            name: name.into(),
            lib,
            files,
            port,
            max_requests_per_conn,
            conns: HashMap::new(),
            request_cycles: calibration::WEB_REQUEST,
            sock_opts: Vec::new(),
            metrics,
            obs: WebObs::new(),
        }
    }

    /// Override the per-request application cost (stack-ceiling benches).
    pub fn with_request_cycles(mut self, cycles: u64) -> WebServerProc {
        self.request_cycles = cycles;
        self
    }

    /// Apply these socket options to every accepted connection.
    pub fn with_sock_opts(mut self, opts: Vec<SockOpt>) -> WebServerProc {
        self.sock_opts = opts;
        self
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_, Msg>, fd: Fd, req: http::Request) {
        // The calibrated per-request application work (parse, file lookup,
        // header build, logging, bookkeeping).
        ctx.charge(self.request_cycles);
        let mut m = self.metrics.borrow_mut();
        let (status, body) = match self.files.get(&req.path) {
            Some(b) => (200, b.clone()),
            None => {
                m.not_found += 1;
                (404, b"not found".to_vec())
            }
        };
        m.requests_served += 1;
        m.bytes_sent += body.len() as u64;
        drop(m);
        self.obs.requests_served.inc();
        let st = self.conns.get_mut(&fd).expect("request on live conn");
        st.requests_served += 1;
        let closing = !req.keep_alive || st.requests_served >= self.max_requests_per_conn;
        st.closing = closing;
        let resp = http::format_response(status, &body, !closing);
        ctx.charge(calibration::copy_cost(resp.len()));
        if self.lib.send(ctx, fd, resp).is_err() {
            // Connection raced away (reset/replica crash): stop serving it.
            if let Some(st) = self.conns.get_mut(&fd) {
                st.closing = true;
            }
            return;
        }
        if closing {
            let _ = self.lib.close(ctx, fd);
        }
    }

    /// Drain everything readable on `fd` through the pull API and serve
    /// every complete pipelined request.
    fn service_readable(&mut self, ctx: &mut Ctx<'_, Msg>, fd: Fd) {
        loop {
            match self.lib.recv(ctx, fd) {
                Ok(data) if data.is_empty() => {
                    // EOF: client is done with this connection.
                    let _ = self.lib.close(ctx, fd);
                    return;
                }
                Ok(data) => {
                    let Some(st) = self.conns.get_mut(&fd) else {
                        return;
                    };
                    if st.closing {
                        continue;
                    }
                    st.parser.push(&data);
                    while let Some(st) = self.conns.get_mut(&fd) {
                        if st.closing {
                            break;
                        }
                        match st.parser.next_request() {
                            Some(req) => self.handle_request(ctx, fd, req),
                            None => break,
                        }
                    }
                }
                Err(SockErr::WouldBlock) => break,
                Err(_) => return, // NotConnected / reset: Closed will clean up
            }
            if !self.lib.poll(fd).readable {
                break;
            }
        }
        if self.lib.poll(fd).hup {
            let _ = self.lib.close(ctx, fd);
        }
    }
}

impl Process<Msg> for WebServerProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            // Delivered via `on_batch` in practice; unroll defensively if a
            // batch ever reaches the scalar path.
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
            Event::Start => {
                self.lib.init(ctx);
                self.lib
                    .listen(ctx, self.port)
                    .expect("web server port is free at boot");
            }
            Event::Timer { .. } => {}
            Event::Message { msg, .. } => {
                let before_lost = self.lib.lost_to_crash;
                for le in self.lib.handle(ctx, &msg) {
                    match le {
                        LibEvent::ListenReady { .. } => {}
                        LibEvent::Accepted { fd, .. } => {
                            ctx.charge(calibration::WEB_ACCEPT);
                            for &opt in &self.sock_opts {
                                let _ = self.lib.set_opt(ctx, fd, opt);
                            }
                            let mut m = self.metrics.borrow_mut();
                            m.conns_accepted += 1;
                            self.obs.conns_accepted.inc();
                            if let Some(pid) = self.lib.replica_of(fd) {
                                m.served_by.push(pid.0);
                                // Per-replica accept counts (cold path: one
                                // registry name lookup per accepted conn).
                                neat_obs::counter_add(&format!("web.accepted.r{}", pid.0), 1);
                            }
                            drop(m);
                            self.conns.insert(
                                fd,
                                ConnState {
                                    parser: http::StreamParser::new(),
                                    requests_served: 0,
                                    closing: false,
                                },
                            );
                        }
                        LibEvent::Readable { fd } => {
                            if self.conns.contains_key(&fd) {
                                self.service_readable(ctx, fd);
                            }
                        }
                        LibEvent::Closed { fd, .. } => {
                            self.conns.remove(&fd);
                        }
                        LibEvent::Connected { .. } | LibEvent::ConnectFailed { .. } => {}
                    }
                }
                let lost = self.lib.lost_to_crash - before_lost;
                if lost > 0 {
                    self.metrics.borrow_mut().conns_lost_to_crash += lost;
                    self.obs.conns_lost.add(lost);
                }
            }
        }
    }
}
