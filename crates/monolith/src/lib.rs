//! # neat-monolith — the Linux-like shared-everything baseline
//!
//! The comparison system of §6.1: a monolithic kernel network stack. It
//! runs the **same protocol engine** (`neat-tcp` + `neat-net`) as NEaT but
//! in the architecture the paper criticizes: one shared socket table and
//! connection state, accessed from per-core kernel contexts, paying the
//! shared-everything taxes of §2:
//!
//! * syscall boundary crossings for every application operation;
//! * socket/table **lock contention** that grows with the number of cores
//!   concurrently in the kernel (the non-scalable-ticket-lock collapse);
//! * **cache-line bouncing** of shared state between cores;
//! * **wrong-core penalties** when the softirq core that processed a
//!   packet is not the core running the application (IRQ/RX affinity and
//!   server pinning — the tuning knobs of Table 1).
//!
//! The shared state is deliberately expressed as an `Rc<RefCell<…>>`
//! shared by all kernel-context processes — the simulation's one sanctioned
//! violation of isolation, because shared memory *is* the monolith's
//! architecture.

pub mod boot;
pub mod ctx_proc;
pub mod shared;
pub mod tuning;

pub use boot::{boot_monolith, MonoDeployment};
pub use ctx_proc::KernelCtxProc;
pub use shared::MonoShared;
pub use tuning::MonoTuning;
