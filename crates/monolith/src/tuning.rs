//! The Table-1 tuning knobs of the Linux baseline.
//!
//! §6.1: "Table 1 presents a breakdown of options we tuned in order to
//! improve as much as possible the performance of our Linux baseline to
//! ensure a fair comparison": scheduler policy, ethtool settings (TSO,
//! auto-negotiation), IRQ affinities, receive-queue affinities, and server
//! pinning. RFS "did not result in observable benefits".

/// One tuning configuration of the monolithic baseline.
#[derive(Debug, Clone)]
pub struct MonoTuning {
    pub name: String,
    /// `sched`: deadline scheduler policy (small wakeup improvement).
    pub sched_deadline: bool,
    /// `eth`: auto-negotiation off + TSO on.
    pub tso: bool,
    /// `irqAff`: NIC queues pinned to distinct cores (vs irqbalance
    /// moving them around and bouncing queue state).
    pub irq_affinity: bool,
    /// `rxAff`: receive-queue → core mapping fixed.
    pub rx_affinity: bool,
    /// `serv`: lighttpd processes pinned to specific cores, aligning the
    /// softirq core with the server core (ATR-style flow steering works).
    pub pin_servers: bool,
    /// `RFS` — modelled as a no-op, as measured by the paper.
    pub rfs: bool,
}

impl MonoTuning {
    /// Row 1: out-of-the-box defaults.
    pub fn defaults() -> MonoTuning {
        MonoTuning {
            name: "defaults".into(),
            sched_deadline: false,
            tso: false,
            irq_affinity: false,
            rx_affinity: false,
            pin_servers: false,
            rfs: false,
        }
    }

    /// Row 2: sched + eth + irqAff + rxAff.
    pub fn affinities() -> MonoTuning {
        MonoTuning {
            name: "sched+eth+irqAff+rxAff".into(),
            sched_deadline: true,
            tso: true,
            irq_affinity: true,
            rx_affinity: true,
            pin_servers: false,
            rfs: false,
        }
    }

    /// Row 3 (best): + serv — the configuration used for all Linux
    /// comparison numbers in §6.
    pub fn best() -> MonoTuning {
        MonoTuning {
            name: "sched+eth+irqAff+rxAff+serv".into(),
            pin_servers: true,
            ..MonoTuning::affinities()
        }
    }

    /// Do packets of a connection reach the core of its application?
    /// Requires both stable queue affinities and pinned servers.
    pub fn flow_aligned(&self) -> bool {
        self.rx_affinity && self.pin_servers
    }

    /// Multiplier on lock/bounce contention costs: unstable IRQ placement
    /// drags shared queue state across cores.
    pub fn contention_factor(&self) -> f64 {
        let mut f = 1.0;
        if !self.irq_affinity {
            f *= 1.15;
        }
        if !self.sched_deadline {
            f *= 1.04;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_progression() {
        let d = MonoTuning::defaults();
        let a = MonoTuning::affinities();
        let b = MonoTuning::best();
        assert!(!d.flow_aligned());
        assert!(!a.flow_aligned(), "rxAff without pinning is not aligned");
        assert!(b.flow_aligned());
        assert!(d.contention_factor() > a.contention_factor());
        assert_eq!(a.contention_factor(), b.contention_factor());
    }
}
