//! Boot builder for the monolithic baseline.

use crate::ctx_proc::{KernelCtxProc, MonoIrqProc};
use crate::shared::MonoShared;
use crate::tuning::MonoTuning;
use neat::msg::Msg;
use neat::netcode::FrameIo;
use neat_net::MacAddr;
use neat_sim::{HwThreadId, ProcId, Sim};
use neat_tcp::TcpConfig;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// A booted monolithic deployment.
pub struct MonoDeployment {
    /// Kernel context per hardware thread used.
    pub ctxs: Vec<ProcId>,
    pub irq: ProcId,
    /// The canonical "kernel" pid used in connection handles.
    pub canonical: ProcId,
    pub shared: Rc<RefCell<MonoShared>>,
    pub tuning: MonoTuning,
}

/// Boot the shared-kernel stack with one kernel context per entry of
/// `threads` (the same hardware threads also run the server processes —
/// the monolith does not dedicate cores to the stack).
#[allow(clippy::too_many_arguments)]
pub fn boot_monolith(
    sim: &mut Sim<Msg>,
    threads: &[HwThreadId],
    nic: ProcId,
    ip: Ipv4Addr,
    mac: MacAddr,
    tcp: TcpConfig,
    tuning: MonoTuning,
    arp_seed: Vec<(Ipv4Addr, MacAddr)>,
    base_port: u16,
    hw_factor: f64,
) -> MonoDeployment {
    let shared = Rc::new(RefCell::new(MonoShared::new(
        ip,
        tcp,
        tuning.clone(),
        threads.len(),
    )));
    shared.borrow_mut().hw_factor = hw_factor;
    let io = Rc::new(RefCell::new({
        let mut io = FrameIo::new(ip, mac);
        for (a, m) in arp_seed {
            io.seed_arp(a, m);
        }
        io
    }));
    let mut ctxs = Vec::new();
    for (i, t) in threads.iter().enumerate() {
        let proc = KernelCtxProc::new(format!("kctx.{i}"), i, shared.clone(), io.clone(), nic);
        ctxs.push(sim.spawn(*t, Box::new(proc)));
    }
    shared.borrow_mut().canonical = ctxs[0];
    // IRQ fanout on a device thread of the same machine as the first ctx.
    let machine = {
        // Device threads only need the machine id; derive from the NIC's
        // machine via a fresh device thread.
        sim.machine_of_thread(threads[0])
    };
    let dev = sim.add_device_thread(machine);
    let irq = sim.spawn(
        dev,
        Box::new(MonoIrqProc::new(
            "irq-fabric",
            ctxs.clone(),
            tuning.flow_aligned(),
            tuning.irq_affinity,
            base_port,
        )),
    );
    // The NIC hands received frames to the IRQ fabric.
    sim.send_external(
        nic,
        Msg::SetNeighbor {
            role: neat::msg::NeighborRole::Driver,
            pid: irq,
        },
    );
    let canonical = shared.borrow().canonical;
    MonoDeployment {
        ctxs,
        irq,
        canonical,
        shared,
        tuning,
    }
}
