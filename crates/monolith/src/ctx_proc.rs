//! Per-core kernel contexts and the IRQ fan-out of the monolithic stack.
//!
//! A [`KernelCtxProc`] is "the kernel as seen from one core": it executes
//! softirq work for packets steered to its core and syscall work for the
//! application pinned there — all against the *shared* kernel state, paying
//! the contention taxes. A [`MonoIrqProc`] models the interrupt routing
//! fabric: it places each received frame on the core its queue is bound to
//! (IRQ affinity) or wherever irqbalance happens to point (defaults).

use crate::shared::{MonoShared, MONO_VFS_PER_OP};
use neat::msg::Msg;
use neat::netcode::RxClass;
use neat_sim::{calibration, Ctx, Event, ProcId, Process, Time};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// One per-core kernel context.
pub struct KernelCtxProc {
    pub name: String,
    pub idx: usize,
    shared: Rc<RefCell<MonoShared>>,
    /// Shared link/ARP state (also kernel-owned).
    io: Rc<RefCell<neat::netcode::FrameIo>>,
    nic: ProcId,
    armed: Option<u64>,
    obs: MonoObs,
}

/// Metrics-registry handles for the monolith's kernel-context work. All
/// contexts share the same registry entries (aggregate view across cores).
#[derive(Clone, Copy)]
struct MonoObs {
    softirq_rx: neat_obs::Counter,
    syscalls: neat_obs::Counter,
}

impl MonoObs {
    fn new() -> MonoObs {
        MonoObs {
            softirq_rx: neat_obs::counter("mono.softirq_rx"),
            syscalls: neat_obs::counter("mono.syscalls"),
        }
    }
}

impl KernelCtxProc {
    pub fn new(
        name: impl Into<String>,
        idx: usize,
        shared: Rc<RefCell<MonoShared>>,
        io: Rc<RefCell<neat::netcode::FrameIo>>,
        nic: ProcId,
    ) -> KernelCtxProc {
        KernelCtxProc {
            name: name.into(),
            idx,
            shared,
            io,
            nic,
            armed: None,
            obs: MonoObs::new(),
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now().as_nanos();
        let mut sh = self.shared.borrow_mut();
        let canonical = sh.canonical;
        let (_, opened, closed) = sh.sock.process_events(canonical);
        ctx.charge(opened as u64 * calibration::TCP_OPEN + closed as u64 * calibration::TCP_CLOSE);
        let wire = sh.sock.poll_wire(now);
        let mut io = self.io.borrow_mut();
        for (dst, seg) in wire {
            ctx.charge(
                calibration::TCP_TX_SEG
                    + calibration::IP_TX_PKT
                    + sh.scaled(
                        calibration::MONO_STACK_TX_OVERHEAD
                            + calibration::MONO_SKB_PER_PKT
                            + MONO_VFS_PER_OP / 2,
                    ),
            );
            io.send_ip(dst, neat_net::ipv4::IpProtocol::Tcp, &seg, now);
        }
        for frame in io.drain() {
            ctx.send(self.nic, Msg::NetTx(frame));
        }
        drop(io);
        let msgs = sh.sock.take_app_msgs();
        for (app, msg) in msgs {
            ctx.charge(calibration::SOCK_OP + sh.wrong_core_penalty(self.idx, app));
            ctx.send(app, msg);
        }
        // One context owns the kernel's timer wheel.
        if self.idx == 0 {
            if let Some(d) = sh.sock.next_timeout() {
                if self.armed.map(|a| d < a).unwrap_or(true) {
                    self.armed = Some(d);
                    ctx.set_timer(Time::from_nanos(d.saturating_sub(now)), 0);
                }
            }
        }
    }
}

impl Process<Msg> for KernelCtxProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            // Delivered via `on_batch` in practice; unroll defensively if a
            // batch ever reaches the scalar path.
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
            Event::Start => {}
            Event::Timer { .. } => {
                self.armed = None;
                let now = ctx.now().as_nanos();
                self.shared.borrow_mut().sock.on_timer(now);
                self.flush(ctx);
            }
            Event::Message { from, msg } => match msg {
                Msg::NetRx(frame) => {
                    self.obs.softirq_rx.inc();
                    let now = ctx.now().as_nanos();
                    let (tax, skb) = {
                        let mut sh = self.shared.borrow_mut();
                        let t = sh.kernel_entry(self.idx, now, 1);
                        let s = sh.scaled(
                            calibration::MONO_STACK_RX_OVERHEAD + calibration::MONO_SKB_PER_PKT,
                        );
                        (t, s)
                    };
                    ctx.charge(tax + skb + calibration::IP_RX_PKT);
                    let class = self.io.borrow_mut().classify_rx(&frame, now);
                    if let RxClass::Tcp { src, seg } = class {
                        let vfs = self.shared.borrow().scaled(MONO_VFS_PER_OP / 2);
                        ctx.charge(calibration::TCP_RX_SEG + vfs);
                        let local_ip = self.shared.borrow().sock.stack.local_ip;
                        if let Ok((h, range)) = neat_net::TcpHeader::parse(&seg, src, local_ip) {
                            self.shared.borrow_mut().sock.stack.handle_segment(
                                src,
                                &h,
                                &seg[range],
                                now,
                            );
                        }
                    }
                    self.flush(ctx);
                }
                m @ (Msg::Listen { .. }
                | Msg::Connect { .. }
                | Msg::ConnSend { .. }
                | Msg::ConnClose { .. }
                | Msg::SetSockOpt { .. }) => {
                    self.obs.syscalls.inc();
                    let now = ctx.now().as_nanos();
                    // Syscall path: boundary crossing + VFS + locks.
                    let mut sh = self.shared.borrow_mut();
                    let tax = sh.kernel_entry(self.idx, now, 1);
                    let vfs = sh.scaled(MONO_VFS_PER_OP);
                    ctx.charge(calibration::MONO_SYSCALL + vfs + tax);
                    if let Msg::Listen { app, .. } = &m {
                        // The listener's application lives on this core.
                        sh.app_ctx.insert(*app, self.idx);
                    }
                    let ops = sh.handle_app_msg(from, m, now);
                    ctx.charge(ops as u64 * calibration::SOCK_OP);
                    drop(sh);
                    self.flush(ctx);
                }
                Msg::Poison => ctx.crash_self(),
                _ => {}
            },
        }
    }
}

/// The interrupt routing fabric (device engine): steers each queue's
/// frames to a kernel context per the tuning's affinity policy.
pub struct MonoIrqProc {
    pub name: String,
    ctxs: Vec<ProcId>,
    /// Flow-aligned steering (rxAff + serv): route by destination port so
    /// a connection's packets hit its server's core.
    aligned: bool,
    base_port: u16,
    /// irqbalance churn when affinity is off: rotating assignment.
    rr: usize,
    irq_affinity: bool,
}

impl MonoIrqProc {
    pub fn new(
        name: impl Into<String>,
        ctxs: Vec<ProcId>,
        aligned: bool,
        irq_affinity: bool,
        base_port: u16,
    ) -> MonoIrqProc {
        MonoIrqProc {
            name: name.into(),
            ctxs,
            aligned,
            base_port,
            rr: 0,
            irq_affinity,
        }
    }

    fn route(&mut self, frame: &[u8], queue: usize) -> ProcId {
        let n = self.ctxs.len();
        if self.aligned {
            if let Some(flow) = neat_nic::Steering::parse_flow(frame) {
                let idx = (flow.key.dst_port.wrapping_sub(self.base_port)) as usize % n;
                return self.ctxs[idx];
            }
        }
        if self.irq_affinity {
            self.ctxs[queue % n]
        } else {
            // irqbalance: interrupts wander between cores.
            self.rr = (self.rr + 1) % n;
            self.ctxs[self.rr]
        }
    }
}

impl Process<Msg> for MonoIrqProc {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn dispatch_cost(&self) -> u64 {
        0 // routing fabric; CPU costs are charged at the contexts
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        if let Event::Message {
            msg: Msg::RxFrame { queue, frame },
            ..
        } = ev
        {
            let dst = self.route(&frame, queue);
            ctx.send(dst, Msg::NetRx(frame));
        }
    }
}

/// Extension hook: `MonoShared` needs a message-consuming variant of
/// `handle_app` (the `SockServer` one takes `Msg` by value).
impl MonoShared {
    pub fn handle_app_msg(&mut self, from: ProcId, msg: Msg, now: u64) -> u32 {
        self.sock.handle_app(from, msg, now)
    }
}

/// The server IP the monolith binds (mirrors the NEaT testbed).
pub const MONO_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 1);
