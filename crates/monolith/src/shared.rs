//! The monolith's shared kernel state and its contention model.
//!
//! One [`SockServer`] (socket table + TCP engine) shared by every kernel
//! context. Every operation on it estimates the synchronization tax from
//! the recency of *other* cores' operations: concurrent lock holders queue
//! on ticket spinlocks (cost per waiter) and shared dirty cache lines
//! bounce between cores.

use crate::tuning::MonoTuning;
use neat::sock_server::SockServer;
use neat_sim::calibration;
use neat_sim::ProcId;
use neat_tcp::TcpConfig;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Baseline per-request kernel bookkeeping outside the stack proper: VFS,
/// epoll, skb management, accounting (§2's "kernel does ~70% of the work"
/// — measured magnitudes from the Linux-scalability literature).
pub const MONO_VFS_PER_OP: u64 = 8_000;

/// Lock acquire/release pairs touched per packet or socket op (socket
/// lock, queue locks, accept/ehash locks).
pub const LOCKS_PER_OP: u64 = 3;

/// Window within which another core's kernel entry counts as contending.
pub const CONTEND_WINDOW_NS: u64 = 2_000;

/// The shared kernel state.
pub struct MonoShared {
    pub sock: SockServer,
    pub tuning: MonoTuning,
    /// Canonical pid used in connection handles (all ctxs present one
    /// logical kernel to the applications).
    pub canonical: ProcId,
    /// Last kernel-entry instant per context (contention estimation).
    last_op: Vec<u64>,
    /// Application process → kernel-context index of its core.
    pub app_ctx: HashMap<ProcId, usize>,
    /// Accumulated contention cycles (diagnostics).
    pub contention_cycles: u64,
    pub ops: u64,
    /// Machine-dependent cost factor on shared-memory operations: 1.0 for
    /// the two-die Magny-Cours AMD (HT-link hops), ~0.45 for the Nehalem
    /// Xeon with its integrated memory controller and on-die uncore —
    /// this is what lets the paper's Xeon Linux reach 328 krps on fewer
    /// cores than the AMD's 224.
    pub hw_factor: f64,
}

impl MonoShared {
    pub fn new(ip: Ipv4Addr, tcp: TcpConfig, tuning: MonoTuning, ctxs: usize) -> MonoShared {
        MonoShared {
            sock: SockServer::new(ip, tcp),
            tuning,
            canonical: ProcId(0),
            last_op: vec![0; ctxs],
            app_ctx: HashMap::new(),
            contention_cycles: 0,
            ops: 0,
            hw_factor: 1.0,
        }
    }

    /// Scale a shared-memory cost by the machine factor.
    pub fn scaled(&self, cycles: u64) -> u64 {
        (cycles as f64 * self.hw_factor) as u64
    }

    /// Record a kernel entry by context `me` at `now`; returns the
    /// synchronization tax in cycles for one operation touching `pkts`
    /// packets' worth of shared lines.
    pub fn kernel_entry(&mut self, me: usize, now: u64, pkts: u64) -> u64 {
        self.ops += 1;
        let waiters = self
            .last_op
            .iter()
            .enumerate()
            .filter(|(i, &t)| *i != me && now.saturating_sub(t) < CONTEND_WINDOW_NS)
            .count() as u64;
        self.last_op[me] = now;
        let locks = LOCKS_PER_OP
            * (calibration::MONO_LOCK_UNCONTENDED + waiters * calibration::MONO_LOCK_PER_WAITER);
        let bounce = if waiters > 0 {
            calibration::MONO_SHARED_LINES_PER_PKT as u64 * calibration::MONO_LINE_BOUNCE * pkts
        } else {
            0
        };
        let tax =
            ((locks + bounce) as f64 * self.tuning.contention_factor() * self.hw_factor) as u64;
        self.contention_cycles += tax;
        tax
    }

    /// The wrong-core penalty owed when context `me` hands data to `app`
    /// (the softirq ran on a different core than the server).
    pub fn wrong_core_penalty(&self, me: usize, app: ProcId) -> u64 {
        let raw = match self.app_ctx.get(&app) {
            Some(&c) if c == me => 0,
            Some(_) => calibration::MONO_SCHED_MISS,
            None => calibration::MONO_SCHED_MISS / 2,
        };
        self.scaled(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> MonoShared {
        MonoShared::new(
            Ipv4Addr::new(10, 0, 0, 1),
            TcpConfig::default(),
            MonoTuning::best(),
            4,
        )
    }

    #[test]
    fn no_contention_when_alone() {
        let mut s = shared();
        let t1 = s.kernel_entry(0, 1_000_000, 2);
        // Re-enter long after: still alone.
        let t2 = s.kernel_entry(0, 9_000_000, 2);
        assert_eq!(t1, t2);
        assert_eq!(t1, LOCKS_PER_OP * calibration::MONO_LOCK_UNCONTENDED);
    }

    #[test]
    fn contention_grows_with_concurrent_cores() {
        let mut s = shared();
        let alone = s.kernel_entry(0, 5_000_000, 2);
        // Three other cores enter the kernel within the window.
        s.kernel_entry(1, 5_000_100, 2);
        s.kernel_entry(2, 5_000_200, 2);
        s.kernel_entry(3, 5_000_300, 2);
        let crowded = s.kernel_entry(0, 5_000_400, 2);
        assert!(
            crowded > alone + 2 * calibration::MONO_LOCK_PER_WAITER,
            "alone={alone} crowded={crowded}"
        );
    }

    #[test]
    fn untuned_config_pays_more() {
        let mut best = shared();
        let mut bad = MonoShared::new(
            Ipv4Addr::new(10, 0, 0, 1),
            TcpConfig::default(),
            MonoTuning::defaults(),
            4,
        );
        for s in [&mut best, &mut bad] {
            s.kernel_entry(1, 100, 2);
        }
        assert!(bad.kernel_entry(0, 200, 2) > best.kernel_entry(0, 200, 2));
    }

    #[test]
    fn wrong_core_penalty_depends_on_alignment() {
        let mut s = shared();
        let app = ProcId(42);
        s.app_ctx.insert(app, 2);
        assert_eq!(s.wrong_core_penalty(2, app), 0);
        assert!(s.wrong_core_penalty(0, app) > 0);
    }
}
