//! Sharded parallel execution of the simulation: real OS threads, one
//! shard owning one or more machine domains, synchronized by conservative
//! time windows.
//!
//! ## The window-sync rule
//!
//! The engine's *lookahead* is the minimum latency of any cross-machine
//! effect: every cross-machine message costs at least
//! [`calibration::CHANNEL_LATENCY`] plus the declared
//! [`crate::SimConfig::link_latency_ns`], and a crash's monitor
//! notification costs [`calibration::CRASH_NOTIFY_LATENCY`] (checked to be
//! ≥ the lookahead when a monitor is installed). Each round:
//!
//! 1. all shards agree on `T` = the globally earliest pending event time
//!    (an atomic min-reduce between two barriers);
//! 2. every shard independently dispatches all of its events with
//!    `time < T + lookahead`, in the canonical `(time, origin domain,
//!    origin seq)` order, buffering cross-shard messages in an outbox;
//! 3. at the window barrier, outboxes are exchanged and each shard pushes
//!    the received events into the destination domains' heaps.
//!
//! Any event dispatched inside the window has `time ≥ T`, so any
//! cross-machine message it emits lands at `≥ T + lookahead` — at or past
//! the window's end. Cross-shard messages therefore never target the
//! window currently executing, which is what makes per-shard execution
//! race-free *and* order-exact.
//!
//! ## Why the result is bit-identical to the serial engine
//!
//! Domains only interact through timestamped messages, a handler can only
//! touch its own domain's state (see `engine.rs`), and every event is
//! dispatched in the same canonical `(time, origin, seq)` order within its
//! domain whether domains interleave on one thread or run on many. The
//! event *keys* are assigned by the origin domain from purely local
//! history, so they do not depend on execution mode either. Hence: same
//! seed ⇒ same per-domain histories ⇒ same merged history, for any shard
//! count. `tests/parallel.rs` and the `par_scale` bench assert this.
//!
//! ## What `M: Send` does and does not cover
//!
//! [`Sim::run_sharded`] requires the message type to be `Send` (messages
//! cross shard threads inside mailboxes). Process *state* is moved to
//! worker threads behind [`ShardTask`]'s `unsafe impl Send`; the safety
//! argument is confinement — a domain is touched by exactly one thread per
//! window, with barriers and thread join providing happens-before — plus
//! the caller contract that processes on *different machines* never share
//! non-thread-safe state (e.g. `Rc`) except through messages. Topologies
//! that do share such state across machines (the full-stack scenario
//! harness does, for metrics collection) must keep using the serial
//! [`Sim::run_until`]; purpose-built parallel topologies get the speedup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::calibration;
use crate::engine::{
    domain_of_pid, DomMap, DomainState, Handoff, HeapEv, HeapKind, Kernel, Outbox, Sim,
};
use crate::time::Time;

/// Statistics of the last sharded run (deterministic: window count and
/// per-shard event counts depend only on the event history, not on host
/// scheduling).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParStats {
    /// Worker threads used (0 = no sharded run has happened).
    pub shards: usize,
    /// Synchronization windows executed.
    pub windows: u64,
    /// Messages that crossed a shard boundary at a window barrier.
    pub handoffs: u64,
    /// Events dispatched by each shard (imbalance diagnostic).
    pub per_shard_events: Vec<u64>,
}

impl ParStats {
    /// Max/mean of per-shard event counts: 1.0 = perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let n = self.per_shard_events.len();
        if n == 0 {
            return 1.0;
        }
        let total: u64 = self.per_shard_events.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.per_shard_events.iter().max().unwrap() as f64;
        max / (total as f64 / n as f64)
    }

    /// Export `sim.par.*` gauges (no-op if no sharded run has happened, so
    /// serial benches keep their snapshot shape).
    pub(crate) fn export_obs(&self) {
        if self.shards == 0 {
            return;
        }
        neat_obs::gauge_set("sim.par.shards", self.shards as f64);
        neat_obs::gauge_set("sim.par.windows", self.windows as f64);
        neat_obs::gauge_set("sim.par.handoffs", self.handoffs as f64);
        neat_obs::gauge_set("sim.par.imbalance", self.imbalance());
        for (k, &ev) in self.per_shard_events.iter().enumerate() {
            neat_obs::gauge_set(&format!("sim.par.shard{k}.events"), ev as f64);
        }
    }
}

/// The domains a worker thread owns for the duration of a sharded run,
/// plus its run counters.
///
/// # Safety
///
/// `DomainState` is not `Send` because process trait objects
/// (`Box<dyn Process<M>>`) are not declared `Send`. The wrapper is sound
/// because a `ShardTask` is moved to exactly one worker thread, all
/// access during the run is by that thread alone (cross-shard effects
/// travel as `M: Send` messages through mutex-protected mailboxes), and
/// ownership returns to the spawning thread via `std::thread::scope`
/// join — a happens-before edge on everything the worker touched. The
/// remaining obligation is the documented caller contract: process state
/// must not be shared across machines through non-thread-safe handles.
struct ShardTask<M> {
    domains: Vec<DomainState<M>>,
    dispatched: u64,
    handoffs: u64,
}

unsafe impl<M: Send> Send for ShardTask<M> {}

/// Sentinel window value: no more events, stop.
const DONE: u64 = u64::MAX;

impl<M: Send + 'static> Sim<M> {
    /// Run until `until` on `shards` worker threads, producing the exact
    /// event history of [`Sim::run_until`] (bit-identical for any shard
    /// count). Returns the number of events dispatched.
    ///
    /// Shards own whole machines (round-robin assignment), so `shards` is
    /// clamped to the machine count; `shards <= 1` degenerates to the
    /// serial engine.
    pub fn run_sharded(&mut self, until: Time, shards: usize) -> u64 {
        let ndoms = self.domains.len();
        let shards = shards.max(1).min(ndoms.max(1));
        if shards <= 1 {
            let dispatched = self.run_until(until);
            self.par_stats = ParStats {
                shards: 1,
                windows: 0,
                handoffs: 0,
                per_shard_events: vec![dispatched],
            };
            return dispatched;
        }

        let lookahead = self.lookahead();
        assert!(lookahead.as_nanos() > 0, "lookahead must be positive");
        if self.crash_monitor.is_some() {
            // A crash's cross-process effect (the monitor notification) is
            // the only engine-generated cross-machine message; it must not
            // undercut the window either.
            assert!(
                calibration::CRASH_NOTIFY_LATENCY >= lookahead,
                "declared link latency ({}ns) pushes the sync window past the \
                 crash-notify latency ({}ns); shrink link_latency_ns or run serially",
                self.link_latency.as_nanos(),
                calibration::CRASH_NOTIFY_LATENCY.as_nanos()
            );
        }

        // --- Partition machines across shards (round-robin).
        let shard_of: Vec<u32> = (0..ndoms).map(|d| (d % shards) as u32).collect();
        let mut tasks: Vec<ShardTask<M>> = (0..shards)
            .map(|_| ShardTask {
                domains: Vec::new(),
                dispatched: 0,
                handoffs: 0,
            })
            .collect();
        for (dom, d) in self.domains.drain(..).enumerate() {
            tasks[shard_of[dom] as usize].domains.push(d);
        }
        // Per-shard dom -> position-in-owned-slice maps.
        let pos_maps: Vec<Vec<Option<usize>>> = (0..shards)
            .map(|k| {
                let mut map = vec![None; ndoms];
                for (p, d) in tasks[k].domains.iter().enumerate() {
                    map[d.dom as usize] = Some(p);
                }
                map
            })
            .collect();

        // --- Shared synchronization state.
        let barrier = Barrier::new(shards);
        let window_end = AtomicU64::new(0);
        let min_next = AtomicU64::new(u64::MAX);
        let windows = AtomicU64::new(0);
        let mailboxes: Vec<Mutex<Vec<Handoff<M>>>> =
            (0..shards).map(|_| Mutex::new(Vec::new())).collect();

        let topo = &self.topo;
        let batch_ns = self.batch_ns;
        let batch_max = self.batch_max;
        let link_latency = self.link_latency;
        let crash_monitor = self.crash_monitor.as_ref();
        let shard_of_ref = &shard_of;
        let barrier_ref = &barrier;
        let window_ref = &window_end;
        let min_ref = &min_next;
        let windows_ref = &windows;
        let mailboxes_ref = &mailboxes;

        std::thread::scope(|s| {
            let handles: Vec<_> = tasks
                .drain(..)
                .zip(pos_maps.iter())
                .enumerate()
                .map(|(k, (mut task, pos_map))| {
                    s.spawn(move || {
                        // Metric handles index the *registering* thread's
                        // registry; worker-side updates would corrupt (or
                        // panic on) this thread's empty one, and would make
                        // the exported numbers depend on the shard layout.
                        neat_obs::set_thread_enabled(false);
                        let mut outbox: Outbox<M> = (0..shards).map(|_| Vec::new()).collect();
                        loop {
                            // 1. Agree on the earliest pending event time.
                            let lmin = task
                                .domains
                                .iter()
                                .filter_map(|d| d.heap.peek().map(|e| e.time.0))
                                .min()
                                .unwrap_or(u64::MAX);
                            min_ref.fetch_min(lmin, Ordering::AcqRel);
                            barrier_ref.wait();
                            if k == 0 {
                                let t = min_ref.swap(u64::MAX, Ordering::AcqRel);
                                let w = if t == u64::MAX || t > until.0 {
                                    DONE
                                } else {
                                    windows_ref.fetch_add(1, Ordering::Relaxed);
                                    t.saturating_add(lookahead.0)
                                };
                                window_ref.store(w, Ordering::Release);
                            }
                            barrier_ref.wait();
                            let wend = window_ref.load(Ordering::Acquire);
                            if wend == DONE {
                                break;
                            }

                            // 2. Dispatch everything inside the window, in
                            // canonical order per domain. A dispatch can
                            // only add *local-domain* events inside the
                            // window (cross-machine effects land >= wend),
                            // so a per-domain drain loop is exhaustive.
                            {
                                let mut kernel = Kernel {
                                    domains: &mut task.domains,
                                    map: DomMap::Partial(pos_map),
                                    topo,
                                    batch_ns,
                                    batch_max,
                                    link_latency,
                                    crash_monitor,
                                    outbox: Some((shard_of_ref.as_slice(), &mut outbox)),
                                    tracing: false, // spans are thread-local
                                };
                                for di in 0..kernel.domains.len() {
                                    loop {
                                        let ready = matches!(
                                            kernel.domains[di].heap.peek(),
                                            Some(top) if top.time.0 < wend && top.time <= until
                                        );
                                        if !ready {
                                            break;
                                        }
                                        let ev = kernel.domains[di].heap.pop().unwrap();
                                        kernel.dispatch(di, ev);
                                        kernel.domains[di].events_dispatched += 1;
                                        task.dispatched += 1;
                                    }
                                }
                            }

                            // 3. Exchange cross-shard messages.
                            for (dst, evs) in outbox.iter_mut().enumerate() {
                                if !evs.is_empty() {
                                    task.handoffs += evs.len() as u64;
                                    mailboxes_ref[dst].lock().unwrap().append(evs);
                                }
                            }
                            barrier_ref.wait();
                            for h in mailboxes_ref[k].lock().unwrap().drain(..) {
                                let dom = domain_of_pid(h.dst) as usize;
                                let p = pos_map[dom].expect(
                                    "handoff routed to a shard that does not own the domain",
                                );
                                task.domains[p].heap.push(HeapEv {
                                    time: h.time,
                                    origin: h.origin,
                                    kind: HeapKind::Deliver {
                                        dst: h.dst,
                                        ev: h.ev,
                                    },
                                });
                            }
                            // Next round's min-reduce happens after every
                            // shard passes the exchange barrier above, so
                            // ingested events are always visible to it.
                        }
                        task
                    })
                })
                .collect();
            tasks = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
        });

        // --- Reassemble domains in global order and merge counters.
        let mut dispatched_total = 0u64;
        let mut per_shard_events = Vec::with_capacity(shards);
        let mut handoffs = 0u64;
        let mut slots: Vec<Option<DomainState<M>>> = (0..ndoms).map(|_| None).collect();
        for task in tasks {
            dispatched_total += task.dispatched;
            per_shard_events.push(task.dispatched);
            handoffs += task.handoffs;
            for d in task.domains {
                let dom = d.dom as usize;
                slots[dom] = Some(d);
            }
        }
        self.domains = slots
            .into_iter()
            .map(|s| s.expect("domain lost during sharded run"))
            .collect();
        if self.now() < until {
            self.set_now(until);
        }
        self.par_stats = ParStats {
            shards,
            windows: windows.load(Ordering::Relaxed),
            handoffs,
            per_shard_events,
        };
        dispatched_total
    }
}
