//! Calibrated cost constants for the simulated NewtOS/NEaT execution model.
//!
//! Every constant here is a *cost model input*; the scalability and
//! reliability curves of the paper are **not** encoded anywhere — they emerge
//! from component structure (which process runs on which core, who talks to
//! whom) combined with these per-operation costs. The constants were fitted
//! so that the headline absolute numbers land near the paper's measurements:
//!
//! * Linux/AMD 12-core best configuration ≈ 224 krps (Table 1);
//! * NEaT 3x single-component on the same machine ≈ 302 krps (§6.3);
//! * Linux/Xeon ≈ 328 krps, NEaT 4x HT ≈ 372 krps (§6.4);
//! * one lighttpd instance saturates around 50–60 krps with the
//!   100-requests/connection workload (Figures 7/9/11 per-instance slope).
//!
//! The derivations: with the paper's observation that ~70-80 % of cycles are
//! spent in the OS for a loaded Linux server (§3.2), a 224 krps total over
//! 12 × 1.9 GHz cores implies ≈ 100 k cycles end-to-end per request, roughly
//! 30 k in the application and 70 k in the kernel stack (including
//! synchronization and cache-bouncing overhead). NEaT's isolated stack does
//! the same protocol work without shared-state overheads: ≈ 19 k cycles of
//! stack work per request (3 replica cores sustain 302 krps) and the same
//! ≈ 37 k application cycles (6 lighttpd cores at 302 krps).

use crate::time::{Cycles, Time};

// ---------------------------------------------------------------------------
// Message passing (NewtOS user-space channels, §3.1/§4)
// ---------------------------------------------------------------------------

/// Cycles for enqueueing a message descriptor on a shared-memory channel
/// (cache-line write + fence). Charged to the sender.
pub const MSG_SEND: Cycles = 120;

/// Cycles for dequeueing a message from a channel. Charged to the receiver
/// as part of handling the corresponding event.
pub const MSG_RECV: Cycles = 100;

/// Cycles for appending another descriptor to a channel already written to
/// in the same wakeup: the head cache line is hot and the fence/doorbell is
/// shared by the run, leaving only the slot write (§3.4 batching
/// amortization). Charged instead of [`MSG_SEND`] for consecutive sends to
/// the same destination within one handler invocation.
pub const MSG_SEND_APPEND: Cycles = 40;

/// Cycles for the per-message receiver notification paid when per-link
/// coalescing is disabled (`SimConfig::batch_ns == 0`): with no open batch
/// to append to and no deferred flush, every enqueue must kick the
/// destination's channel individually — a kernel-call-class event
/// injection (trap + event delivery, §3.4: the batched fast path exists
/// "to amortize the cost of the kernel calls"). Charged on CPU threads
/// only; device engines (NIC pipelines) signal by interrupt, whose cost
/// the receiver-side cold descriptor rates already carry.
pub const MSG_NOTIFY: Cycles = 500;

/// One-way latency of a cross-core cache-line transfer carrying a message
/// descriptor (both dies in the paper's testbeds are single-package).
pub const CHANNEL_LATENCY: Time = Time(250);

/// Cycles for copying payload bytes through a shared-memory socket buffer,
/// per byte (streaming copy ≈ 4 B/cycle).
pub const COPY_PER_BYTE_X4: Cycles = 1; // cycles per 4 bytes

/// Cost of copying `n` payload bytes.
pub fn copy_cost(n: usize) -> Cycles {
    (n as u64).div_ceil(4) * COPY_PER_BYTE_X4
}

// ---------------------------------------------------------------------------
// MWAIT sleep/wake model (§4, Table 2)
// ---------------------------------------------------------------------------
// "A mostly idle driver spends a significant portion of the active time
//  suspending/resuming in the kernel (as Intel's MWAIT is a privileged
//  instruction), polling the 3 stacks and the NIC queues."

/// How long an idle process keeps spin-polling its queues before suspending.
pub const SPIN_POLL_WINDOW: Time = Time(6_000); // 6 us

/// Kernel cycles to suspend a core via a privileged MWAIT (syscall entry,
/// state save, monitor arm).
pub const KERNEL_SUSPEND: Cycles = 2_600;

/// Kernel cycles to resume after a wake-up write hits the monitored line.
pub const KERNEL_RESUME: Cycles = 2_200;

/// Latency to wake a process that outlived its spin window and suspended.
/// §4: NEaT "switches to such slower communication channels as needed
/// automatically, in particular when the load is low" — once a component
/// blocks, waking it is a kernel notification + scheduling event, not a
/// sub-microsecond MWAIT resume (which only applies while spinning).
pub const WAKE_LATENCY: Time = Time(20_000);

/// Cycles the *waker* spends performing the wake-up store (cheap — that is
/// the point of the MWAIT design versus kernel IPIs).
pub const WAKE_REMOTE: Cycles = 60;

/// Latency between a process faulting and its crash monitor receiving the
/// notification (the kernel notices the exception and performs one IPC
/// round to the reincarnation server). Also an engine invariant: this is
/// the minimum horizon of any crash's cross-process effect, which the
/// parallel executor checks against its synchronization window.
pub const CRASH_NOTIFY_LATENCY: Time = Time(50_000);

// ---------------------------------------------------------------------------
// SYSCALL server / slow path (§3.1, §3.2)
// ---------------------------------------------------------------------------

/// Cycles for a full slow-path system call through the SYSCALL server
/// (marshal + context handling), excluding messaging costs, charged to the
/// caller side.
pub const SYSCALL_CLIENT: Cycles = 900;

/// Cycles the SYSCALL server spends servicing one request.
pub const SYSCALL_SERVER: Cycles = 1_400;

// ---------------------------------------------------------------------------
// Network stack processing costs (per packet / per segment)
// ---------------------------------------------------------------------------
// Fitted as documented in the module docs: ≈19k stack cycles per
// request+response round trip, which at the workload's ~4 packets per
// request (request data segment, response data segment, and the amortized
// ACK/connection-management traffic) gives the per-layer costs below.

/// NIC driver: examine one RX descriptor, validate, and hand the frame to
/// the right stack replica's queue — first packet of a batch (includes
/// doorbell read, ring-state reload: cold costs).
pub const DRV_RX_PKT: Cycles = 1_700;

/// NIC driver: RX descriptor processing when the previous packet was
/// handled within [`DRV_BATCH_WINDOW_NS`] (NAPI-style amortization: the
/// ring state is hot and per-batch overheads are already paid).
pub const DRV_RX_PKT_BATCHED: Cycles = 500;

/// NIC driver: fill one TX descriptor from a stack TX request (cold).
pub const DRV_TX_PKT: Cycles = 1_200;

/// TX descriptor cost within a batch.
pub const DRV_TX_PKT_BATCHED: Cycles = 420;

/// Two driver events closer than this belong to one batch.
pub const DRV_BATCH_WINDOW_NS: u64 = 3_000;

/// RX descriptor cost for the second and later frames of an *explicit*
/// frame batch (one vectored ring pass covers the run: descriptors are
/// prefetched and validated in bulk, DPDK/Laminar-style, vs the scalar
/// NAPI walk priced by [`DRV_RX_PKT_BATCHED`]).
pub const DRV_RX_PKT_VECTORED: Cycles = 220;

/// TX descriptor cost within an explicit frame batch (bulk doorbell).
pub const DRV_TX_PKT_VECTORED: Cycles = 180;

/// NIC driver: one polling round over the NIC queues and the per-replica
/// channels (charged when the driver wakes and finds work, and during idle
/// spinning it is what the "Polling" column of Table 2 accounts).
pub const DRV_POLL_ROUND: Cycles = 380;

/// Packet-filter component: match one frame against the rule set.
pub const PF_PKT: Cycles = 300;

/// UDP component: process one datagram (port lookup, checksum).
pub const UDP_PKT: Cycles = 900;

/// IP component: validate + route one IPv4 packet (header parse, checksum,
/// forwarding decision).
pub const IP_RX_PKT: Cycles = 1_100;

/// IP component: emit one IPv4 packet (header build, checksum).
pub const IP_TX_PKT: Cycles = 900;

/// TCP component: process one inbound segment against a connection
/// (demultiplex, state machine, ACK processing, reassembly hook).
pub const TCP_RX_SEG: Cycles = 3_400;

/// TCP component: build and send one outbound segment.
pub const TCP_TX_SEG: Cycles = 2_950;

/// TCP connection establishment work beyond the SYN segments themselves:
/// PCB allocation, connection-hash insert, accept-queue and subsocket
/// bookkeeping, per-connection channel setup (§3.2's "details of the
/// communication, notifications and buffer mappings"). Connection-rate
/// microbenchmarks of 2010-era stacks put connect+close at 40-60 k cycles
/// beyond steady-state segment costs, which Figure 12's connection-churn
/// workload exposes directly.
pub const TCP_OPEN: Cycles = 14_000;

/// TCP teardown: timer teardown, TIME_WAIT insertion, channel unmapping.
pub const TCP_CLOSE: Cycles = 8_000;

/// Socket-layer cost of one socket operation on the stack side (fast-path
/// queue service, fd translation).
pub const SOCK_OP: Cycles = 900;

// ---------------------------------------------------------------------------
// Application costs (lighttpd-like server, httperf-like client)
// ---------------------------------------------------------------------------

/// Web server: parse one HTTP request, locate the in-memory file, build the
/// response headers, and manage connection bookkeeping. Fitted so one
/// application core saturates near 51 krps on the 1.9 GHz AMD
/// (Figure 7's per-instance slope): 1.9e9 / 51e3 ≈ 37 k cycles per request;
/// the socket-layer and copy costs make up the difference.
pub const WEB_REQUEST: Cycles = 37_500;

/// Web server: accept-path work for a new connection.
pub const WEB_ACCEPT: Cycles = 6_000;

/// Load generator: per-request bookkeeping (timestamping, histogram).
pub const CLIENT_REQUEST: Cycles = 1_500;

/// Load generator: per-connection setup bookkeeping.
pub const CLIENT_CONN: Cycles = 2_500;

// ---------------------------------------------------------------------------
// Monolithic (Linux-like) kernel-domain costs
// ---------------------------------------------------------------------------
// The monolith executes the *same* protocol engine, but every packet also
// pays the shared-everything taxes the paper's §2 catalogues: syscall
// boundary crossings, socket-lock acquisition, cache-line bouncing of shared
// PCB/queue state, and scheduler migrations. These are the published
// per-operation magnitudes (e.g. Boyd-Wickizer et al., "An Analysis of Linux
// Scalability to Many Cores") rather than curve fits.

/// Cycles for one syscall boundary crossing (enter + exit, SWAPGS,
/// seccomp/audit hooks of a distro kernel).
pub const MONO_SYSCALL: Cycles = 2_200;

/// Uncontended lock acquire/release pair (ticket spinlock).
pub const MONO_LOCK_UNCONTENDED: Cycles = 180;

/// Penalty per *contending* core on a ticket spinlock: each waiter pulls
/// the lock cache line, and handoff time grows linearly with the number of
/// waiters (the non-scalable-locks collapse of §2.2).
pub const MONO_LOCK_PER_WAITER: Cycles = 420;

/// Cache-line bounce cost: one dirty line transferred between cores
/// (shared socket tables, accept queues, counters, false sharing).
pub const MONO_LINE_BOUNCE: Cycles = 260;

/// Average shared dirty lines touched per packet in the monolithic stack.
pub const MONO_SHARED_LINES_PER_PKT: u32 = 7;

/// Softirq/IRQ dispatch overhead per packet when IRQ affinity is wrong
/// (packet processed on a different core than the socket's).
pub const MONO_IRQ_MISS: Cycles = 2_800;

/// Scheduler migration / wrong-core wakeup penalty per data delivery when
/// the softirq core differs from the server's core: IPI, remote runqueue
/// lock, and the application's L1/L2 working set refilled cold.
pub const MONO_SCHED_MISS: Cycles = 22_000;

/// The deep monolithic RX path beyond protocol processing: netfilter
/// hooks, socket backlog handling, memory accounting, GRO bookkeeping
/// (kernel profiles of the era attribute 2–4 us per packet).
pub const MONO_STACK_RX_OVERHEAD: Cycles = 8_000;

/// The deep TX path: qdisc, neighbour lookup, skb segmentation setup.
pub const MONO_STACK_TX_OVERHEAD: Cycles = 6_000;

/// skb allocation/free and DMA mapping per packet.
pub const MONO_SKB_PER_PKT: Cycles = 2_000;

// ---------------------------------------------------------------------------
// Hardware model
// ---------------------------------------------------------------------------

/// Combined throughput capacity of two SMT hardware threads sharing a core,
/// relative to a single thread running alone (per-thread slowdown factor is
/// 2/SMT_CAPACITY). 1.4 matches the paper's observation that hyper-threads
/// are useful but "a hardware thread is not the same as a fully-fledged
/// core" (§6.4: 2 cores vs 3 is "within the bounds of the benefits of
/// hyper-threading").
pub const SMT_CAPACITY: f64 = 1.40;

/// Link speed of the testbed's Intel 82599 10GbE + DAC cable.
pub const LINK_BPS: u64 = 10_000_000_000;

/// One-way propagation + PHY latency of the direct-attach copper cable.
pub const LINK_LATENCY: Time = Time(800);

/// Per-descriptor DMA/PCIe cost modelled inside the NIC device timeline.
pub const NIC_DESC_NS: u64 = 60;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Freq;

    /// Per-request traffic on the paper's scalability workload (persistent
    /// connections, 100 × 20-byte requests each): ≈1.5 inbound segments
    /// (request + ack share), ≈1.1 outbound segments (response + window
    /// updates), 1/100th of connection open+close.
    fn tcp_cycles_per_request() -> f64 {
        1.5 * TCP_RX_SEG as f64
            + 1.1 * TCP_TX_SEG as f64
            + 2.0 * SOCK_OP as f64
            + (TCP_OPEN + TCP_CLOSE) as f64 / 100.0
    }

    fn ip_cycles_per_request() -> f64 {
        1.5 * IP_RX_PKT as f64 + 1.1 * IP_TX_PKT as f64
    }

    /// Figure 7: a Multi 1x replica's TCP core saturates just above the load
    /// of 4 lighttpd instances (~200 krps at 1.9 GHz).
    #[test]
    fn multi_component_tcp_core_capacity() {
        let krps = 1.9e9 / tcp_cycles_per_request() / 1e3;
        assert!(
            (170.0..=230.0).contains(&krps),
            "TCP core should saturate near 200 krps, got {krps}"
        );
    }

    /// Figure 7: a single-component NEaT replica core sustains 120–170 krps
    /// (NEaT 2x nearly saturates at 6 lighttpd instances; NEaT 3x does not).
    #[test]
    fn single_component_replica_capacity() {
        let per_req = tcp_cycles_per_request() + ip_cycles_per_request();
        let krps = 1.9e9 / per_req / 1e3;
        assert!(
            (120.0..=170.0).contains(&krps),
            "single-component replica should sustain 120-170 krps, got {krps}"
        );
    }

    #[test]
    fn web_server_budget_matches_per_instance_slope() {
        let per_req = WEB_REQUEST + 2 * SOCK_OP + copy_cost(160);
        let f = Freq::ghz(1.9);
        let krps = 1e9 / f.cycles_to_time(per_req).as_nanos() as f64 / 1e3;
        assert!(
            krps > 45.0 && krps < 62.0,
            "one lighttpd core should saturate at 45-62 krps, got {krps}"
        );
    }

    #[test]
    fn copy_cost_scales() {
        assert_eq!(copy_cost(0), 0);
        assert_eq!(copy_cost(4), 1);
        assert_eq!(copy_cost(5), 2);
        assert!(copy_cost(1500) >= 375);
    }
}
