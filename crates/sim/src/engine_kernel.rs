//! The dispatch core of the discrete-event engine (a child module of
//! `engine` — split out so each engine source file stays within the CI
//! module-size guard while keeping private-item access).
//!
//! [`Kernel`] is the borrowed view a dispatch step operates on: the
//! domains it may touch, the topology, and the shard outboxes. Both the
//! serial `Sim::run_until` loop and the parallel shard workers drive
//! the same `Kernel` code, which is what makes their histories
//! bit-identical.

use super::*;

impl<'a, M: 'static> Kernel<'a, M> {
    fn pos(&self, dom: u32) -> Option<usize> {
        match self.map {
            DomMap::Identity => Some(dom as usize),
            DomMap::Partial(map) => map[dom as usize],
        }
    }

    /// Schedule a Deliver event originated by `origin` into `dom`'s heap,
    /// or across the shard boundary via the outbox.
    fn route(&mut self, dom: u32, time: Time, origin: Origin, dst: ProcId, ev: Event<M>) {
        match self.pos(dom) {
            Some(p) => self.domains[p].heap.push(HeapEv {
                time,
                origin,
                kind: HeapKind::Deliver { dst, ev },
            }),
            None => {
                let (shard_of, outbox) = self
                    .outbox
                    .as_mut()
                    .expect("non-local domain without an outbox");
                outbox[shard_of[dom as usize] as usize].push(Handoff {
                    time,
                    origin,
                    dst,
                    ev,
                });
            }
        }
    }

    /// Dispatch one event popped from the heap of the domain at `di`.
    pub(crate) fn dispatch(&mut self, di: usize, ev: HeapEv<M>) {
        let HeapEv { time, kind, .. } = ev;
        match kind {
            HeapKind::Deliver { dst, ev } => {
                let d = &mut self.domains[di];
                let Some(slot) = d.procs.get(&dst) else {
                    return;
                };
                if !slot.alive {
                    return;
                }
                let tid = slot.thread;
                let lt = self.topo.loc(tid).idx as usize;
                // FIFO server: if the thread is (or will be) busy, or has
                // queued work, append; a resume marker fires at the end of
                // the current work.
                let busy_until = d.threads[lt].busy_until;
                if busy_until > time || !d.pending[lt].is_empty() {
                    d.pending[lt].push_back((dst, ev));
                    // Queue-depth high-water mark (per-thread backlog; a
                    // compare+store, cheap enough to keep always-on).
                    let depth = d.pending[lt].len() as u64;
                    let st = &mut d.threads[lt].stats;
                    st.max_queue = st.max_queue.max(depth);
                    if !d.resume_scheduled[lt] {
                        d.resume_scheduled[lt] = true;
                        let at = busy_until.max(time);
                        let origin = d.next_origin();
                        d.heap.push(HeapEv {
                            time: at,
                            origin,
                            kind: HeapKind::ThreadResume(lt as u32),
                        });
                    }
                } else {
                    self.execute(di, lt, dst, ev, time);
                }
            }
            HeapKind::FlushBatch { src, dst, epoch } => {
                // Stale unless the batch is still open under this epoch.
                let d = &mut self.domains[di];
                let live = d
                    .batches
                    .get(&(src, dst))
                    .map(|b| b.epoch == epoch)
                    .unwrap_or(false);
                if live {
                    let b = d.batches.remove(&(src, dst)).unwrap();
                    d.batch_stats.flush_timer += 1;
                    // The horizon IS the delivery instant (`time ==
                    // flush_at >= ready_at`), like interrupt moderation.
                    self.deliver_batch(di, src, dst, b.msgs, time);
                }
            }
            HeapKind::ThreadResume(lt) => {
                let lt = lt as usize;
                self.domains[di].resume_scheduled[lt] = false;
                // Pop queued work until we find a live destination.
                while let Some((dst, ev)) = self.domains[di].pending[lt].pop_front() {
                    let alive = self.domains[di]
                        .procs
                        .get(&dst)
                        .map(|s| s.alive)
                        .unwrap_or(false);
                    if !alive {
                        continue; // messages to dead processes vanish
                    }
                    self.execute(di, lt, dst, ev, time);
                    break;
                }
                // More work queued: chain the next marker.
                let d = &mut self.domains[di];
                if !d.pending[lt].is_empty() && !d.resume_scheduled[lt] {
                    d.resume_scheduled[lt] = true;
                    let at = d.threads[lt].busy_until.max(time);
                    let origin = d.next_origin();
                    d.heap.push(HeapEv {
                        time: at,
                        origin,
                        kind: HeapKind::ThreadResume(lt as u32),
                    });
                }
            }
        }
    }

    /// Deliver a closed batch at `at` (>= the current dispatch instant).
    /// Single-message batches degrade to a plain `Message` so receivers
    /// and traces can't tell a lone coalesced message from an unbatched
    /// one. Batched links are machine-local, so delivery is a local push.
    fn deliver_batch(&mut self, di: usize, src: ProcId, dst: ProcId, msgs: Vec<M>, at: Time) {
        let d = &mut self.domains[di];
        if msgs.len() == 1 {
            let msg = msgs.into_iter().next().unwrap();
            d.push(at, dst, Event::Message { from: src, msg });
        } else {
            d.batch_stats.batched_msgs += msgs.len() as u64;
            d.batch_stats.batch_deliveries += 1;
            d.push(at, dst, Event::Batch { from: src, msgs });
        }
    }

    /// Route one `send()` through the per-link coalescer. `at` is the
    /// message's natural delivery instant (sender completion + channel
    /// latency); the batch may delay it up to the `batch_ns` horizon.
    /// `now` is the current dispatch instant (deliveries never precede it).
    fn enqueue_batched(
        &mut self,
        di: usize,
        src: ProcId,
        dst: ProcId,
        msg: M,
        at: Time,
        now: Time,
    ) {
        let key = (src, dst);
        let batch_max = self.batch_max;
        let d = &mut self.domains[di];
        match d.batches.get_mut(&key) {
            Some(b) if at <= b.flush_at => {
                b.msgs.push(msg);
                b.ready_at = b.ready_at.max(at);
                if b.msgs.len() >= batch_max {
                    // Depth flush: deliver now-complete batch at its
                    // ready time; the scheduled FlushBatch goes stale.
                    let b = d.batches.remove(&key).unwrap();
                    d.batch_stats.flush_depth += 1;
                    let at = b.ready_at.max(now);
                    self.deliver_batch(di, src, dst, b.msgs, at);
                }
            }
            Some(_) => {
                // The new message lands past the horizon: close the old
                // batch (its flush event goes stale) and open a new one.
                let old = d.batches.remove(&key).unwrap();
                d.batch_stats.flush_close += 1;
                let old_at = old.ready_at.max(now);
                self.deliver_batch(di, src, dst, old.msgs, old_at);
                self.open_batch(di, key, msg, at);
            }
            None => self.open_batch(di, key, msg, at),
        }
    }

    fn open_batch(&mut self, di: usize, key: (ProcId, ProcId), msg: M, at: Time) {
        let d = &mut self.domains[di];
        d.batch_epoch += 1;
        let epoch = d.batch_epoch;
        let flush_at = at + self.batch_ns;
        d.batches.insert(
            key,
            LinkBatch {
                msgs: vec![msg],
                flush_at,
                ready_at: at,
                epoch,
            },
        );
        let origin = d.next_origin();
        d.heap.push(HeapEv {
            time: flush_at,
            origin,
            kind: HeapKind::FlushBatch {
                src: key.0,
                dst: key.1,
                epoch,
            },
        });
    }

    /// Run one handler on a free local thread at `time`
    /// (>= thread.busy_until).
    fn execute(&mut self, di: usize, lt: usize, dst: ProcId, ev: Event<M>, time: Time) {
        let d = &mut self.domains[di];
        // Tracing hook: name the span before the event is consumed. Guarded
        // so the disabled path pays one bool read, no format.
        let span_name = if self.tracing {
            let pname = d.procs.get(&dst).map(|s| s.name.as_str()).unwrap_or("?");
            Some(format!("{pname} [{}]", ev.label()))
        } else {
            None
        };
        let mut proc = match d.procs.get_mut(&dst) {
            Some(slot) if slot.alive => match slot.proc.take() {
                Some(p) => p,
                None => return,
            },
            _ => return,
        };

        // --- CPU-time accounting: wake the thread, find the start instant.
        let start = {
            let th = &mut d.threads[lt];
            let woken = th.wake_for(time);
            woken.max(th.busy_until)
        };
        let kind = d.threads[lt].kind;
        let freq = d.threads[lt].freq;
        // SMT contention: slowdown scales with the sibling thread's recent
        // utilization — two saturated siblings each run at SMT_CAPACITY/2
        // of a dedicated core's speed. Siblings share a core, so the
        // lookup is domain-local by construction.
        let smt_slow = match d.threads[lt].sibling {
            Some(sib) if kind == ThreadKind::Cpu => {
                let sl = self.topo.loc(sib).idx as usize;
                let s = &d.threads[sl];
                let u = if s.busy_until > start || !d.pending[sl].is_empty() {
                    1.0
                } else {
                    s.recent_util(start)
                };
                1.0 + (2.0 / calibration::SMT_CAPACITY - 1.0) * u
            }
            _ => 1.0,
        };

        let mut ctx = Ctx {
            dom: d,
            topo: self.topo,
            batching: self.batch_ns.as_nanos() > 0,
            sender_kind: kind,
            self_id: dst,
            start,
            charged: proc.dispatch_cost(),
            charged_ns: 0,
            outputs: Vec::new(),
            die: None,
            woken_threads: Vec::new(),
            last_send_dst: None,
        };
        match ev {
            Event::Batch { from, msgs } => proc.on_batch(&mut ctx, from, msgs),
            ev => proc.on_event(&mut ctx, ev),
        }
        let Ctx {
            charged,
            charged_ns,
            outputs,
            die,
            ..
        } = ctx;

        // --- Completion time.
        let work = match kind {
            ThreadKind::Cpu => {
                let base = freq.cycles_to_time(charged);
                Time((base.as_nanos() as f64 * smt_slow) as u64 + charged_ns)
            }
            ThreadKind::Device => Time(charged_ns + freq.cycles_to_time(charged).as_nanos()),
        };
        let end = start + work;
        let d = &mut self.domains[di];
        {
            let th = &mut d.threads[lt];
            th.stats.smt_slow_sum += smt_slow;
            th.record_busy(start, end);
        }
        if let Some(name) = span_name {
            neat_obs::trace::complete(
                d.thread_ids[lt].0 as u64,
                name,
                "dispatch",
                start.as_nanos(),
                end.as_nanos(),
            );
        }

        // --- Apply outputs at completion time.
        let src_dom = d.dom;
        for out in outputs {
            match out {
                Output::Send {
                    dst: to,
                    msg,
                    extra_delay,
                } => {
                    let at = end + calibration::CHANNEL_LATENCY + extra_delay;
                    let to_dom = domain_of_pid(to);
                    if to_dom == src_dom {
                        // Only latency-free local sends coalesce; anything
                        // with explicit wire/propagation delay keeps its
                        // own event.
                        if self.batch_ns.as_nanos() > 0 && extra_delay.as_nanos() == 0 {
                            self.enqueue_batched(di, dst, to, msg, at, time);
                        } else {
                            let origin = self.domains[di].next_origin();
                            self.route(to_dom, at, origin, to, Event::Message { from: dst, msg });
                        }
                    } else {
                        // Cross-machine: the topology promised at least
                        // `link_latency` of wire delay — the conservative
                        // lookahead the parallel executor relies on.
                        assert!(
                            extra_delay >= self.link_latency,
                            "cross-machine send {dst:?}->{to:?} carries {}ns extra delay, \
                             below the declared link latency of {}ns",
                            extra_delay.as_nanos(),
                            self.link_latency.as_nanos()
                        );
                        let origin = self.domains[di].next_origin();
                        self.route(to_dom, at, origin, to, Event::Message { from: dst, msg });
                    }
                }
                Output::Timer { delay, token } => {
                    self.domains[di].push(end + delay, dst, Event::Timer { token });
                }
                Output::Spawn {
                    pid,
                    thread,
                    proc,
                    delay,
                } => {
                    // Ctx::spawn asserted thread is on this machine.
                    let d = &mut self.domains[di];
                    let name = proc.name();
                    d.spawns += 1;
                    d.procs.insert(
                        pid,
                        ProcSlot {
                            proc: Some(proc),
                            thread,
                            name,
                            alive: true,
                        },
                    );
                    d.push(end + delay, pid, Event::Start);
                }
                Output::Kill { pid, crash } => {
                    let mode = if crash { DieMode::Crash } else { DieMode::Exit };
                    self.reap(pid, mode, end);
                }
            }
        }

        // --- Self-termination or put the process back.
        match die {
            Some(mode) => {
                // Put the (now doomed) process back so reap can drop it.
                if let Some(slot) = self.domains[di].procs.get_mut(&dst) {
                    slot.proc = Some(proc);
                }
                self.reap(dst, mode, end);
            }
            None => {
                if let Some(slot) = self.domains[di].procs.get_mut(&dst) {
                    slot.proc = Some(proc);
                }
            }
        }
    }

    fn reap(&mut self, pid: ProcId, mode: DieMode, at: Time) {
        let dom = domain_of_pid(pid);
        let Some(p) = self.pos(dom) else {
            panic!(
                "kill of {pid:?} crosses a shard boundary; process management \
                 is machine-local under run_sharded"
            );
        };
        let d = &mut self.domains[p];
        let (name, thread) = match d.procs.get_mut(&pid) {
            Some(slot) if slot.alive => {
                slot.alive = false;
                slot.proc = None; // all state dropped — stateless recovery
                (slot.name.clone(), slot.thread)
            }
            _ => return,
        };
        match mode {
            DieMode::Crash => d.crashes += 1,
            DieMode::Exit => d.exits += 1,
        }
        if self.tracing {
            let what = match mode {
                DieMode::Crash => "crash",
                DieMode::Exit => "exit",
            };
            neat_obs::trace::instant(
                thread.0 as u64,
                format!("{what}: {name}"),
                "lifecycle",
                at.as_nanos(),
            );
        }
        if mode == DieMode::Crash {
            if let Some((monitor, hook)) = self.crash_monitor {
                let msg = hook(pid, &name);
                let monitor = *monitor;
                // Crash detection latency: the kernel notices the fault and
                // notifies the monitor (one exception + IPC round).
                let origin = self.domains[p].next_origin();
                self.route(
                    domain_of_pid(monitor),
                    at + calibration::CRASH_NOTIFY_LATENCY,
                    origin,
                    monitor,
                    Event::Message {
                        from: ProcId(0),
                        msg,
                    },
                );
            }
        }
    }
}
