//! Tests for the discrete-event engine (out-of-line so `engine.rs`
//! stays within the CI module-size guard; `#[path]` inclusion keeps
//! private-item access).

use super::*;

#[derive(Debug)]
enum TMsg {
    Ping(u32),
    Pong(u32),
    Die,
}

struct Echo {
    got: Vec<u32>,
}
impl Process<TMsg> for Echo {
    fn name(&self) -> String {
        "echo".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
        if let Event::Message { from, msg } = ev {
            match msg {
                TMsg::Ping(n) => {
                    self.got.push(n);
                    ctx.charge(1000);
                    ctx.send(from, TMsg::Pong(n));
                }
                TMsg::Die => ctx.crash_self(),
                TMsg::Pong(_) => {}
            }
        }
    }
}

struct Collector {
    pongs: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
    peer: Option<ProcId>,
    to_send: u32,
}
impl Process<TMsg> for Collector {
    fn name(&self) -> String {
        "collector".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
        match ev {
            Event::Start => {
                if let Some(p) = self.peer {
                    for i in 0..self.to_send {
                        ctx.send(p, TMsg::Ping(i));
                    }
                }
            }
            Event::Message {
                msg: TMsg::Pong(n), ..
            } => self.pongs.borrow_mut().push(n),
            _ => {}
        }
    }
}

fn two_proc_sim() -> (
    Sim<TMsg>,
    ProcId,
    ProcId,
    std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
) {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.add_machine(MachineSpec::amd_opteron_6168());
    let t0 = sim.hw_thread(m, 0, 0);
    let t1 = sim.hw_thread(m, 1, 0);
    let echo = sim.spawn(t0, Box::new(Echo { got: vec![] }));
    let pongs = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let coll = sim.spawn(
        t1,
        Box::new(Collector {
            pongs: pongs.clone(),
            peer: Some(echo),
            to_send: 5,
        }),
    );
    (sim, echo, coll, pongs)
}

#[test]
fn messages_round_trip_in_order() {
    let (mut sim, _, _, pongs) = two_proc_sim();
    sim.run_until(Time::from_millis(10));
    assert_eq!(*pongs.borrow(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn charged_cycles_advance_busy_time() {
    let (mut sim, echo, _, _) = two_proc_sim();
    sim.run_until(Time::from_millis(10));
    let tid = sim.proc_thread(echo).unwrap();
    let st = sim.thread_stats(tid);
    assert_eq!(st.events, 6, "start + 5 pings");
    // 5 pings x >=1000 cycles at 1.9GHz -> >= 2631ns busy
    assert!(st.busy_ns >= 2_500, "busy {}ns", st.busy_ns);
}

#[test]
fn crash_drops_state_and_messages() {
    let (mut sim, echo, coll, pongs) = two_proc_sim();
    sim.run_until(Time::from_millis(1));
    assert!(sim.is_alive(echo));
    sim.send_external(echo, TMsg::Die);
    sim.run_until(Time::from_millis(2));
    assert!(!sim.is_alive(echo));
    let before = pongs.borrow().len();
    // Messages to the dead process vanish; collector gets nothing new.
    sim.send_external(echo, TMsg::Ping(99));
    sim.run_until(Time::from_millis(5));
    assert_eq!(pongs.borrow().len(), before);
    assert!(sim.is_alive(coll));
}

#[test]
fn crash_monitor_is_notified() {
    let (mut sim, echo, coll, pongs) = two_proc_sim();
    // Reuse collector as the "monitor": crashes arrive as Pong(4242).
    sim.set_crash_monitor(coll, |_pid, _| TMsg::Pong(4242));
    sim.run_until(Time::from_millis(1));
    sim.send_external(echo, TMsg::Die);
    sim.run_until(Time::from_millis(2));
    assert!(pongs.borrow().contains(&4242));
}

#[test]
fn determinism_same_seed_same_history() {
    let run = || {
        let (mut sim, _, _, pongs) = two_proc_sim();
        sim.run_until(Time::from_millis(10));
        let got = pongs.borrow().clone();
        (sim.now(), sim.events_dispatched(), got)
    };
    assert_eq!(run(), run());
}

#[test]
fn spawn_from_ctx_starts_later() {
    struct Spawner {
        thread: Option<HwThreadId>,
    }
    impl Process<TMsg> for Spawner {
        fn name(&self) -> String {
            "spawner".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
            if let Event::Start = ev {
                let t = self.thread.unwrap();
                ctx.spawn(t, Box::new(Echo { got: vec![] }), Time::from_millis(3));
            }
        }
    }
    let mut sim: Sim<TMsg> = Sim::new(SimConfig::default());
    let m = sim.add_machine(MachineSpec::amd_opteron_6168());
    let t0 = sim.hw_thread(m, 0, 0);
    let t1 = sim.hw_thread(m, 1, 0);
    sim.spawn(t0, Box::new(Spawner { thread: Some(t1) }));
    sim.run_until(Time::from_millis(1));
    // Child not yet started (delay 3ms) — but it exists as alive.
    sim.run_until(Time::from_millis(10));
    let st = sim.thread_stats(t1);
    assert_eq!(st.events, 1, "child's Start dispatched after the delay");
}

#[test]
fn batching_coalesces_per_link_and_preserves_order() {
    // A burst of sends inside one handler must arrive as one Batch
    // wakeup, in send order, when coalescing is on.
    struct Sink {
        got: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
        wakeups: std::rc::Rc<std::cell::RefCell<u64>>,
    }
    impl Process<TMsg> for Sink {
        fn name(&self) -> String {
            "sink".into()
        }
        fn on_event(&mut self, _ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
            if let Event::Message {
                msg: TMsg::Ping(n), ..
            } = ev
            {
                *self.wakeups.borrow_mut() += 1;
                self.got.borrow_mut().push(n);
            }
        }
        fn on_batch(&mut self, ctx: &mut Ctx<'_, TMsg>, from: ProcId, msgs: Vec<TMsg>) {
            *self.wakeups.borrow_mut() += 1;
            for msg in msgs {
                if let TMsg::Ping(n) = msg {
                    self.got.borrow_mut().push(n);
                }
                let _ = (from, &ctx);
            }
        }
    }
    let mut sim: Sim<TMsg> = Sim::new(SimConfig {
        batch_ns: 2_000,
        ..SimConfig::default()
    });
    let m = sim.add_machine(MachineSpec::amd_opteron_6168());
    let t0 = sim.hw_thread(m, 0, 0);
    let t1 = sim.hw_thread(m, 1, 0);
    let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let wakeups = std::rc::Rc::new(std::cell::RefCell::new(0u64));
    let sink = sim.spawn(
        t0,
        Box::new(Sink {
            got: got.clone(),
            wakeups: wakeups.clone(),
        }),
    );
    let pongs = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    sim.spawn(
        t1,
        Box::new(Collector {
            pongs: pongs.clone(),
            peer: Some(sink),
            to_send: 8,
        }),
    );
    sim.run_until(Time::from_millis(10));
    assert_eq!(*got.borrow(), (0..8).collect::<Vec<u32>>(), "FIFO order");
    assert_eq!(*wakeups.borrow(), 1, "one wakeup for the whole burst");
    let bs = sim.batch_stats();
    assert_eq!(bs.batch_deliveries, 1);
    assert_eq!(bs.batched_msgs, 8);
    assert_eq!(bs.flush_timer, 1, "horizon flush delivered it");
}

#[test]
fn batch_max_flushes_early() {
    // A silent consumer, so only the ping direction produces batches.
    struct Quiet {
        got: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
    }
    impl Process<TMsg> for Quiet {
        fn name(&self) -> String {
            "quiet".into()
        }
        fn on_event(&mut self, _ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
            if let Event::Message {
                msg: TMsg::Ping(n), ..
            } = ev
            {
                self.got.borrow_mut().push(n);
            }
        }
    }
    let mut sim: Sim<TMsg> = Sim::new(SimConfig {
        batch_ns: 1_000_000, // horizon far away: only depth can flush early
        batch_max: 4,
        ..SimConfig::default()
    });
    let m = sim.add_machine(MachineSpec::amd_opteron_6168());
    let t0 = sim.hw_thread(m, 0, 0);
    let t1 = sim.hw_thread(m, 1, 0);
    let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let quiet = sim.spawn(t0, Box::new(Quiet { got: got.clone() }));
    let pongs = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    sim.spawn(
        t1,
        Box::new(Collector {
            pongs: pongs.clone(),
            peer: Some(quiet),
            to_send: 9,
        }),
    );
    sim.run_until(Time::from_millis(20));
    let bs = sim.batch_stats();
    assert_eq!(bs.flush_depth, 2, "9 msgs at depth 4: two early flushes");
    assert_eq!(bs.flush_timer, 1, "the trailing message rides the horizon");
    assert_eq!(*got.borrow(), (0..9).collect::<Vec<u32>>());
}

#[test]
fn batched_and_unbatched_histories_match() {
    // The coalescer may merge wakeups and shift delivery instants, but
    // the application-visible stream (payloads, per-link order) must
    // be identical with batching on and off.
    let run = |batch_ns: u64| {
        let mut sim: Sim<TMsg> = Sim::new(SimConfig {
            batch_ns,
            ..SimConfig::default()
        });
        let m = sim.add_machine(MachineSpec::amd_opteron_6168());
        let t0 = sim.hw_thread(m, 0, 0);
        let t1 = sim.hw_thread(m, 1, 0);
        let echo = sim.spawn(t0, Box::new(Echo { got: vec![] }));
        let pongs = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        sim.spawn(
            t1,
            Box::new(Collector {
                pongs: pongs.clone(),
                peer: Some(echo),
                to_send: 32,
            }),
        );
        sim.run_until(Time::from_millis(50));
        let out = pongs.borrow().clone();
        out
    };
    assert_eq!(run(0), run(2_000));
}

#[test]
fn smt_sibling_slows_execution() {
    struct Burn;
    impl Process<TMsg> for Burn {
        fn name(&self) -> String {
            "burn".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
            if let Event::Message { .. } = ev {
                ctx.charge(1_000_000);
            }
        }
    }
    // Run a stream of work alone vs. with a busy SMT sibling: in steady
    // state each thread of a busy pair runs 2/SMT_CAPACITY slower.
    let solo_busy = {
        let mut sim: Sim<TMsg> = Sim::new(SimConfig::default());
        let m = sim.add_machine(MachineSpec::xeon_e5520_dual());
        let t0 = sim.hw_thread(m, 0, 0);
        let p = sim.spawn(t0, Box::new(Burn));
        sim.run_until(Time::from_micros(1));
        sim.reset_all_stats();
        for _ in 0..20 {
            sim.send_external(p, TMsg::Ping(0));
        }
        sim.run_until(Time::from_millis(100));
        sim.thread_stats(t0).busy_ns
    };
    let paired_busy = {
        let mut sim: Sim<TMsg> = Sim::new(SimConfig::default());
        let m = sim.add_machine(MachineSpec::xeon_e5520_dual());
        let t0 = sim.hw_thread(m, 0, 0);
        let t1 = sim.hw_thread(m, 0, 1);
        let a = sim.spawn(t0, Box::new(Burn));
        let b = sim.spawn(t1, Box::new(Burn));
        sim.run_until(Time::from_micros(1));
        sim.reset_all_stats();
        for _ in 0..20 {
            sim.send_external(a, TMsg::Ping(0));
            sim.send_external(b, TMsg::Ping(0));
        }
        sim.run_until(Time::from_millis(100));
        sim.thread_stats(t0).busy_ns
    };
    assert!(
        paired_busy as f64 > solo_busy as f64 * 1.3,
        "SMT contention should slow the thread: solo={solo_busy} paired={paired_busy}"
    );
}
