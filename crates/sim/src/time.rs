//! Simulated time and CPU-cycle accounting.
//!
//! The simulation clock is a monotonically increasing count of nanoseconds.
//! Process work is expressed in CPU cycles and converted to wall time with
//! the frequency of the hardware thread executing it, so the same component
//! runs proportionally faster on the 2.26 GHz Xeon than on the 1.9 GHz AMD —
//! exactly as in the paper's two testbeds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// CPU cycles of work charged by a process handler.
pub type Cycles = u64;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);

    /// Largest representable instant; used as "never".
    pub const MAX: Time = Time(u64::MAX);

    pub fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    pub fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    pub fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    pub fn from_secs_f64(s: f64) -> Time {
        Time((s * 1e9) as u64)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant (saturating).
    pub fn since(self, earlier: Time) -> Time {
        Time(self.0.saturating_sub(earlier.0))
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A CPU clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Freq {
    /// Frequency in kHz (1.9 GHz == 1_900_000).
    pub khz: u64,
}

impl Freq {
    pub fn ghz(g: f64) -> Freq {
        Freq {
            khz: (g * 1e6) as u64,
        }
    }

    pub fn mhz(m: u64) -> Freq {
        Freq { khz: m * 1_000 }
    }

    /// Convert a cycle count to wall-clock nanoseconds at this frequency,
    /// rounding up so nonzero work always consumes nonzero time.
    pub fn cycles_to_time(self, cycles: Cycles) -> Time {
        if cycles == 0 {
            return Time::ZERO;
        }
        // ns = cycles / (khz * 1e3 / 1e9) = cycles * 1e6 / khz
        let ns = (cycles as u128 * 1_000_000).div_ceil(self.khz as u128);
        Time(ns as u64)
    }

    /// Convert a wall-clock duration to cycles at this frequency (floor).
    pub fn time_to_cycles(self, t: Time) -> Cycles {
        (t.0 as u128 * self.khz as u128 / 1_000_000) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_units_compose() {
        assert_eq!(Time::from_secs(2), Time::from_millis(2_000));
        assert_eq!(Time::from_millis(3), Time::from_micros(3_000));
        assert_eq!(Time::from_micros(5), Time::from_nanos(5_000));
    }

    #[test]
    fn time_arith() {
        let a = Time::from_micros(10);
        let b = Time::from_micros(4);
        assert_eq!((a + b).as_nanos(), 14_000);
        assert_eq!((a - b).as_nanos(), 6_000);
        // subtraction saturates rather than wrapping
        assert_eq!((b - a).as_nanos(), 0);
        assert_eq!(b.since(a), Time::ZERO);
        assert_eq!(a.since(b).as_nanos(), 6_000);
    }

    #[test]
    fn freq_cycle_conversion_roundtrip() {
        let f = Freq::ghz(1.9);
        // 1.9e9 cycles == 1 second
        assert_eq!(f.cycles_to_time(1_900_000_000), Time::from_secs(1));
        let f2 = Freq::ghz(2.26);
        let t = f2.cycles_to_time(2_260_000);
        assert_eq!(t, Time::from_millis(1));
        assert_eq!(f2.time_to_cycles(t), 2_260_000);
    }

    #[test]
    fn nonzero_cycles_take_nonzero_time() {
        let f = Freq::ghz(3.0);
        assert!(f.cycles_to_time(1) > Time::ZERO);
        assert_eq!(f.cycles_to_time(0), Time::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Time::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Time::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Time::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Time::from_secs(12)), "12.000s");
    }
}
