//! Simulated machines: cores, SMT hardware threads, and their activity
//! accounting.
//!
//! A [`Machine`] is a set of physical cores, each carrying one or more
//! hardware threads (the Xeon E5520 testbed has 2 per core). Every simulated
//! process is pinned to exactly one hardware thread — the NewtOS model the
//! paper builds on, where "the individual OS processes are assigned dedicated
//! cores, allowing fast communication between OS components without
//! intervention of the microkernel" (§3.1).
//!
//! Each hardware thread is modelled as a FIFO work-conserving server with an
//! MWAIT-style idle model: after draining its queues it spin-polls for a
//! calibrated window, then suspends; the next event pays kernel resume cost
//! and wake latency. Activity is accounted into *processing*, *polling*, and
//! *kernel* time — the three columns of the paper's Table 2.

use crate::calibration;
use crate::time::{Freq, Time};
use neat_util::{Json, ToJson};

/// Identifies a machine within a [`crate::Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineId(pub usize);

/// Identifies a hardware thread globally (across machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HwThreadId(pub usize);

/// Static description of a machine, mirroring the paper's two testbeds.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    pub name: String,
    pub cores: u32,
    pub threads_per_core: u32,
    pub freq: Freq,
}

impl MachineSpec {
    /// The paper's 12-core AMD Opteron 6168 @ 1.9 GHz (no SMT).
    pub fn amd_opteron_6168() -> MachineSpec {
        MachineSpec {
            name: "amd-opteron-6168".into(),
            cores: 12,
            threads_per_core: 1,
            freq: Freq::ghz(1.9),
        }
    }

    /// The paper's dual-socket quad-core Intel Xeon E5520 @ 2.26 GHz with
    /// hyper-threading: 8 cores / 16 hardware threads.
    pub fn xeon_e5520_dual() -> MachineSpec {
        MachineSpec {
            name: "xeon-e5520x2".into(),
            cores: 8,
            threads_per_core: 2,
            freq: Freq::ghz(2.26),
        }
    }

    /// A generous client machine for driving load (never the bottleneck,
    /// like the paper's alternating load-generator role).
    pub fn load_generator() -> MachineSpec {
        MachineSpec {
            name: "loadgen".into(),
            cores: 16,
            threads_per_core: 1,
            freq: Freq::ghz(3.0),
        }
    }
}

/// What kind of execution timeline a hardware thread models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadKind {
    /// A CPU hardware thread: work charged in cycles, MWAIT idle model,
    /// SMT interaction with its sibling.
    Cpu,
    /// A device engine (e.g. the NIC's DMA/serialization pipeline): work
    /// charged in nanoseconds directly, never sleeps, no SMT.
    Device,
}

/// Cumulative activity of one hardware thread (Table 2's columns).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadStats {
    /// Time spent executing process handlers ("useful processing").
    pub busy_ns: u64,
    /// Time spent spin-polling queues while idle.
    pub poll_ns: u64,
    /// Time spent in the kernel suspending/resuming (privileged MWAIT).
    pub kernel_ns: u64,
    /// Number of suspend transitions (sleeps).
    pub sleeps: u64,
    /// Number of events handled.
    pub events: u64,
    /// Sum of SMT slowdown factors applied (diagnostics: avg = /events).
    pub smt_slow_sum: f64,
    /// High-water mark of the thread's FIFO backlog (queue depth).
    pub max_queue: u64,
}

impl ThreadStats {
    /// Total non-idle time.
    pub fn active_ns(&self) -> u64 {
        self.busy_ns + self.poll_ns + self.kernel_ns
    }

    /// CPU load over an elapsed window: fraction of time not idle.
    pub fn load(&self, elapsed: Time) -> f64 {
        if elapsed.as_nanos() == 0 {
            return 0.0;
        }
        (self.active_ns() as f64 / elapsed.as_nanos() as f64).min(1.0)
    }

    /// Fraction of *active* time spent in the kernel (Table 2 col 2).
    pub fn kernel_share(&self) -> f64 {
        let a = self.active_ns();
        if a == 0 {
            0.0
        } else {
            self.kernel_ns as f64 / a as f64
        }
    }

    /// Fraction of *active* time spent polling (Table 2 col 3).
    pub fn poll_share(&self) -> f64 {
        let a = self.active_ns();
        if a == 0 {
            0.0
        } else {
            self.poll_ns as f64 / a as f64
        }
    }
}

impl ToJson for ThreadStats {
    fn to_json(&self) -> Json {
        Json::object()
            .field("busy_ns", self.busy_ns)
            .field("poll_ns", self.poll_ns)
            .field("kernel_ns", self.kernel_ns)
            .field("sleeps", self.sleeps)
            .field("events", self.events)
            .field("smt_slow_sum", self.smt_slow_sum)
            .field("max_queue", self.max_queue)
    }
}

/// Mutable state of one hardware thread.
#[derive(Debug)]
pub struct HwThread {
    pub machine: MachineId,
    pub core: u32,
    pub thread: u32,
    pub kind: ThreadKind,
    pub freq: Freq,
    /// Index of the sibling hardware thread on the same core, if any.
    pub sibling: Option<HwThreadId>,
    /// The thread is executing work until this instant.
    pub busy_until: Time,
    /// Statistics since the last reset.
    pub stats: ThreadStats,
    /// Instant of the last stats reset (for load computation).
    pub stats_since: Time,
    /// Exponentially-weighted recent utilization (SMT contention input).
    pub util_ewma: f64,
    /// Instant `util_ewma` was last updated (end of last busy period).
    pub util_at: Time,
}

impl HwThread {
    /// Account for the idle gap between the end of the previous work and the
    /// arrival of an event at `arrival`, returning the instant execution can
    /// begin (after any wake-up) — the MWAIT model of §4.
    ///
    /// Devices never sleep: they begin immediately.
    pub fn wake_for(&mut self, arrival: Time) -> Time {
        let idle_from = self.busy_until;
        if arrival <= idle_from {
            // Back-to-back work: the thread is still busy; the caller will
            // start this event at `busy_until`.
            return idle_from;
        }
        if self.kind == ThreadKind::Device {
            return arrival;
        }
        let spin_end = idle_from + calibration::SPIN_POLL_WINDOW;
        if arrival <= spin_end {
            // Caught while spin-polling: the gap was all polling.
            self.stats.poll_ns += arrival.since(idle_from).as_nanos();
            arrival
        } else {
            // Spun for the whole window, then suspended. Waking costs kernel
            // time and latency.
            self.stats.poll_ns += calibration::SPIN_POLL_WINDOW.as_nanos();
            self.stats.sleeps += 1;
            let suspend = self.freq.cycles_to_time(calibration::KERNEL_SUSPEND);
            let resume = self.freq.cycles_to_time(calibration::KERNEL_RESUME);
            self.stats.kernel_ns += suspend.as_nanos() + resume.as_nanos();
            arrival + calibration::WAKE_LATENCY + resume
        }
    }

    /// Record that the thread executed a handler in `[start, end)`,
    /// updating the utilization EWMA (time constant ~100 us): idle gaps
    /// decay it toward 0, busy periods push it toward 1.
    pub fn record_busy(&mut self, start: Time, end: Time) {
        self.stats.busy_ns += end.since(start).as_nanos();
        self.stats.events += 1;
        self.busy_until = end;
        const TAU_NS: f64 = 300_000.0;
        let idle = start.since(self.util_at).as_nanos() as f64;
        self.util_ewma *= (-idle / TAU_NS).exp();
        let busy = end.since(start).as_nanos() as f64;
        self.util_ewma = 1.0 - (1.0 - self.util_ewma) * (-busy / TAU_NS).exp();
        self.util_at = end;
    }

    /// Recent utilization as seen at instant `t` (decays over idle time).
    pub fn recent_util(&self, t: Time) -> f64 {
        const TAU_NS: f64 = 300_000.0;
        let idle = t.since(self.util_at).as_nanos() as f64;
        self.util_ewma * (-idle / TAU_NS).exp()
    }

    pub fn reset_stats(&mut self, now: Time) {
        self.stats = ThreadStats::default();
        self.stats_since = now;
    }
}

/// A simulated machine: a bundle of hardware threads plus device engines.
#[derive(Debug)]
pub struct Machine {
    pub id: MachineId,
    pub spec: MachineSpec,
    /// Global hardware-thread ids, indexed `[core * threads_per_core + thread]`.
    pub threads: Vec<HwThreadId>,
}

impl Machine {
    /// Global hardware-thread id for `(core, thread)`.
    pub fn thread(&self, core: u32, thread: u32) -> HwThreadId {
        let idx = (core * self.spec.threads_per_core + thread) as usize;
        self.threads[idx]
    }

    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_thread() -> HwThread {
        HwThread {
            machine: MachineId(0),
            core: 0,
            thread: 0,
            kind: ThreadKind::Cpu,
            freq: Freq::ghz(2.0),
            sibling: None,
            busy_until: Time::ZERO,
            stats: ThreadStats::default(),
            stats_since: Time::ZERO,
            util_ewma: 0.0,
            util_at: Time::ZERO,
        }
    }

    #[test]
    fn wake_within_spin_window_counts_polling_only() {
        let mut t = cpu_thread();
        t.busy_until = Time::from_nanos(1_000);
        let start = t.wake_for(Time::from_nanos(2_000));
        assert_eq!(start, Time::from_nanos(2_000));
        assert_eq!(t.stats.poll_ns, 1_000);
        assert_eq!(t.stats.kernel_ns, 0);
        assert_eq!(t.stats.sleeps, 0);
    }

    #[test]
    fn wake_after_sleep_pays_kernel_and_latency() {
        let mut t = cpu_thread();
        t.busy_until = Time::from_nanos(1_000);
        let arrival = Time::from_millis(1);
        let start = t.wake_for(arrival);
        assert!(start > arrival, "waking from sleep must add latency");
        assert_eq!(
            t.stats.poll_ns,
            calibration::SPIN_POLL_WINDOW.as_nanos(),
            "only the spin window is polled before sleeping"
        );
        assert!(t.stats.kernel_ns > 0);
        assert_eq!(t.stats.sleeps, 1);
    }

    #[test]
    fn busy_thread_does_not_wake() {
        let mut t = cpu_thread();
        t.busy_until = Time::from_nanos(5_000);
        let start = t.wake_for(Time::from_nanos(3_000));
        assert_eq!(start, Time::from_nanos(5_000));
        assert_eq!(t.stats.poll_ns, 0);
        assert_eq!(t.stats.kernel_ns, 0);
    }

    #[test]
    fn device_threads_never_sleep() {
        let mut t = cpu_thread();
        t.kind = ThreadKind::Device;
        let start = t.wake_for(Time::from_secs(1));
        assert_eq!(start, Time::from_secs(1));
        assert_eq!(t.stats.kernel_ns, 0);
        assert_eq!(t.stats.poll_ns, 0);
    }

    #[test]
    fn stats_shares() {
        let s = ThreadStats {
            busy_ns: 50,
            poll_ns: 30,
            kernel_ns: 20,
            sleeps: 1,
            events: 2,
            smt_slow_sum: 0.0,
            max_queue: 0,
        };
        assert_eq!(s.active_ns(), 100);
        assert!((s.kernel_share() - 0.2).abs() < 1e-9);
        assert!((s.poll_share() - 0.3).abs() < 1e-9);
        assert!((s.load(Time::from_nanos(200)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn machine_spec_presets() {
        let amd = MachineSpec::amd_opteron_6168();
        assert_eq!(amd.cores, 12);
        assert_eq!(amd.threads_per_core, 1);
        let xeon = MachineSpec::xeon_e5520_dual();
        assert_eq!(xeon.cores * xeon.threads_per_core, 16);
    }
}
