//! The discrete-event engine: per-machine event heaps, dispatch, CPU-time
//! accounting — organised so the same history can be produced serially or
//! by parallel shard workers.
//!
//! The engine owns all machines and processes and advances simulated time by
//! dispatching events in `(time, origin machine, origin sequence)` order.
//! Each dispatch:
//!
//! 1. finds the destination process's hardware thread and computes the
//!    *start* instant — after any queued work on that thread (FIFO server)
//!    and after any MWAIT wake-up if the thread was sleeping (§4);
//! 2. runs the handler to completion, letting it charge cycles and emit
//!    outputs (sends, timers, spawns, kills) through [`Ctx`];
//! 3. converts charged cycles to time at the thread's frequency, applying
//!    the SMT capacity penalty when the sibling hardware thread is busy;
//! 4. schedules the outputs at the handler's *completion* instant.
//!
//! ## Scheduling domains and the determinism contract
//!
//! All mutable scheduling state is partitioned into per-machine
//! **domains**: each machine owns its event heap, hardware threads, FIFO
//! backlogs, process table, per-link batches, pid allocator, sequence
//! counter, and RNG stream. Every event carries the identity of the domain
//! that *scheduled* it plus that domain's private sequence counter, and the
//! canonical dispatch order is `(time, origin domain, origin seq)` — a key
//! each domain computes from purely local history. A handler only ever
//! reads and writes its own domain (enforced by [`Ctx`]'s narrow surface),
//! so the history of a domain depends only on the time-ordered set of
//! events addressed to it, never on how domains interleave on host
//! threads. That is what lets [`crate::Sim::run_sharded`] execute domains
//! on real OS threads under conservative time windows and still produce
//! bit-identical results to [`crate::Sim::run_until`] for any shard count
//! — see `parallel.rs` and DESIGN.md "Parallel engine & determinism".
//!
//! Machine-local rules that uphold the contract (asserted, not implied):
//!
//! * `Ctx::spawn` targets a hardware thread of the calling process's own
//!   machine (the harness-level [`Sim::spawn`] can target any machine);
//! * `Ctx::is_alive` answers for processes of the caller's machine only;
//! * cross-machine sends must declare at least
//!   [`SimConfig::link_latency_ns`] of extra delivery delay (the
//!   conservative lookahead of the parallel executor);
//! * per-link coalescing applies to machine-local links only, and the
//!   MWAIT wake-up charge is paid for machine-local destinations only
//!   (cross-machine traffic is signalled by the receiving NIC's IRQ path,
//!   whose receiver-side costs the calibration already carries).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use neat_util::Rng;

use crate::calibration;
use crate::machine::{
    HwThread, HwThreadId, Machine, MachineId, MachineSpec, ThreadKind, ThreadStats,
};
use crate::parallel::ParStats;
use crate::process::{Event, ProcId, Process};
use crate::time::{Cycles, Time};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the simulation-wide RNG; same seed ⇒ identical history.
    /// Each machine derives an independent child stream from this seed, so
    /// draws on one machine never perturb another machine's stream.
    pub seed: u64,
    /// Per-(src,dst)-link message coalescing horizon in nanoseconds: a
    /// `send()` joins the link's open batch instead of scheduling its own
    /// delivery, and the whole batch is delivered as one wakeup no later
    /// than `batch_ns` after the batch opened. `0` disables coalescing
    /// (every message is its own delivery event, the pre-batching model).
    /// Coalescing applies to machine-local links only.
    pub batch_ns: u64,
    /// Flush an open batch early once it holds this many messages.
    pub batch_max: usize,
    /// Declared minimum extra delivery delay of every cross-machine send,
    /// in nanoseconds (asserted at send time). Together with the channel
    /// latency this bounds the conservative synchronization window of
    /// [`Sim::run_sharded`]: larger declared link latency ⇒ larger
    /// windows ⇒ fewer barriers. `0` (the default) declares nothing and
    /// keeps the window at the bare channel latency.
    pub link_latency_ns: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xEA7_F00D,
            batch_ns: 0,
            batch_max: 32,
            link_latency_ns: 0,
        }
    }
}

impl SimConfig {
    /// The batched fast path with default horizon/depth (what testbeds
    /// run); `seed` as in [`SimConfig::default`].
    pub fn batched(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            batch_ns: 2_000,
            batch_max: 32,
            ..SimConfig::default()
        }
    }
}

/// Counters for the per-link coalescing machinery (exported as `sim.batch.*`
/// gauges; also queried directly by the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches delivered because the `batch_ns` horizon expired.
    pub flush_timer: u64,
    /// Batches delivered early because they reached `batch_max` depth.
    pub flush_depth: u64,
    /// Batches closed because a later send fell past the horizon.
    pub flush_close: u64,
    /// Messages that travelled inside a multi-message batch.
    pub batched_msgs: u64,
    /// Multi-message batch deliveries (wakeups saved = batched_msgs - this).
    pub batch_deliveries: u64,
}

impl BatchStats {
    /// Mean messages per multi-message batch delivery.
    pub fn occupancy(&self) -> f64 {
        if self.batch_deliveries == 0 {
            0.0
        } else {
            self.batched_msgs as f64 / self.batch_deliveries as f64
        }
    }

    fn merge(&mut self, o: &BatchStats) {
        self.flush_timer += o.flush_timer;
        self.flush_depth += o.flush_depth;
        self.flush_close += o.flush_close;
        self.batched_msgs += o.batched_msgs;
        self.batch_deliveries += o.batch_deliveries;
    }
}

/// One open per-link batch: messages coalescing toward a single delivery.
struct LinkBatch<M> {
    msgs: Vec<M>,
    /// Hard delivery deadline (`opened_at + batch_ns`).
    flush_at: Time,
    /// Earliest instant the batch may be delivered without violating
    /// causality: the max of its members' natural delivery times.
    /// Invariant: `ready_at <= flush_at`.
    ready_at: Time,
    /// Invalidation token for the scheduled `FlushBatch` heap event.
    epoch: u64,
}

/// The identity a scheduled event carries: which domain scheduled it and
/// that domain's private sequence number — globally unique, and computable
/// from the origin domain's local history alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Origin {
    pub dom: u32,
    pub seq: u64,
}

pub(crate) struct HeapEv<M> {
    pub time: Time,
    pub origin: Origin,
    pub kind: HeapKind<M>,
}

pub(crate) enum HeapKind<M> {
    /// Deliver an event to a process (immediately if its thread is free,
    /// else onto the thread's FIFO queue).
    Deliver { dst: ProcId, ev: Event<M> },
    /// A hardware thread finished its current work: pop its queue.
    /// Carries the thread's *local* index within its domain.
    ThreadResume(u32),
    /// The `batch_ns` horizon of a per-link batch expired: deliver it.
    /// Stale if the batch was already flushed (epoch mismatch).
    FlushBatch {
        src: ProcId,
        dst: ProcId,
        epoch: u64,
    },
}

impl<M> PartialEq for HeapEv<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.origin == other.origin
    }
}
impl<M> Eq for HeapEv<M> {}
impl<M> PartialOrd for HeapEv<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEv<M> {
    // BinaryHeap is a max-heap; invert so the earliest event pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.origin).cmp(&(self.time, self.origin))
    }
}

struct ProcSlot<M> {
    proc: Option<Box<dyn Process<M>>>,
    thread: HwThreadId,
    name: String,
    alive: bool,
}

/// How a process left the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DieMode {
    /// Abnormal termination — triggers the crash monitor (Table 3 path).
    Crash,
    /// Voluntary exit (lazy-termination garbage collection, §3.4).
    Exit,
}

enum Output<M> {
    Send {
        dst: ProcId,
        msg: M,
        extra_delay: Time,
    },
    Timer {
        delay: Time,
        token: u64,
    },
    Spawn {
        pid: ProcId,
        thread: HwThreadId,
        proc: Box<dyn Process<M>>,
        delay: Time,
    },
    Kill {
        pid: ProcId,
        crash: bool,
    },
}

/// Crash-monitor message constructor. `Send + Sync` because a crash inside
/// a parallel shard worker invokes it on that worker's thread.
type CrashHook<M> = Box<dyn Fn(ProcId, &str) -> M + Send + Sync>;

/// Bits reserved for a domain's local pid counter: pids are
/// `(domain + 1) << PID_DOM_SHIFT | local`, so allocation is a purely
/// domain-local operation and the owning domain can be recovered from the
/// pid itself. `ProcId(0)` stays the reserved "external" sender.
const PID_DOM_SHIFT: u32 = 40;

pub(crate) fn domain_of_pid(pid: ProcId) -> u32 {
    debug_assert!(pid.0 >> PID_DOM_SHIFT != 0, "pid {pid:?} has no domain");
    (pid.0 >> PID_DOM_SHIFT) as u32 - 1
}

/// Location of a hardware thread: owning domain + index within it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ThreadLoc {
    pub dom: u32,
    pub idx: u32,
}

/// Immutable-during-run topology shared by every executor thread.
pub(crate) struct Topo {
    pub machines: Vec<Machine>,
    /// Global `HwThreadId` → (domain, local index).
    pub thread_loc: Vec<ThreadLoc>,
}

impl Topo {
    pub(crate) fn loc(&self, t: HwThreadId) -> ThreadLoc {
        self.thread_loc[t.0]
    }
}

/// All mutable scheduling state of one machine. A domain is the unit of
/// shard ownership: during a parallel window exactly one worker thread
/// touches it.
pub(crate) struct DomainState<M> {
    pub dom: u32,
    pub heap: BinaryHeap<HeapEv<M>>,
    /// Private monotone event-sequence counter (origin identity).
    pub seq: u64,
    /// Private pid allocator (low bits of this domain's pids).
    next_pid: u64,
    pub rng: Rng,
    /// This machine's hardware threads, indexed by local thread index.
    pub threads: Vec<HwThread>,
    /// Global ids of the local threads (export/debug naming).
    pub thread_ids: Vec<HwThreadId>,
    /// Per-local-thread FIFO of events waiting for the thread.
    pending: Vec<VecDeque<(ProcId, Event<M>)>>,
    /// Whether a ThreadResume marker is scheduled per local thread.
    resume_scheduled: Vec<bool>,
    procs: HashMap<ProcId, ProcSlot<M>>,
    /// Open per-link batches keyed by `(src, dst)` (machine-local links).
    batches: HashMap<(ProcId, ProcId), LinkBatch<M>>,
    batch_epoch: u64,
    pub batch_stats: BatchStats,
    pub events_dispatched: u64,
    pub spawns: u64,
    pub crashes: u64,
    pub exits: u64,
}

impl<M> DomainState<M> {
    fn new(dom: u32, seed: u64) -> DomainState<M> {
        // Independent per-machine stream: domain-separated SplitMix-style
        // derivation so machine k's draws are stable however many other
        // machines exist and wherever they execute.
        let rng = Rng::seed_from_u64(seed ^ (dom as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        DomainState {
            dom,
            heap: BinaryHeap::new(),
            seq: 0,
            next_pid: 1,
            rng,
            threads: Vec::new(),
            thread_ids: Vec::new(),
            pending: Vec::new(),
            resume_scheduled: Vec::new(),
            procs: HashMap::new(),
            batches: HashMap::new(),
            batch_epoch: 0,
            batch_stats: BatchStats::default(),
            events_dispatched: 0,
            spawns: 0,
            crashes: 0,
            exits: 0,
        }
    }

    fn alloc_pid(&mut self) -> ProcId {
        let pid = ProcId(((self.dom as u64 + 1) << PID_DOM_SHIFT) | self.next_pid);
        self.next_pid += 1;
        pid
    }

    fn next_origin(&mut self) -> Origin {
        let o = Origin {
            dom: self.dom,
            seq: self.seq,
        };
        self.seq += 1;
        o
    }

    fn push(&mut self, time: Time, dst: ProcId, ev: Event<M>) {
        let origin = self.next_origin();
        self.heap.push(HeapEv {
            time,
            origin,
            kind: HeapKind::Deliver { dst, ev },
        });
    }

    fn ensure_thread_books(&mut self) {
        while self.pending.len() < self.threads.len() {
            self.pending.push(VecDeque::new());
            self.resume_scheduled.push(false);
        }
    }
}

/// How the running kernel resolves a domain index to mutable state: the
/// serial engine owns every domain; a shard worker owns a subset and
/// forwards the rest through its outbox.
pub(crate) enum DomMap<'a> {
    /// `domains[i]` is domain `i` (the serial engine).
    Identity,
    /// `map[dom]` is the position in the owned slice, or `None` if the
    /// domain belongs to another shard.
    Partial(&'a [Option<usize>]),
}

/// A message crossing shard boundaries, exchanged at window barriers.
pub(crate) struct Handoff<M> {
    pub time: Time,
    pub origin: Origin,
    pub dst: ProcId,
    pub ev: Event<M>,
}

/// Per-destination-shard buffers a worker fills during a window.
pub(crate) type Outbox<M> = Vec<Vec<Handoff<M>>>;

/// The executing kernel: the domain slice it may touch plus the routing
/// table for everything else. Both the serial engine and each parallel
/// shard worker drive dispatch through this one code path, which is what
/// keeps their histories identical.
pub(crate) struct Kernel<'a, M> {
    pub domains: &'a mut [DomainState<M>],
    pub map: DomMap<'a>,
    pub topo: &'a Topo,
    pub batch_ns: Time,
    pub batch_max: usize,
    pub link_latency: Time,
    pub crash_monitor: Option<&'a (ProcId, CrashHook<M>)>,
    /// Per-shard outboxes (parallel workers only). `None` means every
    /// domain is local and cross-domain pushes go straight to its heap.
    pub outbox: Option<(&'a [u32], &'a mut Outbox<M>)>,
    pub tracing: bool,
}

#[path = "engine_kernel.rs"]
mod engine_kernel;

/// The simulation world.
pub struct Sim<M> {
    now: Time,
    /// Simulation seed: each machine derives its RNG stream from this.
    seed: u64,
    pub(crate) topo: Topo,
    pub(crate) domains: Vec<DomainState<M>>,
    /// `(monitor process, message constructor)` notified on crashes.
    pub(crate) crash_monitor: Option<(ProcId, CrashHook<M>)>,
    /// Coalescing horizon (zero = batching off) and early-flush depth.
    pub(crate) batch_ns: Time,
    pub(crate) batch_max: usize,
    pub(crate) link_latency: Time,
    /// Filled in by the last [`Sim::run_sharded`] call.
    pub(crate) par_stats: ParStats,
}

impl<M: 'static> Sim<M> {
    pub fn new(config: SimConfig) -> Sim<M> {
        Sim {
            now: Time::ZERO,
            seed: config.seed,
            topo: Topo {
                machines: Vec::new(),
                thread_loc: Vec::new(),
            },
            domains: Vec::new(),
            crash_monitor: None,
            batch_ns: Time(config.batch_ns),
            batch_max: config.batch_max.max(1),
            link_latency: Time(config.link_latency_ns),
            par_stats: ParStats::default(),
        }
    }

    /// Coalescing counters (occupancy, flush causes) for benches/tests,
    /// merged across machines.
    pub fn batch_stats(&self) -> BatchStats {
        let mut s = BatchStats::default();
        for d in &self.domains {
            s.merge(&d.batch_stats);
        }
        s
    }

    /// Shard-execution statistics of the last [`Sim::run_sharded`] call
    /// (zeroed if only the serial engine ran).
    pub fn par_stats(&self) -> &ParStats {
        &self.par_stats
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn events_dispatched(&self) -> u64 {
        self.domains.iter().map(|d| d.events_dispatched).sum()
    }

    /// The conservative lookahead between machines: channel latency plus
    /// the declared minimum cross-machine link latency. This is the window
    /// size of [`Sim::run_sharded`].
    pub fn lookahead(&self) -> Time {
        calibration::CHANNEL_LATENCY + self.link_latency
    }

    /// Add a machine; its hardware threads are created immediately and it
    /// becomes its own scheduling domain.
    pub fn add_machine(&mut self, spec: MachineSpec) -> MachineId {
        let id = MachineId(self.topo.machines.len());
        let dom = id.0 as u32;
        let mut d = DomainState::new(dom, self.seed);
        let mut thread_ids = Vec::new();
        for core in 0..spec.cores {
            let base = self.topo.thread_loc.len();
            for t in 0..spec.threads_per_core {
                let tid = HwThreadId(self.topo.thread_loc.len());
                let sibling = if spec.threads_per_core == 2 {
                    // Sibling is the other thread of this core; fix up below.
                    Some(HwThreadId(base + (1 - t as usize)))
                } else {
                    None
                };
                self.topo.thread_loc.push(ThreadLoc {
                    dom,
                    idx: d.threads.len() as u32,
                });
                d.threads.push(HwThread {
                    machine: id,
                    core,
                    thread: t,
                    kind: ThreadKind::Cpu,
                    freq: spec.freq,
                    sibling,
                    busy_until: Time::ZERO,
                    stats: ThreadStats::default(),
                    stats_since: Time::ZERO,
                    util_ewma: 0.0,
                    util_at: Time::ZERO,
                });
                d.thread_ids.push(tid);
                thread_ids.push(tid);
            }
        }
        d.ensure_thread_books();
        self.domains.push(d);
        self.topo.machines.push(Machine {
            id,
            spec,
            threads: thread_ids,
        });
        id
    }

    /// Add a device engine (e.g. a NIC pipeline) to a machine. Device
    /// threads charge wall time directly and never sleep.
    pub fn add_device_thread(&mut self, machine: MachineId) -> HwThreadId {
        let tid = HwThreadId(self.topo.thread_loc.len());
        let dom = machine.0 as u32;
        let d = &mut self.domains[machine.0];
        self.topo.thread_loc.push(ThreadLoc {
            dom,
            idx: d.threads.len() as u32,
        });
        d.threads.push(HwThread {
            machine,
            core: u32::MAX,
            thread: 0,
            kind: ThreadKind::Device,
            freq: self.topo.machines[machine.0].spec.freq,
            sibling: None,
            busy_until: Time::ZERO,
            stats: ThreadStats::default(),
            stats_since: Time::ZERO,
            util_ewma: 0.0,
            util_at: Time::ZERO,
        });
        d.thread_ids.push(tid);
        d.ensure_thread_books();
        tid
    }

    /// Total hardware threads across all machines (global ids are
    /// `0..num_hw_threads()`).
    pub fn num_hw_threads(&self) -> usize {
        self.topo.thread_loc.len()
    }

    /// Hardware-thread id for `(machine, core, thread)`.
    pub fn hw_thread(&self, machine: MachineId, core: u32, thread: u32) -> HwThreadId {
        self.topo.machines[machine.0].thread(core, thread)
    }

    /// The machine a hardware thread belongs to.
    pub fn machine_of_thread(&self, t: HwThreadId) -> MachineId {
        MachineId(self.topo.loc(t).dom as usize)
    }

    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.topo.machines[id.0]
    }

    /// Spawn a process pinned to a hardware thread; it receives
    /// [`Event::Start`] at the current time. Harness-level: may target any
    /// machine (handler-level [`Ctx::spawn`] is machine-local).
    pub fn spawn(&mut self, thread: HwThreadId, proc: Box<dyn Process<M>>) -> ProcId {
        let dom = self.topo.loc(thread).dom as usize;
        let d = &mut self.domains[dom];
        let pid = d.alloc_pid();
        let name = proc.name();
        d.spawns += 1;
        d.procs.insert(
            pid,
            ProcSlot {
                proc: Some(proc),
                thread,
                name,
                alive: true,
            },
        );
        let now = self.now;
        d.push(now, pid, Event::Start);
        pid
    }

    /// Inject a message from "outside" (harness code) into a process.
    pub fn send_external(&mut self, dst: ProcId, msg: M) {
        let now = self.now;
        let dom = domain_of_pid(dst) as usize;
        self.domains[dom].push(
            now + calibration::CHANNEL_LATENCY,
            dst,
            Event::Message {
                from: ProcId(0),
                msg,
            },
        );
    }

    /// Register the process to be notified (via a constructed message) when
    /// any other process crashes — the reincarnation-server role. The hook
    /// is `Send + Sync` because crashes inside parallel shard workers
    /// invoke it on the worker's thread.
    pub fn set_crash_monitor(
        &mut self,
        monitor: ProcId,
        hook: impl Fn(ProcId, &str) -> M + Send + Sync + 'static,
    ) {
        self.crash_monitor = Some((monitor, Box::new(hook)));
    }

    /// Is the process still alive? (Harness-level: any machine.)
    pub fn is_alive(&self, pid: ProcId) -> bool {
        let dom = domain_of_pid(pid) as usize;
        self.domains
            .get(dom)
            .and_then(|d| d.procs.get(&pid))
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    pub fn proc_name(&self, pid: ProcId) -> Option<&str> {
        let dom = domain_of_pid(pid) as usize;
        self.domains
            .get(dom)?
            .procs
            .get(&pid)
            .map(|s| s.name.as_str())
    }

    pub fn proc_thread(&self, pid: ProcId) -> Option<HwThreadId> {
        let dom = domain_of_pid(pid) as usize;
        self.domains.get(dom)?.procs.get(&pid).map(|s| s.thread)
    }

    fn thread_ref(&self, tid: HwThreadId) -> &HwThread {
        let loc = self.topo.loc(tid);
        &self.domains[loc.dom as usize].threads[loc.idx as usize]
    }

    /// Activity statistics of a hardware thread since the last reset.
    pub fn thread_stats(&self, tid: HwThreadId) -> ThreadStats {
        self.thread_ref(tid).stats
    }

    pub fn thread_stats_since(&self, tid: HwThreadId) -> Time {
        self.thread_ref(tid).stats_since
    }

    /// Reset activity accounting on all threads (start of a measurement
    /// window).
    pub fn reset_all_stats(&mut self) {
        let now = self.now;
        for d in &mut self.domains {
            for t in &mut d.threads {
                t.reset_stats(now);
            }
        }
    }

    /// Export per-hardware-thread activity and engine totals into the
    /// `neat_obs` metrics registry as gauges (`cpu.t<idx>.*`, `sim.*`).
    /// Called by the harness at the end of a measurement window so the
    /// bench reports carry the paper's Table-2-style CPU breakdowns.
    pub fn export_obs(&self) {
        for (idx, loc) in self.topo.thread_loc.iter().enumerate() {
            let t = &self.domains[loc.dom as usize].threads[loc.idx as usize];
            if t.stats.events == 0 && t.stats.active_ns() == 0 {
                continue; // unused thread: keep the snapshot compact
            }
            let elapsed = self.now.since(t.stats_since);
            let p = |what: &str| format!("cpu.t{idx}.{what}");
            neat_obs::gauge_set(&p("load"), t.stats.load(elapsed));
            neat_obs::gauge_set(&p("busy_ns"), t.stats.busy_ns as f64);
            neat_obs::gauge_set(&p("poll_ns"), t.stats.poll_ns as f64);
            neat_obs::gauge_set(&p("kernel_ns"), t.stats.kernel_ns as f64);
            neat_obs::gauge_set(&p("events"), t.stats.events as f64);
            neat_obs::gauge_set(&p("sleeps"), t.stats.sleeps as f64);
            neat_obs::gauge_set(&p("max_queue"), t.stats.max_queue as f64);
        }
        neat_obs::gauge_set("sim.now_ns", self.now.as_nanos() as f64);
        neat_obs::gauge_set("sim.events_dispatched", self.events_dispatched() as f64);
        neat_obs::gauge_set(
            "sim.heap_len",
            self.domains.iter().map(|d| d.heap.len()).sum::<usize>() as f64,
        );
        neat_obs::gauge_set(
            "sim.live_procs",
            self.domains
                .iter()
                .flat_map(|d| d.procs.values())
                .filter(|s| s.alive)
                .count() as f64,
        );
        neat_obs::gauge_set(
            "sim.spawns",
            self.domains.iter().map(|d| d.spawns).sum::<u64>() as f64,
        );
        neat_obs::gauge_set(
            "sim.crashes",
            self.domains.iter().map(|d| d.crashes).sum::<u64>() as f64,
        );
        neat_obs::gauge_set(
            "sim.exits",
            self.domains.iter().map(|d| d.exits).sum::<u64>() as f64,
        );
        let b = self.batch_stats();
        neat_obs::gauge_set("sim.batch.flush_timer", b.flush_timer as f64);
        neat_obs::gauge_set("sim.batch.flush_depth", b.flush_depth as f64);
        neat_obs::gauge_set("sim.batch.flush_close", b.flush_close as f64);
        neat_obs::gauge_set("sim.batch.batched_msgs", b.batched_msgs as f64);
        neat_obs::gauge_set("sim.batch.deliveries", b.batch_deliveries as f64);
        neat_obs::gauge_set("sim.batch.occupancy", b.occupancy());
        self.par_stats.export_obs();
    }

    /// Run until the event queue is exhausted or simulated time reaches
    /// `until`. Returns the number of events dispatched.
    ///
    /// Serial reference executor: picks the globally smallest
    /// `(time, origin)` key across all domain heaps. `run_sharded`
    /// produces the exact same history on worker threads.
    pub fn run_until(&mut self, until: Time) -> u64 {
        let mut dispatched = 0u64;
        loop {
            let mut best: Option<(Time, Origin, usize)> = None;
            for (i, d) in self.domains.iter().enumerate() {
                if let Some(top) = d.heap.peek() {
                    let key = (top.time, top.origin);
                    if best.map(|(t, o, _)| key < (t, o)).unwrap_or(true) {
                        best = Some((top.time, top.origin, i));
                    }
                }
            }
            let Some((t, _, di)) = best else { break };
            if t > until {
                break;
            }
            let ev = self.domains[di].heap.pop().unwrap();
            self.now = ev.time;
            let mut kernel = Kernel {
                domains: &mut self.domains,
                map: DomMap::Identity,
                topo: &self.topo,
                batch_ns: self.batch_ns,
                batch_max: self.batch_max,
                link_latency: self.link_latency,
                crash_monitor: self.crash_monitor.as_ref(),
                outbox: None,
                tracing: neat_obs::tracing(),
            };
            kernel.dispatch(di, ev);
            self.domains[di].events_dispatched += 1;
            dispatched += 1;
        }
        if self.now < until {
            self.now = until;
        }
        dispatched
    }

    pub(crate) fn set_now(&mut self, t: Time) {
        self.now = t;
    }
}

/// The capability handle a process receives while handling an event.
///
/// Everything a process can do to the outside world goes through this —
/// there is no other channel, which is what makes the isolation claim of
/// the design hold by construction in this reproduction. All state it can
/// reach directly belongs to the executing process's machine; effects on
/// other machines travel as messages, which is also what makes a handler
/// safe to run inside a parallel shard worker.
pub struct Ctx<'a, M> {
    dom: &'a mut DomainState<M>,
    topo: &'a Topo,
    batching: bool,
    sender_kind: ThreadKind,
    /// The process currently executing.
    pub self_id: ProcId,
    start: Time,
    charged: Cycles,
    charged_ns: u64,
    outputs: Vec<Output<M>>,
    die: Option<DieMode>,
    /// Local thread indices already charged a wake store in this handler:
    /// the MWAIT wake is paid once per sleeping destination per wakeup,
    /// not per message (the batching amortization of §3.4).
    woken_threads: Vec<usize>,
    /// Destination of the previous `send` in this handler: an immediate
    /// follow-up send to the same process appends to the same channel run
    /// and is charged [`calibration::MSG_SEND_APPEND`] instead of the full
    /// [`calibration::MSG_SEND`].
    last_send_dst: Option<ProcId>,
}

impl<'a, M: 'static> Ctx<'a, M> {
    /// The instant this handler began executing (after queueing + wake-up).
    pub fn now(&self) -> Time {
        self.start
    }

    /// Charge CPU work in cycles (converted at the owning thread's clock).
    pub fn charge(&mut self, cycles: Cycles) {
        self.charged += cycles;
    }

    /// Charge wall-clock time directly (device engines: DMA, serialization).
    pub fn charge_ns(&mut self, ns: u64) {
        self.charged_ns += ns;
    }

    /// Send a message to another process. Costs [`calibration::MSG_SEND`]
    /// plus a wake-up store if the destination is asleep.
    pub fn send(&mut self, dst: ProcId, msg: M) {
        self.send_delayed(dst, msg, Time::ZERO);
    }

    /// Send with additional delivery delay (wire propagation etc.).
    pub fn send_delayed(&mut self, dst: ProcId, msg: M, extra_delay: Time) {
        // A run of sends to the same destination shares one doorbell/fence;
        // only the first pays the full channel-enqueue cost.
        self.charged += if self.last_send_dst == Some(dst) {
            calibration::MSG_SEND_APPEND
        } else {
            calibration::MSG_SEND
        };
        self.last_send_dst = Some(dst);
        // No coalescer to defer the receiver kick to: each local channel
        // message pays its own kernel-call-class notification (§3.4 — the
        // scalar, pre-batching model). Device engines signal via IRQ,
        // which the receiver-side cold descriptor costs already model.
        if !self.batching && extra_delay.as_nanos() == 0 && self.sender_kind == ThreadKind::Cpu {
            self.charged += calibration::MSG_NOTIFY;
        }
        // The MWAIT wake store applies to machine-local destinations only:
        // a cross-machine send reaches the peer through its NIC, whose IRQ
        // path the receiver-side costs already model — and peeking at the
        // remote thread's state here would break shard isolation.
        if domain_of_pid(dst) == self.dom.dom {
            if let Some(slot) = self.dom.procs.get(&dst) {
                let lt = self.topo.loc(slot.thread).idx as usize;
                let th = &self.dom.threads[lt];
                if th.kind == ThreadKind::Cpu
                    && th.busy_until + calibration::SPIN_POLL_WINDOW < self.start
                    && !self.woken_threads.contains(&lt)
                {
                    // Destination thread is (by now) asleep: pay the wake
                    // store — once per handler per thread; later messages
                    // in the same burst find it already waking.
                    self.woken_threads.push(lt);
                    self.charged += calibration::WAKE_REMOTE;
                }
            }
        }
        self.outputs.push(Output::Send {
            dst,
            msg,
            extra_delay,
        });
    }

    /// Arrange for [`Event::Timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.outputs.push(Output::Timer { delay, token });
    }

    /// Spawn a new process (returns its pid immediately; it starts after
    /// `delay` — process creation is not free, §3.4). The target thread
    /// must belong to the calling process's machine: remote-machine
    /// process management goes through a message to a peer on that
    /// machine (or the harness between runs), never directly — that is
    /// what keeps spawning deterministic under sharded execution.
    pub fn spawn(&mut self, thread: HwThreadId, proc: Box<dyn Process<M>>, delay: Time) -> ProcId {
        assert_eq!(
            self.topo.loc(thread).dom,
            self.dom.dom,
            "Ctx::spawn targets a thread on another machine; spawn via a \
             process on that machine or from the harness instead"
        );
        let pid = self.dom.alloc_pid();
        self.outputs.push(Output::Spawn {
            pid,
            thread,
            proc,
            delay,
        });
        pid
    }

    /// Forcibly terminate another process (supervisor use only).
    pub fn kill(&mut self, pid: ProcId, crash: bool) {
        self.outputs.push(Output::Kill { pid, crash });
    }

    /// Terminate this process abnormally: all its state is lost and the
    /// crash monitor is notified. Used by fault injection (Table 3).
    pub fn crash_self(&mut self) {
        self.die = Some(DieMode::Crash);
    }

    /// Terminate this process voluntarily (lazy-termination GC, §3.4).
    pub fn exit_self(&mut self) {
        self.die = Some(DieMode::Exit);
    }

    /// This machine's deterministic RNG stream (independent per machine,
    /// derived from the simulation seed).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.dom.rng
    }

    /// Hardware-thread lookup helper for spawning onto specific cores.
    pub fn hw_thread(&self, machine: MachineId, core: u32, thread: u32) -> HwThreadId {
        self.topo.machines[machine.0].thread(core, thread)
    }

    /// Is another process on this machine currently alive? (Used by the
    /// driver to avoid queueing packets to a crashed replica.) Liveness of
    /// remote-machine processes is not observable from a handler — that
    /// information travels by message.
    pub fn is_alive(&self, pid: ProcId) -> bool {
        assert_eq!(
            domain_of_pid(pid),
            self.dom.dom,
            "Ctx::is_alive queried a process on another machine; liveness \
             is machine-local under the sharded engine"
        );
        self.dom.procs.get(&pid).map(|s| s.alive).unwrap_or(false)
    }
}
#[cfg(test)]
#[path = "engine_tests.rs"]
mod tests;
