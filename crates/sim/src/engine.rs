//! The discrete-event engine: event heap, dispatch, CPU-time accounting.
//!
//! The engine owns all machines and processes and advances simulated time by
//! dispatching events in `(time, sequence)` order. Each dispatch:
//!
//! 1. finds the destination process's hardware thread and computes the
//!    *start* instant — after any queued work on that thread (FIFO server)
//!    and after any MWAIT wake-up if the thread was sleeping (§4);
//! 2. runs the handler to completion, letting it charge cycles and emit
//!    outputs (sends, timers, spawns, kills) through [`Ctx`];
//! 3. converts charged cycles to time at the thread's frequency, applying
//!    the SMT capacity penalty when the sibling hardware thread is busy;
//! 4. schedules the outputs at the handler's *completion* instant.
//!
//! Determinism: the heap is ordered by `(time, seq)` with `seq` assigned at
//! scheduling time, and all randomness flows from one seeded RNG.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use neat_util::Rng;

use crate::calibration;
use crate::machine::{
    HwThread, HwThreadId, Machine, MachineId, MachineSpec, ThreadKind, ThreadStats,
};
use crate::process::{Event, ProcId, Process};
use crate::time::{Cycles, Time};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the simulation-wide RNG; same seed ⇒ identical history.
    pub seed: u64,
    /// Per-(src,dst)-link message coalescing horizon in nanoseconds: a
    /// `send()` joins the link's open batch instead of scheduling its own
    /// delivery, and the whole batch is delivered as one wakeup no later
    /// than `batch_ns` after the batch opened. `0` disables coalescing
    /// (every message is its own delivery event, the pre-batching model).
    pub batch_ns: u64,
    /// Flush an open batch early once it holds this many messages.
    pub batch_max: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xEA7_F00D,
            batch_ns: 0,
            batch_max: 32,
        }
    }
}

impl SimConfig {
    /// The batched fast path with default horizon/depth (what testbeds
    /// run); `seed` as in [`SimConfig::default`].
    pub fn batched(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            batch_ns: 2_000,
            batch_max: 32,
        }
    }
}

/// Counters for the per-link coalescing machinery (exported as `sim.batch.*`
/// gauges; also queried directly by the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches delivered because the `batch_ns` horizon expired.
    pub flush_timer: u64,
    /// Batches delivered early because they reached `batch_max` depth.
    pub flush_depth: u64,
    /// Batches closed because a later send fell past the horizon.
    pub flush_close: u64,
    /// Messages that travelled inside a multi-message batch.
    pub batched_msgs: u64,
    /// Multi-message batch deliveries (wakeups saved = batched_msgs - this).
    pub batch_deliveries: u64,
}

impl BatchStats {
    /// Mean messages per multi-message batch delivery.
    pub fn occupancy(&self) -> f64 {
        if self.batch_deliveries == 0 {
            0.0
        } else {
            self.batched_msgs as f64 / self.batch_deliveries as f64
        }
    }
}

/// One open per-link batch: messages coalescing toward a single delivery.
struct LinkBatch<M> {
    msgs: Vec<M>,
    /// Hard delivery deadline (`opened_at + batch_ns`).
    flush_at: Time,
    /// Earliest instant the batch may be delivered without violating
    /// causality: the max of its members' natural delivery times.
    /// Invariant: `ready_at <= flush_at`.
    ready_at: Time,
    /// Invalidation token for the scheduled `FlushBatch` heap event.
    epoch: u64,
}

struct HeapEv<M> {
    time: Time,
    seq: u64,
    kind: HeapKind<M>,
}

enum HeapKind<M> {
    /// Deliver an event to a process (immediately if its thread is free,
    /// else onto the thread's FIFO queue).
    Deliver { dst: ProcId, ev: Event<M> },
    /// A hardware thread finished its current work: pop its queue.
    ThreadResume(HwThreadId),
    /// The `batch_ns` horizon of a per-link batch expired: deliver it.
    /// Stale if the batch was already flushed (epoch mismatch).
    FlushBatch {
        src: ProcId,
        dst: ProcId,
        epoch: u64,
    },
}

impl<M> PartialEq for HeapEv<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for HeapEv<M> {}
impl<M> PartialOrd for HeapEv<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEv<M> {
    // BinaryHeap is a max-heap; invert so the earliest event pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct ProcSlot<M> {
    proc: Option<Box<dyn Process<M>>>,
    thread: HwThreadId,
    name: String,
    alive: bool,
}

/// How a process left the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DieMode {
    /// Abnormal termination — triggers the crash monitor (Table 3 path).
    Crash,
    /// Voluntary exit (lazy-termination garbage collection, §3.4).
    Exit,
}

enum Output<M> {
    Send {
        dst: ProcId,
        msg: M,
        extra_delay: Time,
    },
    Timer {
        delay: Time,
        token: u64,
    },
    Spawn {
        pid: ProcId,
        thread: HwThreadId,
        proc: Box<dyn Process<M>>,
        delay: Time,
    },
    Kill {
        pid: ProcId,
        crash: bool,
    },
}

type CrashHook<M> = Box<dyn Fn(ProcId, &str) -> M>;

/// The simulation world.
pub struct Sim<M> {
    now: Time,
    seq: u64,
    next_pid: u64,
    queue: BinaryHeap<HeapEv<M>>,
    machines: Vec<Machine>,
    threads: Vec<HwThread>,
    procs: HashMap<ProcId, ProcSlot<M>>,
    rng: Rng,
    /// `(monitor process, message constructor)` notified on crashes.
    crash_monitor: Option<(ProcId, CrashHook<M>)>,
    events_dispatched: u64,
    /// Per-hardware-thread FIFO of events waiting for the thread
    /// (the run queue of the FIFO server model).
    pending: Vec<std::collections::VecDeque<(ProcId, Event<M>)>>,
    /// Whether a ThreadResume marker is scheduled per thread.
    resume_scheduled: Vec<bool>,
    /// Coalescing horizon (zero = batching off) and early-flush depth.
    batch_ns: Time,
    batch_max: usize,
    /// Open per-link batches keyed by `(src, dst)`.
    batches: HashMap<(ProcId, ProcId), LinkBatch<M>>,
    /// Monotone token distinguishing live batches from stale flush events.
    batch_epoch: u64,
    batch_stats: BatchStats,
}

impl<M: 'static> Sim<M> {
    pub fn new(config: SimConfig) -> Sim<M> {
        Sim {
            now: Time::ZERO,
            seq: 0,
            next_pid: 1,
            queue: BinaryHeap::new(),
            machines: Vec::new(),
            threads: Vec::new(),
            procs: HashMap::new(),
            rng: Rng::seed_from_u64(config.seed),
            crash_monitor: None,
            events_dispatched: 0,
            pending: Vec::new(),
            resume_scheduled: Vec::new(),
            batch_ns: Time(config.batch_ns),
            batch_max: config.batch_max.max(1),
            batches: HashMap::new(),
            batch_epoch: 0,
            batch_stats: BatchStats::default(),
        }
    }

    /// Coalescing counters (occupancy, flush causes) for benches/tests.
    pub fn batch_stats(&self) -> BatchStats {
        self.batch_stats
    }

    fn ensure_thread_books(&mut self) {
        while self.pending.len() < self.threads.len() {
            self.pending.push(std::collections::VecDeque::new());
            self.resume_scheduled.push(false);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Add a machine; its hardware threads are created immediately.
    pub fn add_machine(&mut self, spec: MachineSpec) -> MachineId {
        let id = MachineId(self.machines.len());
        let mut thread_ids = Vec::new();
        for core in 0..spec.cores {
            let base = self.threads.len();
            for t in 0..spec.threads_per_core {
                let tid = HwThreadId(self.threads.len());
                let sibling = if spec.threads_per_core == 2 {
                    // Sibling is the other thread of this core; fix up below.
                    Some(HwThreadId(base + (1 - t as usize)))
                } else {
                    None
                };
                self.threads.push(HwThread {
                    machine: id,
                    core,
                    thread: t,
                    kind: ThreadKind::Cpu,
                    freq: spec.freq,
                    sibling,
                    busy_until: Time::ZERO,
                    stats: ThreadStats::default(),
                    stats_since: Time::ZERO,
                    util_ewma: 0.0,
                    util_at: Time::ZERO,
                });
                thread_ids.push(tid);
            }
        }
        self.machines.push(Machine {
            id,
            spec,
            threads: thread_ids,
        });
        self.ensure_thread_books();
        id
    }

    /// Add a device engine (e.g. a NIC pipeline) to a machine. Device
    /// threads charge wall time directly and never sleep.
    pub fn add_device_thread(&mut self, machine: MachineId) -> HwThreadId {
        let tid = HwThreadId(self.threads.len());
        self.threads.push(HwThread {
            machine,
            core: u32::MAX,
            thread: 0,
            kind: ThreadKind::Device,
            freq: self.machines[machine.0].spec.freq,
            sibling: None,
            busy_until: Time::ZERO,
            stats: ThreadStats::default(),
            stats_since: Time::ZERO,
            util_ewma: 0.0,
            util_at: Time::ZERO,
        });
        self.ensure_thread_books();
        tid
    }

    /// Hardware-thread id for `(machine, core, thread)`.
    pub fn hw_thread(&self, machine: MachineId, core: u32, thread: u32) -> HwThreadId {
        self.machines[machine.0].thread(core, thread)
    }

    /// The machine a hardware thread belongs to.
    pub fn machine_of_thread(&self, t: HwThreadId) -> MachineId {
        self.threads[t.0].machine
    }

    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.machines[id.0]
    }

    /// Spawn a process pinned to a hardware thread; it receives
    /// [`Event::Start`] at the current time.
    pub fn spawn(&mut self, thread: HwThreadId, proc: Box<dyn Process<M>>) -> ProcId {
        let pid = ProcId(self.next_pid);
        self.next_pid += 1;
        let name = proc.name();
        neat_obs::counter_add("sim.spawns", 1);
        self.procs.insert(
            pid,
            ProcSlot {
                proc: Some(proc),
                thread,
                name,
                alive: true,
            },
        );
        let now = self.now;
        self.push(now, pid, Event::Start);
        pid
    }

    /// Inject a message from "outside" (harness code) into a process.
    pub fn send_external(&mut self, dst: ProcId, msg: M) {
        let now = self.now;
        self.push(
            now + calibration::CHANNEL_LATENCY,
            dst,
            Event::Message {
                from: ProcId(0),
                msg,
            },
        );
    }

    /// Register the process to be notified (via a constructed message) when
    /// any other process crashes — the reincarnation-server role.
    pub fn set_crash_monitor(
        &mut self,
        monitor: ProcId,
        hook: impl Fn(ProcId, &str) -> M + 'static,
    ) {
        self.crash_monitor = Some((monitor, Box::new(hook)));
    }

    /// Is the process still alive?
    pub fn is_alive(&self, pid: ProcId) -> bool {
        self.procs.get(&pid).map(|s| s.alive).unwrap_or(false)
    }

    pub fn proc_name(&self, pid: ProcId) -> Option<&str> {
        self.procs.get(&pid).map(|s| s.name.as_str())
    }

    pub fn proc_thread(&self, pid: ProcId) -> Option<HwThreadId> {
        self.procs.get(&pid).map(|s| s.thread)
    }

    /// Activity statistics of a hardware thread since the last reset.
    pub fn thread_stats(&self, tid: HwThreadId) -> ThreadStats {
        self.threads[tid.0].stats
    }

    pub fn thread_stats_since(&self, tid: HwThreadId) -> Time {
        self.threads[tid.0].stats_since
    }

    /// Reset activity accounting on all threads (start of a measurement
    /// window).
    pub fn reset_all_stats(&mut self) {
        let now = self.now;
        for t in &mut self.threads {
            t.reset_stats(now);
        }
    }

    /// Export per-hardware-thread activity and engine totals into the
    /// `neat_obs` metrics registry as gauges (`cpu.t<idx>.*`, `sim.*`).
    /// Called by the harness at the end of a measurement window so the
    /// bench reports carry the paper's Table-2-style CPU breakdowns.
    pub fn export_obs(&self) {
        for (idx, t) in self.threads.iter().enumerate() {
            if t.stats.events == 0 && t.stats.active_ns() == 0 {
                continue; // unused thread: keep the snapshot compact
            }
            let elapsed = self.now.since(t.stats_since);
            let p = |what: &str| format!("cpu.t{idx}.{what}");
            neat_obs::gauge_set(&p("load"), t.stats.load(elapsed));
            neat_obs::gauge_set(&p("busy_ns"), t.stats.busy_ns as f64);
            neat_obs::gauge_set(&p("poll_ns"), t.stats.poll_ns as f64);
            neat_obs::gauge_set(&p("kernel_ns"), t.stats.kernel_ns as f64);
            neat_obs::gauge_set(&p("events"), t.stats.events as f64);
            neat_obs::gauge_set(&p("sleeps"), t.stats.sleeps as f64);
            neat_obs::gauge_set(&p("max_queue"), t.stats.max_queue as f64);
        }
        neat_obs::gauge_set("sim.now_ns", self.now.as_nanos() as f64);
        neat_obs::gauge_set("sim.events_dispatched", self.events_dispatched as f64);
        neat_obs::gauge_set("sim.heap_len", self.queue.len() as f64);
        neat_obs::gauge_set(
            "sim.live_procs",
            self.procs.values().filter(|s| s.alive).count() as f64,
        );
        let b = self.batch_stats;
        neat_obs::gauge_set("sim.batch.flush_timer", b.flush_timer as f64);
        neat_obs::gauge_set("sim.batch.flush_depth", b.flush_depth as f64);
        neat_obs::gauge_set("sim.batch.flush_close", b.flush_close as f64);
        neat_obs::gauge_set("sim.batch.batched_msgs", b.batched_msgs as f64);
        neat_obs::gauge_set("sim.batch.deliveries", b.batch_deliveries as f64);
        neat_obs::gauge_set("sim.batch.occupancy", b.occupancy());
    }

    fn push(&mut self, time: Time, dst: ProcId, ev: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(HeapEv {
            time,
            seq,
            kind: HeapKind::Deliver { dst, ev },
        });
    }

    fn push_resume(&mut self, time: Time, thread: HwThreadId) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(HeapEv {
            time,
            seq,
            kind: HeapKind::ThreadResume(thread),
        });
    }

    fn push_flush(&mut self, time: Time, src: ProcId, dst: ProcId, epoch: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(HeapEv {
            time,
            seq,
            kind: HeapKind::FlushBatch { src, dst, epoch },
        });
    }

    /// Deliver a closed batch at `at` (>= now). Single-message batches
    /// degrade to a plain `Message` so receivers and traces can't tell a
    /// lone coalesced message from an unbatched one.
    fn deliver_batch(&mut self, src: ProcId, dst: ProcId, msgs: Vec<M>, at: Time) {
        if msgs.len() == 1 {
            let msg = msgs.into_iter().next().unwrap();
            self.push(at, dst, Event::Message { from: src, msg });
        } else {
            self.batch_stats.batched_msgs += msgs.len() as u64;
            self.batch_stats.batch_deliveries += 1;
            self.push(at, dst, Event::Batch { from: src, msgs });
        }
    }

    /// Route one `send()` through the per-link coalescer. `at` is the
    /// message's natural delivery instant (sender completion + channel
    /// latency); the batch may delay it up to the `batch_ns` horizon.
    fn enqueue_batched(&mut self, src: ProcId, dst: ProcId, msg: M, at: Time) {
        let key = (src, dst);
        match self.batches.get_mut(&key) {
            Some(b) if at <= b.flush_at => {
                b.msgs.push(msg);
                b.ready_at = b.ready_at.max(at);
                if b.msgs.len() >= self.batch_max {
                    // Depth flush: deliver now-complete batch at its
                    // ready time; the scheduled FlushBatch goes stale.
                    let b = self.batches.remove(&key).unwrap();
                    self.batch_stats.flush_depth += 1;
                    self.deliver_batch(src, dst, b.msgs, b.ready_at.max(self.now));
                }
            }
            Some(_) => {
                // The new message lands past the horizon: close the old
                // batch (its flush event goes stale) and open a new one.
                let old = self.batches.remove(&key).unwrap();
                self.batch_stats.flush_close += 1;
                let old_at = old.ready_at.max(self.now);
                self.deliver_batch(src, dst, old.msgs, old_at);
                self.open_batch(key, msg, at);
            }
            None => self.open_batch(key, msg, at),
        }
    }

    fn open_batch(&mut self, key: (ProcId, ProcId), msg: M, at: Time) {
        self.batch_epoch += 1;
        let epoch = self.batch_epoch;
        let flush_at = at + self.batch_ns;
        self.batches.insert(
            key,
            LinkBatch {
                msgs: vec![msg],
                flush_at,
                ready_at: at,
                epoch,
            },
        );
        self.push_flush(flush_at, key.0, key.1, epoch);
    }

    /// Run until the event queue is exhausted or simulated time reaches
    /// `until`. Returns the number of events dispatched.
    pub fn run_until(&mut self, until: Time) -> u64 {
        let mut dispatched = 0;
        while let Some(top) = self.queue.peek() {
            if top.time > until {
                break;
            }
            let ev = self.queue.pop().unwrap();
            self.now = ev.time;
            self.dispatch(ev);
            dispatched += 1;
        }
        if self.now < until {
            self.now = until;
        }
        self.events_dispatched += dispatched;
        dispatched
    }

    fn dispatch(&mut self, ev: HeapEv<M>) {
        let HeapEv { time, kind, .. } = ev;
        match kind {
            HeapKind::Deliver { dst, ev } => {
                let Some(slot) = self.procs.get(&dst) else {
                    return;
                };
                if !slot.alive {
                    return;
                }
                let tid = slot.thread;
                // FIFO server: if the thread is (or will be) busy, or has
                // queued work, append; a resume marker fires at the end of
                // the current work.
                let busy_until = self.threads[tid.0].busy_until;
                if busy_until > time || !self.pending[tid.0].is_empty() {
                    self.pending[tid.0].push_back((dst, ev));
                    // Queue-depth high-water mark (per-thread backlog; a
                    // compare+store, cheap enough to keep always-on).
                    let depth = self.pending[tid.0].len() as u64;
                    let st = &mut self.threads[tid.0].stats;
                    st.max_queue = st.max_queue.max(depth);
                    if !self.resume_scheduled[tid.0] {
                        self.resume_scheduled[tid.0] = true;
                        self.push_resume(busy_until.max(time), tid);
                    }
                } else {
                    self.execute(tid, dst, ev, time);
                }
            }
            HeapKind::FlushBatch { src, dst, epoch } => {
                // Stale unless the batch is still open under this epoch.
                let live = self
                    .batches
                    .get(&(src, dst))
                    .map(|b| b.epoch == epoch)
                    .unwrap_or(false);
                if live {
                    let b = self.batches.remove(&(src, dst)).unwrap();
                    self.batch_stats.flush_timer += 1;
                    // The horizon IS the delivery instant (`time ==
                    // flush_at >= ready_at`), like interrupt moderation.
                    self.deliver_batch(src, dst, b.msgs, time);
                }
            }
            HeapKind::ThreadResume(tid) => {
                self.resume_scheduled[tid.0] = false;
                // Pop queued work until we find a live destination.
                while let Some((dst, ev)) = self.pending[tid.0].pop_front() {
                    let alive = self.procs.get(&dst).map(|s| s.alive).unwrap_or(false);
                    if !alive {
                        continue; // messages to dead processes vanish
                    }
                    self.execute(tid, dst, ev, time);
                    break;
                }
                // More work queued: chain the next marker.
                if !self.pending[tid.0].is_empty() && !self.resume_scheduled[tid.0] {
                    self.resume_scheduled[tid.0] = true;
                    let at = self.threads[tid.0].busy_until.max(time);
                    self.push_resume(at, tid);
                }
            }
        }
    }

    /// Run one handler on a free thread at `time` (>= thread.busy_until).
    fn execute(&mut self, thread_id: HwThreadId, dst: ProcId, ev: Event<M>, time: Time) {
        // Tracing hook: name the span before the event is consumed. Guarded
        // so the disabled path pays one thread-local bool read, no format.
        let span_name = if neat_obs::tracing() {
            let pname = self.procs.get(&dst).map(|s| s.name.as_str()).unwrap_or("?");
            Some(format!("{pname} [{}]", ev.label()))
        } else {
            None
        };
        let mut proc = match self.procs.get_mut(&dst) {
            Some(slot) if slot.alive => match slot.proc.take() {
                Some(p) => p,
                None => return,
            },
            _ => return,
        };

        // --- CPU-time accounting: wake the thread, find the start instant.
        let start = {
            let th = &mut self.threads[thread_id.0];
            let woken = th.wake_for(time);
            woken.max(th.busy_until)
        };
        let kind = self.threads[thread_id.0].kind;
        let freq = self.threads[thread_id.0].freq;
        // SMT contention: slowdown scales with the sibling thread's recent
        // utilization — two saturated siblings each run at SMT_CAPACITY/2
        // of a dedicated core's speed.
        let smt_slow = match self.threads[thread_id.0].sibling {
            Some(sib) if kind == ThreadKind::Cpu => {
                let s = &self.threads[sib.0];
                let u = if s.busy_until > start || !self.pending[sib.0].is_empty() {
                    1.0
                } else {
                    s.recent_util(start)
                };
                1.0 + (2.0 / calibration::SMT_CAPACITY - 1.0) * u
            }
            _ => 1.0,
        };

        let mut ctx = Ctx {
            sim: self,
            self_id: dst,
            start,
            charged: proc.dispatch_cost(),
            charged_ns: 0,
            outputs: Vec::new(),
            die: None,
            woken_threads: Vec::new(),
            last_send_dst: None,
        };
        match ev {
            Event::Batch { from, msgs } => proc.on_batch(&mut ctx, from, msgs),
            ev => proc.on_event(&mut ctx, ev),
        }
        let Ctx {
            charged,
            charged_ns,
            outputs,
            die,
            ..
        } = ctx;

        // --- Completion time.
        let work = match kind {
            ThreadKind::Cpu => {
                let base = freq.cycles_to_time(charged);
                Time((base.as_nanos() as f64 * smt_slow) as u64 + charged_ns)
            }
            ThreadKind::Device => Time(charged_ns + freq.cycles_to_time(charged).as_nanos()),
        };
        let end = start + work;
        {
            let th = &mut self.threads[thread_id.0];
            th.stats.smt_slow_sum += smt_slow;
            th.record_busy(start, end);
        }
        if let Some(name) = span_name {
            neat_obs::trace::complete(
                thread_id.0 as u64,
                name,
                "dispatch",
                start.as_nanos(),
                end.as_nanos(),
            );
        }

        // --- Apply outputs at completion time.
        for out in outputs {
            match out {
                Output::Send {
                    dst: to,
                    msg,
                    extra_delay,
                } => {
                    let at = end + calibration::CHANNEL_LATENCY + extra_delay;
                    // Only latency-free local sends coalesce; anything with
                    // explicit wire/propagation delay keeps its own event.
                    if self.batch_ns.as_nanos() > 0 && extra_delay.as_nanos() == 0 {
                        self.enqueue_batched(dst, to, msg, at);
                    } else {
                        self.push(at, to, Event::Message { from: dst, msg });
                    }
                }
                Output::Timer { delay, token } => {
                    self.push(end + delay, dst, Event::Timer { token });
                }
                Output::Spawn {
                    pid,
                    thread,
                    proc,
                    delay,
                } => {
                    let name = proc.name();
                    neat_obs::counter_add("sim.spawns", 1);
                    self.procs.insert(
                        pid,
                        ProcSlot {
                            proc: Some(proc),
                            thread,
                            name,
                            alive: true,
                        },
                    );
                    self.push(end + delay, pid, Event::Start);
                }
                Output::Kill { pid, crash } => {
                    self.reap(pid, if crash { DieMode::Crash } else { DieMode::Exit }, end);
                }
            }
        }

        // --- Self-termination or put the process back.
        match die {
            Some(mode) => {
                // Put the (now doomed) process back so reap can drop it.
                if let Some(slot) = self.procs.get_mut(&dst) {
                    slot.proc = Some(proc);
                }
                self.reap(dst, mode, end);
            }
            None => {
                if let Some(slot) = self.procs.get_mut(&dst) {
                    slot.proc = Some(proc);
                }
            }
        }
    }

    fn reap(&mut self, pid: ProcId, mode: DieMode, at: Time) {
        let (name, thread) = match self.procs.get_mut(&pid) {
            Some(slot) if slot.alive => {
                slot.alive = false;
                slot.proc = None; // all state dropped — stateless recovery
                (slot.name.clone(), slot.thread)
            }
            _ => return,
        };
        match mode {
            DieMode::Crash => neat_obs::counter_add("sim.crashes", 1),
            DieMode::Exit => neat_obs::counter_add("sim.exits", 1),
        }
        if neat_obs::tracing() {
            let what = match mode {
                DieMode::Crash => "crash",
                DieMode::Exit => "exit",
            };
            neat_obs::trace::instant(
                thread.0 as u64,
                format!("{what}: {name}"),
                "lifecycle",
                at.as_nanos(),
            );
        }
        if mode == DieMode::Crash {
            if let Some((monitor, hook)) = &self.crash_monitor {
                let msg = hook(pid, &name);
                let monitor = *monitor;
                // Crash detection latency: the kernel notices the fault and
                // notifies the monitor (one exception + IPC round).
                self.push(
                    at + Time::from_micros(50),
                    monitor,
                    Event::Message {
                        from: ProcId(0),
                        msg,
                    },
                );
            }
        }
    }
}

/// The capability handle a process receives while handling an event.
///
/// Everything a process can do to the outside world goes through this —
/// there is no other channel, which is what makes the isolation claim of the
/// design hold by construction in this reproduction.
pub struct Ctx<'a, M> {
    sim: &'a mut Sim<M>,
    /// The process currently executing.
    pub self_id: ProcId,
    start: Time,
    charged: Cycles,
    charged_ns: u64,
    outputs: Vec<Output<M>>,
    die: Option<DieMode>,
    /// Threads already charged a wake store in this handler: the MWAIT
    /// wake is paid once per sleeping destination per wakeup, not per
    /// message (the batching amortization of §3.4).
    woken_threads: Vec<usize>,
    /// Destination of the previous `send` in this handler: an immediate
    /// follow-up send to the same process appends to the same channel run
    /// and is charged [`calibration::MSG_SEND_APPEND`] instead of the full
    /// [`calibration::MSG_SEND`].
    last_send_dst: Option<ProcId>,
}

impl<'a, M: 'static> Ctx<'a, M> {
    /// The instant this handler began executing (after queueing + wake-up).
    pub fn now(&self) -> Time {
        self.start
    }

    /// Charge CPU work in cycles (converted at the owning thread's clock).
    pub fn charge(&mut self, cycles: Cycles) {
        self.charged += cycles;
    }

    /// Charge wall-clock time directly (device engines: DMA, serialization).
    pub fn charge_ns(&mut self, ns: u64) {
        self.charged_ns += ns;
    }

    /// Send a message to another process. Costs [`calibration::MSG_SEND`]
    /// plus a wake-up store if the destination is asleep.
    pub fn send(&mut self, dst: ProcId, msg: M) {
        self.send_delayed(dst, msg, Time::ZERO);
    }

    /// Send with additional delivery delay (wire propagation etc.).
    pub fn send_delayed(&mut self, dst: ProcId, msg: M, extra_delay: Time) {
        // A run of sends to the same destination shares one doorbell/fence;
        // only the first pays the full channel-enqueue cost.
        self.charged += if self.last_send_dst == Some(dst) {
            calibration::MSG_SEND_APPEND
        } else {
            calibration::MSG_SEND
        };
        self.last_send_dst = Some(dst);
        // No coalescer to defer the receiver kick to: each local channel
        // message pays its own kernel-call-class notification (§3.4 — the
        // scalar, pre-batching model). Device engines signal via IRQ,
        // which the receiver-side cold descriptor costs already model.
        if self.sim.batch_ns.as_nanos() == 0 && extra_delay.as_nanos() == 0 {
            let cpu_sender = self
                .sim
                .procs
                .get(&self.self_id)
                .map(|s| self.sim.threads[s.thread.0].kind == ThreadKind::Cpu)
                .unwrap_or(false);
            if cpu_sender {
                self.charged += calibration::MSG_NOTIFY;
            }
        }
        if let Some(slot) = self.sim.procs.get(&dst) {
            let tid = slot.thread.0;
            let th = &self.sim.threads[tid];
            if th.kind == ThreadKind::Cpu
                && th.busy_until + calibration::SPIN_POLL_WINDOW < self.start
                && !self.woken_threads.contains(&tid)
            {
                // Destination thread is (by now) asleep: pay the wake
                // store — once per handler per thread; later messages in
                // the same burst find it already waking.
                self.woken_threads.push(tid);
                self.charged += calibration::WAKE_REMOTE;
            }
        }
        self.outputs.push(Output::Send {
            dst,
            msg,
            extra_delay,
        });
    }

    /// Arrange for [`Event::Timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.outputs.push(Output::Timer { delay, token });
    }

    /// Spawn a new process (returns its pid immediately; it starts after
    /// `delay` — process creation is not free, §3.4).
    pub fn spawn(&mut self, thread: HwThreadId, proc: Box<dyn Process<M>>, delay: Time) -> ProcId {
        let pid = ProcId(self.sim.next_pid);
        self.sim.next_pid += 1;
        self.outputs.push(Output::Spawn {
            pid,
            thread,
            proc,
            delay,
        });
        pid
    }

    /// Forcibly terminate another process (supervisor use only).
    pub fn kill(&mut self, pid: ProcId, crash: bool) {
        self.outputs.push(Output::Kill { pid, crash });
    }

    /// Terminate this process abnormally: all its state is lost and the
    /// crash monitor is notified. Used by fault injection (Table 3).
    pub fn crash_self(&mut self) {
        self.die = Some(DieMode::Crash);
    }

    /// Terminate this process voluntarily (lazy-termination GC, §3.4).
    pub fn exit_self(&mut self) {
        self.die = Some(DieMode::Exit);
    }

    /// The simulation-wide deterministic RNG.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.sim.rng
    }

    /// Hardware-thread lookup helper for spawning onto specific cores.
    pub fn hw_thread(&self, machine: MachineId, core: u32, thread: u32) -> HwThreadId {
        self.sim.hw_thread(machine, core, thread)
    }

    /// Is another process currently alive? (Used by the driver to avoid
    /// queueing packets to a crashed replica.)
    pub fn is_alive(&self, pid: ProcId) -> bool {
        self.sim.is_alive(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum TMsg {
        Ping(u32),
        Pong(u32),
        Die,
    }

    struct Echo {
        got: Vec<u32>,
    }
    impl Process<TMsg> for Echo {
        fn name(&self) -> String {
            "echo".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
            if let Event::Message { from, msg } = ev {
                match msg {
                    TMsg::Ping(n) => {
                        self.got.push(n);
                        ctx.charge(1000);
                        ctx.send(from, TMsg::Pong(n));
                    }
                    TMsg::Die => ctx.crash_self(),
                    TMsg::Pong(_) => {}
                }
            }
        }
    }

    struct Collector {
        pongs: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
        peer: Option<ProcId>,
        to_send: u32,
    }
    impl Process<TMsg> for Collector {
        fn name(&self) -> String {
            "collector".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
            match ev {
                Event::Start => {
                    if let Some(p) = self.peer {
                        for i in 0..self.to_send {
                            ctx.send(p, TMsg::Ping(i));
                        }
                    }
                }
                Event::Message {
                    msg: TMsg::Pong(n), ..
                } => self.pongs.borrow_mut().push(n),
                _ => {}
            }
        }
    }

    fn two_proc_sim() -> (
        Sim<TMsg>,
        ProcId,
        ProcId,
        std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
    ) {
        let mut sim = Sim::new(SimConfig::default());
        let m = sim.add_machine(MachineSpec::amd_opteron_6168());
        let t0 = sim.hw_thread(m, 0, 0);
        let t1 = sim.hw_thread(m, 1, 0);
        let echo = sim.spawn(t0, Box::new(Echo { got: vec![] }));
        let pongs = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        let coll = sim.spawn(
            t1,
            Box::new(Collector {
                pongs: pongs.clone(),
                peer: Some(echo),
                to_send: 5,
            }),
        );
        (sim, echo, coll, pongs)
    }

    #[test]
    fn messages_round_trip_in_order() {
        let (mut sim, _, _, pongs) = two_proc_sim();
        sim.run_until(Time::from_millis(10));
        assert_eq!(*pongs.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn charged_cycles_advance_busy_time() {
        let (mut sim, echo, _, _) = two_proc_sim();
        sim.run_until(Time::from_millis(10));
        let tid = sim.proc_thread(echo).unwrap();
        let st = sim.thread_stats(tid);
        assert_eq!(st.events, 6, "start + 5 pings");
        // 5 pings x >=1000 cycles at 1.9GHz -> >= 2631ns busy
        assert!(st.busy_ns >= 2_500, "busy {}ns", st.busy_ns);
    }

    #[test]
    fn crash_drops_state_and_messages() {
        let (mut sim, echo, coll, pongs) = two_proc_sim();
        sim.run_until(Time::from_millis(1));
        assert!(sim.is_alive(echo));
        sim.send_external(echo, TMsg::Die);
        sim.run_until(Time::from_millis(2));
        assert!(!sim.is_alive(echo));
        let before = pongs.borrow().len();
        // Messages to the dead process vanish; collector gets nothing new.
        sim.send_external(echo, TMsg::Ping(99));
        sim.run_until(Time::from_millis(5));
        assert_eq!(pongs.borrow().len(), before);
        assert!(sim.is_alive(coll));
    }

    #[test]
    fn crash_monitor_is_notified() {
        let (mut sim, echo, coll, pongs) = two_proc_sim();
        // Reuse collector as the "monitor": crashes arrive as Pong(4242).
        sim.set_crash_monitor(coll, |_pid, _| TMsg::Pong(4242));
        sim.run_until(Time::from_millis(1));
        sim.send_external(echo, TMsg::Die);
        sim.run_until(Time::from_millis(2));
        assert!(pongs.borrow().contains(&4242));
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = || {
            let (mut sim, _, _, pongs) = two_proc_sim();
            sim.run_until(Time::from_millis(10));
            let got = pongs.borrow().clone();
            (sim.now(), sim.events_dispatched(), got)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spawn_from_ctx_starts_later() {
        struct Spawner {
            thread: Option<HwThreadId>,
        }
        impl Process<TMsg> for Spawner {
            fn name(&self) -> String {
                "spawner".into()
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
                if let Event::Start = ev {
                    let t = self.thread.unwrap();
                    ctx.spawn(t, Box::new(Echo { got: vec![] }), Time::from_millis(3));
                }
            }
        }
        let mut sim: Sim<TMsg> = Sim::new(SimConfig::default());
        let m = sim.add_machine(MachineSpec::amd_opteron_6168());
        let t0 = sim.hw_thread(m, 0, 0);
        let t1 = sim.hw_thread(m, 1, 0);
        sim.spawn(t0, Box::new(Spawner { thread: Some(t1) }));
        sim.run_until(Time::from_millis(1));
        // Child not yet started (delay 3ms) — but it exists as alive.
        sim.run_until(Time::from_millis(10));
        let st = sim.thread_stats(t1);
        assert_eq!(st.events, 1, "child's Start dispatched after the delay");
    }

    #[test]
    fn batching_coalesces_per_link_and_preserves_order() {
        // A burst of sends inside one handler must arrive as one Batch
        // wakeup, in send order, when coalescing is on.
        struct Sink {
            got: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
            wakeups: std::rc::Rc<std::cell::RefCell<u64>>,
        }
        impl Process<TMsg> for Sink {
            fn name(&self) -> String {
                "sink".into()
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
                if let Event::Message {
                    msg: TMsg::Ping(n), ..
                } = ev
                {
                    *self.wakeups.borrow_mut() += 1;
                    self.got.borrow_mut().push(n);
                }
            }
            fn on_batch(&mut self, ctx: &mut Ctx<'_, TMsg>, from: ProcId, msgs: Vec<TMsg>) {
                *self.wakeups.borrow_mut() += 1;
                for msg in msgs {
                    if let TMsg::Ping(n) = msg {
                        self.got.borrow_mut().push(n);
                    }
                    let _ = (from, &ctx);
                }
            }
        }
        let mut sim: Sim<TMsg> = Sim::new(SimConfig {
            batch_ns: 2_000,
            ..SimConfig::default()
        });
        let m = sim.add_machine(MachineSpec::amd_opteron_6168());
        let t0 = sim.hw_thread(m, 0, 0);
        let t1 = sim.hw_thread(m, 1, 0);
        let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        let wakeups = std::rc::Rc::new(std::cell::RefCell::new(0u64));
        let sink = sim.spawn(
            t0,
            Box::new(Sink {
                got: got.clone(),
                wakeups: wakeups.clone(),
            }),
        );
        let pongs = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        sim.spawn(
            t1,
            Box::new(Collector {
                pongs: pongs.clone(),
                peer: Some(sink),
                to_send: 8,
            }),
        );
        sim.run_until(Time::from_millis(10));
        assert_eq!(*got.borrow(), (0..8).collect::<Vec<u32>>(), "FIFO order");
        assert_eq!(*wakeups.borrow(), 1, "one wakeup for the whole burst");
        let bs = sim.batch_stats();
        assert_eq!(bs.batch_deliveries, 1);
        assert_eq!(bs.batched_msgs, 8);
        assert_eq!(bs.flush_timer, 1, "horizon flush delivered it");
    }

    #[test]
    fn batch_max_flushes_early() {
        // A silent consumer, so only the ping direction produces batches.
        struct Quiet {
            got: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
        }
        impl Process<TMsg> for Quiet {
            fn name(&self) -> String {
                "quiet".into()
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
                if let Event::Message {
                    msg: TMsg::Ping(n), ..
                } = ev
                {
                    self.got.borrow_mut().push(n);
                }
            }
        }
        let mut sim: Sim<TMsg> = Sim::new(SimConfig {
            batch_ns: 1_000_000, // horizon far away: only depth can flush early
            batch_max: 4,
            ..SimConfig::default()
        });
        let m = sim.add_machine(MachineSpec::amd_opteron_6168());
        let t0 = sim.hw_thread(m, 0, 0);
        let t1 = sim.hw_thread(m, 1, 0);
        let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        let quiet = sim.spawn(t0, Box::new(Quiet { got: got.clone() }));
        let pongs = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        sim.spawn(
            t1,
            Box::new(Collector {
                pongs: pongs.clone(),
                peer: Some(quiet),
                to_send: 9,
            }),
        );
        sim.run_until(Time::from_millis(20));
        let bs = sim.batch_stats();
        assert_eq!(bs.flush_depth, 2, "9 msgs at depth 4: two early flushes");
        assert_eq!(bs.flush_timer, 1, "the trailing message rides the horizon");
        assert_eq!(*got.borrow(), (0..9).collect::<Vec<u32>>());
    }

    #[test]
    fn batched_and_unbatched_histories_match() {
        // The coalescer may merge wakeups and shift delivery instants, but
        // the application-visible stream (payloads, per-link order) must
        // be identical with batching on and off.
        let run = |batch_ns: u64| {
            let mut sim: Sim<TMsg> = Sim::new(SimConfig {
                batch_ns,
                ..SimConfig::default()
            });
            let m = sim.add_machine(MachineSpec::amd_opteron_6168());
            let t0 = sim.hw_thread(m, 0, 0);
            let t1 = sim.hw_thread(m, 1, 0);
            let echo = sim.spawn(t0, Box::new(Echo { got: vec![] }));
            let pongs = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
            sim.spawn(
                t1,
                Box::new(Collector {
                    pongs: pongs.clone(),
                    peer: Some(echo),
                    to_send: 32,
                }),
            );
            sim.run_until(Time::from_millis(50));
            let out = pongs.borrow().clone();
            out
        };
        assert_eq!(run(0), run(2_000));
    }

    #[test]
    fn smt_sibling_slows_execution() {
        struct Burn;
        impl Process<TMsg> for Burn {
            fn name(&self) -> String {
                "burn".into()
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_, TMsg>, ev: Event<TMsg>) {
                if let Event::Message { .. } = ev {
                    ctx.charge(1_000_000);
                }
            }
        }
        // Run a stream of work alone vs. with a busy SMT sibling: in steady
        // state each thread of a busy pair runs 2/SMT_CAPACITY slower.
        let solo_busy = {
            let mut sim: Sim<TMsg> = Sim::new(SimConfig::default());
            let m = sim.add_machine(MachineSpec::xeon_e5520_dual());
            let t0 = sim.hw_thread(m, 0, 0);
            let p = sim.spawn(t0, Box::new(Burn));
            sim.run_until(Time::from_micros(1));
            sim.reset_all_stats();
            for _ in 0..20 {
                sim.send_external(p, TMsg::Ping(0));
            }
            sim.run_until(Time::from_millis(100));
            sim.thread_stats(t0).busy_ns
        };
        let paired_busy = {
            let mut sim: Sim<TMsg> = Sim::new(SimConfig::default());
            let m = sim.add_machine(MachineSpec::xeon_e5520_dual());
            let t0 = sim.hw_thread(m, 0, 0);
            let t1 = sim.hw_thread(m, 0, 1);
            let a = sim.spawn(t0, Box::new(Burn));
            let b = sim.spawn(t1, Box::new(Burn));
            sim.run_until(Time::from_micros(1));
            sim.reset_all_stats();
            for _ in 0..20 {
                sim.send_external(a, TMsg::Ping(0));
                sim.send_external(b, TMsg::Ping(0));
            }
            sim.run_until(Time::from_millis(100));
            sim.thread_stats(t0).busy_ns
        };
        assert!(
            paired_busy as f64 > solo_busy as f64 * 1.3,
            "SMT contention should slow the thread: solo={solo_busy} paired={paired_busy}"
        );
    }
}
