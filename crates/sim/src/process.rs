//! The process abstraction: single-threaded, event-driven, isolated.
//!
//! A [`Process`] owns all of its state. The simulation gives it control only
//! through [`Process::on_event`], and the only way it can affect the rest of
//! the world is through the [`crate::Ctx`] passed to it — which offers
//! message sends, timers, and process management, but **no shared memory**.
//! This is the paper's isolation principle enforced by construction: "each
//! process always modifies only its own data structures — except the
//! messaging queues" (§3).

use crate::time::Cycles;

/// Identifies a process within a [`crate::Sim`].
///
/// ProcIds are never reused: a restarted replica gets a fresh id, which is
/// how the driver distinguishes a recovering stack from the crashed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u64);

/// An event delivered to a process.
#[derive(Debug)]
pub enum Event<M> {
    /// The process was just created (or restarted) and should initialize.
    Start,
    /// A message from another process (or from a device engine).
    Message { from: ProcId, msg: M },
    /// A coalesced run of messages from one sender, delivered as a single
    /// wakeup (§3.4: amortize dispatch and wake costs over the batch).
    /// Produced by the engine's per-link coalescing; handled via
    /// [`Process::on_batch`].
    Batch { from: ProcId, msgs: Vec<M> },
    /// A timer set via [`crate::Ctx::set_timer`] fired.
    Timer { token: u64 },
}

impl<M> Event<M> {
    /// Short label for trace spans ("what kind of event ran here").
    pub fn label(&self) -> &'static str {
        match self {
            Event::Start => "start",
            Event::Message { .. } => "msg",
            Event::Batch { .. } => "batch",
            Event::Timer { .. } => "timer",
        }
    }
}

/// A single-threaded, event-driven, hardware-isolated process.
///
/// Implementations must be `'static` because a crash-and-restart cycle can
/// destroy and recreate them at arbitrary simulated times.
pub trait Process<M>: 'static {
    /// Short human-readable name (e.g. `"tcp.1"`, `"web.3"`, `"syscall"`).
    fn name(&self) -> String;

    /// Handle one event, run-to-completion. All CPU work must be charged
    /// via [`crate::Ctx::charge`] (or the event's base cost helpers).
    fn on_event(&mut self, ctx: &mut crate::Ctx<'_, M>, ev: Event<M>);

    /// Base CPU cost charged for every event dispatch before `on_event`
    /// runs (queue dequeue etc.). Override to zero for device engines.
    fn dispatch_cost(&self) -> Cycles {
        crate::calibration::MSG_RECV
    }

    /// Handle a coalesced batch from one sender in a single wakeup. The
    /// default unrolls into per-message [`Process::on_event`] calls —
    /// behaviour-identical to unbatched delivery, while the batch still
    /// pays [`Process::dispatch_cost`] only once. Batch-aware processes
    /// override this to amortize per-wakeup work (drain rings once, flush
    /// once) across all `msgs`.
    fn on_batch(&mut self, ctx: &mut crate::Ctx<'_, M>, from: ProcId, msgs: Vec<M>) {
        for msg in msgs {
            self.on_event(ctx, Event::Message { from, msg });
        }
    }
}
