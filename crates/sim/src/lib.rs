//! # neat-sim — deterministic multicore machine simulator
//!
//! This crate is the execution substrate for the NEaT reproduction. The NEaT
//! paper (CoNEXT '16) runs its network stack as a set of *hardware-isolated,
//! single-threaded, event-driven processes* pinned to dedicated cores of a
//! multicore machine, communicating exclusively through message queues (the
//! NewtOS multiserver model). This crate provides exactly that execution
//! model as a deterministic discrete-event simulation:
//!
//! * [`Machine`]s with physical cores and SMT hardware threads at a given
//!   clock frequency (the paper's 12-core AMD Opteron 6168 @ 1.9 GHz and
//!   dual-socket 4-core Xeon E5520 @ 2.26 GHz with 2 threads/core);
//! * [`Process`]es — single-threaded run-to-completion event handlers pinned
//!   to one hardware thread, owning all of their state (isolation is enforced
//!   by construction: the only way to affect another process is
//!   [`Ctx::send`]);
//! * message passing with the paper's MWAIT-based sleep/wake cost model
//!   (§4): an idle process spin-polls its queues for a while, then suspends
//!   via the kernel; waking it costs kernel time and latency. This is what
//!   produces Table 2's driver CPU breakdown and Figure 12's low-load
//!   latency effects;
//! * crash/restart support for the fault-injection experiments (Table 3);
//! * deterministic, seedable execution: same seed, same history.
//!
//! The simulated clock is in **nanoseconds**; process work is charged in
//! **CPU cycles** and converted using the owning core's frequency, including
//! an SMT capacity penalty when the sibling hardware thread is busy.

pub mod calibration;
pub mod engine;
pub mod machine;
pub mod parallel;
pub mod process;
pub mod stats;
pub mod time;

pub use engine::{BatchStats, Ctx, Sim, SimConfig};
pub use machine::{HwThreadId, MachineId, MachineSpec, ThreadKind, ThreadStats};
pub use parallel::ParStats;
pub use process::{Event, ProcId, Process};
pub use stats::{Histogram, RateMeter};
pub use time::{Cycles, Freq, Time};
