//! Measurement utilities: latency histograms and rate meters.
//!
//! The benchmark harness reports the same quantities httperf does in the
//! paper: successful request rate (krps), throughput (MB/s), and response
//! latency — so the experiment binaries can print paper-shaped rows.

use crate::time::Time;
use neat_util::{Json, ToJson};

/// A log-bucketed latency histogram (HdrHistogram-style, power-of-two
/// buckets with linear sub-buckets), covering 1 ns .. ~17 s.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// 64 major buckets x 16 sub-buckets.
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

const SUB: usize = 16;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; 40 * SUB],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn index(ns: u64) -> usize {
        if ns < SUB as u64 {
            return ns as usize;
        }
        let major = 63 - ns.leading_zeros() as usize; // floor(log2)
        let shift = major - 4; // keep 4 bits of sub-bucket precision
        let sub = ((ns >> shift) & (SUB as u64 - 1)) as usize;
        let bucket = (major - 3) * SUB + sub;
        bucket.min(40 * SUB - 1)
    }

    /// Bucket lower bound for an index (inverse of `index`, approximate).
    fn value_of(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let major = idx / SUB + 3;
        let sub = (idx % SUB) as u64;
        let shift = major - 4;
        ((SUB as u64) << shift) | (sub << shift)
    }

    pub fn record(&mut self, t: Time) {
        let ns = t.as_nanos();
        self.counts[Self::index(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn mean(&self) -> Time {
        if self.total == 0 {
            return Time::ZERO;
        }
        Time((self.sum_ns / self.total as u128) as u64)
    }

    pub fn max(&self) -> Time {
        Time(self.max_ns)
    }

    pub fn min(&self) -> Time {
        if self.total == 0 {
            Time::ZERO
        } else {
            Time(self.min_ns)
        }
    }

    /// Quantile in `[0, 1]`, e.g. `0.99` for p99. Returns the lower bound of
    /// the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> Time {
        if self.total == 0 {
            return Time::ZERO;
        }
        let target = ((self.total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Time(Self::value_of(i));
            }
        }
        Time(self.max_ns)
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

impl ToJson for Histogram {
    /// Summary form for the machine-readable results files: counts plus
    /// the latency quantiles the paper's figures quote.
    fn to_json(&self) -> Json {
        Json::object()
            .field("count", self.total)
            .field("mean_ns", self.mean().as_nanos())
            .field("min_ns", self.min().as_nanos())
            .field("max_ns", self.max().as_nanos())
            .field("p50_ns", self.quantile(0.5).as_nanos())
            .field("p90_ns", self.quantile(0.9).as_nanos())
            .field("p99_ns", self.quantile(0.99).as_nanos())
    }
}

impl ToJson for RateMeter {
    fn to_json(&self) -> Json {
        Json::object()
            .field("count", self.count)
            .field("bytes", self.bytes)
    }
}

/// Counts discrete completions over a window and reports a rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateMeter {
    pub count: u64,
    pub bytes: u64,
}

impl RateMeter {
    pub fn add(&mut self, bytes: u64) {
        self.count += 1;
        self.bytes += bytes;
    }

    /// Completions per second over `elapsed`.
    pub fn per_sec(&self, elapsed: Time) -> f64 {
        let s = elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.count as f64 / s
        }
    }

    /// Kilo-completions per second (the paper's krps unit).
    pub fn krps(&self, elapsed: Time) -> f64 {
        self.per_sec(elapsed) / 1e3
    }

    /// Payload megabytes per second.
    pub fn mbps(&self, elapsed: Time) -> f64 {
        let s = elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_orders_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Time::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 < p99);
        // p50 of uniform 1..1000us should land near 500us (bucket bounds
        // make this approximate).
        assert!(
            p50 > Time::from_micros(350) && p50 < Time::from_micros(700),
            "p50={p50}"
        );
        assert!(h.max() == Time::from_micros(1000));
        assert!(h.min() == Time::from_micros(1));
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        h.record(Time::from_nanos(100));
        h.record(Time::from_nanos(300));
        assert_eq!(h.mean(), Time::from_nanos(200));
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Time::from_micros(10));
        b.record(Time::from_micros(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Time::from_micros(20));
    }

    #[test]
    fn small_values_exact_buckets() {
        let mut h = Histogram::new();
        h.record(Time::from_nanos(3));
        assert_eq!(h.quantile(1.0), Time::from_nanos(3));
    }

    #[test]
    fn rate_meter_units() {
        let mut r = RateMeter::default();
        for _ in 0..224_000 {
            r.add(20);
        }
        let e = Time::from_secs(1);
        assert!((r.krps(e) - 224.0).abs() < 1e-9);
        assert!((r.mbps(e) - 4.48).abs() < 1e-9);
        assert_eq!(RateMeter::default().per_sec(Time::ZERO), 0.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Time::ZERO);
        assert_eq!(h.quantile(0.99), Time::ZERO);
        assert_eq!(h.min(), Time::ZERO);
    }
}
