//! Measurement utilities: latency histograms and rate meters.
//!
//! The benchmark harness reports the same quantities httperf does in the
//! paper: successful request rate (krps), throughput (MB/s), and response
//! latency — so the experiment binaries can print paper-shaped rows.
//!
//! The bucket/merge/quantile machinery lives in [`neat_obs::stats`] so
//! that every layer of the workspace shares one histogram implementation;
//! these are thin [`Time`]-typed wrappers preserving the original
//! simulator-facing API.

use crate::time::Time;
use neat_util::{Json, ToJson};

/// A log-bucketed latency histogram (HdrHistogram-style, power-of-two
/// buckets with linear sub-buckets), covering 1 ns .. ~17 s.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: neat_obs::Histogram,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            inner: neat_obs::Histogram::new(),
        }
    }

    pub fn record(&mut self, t: Time) {
        self.inner.record(t.as_nanos());
    }

    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    pub fn mean(&self) -> Time {
        Time(self.inner.mean())
    }

    pub fn max(&self) -> Time {
        Time(self.inner.max())
    }

    pub fn min(&self) -> Time {
        Time(self.inner.min())
    }

    /// Quantile in `[0, 1]`, e.g. `0.99` for p99. Returns the lower bound of
    /// the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> Time {
        Time(self.inner.quantile(q))
    }

    pub fn merge(&mut self, other: &Histogram) {
        self.inner.merge(&other.inner);
    }

    /// The value-space histogram underneath (e.g. to register a merged
    /// copy into the `neat_obs` metrics registry).
    pub fn inner(&self) -> &neat_obs::Histogram {
        &self.inner
    }
}

impl ToJson for Histogram {
    /// Summary form for the machine-readable results files: counts plus
    /// the latency quantiles the paper's figures quote.
    fn to_json(&self) -> Json {
        self.inner.to_json()
    }
}

/// Counts discrete completions over a window and reports a rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateMeter {
    pub count: u64,
    pub bytes: u64,
}

impl RateMeter {
    pub fn add(&mut self, bytes: u64) {
        self.count += 1;
        self.bytes += bytes;
    }

    fn inner(&self) -> neat_obs::RateMeter {
        neat_obs::RateMeter {
            count: self.count,
            bytes: self.bytes,
        }
    }

    /// Completions per second over `elapsed`.
    pub fn per_sec(&self, elapsed: Time) -> f64 {
        self.inner().per_sec(elapsed.as_secs_f64())
    }

    /// Kilo-completions per second (the paper's krps unit).
    pub fn krps(&self, elapsed: Time) -> f64 {
        self.inner().krps(elapsed.as_secs_f64())
    }

    /// Payload megabytes per second.
    pub fn mbps(&self, elapsed: Time) -> f64 {
        self.inner().mbps(elapsed.as_secs_f64())
    }
}

impl ToJson for RateMeter {
    fn to_json(&self) -> Json {
        self.inner().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_orders_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Time::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 < p99);
        // p50 of uniform 1..1000us should land near 500us (bucket bounds
        // make this approximate).
        assert!(
            p50 > Time::from_micros(350) && p50 < Time::from_micros(700),
            "p50={p50}"
        );
        assert!(h.max() == Time::from_micros(1000));
        assert!(h.min() == Time::from_micros(1));
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        h.record(Time::from_nanos(100));
        h.record(Time::from_nanos(300));
        assert_eq!(h.mean(), Time::from_nanos(200));
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Time::from_micros(10));
        b.record(Time::from_micros(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Time::from_micros(20));
    }

    #[test]
    fn small_values_exact_buckets() {
        let mut h = Histogram::new();
        h.record(Time::from_nanos(3));
        assert_eq!(h.quantile(1.0), Time::from_nanos(3));
    }

    #[test]
    fn rate_meter_units() {
        let mut r = RateMeter::default();
        for _ in 0..224_000 {
            r.add(20);
        }
        let e = Time::from_secs(1);
        assert!((r.krps(e) - 224.0).abs() < 1e-9);
        assert!((r.mbps(e) - 4.48).abs() < 1e-9);
        assert_eq!(RateMeter::default().per_sec(Time::ZERO), 0.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Time::ZERO);
        assert_eq!(h.quantile(0.99), Time::ZERO);
        assert_eq!(h.min(), Time::ZERO);
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        // Quantiles and merge behave on empty and one-sample histograms.
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.0), Time::ZERO);
        assert_eq!(empty.quantile(1.0), Time::ZERO);

        let mut single = Histogram::new();
        single.record(Time::from_micros(42));
        for q in [0.0, 0.5, 1.0] {
            let v = single.quantile(q);
            // Bucket lower bound for 42 us is 40.96 us (4 sub-bucket bits).
            assert!(
                v <= Time::from_micros(42) && v >= Time::from_nanos(40_960),
                "q={q} v={v}"
            );
        }

        // empty.merge(single) copies; single.merge(empty) is identity.
        let mut e = Histogram::new();
        e.merge(&single);
        assert_eq!(e.count(), 1);
        assert_eq!(e.min(), single.min());
        let before = (single.count(), single.min(), single.max());
        let mut s = single.clone();
        s.merge(&empty);
        assert_eq!((s.count(), s.min(), s.max()), before);
    }

    #[test]
    fn bucket_saturation_is_safe() {
        // Values beyond the last bucket (≈17 s in ns) clamp instead of
        // indexing out of bounds, and max() still reports exactly.
        let mut h = Histogram::new();
        let huge = Time::from_secs(40_000);
        h.record(huge);
        assert_eq!(h.max(), huge);
        assert!(h.quantile(1.0) <= huge);
        assert!(h.quantile(0.5) > Time::ZERO);
    }

    #[test]
    fn rate_meter_zero_elapsed() {
        let mut r = RateMeter::default();
        r.add(100);
        assert_eq!(r.per_sec(Time::ZERO), 0.0);
        assert_eq!(r.krps(Time::ZERO), 0.0);
        assert_eq!(r.mbps(Time::ZERO), 0.0);
    }
}
